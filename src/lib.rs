//! # trajsearch — workspace facade
//!
//! One-stop re-export of the workspace crates implementing *"Fast
//! Subtrajectory Similarity Search in Road Networks under Weighted Edit
//! Distance Constraints"* (Koide, Xiao & Ishikawa, VLDB 2020). Depend on
//! this package to get the whole stack; depend on the individual crates to
//! slim the dependency graph.
//!
//! * [`rnet`] — road networks: CSR graphs, generators, Dijkstra, hub
//!   labels, kd-trees.
//! * [`traj`] — trajectories: model, store, synthetic trips, map matching.
//! * [`wed`] — weighted edit distance: cost models, DP, Smith–Waterman.
//! * [`core`] (`trajsearch_core`) — the OSF filter-and-verify engine.
//! * [`serve`] (`trajsearch_serve`) — the concurrent TCP front-end over
//!   the `Query`/`Response` wire format (bounded admission, deadlines,
//!   graceful drain, metrics), plus the versioned shard-RPC surface.
//! * [`distrib`] (`trajsearch_distrib`) — distributed shards over that
//!   wire protocol: `RemoteShards` (a networked `PostingSource` fanning
//!   out over shard servers) and the coordinator role serving queries
//!   with typed degraded replies.
//! * [`persist`] (`trajsearch_persist`) — versioned, checksummed on-disk
//!   snapshots of store + index, reopened as a compact arena-backed
//!   `PostingSource` without a rebuild.
//! * [`baselines`] — competitor methods from the paper's evaluation.
//! * [`mod@bench`] (`trajsearch_bench`) — the table/figure experiment
//!   harness.
//!
//! This package also owns the repo-level integration tests (`tests/`) and
//! runnable examples (`examples/`); see the README for the tour.

pub use baselines;
pub use rnet;
pub use traj;
pub use trajsearch_bench as bench;
pub use trajsearch_core as core;
pub use trajsearch_distrib as distrib;
pub use trajsearch_persist as persist;
pub use trajsearch_serve as serve;
pub use wed;

/// Convenience re-exports of the types most programs start from: build an
/// engine with [`EngineBuilder`](trajsearch_core::EngineBuilder), describe
/// the request with [`Query`](trajsearch_core::Query) (optionally picking
/// a similarity [`Metric`](trajsearch_core::Metric)), answer it with
/// [`SearchEngine::run`](trajsearch_core::SearchEngine::run) /
/// [`run_batch`](trajsearch_core::SearchEngine::run_batch).
pub mod prelude {
    pub use rnet::{CityParams, NetworkKind, RoadNetwork};
    pub use traj::{Trajectory, TrajectoryStore, TripConfig};
    pub use trajsearch_core::{
        AnyIndex, BatchOptions, BatchResponse, CompactIndex, Deadline, DtwVerifier, EngineBuilder,
        FrechetVerifier, IndexLayout, IndexShard, InvertedIndex, LcssVerifier, Metric, Objective,
        Parallelism, PostingSource, Query, QueryBuilder, QueryError, RemoteSpec, Response,
        SearchEngine, ShardedIndex, TemporalConstraint, TimeInterval, Verifier, VerifyMode,
        WedVerifier,
    };
    pub use trajsearch_distrib::{Coordinator, RemoteShards, ShardEndpoint};
    pub use trajsearch_persist::{Snapshot, SnapshotError, SnapshotErrorKind, SnapshotInfo};
    pub use trajsearch_serve::{
        Client, ClientError, DegradedInfo, MetricsSnapshot, QueryOutcome, RetryPolicy, Server,
        ServerConfig, ServerError, ServerErrorKind, ServerHandle,
    };
    pub use wed::models::{Edr, Erp, Lev, Memo, NetEdr, NetErp, Surs};
    pub use wed::{CostModel, Sym, WedInstance};
}
