//! Vendored stand-in for the subset of
//! [`criterion`](https://crates.io/crates/criterion) the paper-figure benches
//! use: `Criterion::benchmark_group`, `bench_function`/`bench_with_input`
//! with `BenchmarkId`, `sample_size`, `Bencher::iter`, `black_box`, and the
//! `criterion_group!`/`criterion_main!` macros.
//!
//! Instead of criterion's full statistical pipeline this shim times a fixed
//! number of iterations per benchmark (after a short warm-up) and prints the
//! mean wall-clock time per iteration. That keeps `cargo bench` functional
//! and fast offline; absolute numbers are indicative, not
//! criterion-rigorous.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifies one benchmark within a group: a function name plus an optional
/// parameter rendering, shown as `function/parameter`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    function: String,
    parameter: Option<String>,
}

impl BenchmarkId {
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            function: function.into(),
            parameter: Some(parameter.to_string()),
        }
    }

    fn render(&self) -> String {
        match &self.parameter {
            Some(p) => format!("{}/{}", self.function, p),
            None => self.function.clone(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(function: &str) -> Self {
        BenchmarkId {
            function: function.to_string(),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(function: String) -> Self {
        BenchmarkId {
            function,
            parameter: None,
        }
    }
}

/// Passed to benchmark closures; [`Bencher::iter`] times the routine.
pub struct Bencher {
    iters: u64,
    mean: Option<Duration>,
}

impl Bencher {
    /// Time `routine` over this bencher's iteration budget and record the
    /// mean time per iteration.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        for _ in 0..2 {
            black_box(routine());
        }
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.mean = Some(start.elapsed() / self.iters as u32);
    }
}

/// A named collection of related benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: u64,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Number of timed iterations per benchmark (criterion's minimum is 10;
    /// so is ours).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = (n as u64).max(10);
        self
    }

    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        self.run(id.into(), |b| f(b))
    }

    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        self.run(id.into(), |b| f(b, input))
    }

    fn run(&mut self, id: BenchmarkId, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        let mut bencher = Bencher {
            iters: self.sample_size,
            mean: None,
        };
        f(&mut bencher);
        match bencher.mean {
            Some(mean) => println!(
                "{}/{}: {:?} per iter ({} iters)",
                self.name,
                id.render(),
                mean,
                bencher.iters
            ),
            None => println!(
                "{}/{}: no measurement (Bencher::iter not called)",
                self.name,
                id.render()
            ),
        }
        self
    }

    pub fn finish(self) {}
}

/// Entry point handed to benchmark functions by `criterion_group!`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            _criterion: self,
        }
    }

    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        let mut group = self.benchmark_group(id.function.clone());
        group.run(id, f);
        self
    }
}

/// Bundle benchmark functions into a single runner invoked by
/// `criterion_main!`. Only the simple `criterion_group!(name, targets...)`
/// form is supported.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generate a `main` that runs each group. Arguments passed by `cargo bench`
/// (e.g. `--bench`, filter strings) are accepted and ignored.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_times_and_finishes() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(10);
        let mut ran = 0u32;
        g.bench_function("count", |b| b.iter(|| ran = ran.wrapping_add(1)));
        g.bench_with_input(BenchmarkId::new("sum", 4), &4u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        g.finish();
        assert!(ran >= 10);
    }
}
