//! Vendored stand-in for the subset of the [`rand`](https://crates.io/crates/rand)
//! 0.8 API this workspace uses.
//!
//! The build environment has no access to a crates.io registry, so the four
//! external dependencies (`rand`, `rand_chacha`, `proptest`, `criterion`) are
//! vendored as minimal shims under `shims/`. This crate provides:
//!
//! * [`RngCore`] — the raw generator interface (`next_u32`/`next_u64`/
//!   `fill_bytes`).
//! * [`SeedableRng`] — seeding, including the SplitMix64-based
//!   [`SeedableRng::seed_from_u64`] (same expansion scheme as upstream rand,
//!   though exact output streams are not guaranteed to match).
//! * [`Rng`] — the ergonomic extension trait with `gen`, `gen_range` and
//!   `gen_bool`, blanket-implemented for every `RngCore`.
//!
//! Only the pieces the workspace actually exercises are implemented; ranges
//! are sampled with a simple modulo reduction, which is amply uniform for
//! synthetic-data generation and tests.

use std::ops::{Range, RangeInclusive};

/// The core of a random number generator.
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator that can be instantiated from a fixed seed.
pub trait SeedableRng: Sized {
    type Seed: Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    /// Expand a `u64` into a full seed with SplitMix64 (upstream rand's
    /// scheme) and build the generator from it.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut x = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Types that can be sampled uniformly over their full "standard" domain by
/// [`Rng::gen`]: `[0, 1)` for floats, the full range for integers, a fair
/// coin for `bool`.
pub trait StandardSample: Sized {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty => $via:ident),* $(,)?) => {$(
        impl StandardSample for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.$via() as $t
            }
        }
    )*};
}

standard_int!(
    u8 => next_u32, u16 => next_u32, u32 => next_u32, u64 => next_u64,
    usize => next_u64, i8 => next_u32, i16 => next_u32, i32 => next_u32,
    i64 => next_u64, isize => next_u64,
);

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let r = (rng.next_u64() as u128) % span;
                (self.start as i128 + r as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (s, e) = (*self.start(), *self.end());
                assert!(s <= e, "cannot sample from empty range");
                let span = (e as i128 - s as i128) as u128 + 1;
                let r = (rng.next_u64() as u128) % span;
                (s as i128 + r as i128) as $t
            }
        }
    )*};
}

int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let u = <$t as StandardSample>::sample_standard(rng);
                let v = self.start + (self.end - self.start) * u;
                // `start + span * u` can round up to `end` even though
                // u < 1; keep the half-open contract.
                if v >= self.end {
                    self.end.next_down().max(self.start)
                } else {
                    v
                }
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (s, e) = (*self.start(), *self.end());
                assert!(s <= e, "cannot sample from empty range");
                let u = <$t as StandardSample>::sample_standard(rng);
                s + (e - s) * u
            }
        }
    )*};
}

float_range!(f32, f64);

/// Ergonomic sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "p={p} outside [0, 1]");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;

    /// A tiny deterministic generator for exercising the traits.
    struct SplitMix(u64);

    impl RngCore for SplitMix {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SplitMix(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3u32..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-2.5f64..9.5);
            assert!((-2.5..9.5).contains(&f));
            let i = rng.gen_range(0..=4usize);
            assert!(i <= 4);
            let neg = rng.gen_range(-10i64..-2);
            assert!((-10..-2).contains(&neg));
        }
    }

    #[test]
    fn float_range_stays_half_open_at_rounding_boundary() {
        /// Always emits all-ones, forcing the largest possible `u` in [0, 1),
        /// where `start + span * u` rounds up to `end`.
        struct MaxRng;
        impl RngCore for MaxRng {
            fn next_u32(&mut self) -> u32 {
                u32::MAX
            }
            fn next_u64(&mut self) -> u64 {
                u64::MAX
            }
        }
        let v = MaxRng.gen_range(1.0f64..2.0);
        assert!((1.0..2.0).contains(&v), "got {v}");
        let w = MaxRng.gen_range(-1.0f32..3.5);
        assert!((-1.0..3.5).contains(&w), "got {w}");
    }

    #[test]
    fn standard_floats_are_unit_interval() {
        let mut rng = SplitMix(42);
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
