//! Vendored stand-in for [`rand_chacha`](https://crates.io/crates/rand_chacha).
//!
//! Implements a genuine ChaCha8 keystream generator (RFC 8439 block function
//! with 8 rounds) behind the shim `rand` traits. Determinism and statistical
//! quality match the real thing; the exact output stream is not guaranteed to
//! be bit-identical to upstream `rand_chacha` (nothing in this workspace
//! depends on golden values, only on seeded reproducibility).

use rand::{RngCore, SeedableRng};

/// A ChaCha stream cipher used as a seeded random number generator, with 8
/// rounds.
#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    /// Words 4..12 of the initial state: the 256-bit key.
    key: [u32; 8],
    /// 64-bit block counter (words 12..14 of the state).
    counter: u64,
    /// Current keystream block.
    block: [u32; 16],
    /// Next unread word index into `block`; 16 means exhausted.
    idx: usize,
}

const CHACHA_CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CHACHA_CONSTANTS);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        // Words 14..16 are the nonce, fixed at zero for RNG use.
        let input = state;
        for _ in 0..4 {
            // One double round = a column round plus a diagonal round.
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (out, inp) in state.iter_mut().zip(input.iter()) {
            *out = out.wrapping_add(*inp);
        }
        self.block = state;
        self.counter = self.counter.wrapping_add(1);
        self.idx = 0;
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (word, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
            *word = u32::from_le_bytes(chunk.try_into().unwrap());
        }
        ChaCha8Rng {
            key,
            counter: 0,
            block: [0; 16],
            idx: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.idx >= 16 {
            self.refill();
        }
        let word = self.block[self.idx];
        self.idx += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_streams_are_reproducible() {
        let mut a = ChaCha8Rng::seed_from_u64(1234);
        let mut b = ChaCha8Rng::seed_from_u64(1234);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = ChaCha8Rng::seed_from_u64(1235);
        let same: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        let mut a2 = ChaCha8Rng::seed_from_u64(1234);
        let other: Vec<u64> = (0..16).map(|_| a2.next_u64()).collect();
        assert_ne!(same, other);
    }

    #[test]
    fn fill_bytes_covers_unaligned_lengths() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let mut buf = [0u8; 13];
        rand::RngCore::fill_bytes(&mut rng, &mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
