//! Vendored stand-in for the subset of
//! [`proptest`](https://crates.io/crates/proptest) this workspace's property
//! suites use: the `proptest!` macro with `#![proptest_config(..)]`,
//! numeric-range and tuple strategies, `proptest::collection::vec`,
//! `Strategy::prop_map`, and the `prop_assert!`/`prop_assert_eq!`/
//! `prop_assert_ne!`/`prop_assume!` macros.
//!
//! Differences from real proptest, deliberate for an offline CI shim:
//!
//! * **No shrinking.** A failing case panics with the generated inputs
//!   printed verbatim; cases are generated from a deterministic per-test
//!   seed, so failures reproduce exactly on re-run.
//! * **Case counts are CI-tunable.** [`test_runner::ProptestConfig::with_cases`]
//!   and `ProptestConfig::default` both honor the `PROPTEST_CASES` environment
//!   variable, which overrides the in-source count (upstream behavior, and
//!   what CI uses to keep the suites fast).

pub mod test_runner {
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    /// Configuration for a `proptest!` block.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of successful cases required for the test to pass.
        pub cases: u32,
    }

    fn env_cases() -> Option<u32> {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
    }

    impl ProptestConfig {
        /// `cases` successful runs per property, unless `PROPTEST_CASES`
        /// overrides it. Floored at 1 so a zero (from either source) cannot
        /// turn every property suite into a vacuous pass.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig {
                cases: env_cases().unwrap_or(cases).max(1),
            }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig::with_cases(256)
        }
    }

    /// Why a single generated case did not pass.
    #[derive(Clone, Debug)]
    pub enum TestCaseError {
        /// An assertion failed: the property is violated.
        Fail(String),
        /// `prop_assume!` rejected the inputs: try another case.
        Reject(String),
    }

    impl TestCaseError {
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    /// Drives one property: generates cases from a deterministic seed derived
    /// from the test name until `cfg.cases` succeed, a case fails, or too
    /// many are rejected.
    pub fn run_cases(
        name: &str,
        cfg: ProptestConfig,
        mut case: impl FnMut(&mut ChaCha8Rng) -> (String, Result<(), TestCaseError>),
    ) {
        let seed = name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
            (h ^ b as u64).wrapping_mul(0x1000_0000_01b3)
        });
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut passed = 0u32;
        let mut rejected = 0u32;
        let reject_cap = cfg.cases.saturating_mul(20).saturating_add(100);
        while passed < cfg.cases {
            let (inputs, outcome) = case(&mut rng);
            match outcome {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject(why)) => {
                    rejected += 1;
                    if rejected > reject_cap {
                        panic!(
                            "property `{name}`: gave up after {rejected} rejected cases \
                             ({passed} passed); last assumption: {why}"
                        );
                    }
                }
                Err(TestCaseError::Fail(msg)) => {
                    panic!(
                        "property `{name}` failed after {passed} passing case(s): {msg}\n\
                         inputs:\n{inputs}"
                    );
                }
            }
        }
    }
}

pub mod strategy {
    use rand::Rng;
    use rand_chacha::ChaCha8Rng;
    use std::ops::Range;

    /// A generator of values of type `Value`.
    ///
    /// Unlike real proptest there is no shrinking tree: a strategy just draws
    /// a value from the RNG.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut ChaCha8Rng) -> Self::Value;

        /// Map generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut ChaCha8Rng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut ChaCha8Rng) -> T {
            self.0.clone()
        }
    }

    macro_rules! range_strategy {
        ($($t:ty),* $(,)?) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut ChaCha8Rng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    macro_rules! tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn generate(&self, rng: &mut ChaCha8Rng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use rand::Rng;
    use rand_chacha::ChaCha8Rng;
    use std::ops::Range;

    /// Length bounds for [`vec()`], half-open like upstream's `SizeRange`.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        start: usize,
        end: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                start: r.start,
                end: r.end,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                start: n,
                end: n + 1,
            }
        }
    }

    /// Strategy producing `Vec`s of `elem` with length drawn from `size`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    /// Strategy returned by [`vec()`].
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut ChaCha8Rng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.start..self.size.end);
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Defines property tests: each `fn` runs `cases` times over generated
/// inputs. See the module docs for the differences from real proptest.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr);) => {};
    (($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            $crate::test_runner::run_cases(stringify!($name), $cfg, |__rng| {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), __rng);)*
                let __inputs = [$(format!(concat!("  ", stringify!($arg), " = {:?}"), &$arg)),*].join("\n");
                let __outcome = (|| -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                    $body
                    ::std::result::Result::Ok(())
                })();
                (__inputs, __outcome)
            });
        }
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
}

/// Assert a condition inside a `proptest!` body, failing the case (not
/// panicking directly) so the runner can report the generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// `prop_assert!(a == b)` with both values in the failure message.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(
            *__a == *__b,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($a), stringify!($b), __a, __b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(
            *__a == *__b,
            "{}\n  left: {:?}\n right: {:?}",
            format!($($fmt)+), __a, __b
        );
    }};
}

/// `prop_assert!(a != b)` with both values in the failure message.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(
            *__a != *__b,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($a), stringify!($b), __a
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(*__a != *__b, "{}\n  both: {:?}", format!($($fmt)+), __a);
    }};
}

/// Discard the current case (it counts toward the rejection cap, not toward
/// `cases`).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn vec_lengths_respect_bounds(
            v in crate::collection::vec(0u32..10, 2..6),
        ) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&x| x < 10));
        }

        #[test]
        fn mapped_tuples_generate(
            p in (0.0f64..1.0, 0.0f64..1.0).prop_map(|(x, y)| x + y),
        ) {
            prop_assert!((0.0..2.0).contains(&p));
        }

        #[test]
        fn assume_rejects_without_failing(x in 0u32..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    #[test]
    #[should_panic(expected = "property `always_fails` failed")]
    fn failure_reports_inputs() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            fn always_fails(x in 0u32..10) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        always_fails();
    }
}
