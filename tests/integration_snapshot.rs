//! End-to-end snapshot persistence: a realistic store is indexed, snapped
//! to disk through the facade re-exports, reopened cold, and then serves a
//! **mixed** workload — threshold, top-k, temporal, and non-WED metric
//! queries — byte-identically to the engine that never left memory.
//!
//! This is the facade-level complement to `crates/persist/tests/`: those
//! proptest the format and the option grid at small scale; this exercises
//! the public `trajsearch::persist` path end to end on generated city
//! data, exactly like a consumer would wire it.

use std::sync::Arc;
use trajsearch::persist::{Snapshot, SnapshotErrorKind};
use trajsearch::prelude::*;

fn build_world() -> (Arc<RoadNetwork>, TrajectoryStore) {
    let net = Arc::new(CityParams::tiny(NetworkKind::City).seed(5).generate());
    let store = TripConfig::default()
        .count(120)
        .lengths(8, 24)
        .seed(31)
        .generate(&net);
    (net, store)
}

#[test]
fn reopened_snapshot_serves_a_mixed_workload_identically() {
    let (net, store) = build_world();
    let alphabet = net.num_vertices();

    let mut index = InvertedIndex::build(&store, alphabet);
    index.enable_temporal_postings();
    let inverted_bytes = index.size_bytes();
    let warm = EngineBuilder::new(Lev, &store, alphabet).build_with(index);

    let path = std::env::temp_dir().join(format!(
        "trajsearch_integration_{}.snap",
        std::process::id()
    ));
    let info = Snapshot::write(&path, &store, warm.index()).expect("snapshot written");
    assert!(info.temporal);
    let snapshot = Snapshot::open(&path).expect("snapshot reopens");
    std::fs::remove_file(&path).ok();
    let (cold_store, compact) = snapshot.into_parts();
    assert!(
        compact.size_bytes() < inverted_bytes,
        "reopened CompactIndex ({}) must undercut the InvertedIndex ({inverted_bytes})",
        compact.size_bytes()
    );
    let cold = EngineBuilder::new(Lev, &cold_store, alphabet).build_with(compact);

    // Mixed workload: threshold at two verify modes, temporal overlap with
    // the by-departure postings path, top-k, and a DTW metric query.
    let probe: Vec<Sym> = {
        let t = store.get(9);
        t.subpath(0, t.len().min(8) - 1).to_vec()
    };
    let window = TimeInterval::new(store.get(3).departure(), store.get(40).arrival());
    let mut queries: Vec<Query> = vec![
        Query::threshold(probe.clone(), 2.0).build().unwrap(),
        Query::threshold(probe.clone(), 3.0)
            .verify(VerifyMode::Sw)
            .build()
            .unwrap(),
        Query::threshold(probe.clone(), 2.5)
            .temporal(TemporalConstraint::overlaps(window))
            .temporal_filter(true)
            .temporal_postings(true)
            .build()
            .unwrap(),
        Query::top_k(probe.clone(), 5, 1.0, 8.0).build().unwrap(),
        Query::threshold(probe.clone(), 3.0)
            .metric(Metric::Dtw)
            .build()
            .unwrap(),
    ];
    queries.push(
        Query::threshold(probe, 2.0)
            .parallelism(Parallelism::InQuery(2))
            .build()
            .unwrap(),
    );

    for (i, query) in queries.iter().enumerate() {
        let want = warm.run(query).expect("warm run");
        let got = cold.run(query).expect("cold run");
        assert_eq!(got.matches, want.matches, "query {i} diverged");
        assert_eq!(
            got.stats.candidates, want.stats.candidates,
            "query {i} candidate count diverged"
        );
    }

    // And the batch path over the whole mix at once.
    let want = warm
        .run_batch(&queries, BatchOptions::with_threads(2))
        .expect("warm batch");
    let got = cold
        .run_batch(&queries, BatchOptions::with_threads(2))
        .expect("cold batch");
    for (i, (g, w)) in got.responses.iter().zip(&want.responses).enumerate() {
        assert_eq!(g.matches, w.matches, "batch query {i} diverged");
    }
}

#[test]
fn snapshot_of_sharded_layout_is_the_same_file() {
    let (net, store) = build_world();
    let alphabet = net.num_vertices();
    let inverted = InvertedIndex::build(&store, alphabet);
    let sharded = ShardedIndex::build_parallel(&store, alphabet, 3);
    let a = Snapshot::encode(&store, &inverted).expect("encode inverted");
    let b = Snapshot::encode(&store, &sharded).expect("encode sharded");
    assert_eq!(a, b, "snapshot bytes must be layout-canonical");
}

#[test]
fn corrupted_file_is_refused_with_a_typed_error() {
    let (net, store) = build_world();
    let alphabet = net.num_vertices();
    let index = InvertedIndex::build(&store, alphabet);
    let mut bytes = Snapshot::encode(&store, &index).expect("encode");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x10;
    let err = Snapshot::decode(&bytes).expect_err("flip must be refused");
    assert_eq!(err.kind(), SnapshotErrorKind::ChecksumMismatch);
}
