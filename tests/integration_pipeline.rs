//! Whole-pipeline tests: raw GPS → map matching → store → index → search,
//! representation consistency, and substrate cross-checks on city networks.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use rnet::dijkstra::{sssp, Mode};
use rnet::{CityParams, HubLabels, NetworkKind};
use std::sync::Arc;
use traj::mapmatch::{noisy_trace, MapMatcher};
use traj::{Trajectory, TrajectoryStore, TripConfig};
use trajsearch_bench::data::{Dataset, FuncKind};
use trajsearch_core::{EngineBuilder, Query};
use wed::models::Lev;

/// GPS traces with noise are map-matched into a database; searching for a
/// clean stretch of the original route must find the matched trajectory.
#[test]
fn gps_to_search_pipeline() {
    let net = Arc::new(CityParams::small(NetworkKind::Grid).seed(2).generate());
    let mut rng = ChaCha8Rng::seed_from_u64(99);
    let matcher = MapMatcher::new(&net, 15.0, 60.0);

    // Ground-truth routes and their noisy observations.
    let truths: Vec<Vec<u32>> = (0..10)
        .map(|i| {
            let start = (i * 37) % net.num_vertices() as u32;
            traj::generator::random_walk(&net, &mut ChaCha8Rng::seed_from_u64(i as u64), start, 20)
        })
        .collect();
    let mut store = TrajectoryStore::new();
    let mut matched_of: Vec<Option<u32>> = Vec::new();
    for truth in &truths {
        let trace = noisy_trace(&net, truth, 10.0, 2, &mut rng);
        match matcher.match_trace(&trace) {
            Some(path) if path.len() >= 5 => {
                matched_of.push(Some(store.push(Trajectory::untimed(path))));
            }
            _ => matched_of.push(None),
        }
    }
    assert!(
        store.len() >= 7,
        "map matching failed too often: {}",
        store.len()
    );

    let engine = EngineBuilder::new(&Lev, &store, net.num_vertices()).build();
    let mut found = 0;
    for (truth, matched) in truths.iter().zip(&matched_of) {
        let Some(id) = matched else { continue };
        // Query: the middle stretch of the ground truth.
        let q = &truth[5..15.min(truth.len())];
        let out = engine
            .run(
                &Query::threshold(q.to_vec(), (q.len() as f64 * 0.5).max(1.0))
                    .build()
                    .unwrap(),
            )
            .unwrap();
        if out.matches.iter().any(|m| m.id == *id) {
            found += 1;
        }
    }
    assert!(
        found >= store.len() * 6 / 10,
        "only {found}/{} matched trajectories rediscovered",
        store.len()
    );
}

/// Vertex- and edge-representation searches must agree: a vertex-space match
/// corresponds to an edge-space match of the same span (for exact matching
/// under unit costs).
#[test]
fn representation_consistency() {
    let d = Dataset::test_tiny();
    let lev = d.model(FuncKind::Lev);
    let vertex_engine = EngineBuilder::new(&*lev, &d.store, d.net.num_vertices()).build();
    let edge_engine = EngineBuilder::new(&*lev, &d.edge_store, d.net.num_edges()).build();

    for qv in d.sample_queries(FuncKind::Lev, 6, 5, 31) {
        let qe = d.net.path_to_edges(&qv).expect("query is a path");
        // Exact matches only (tau < 1 under unit costs).
        let vm = vertex_engine
            .run(&Query::threshold(qv.clone(), 0.5).build().unwrap())
            .unwrap();
        let em = edge_engine
            .run(&Query::threshold(qe.clone(), 0.5).build().unwrap())
            .unwrap();
        // Every edge-space exact occurrence implies the vertex-space one.
        for m in &em.matches {
            assert!(
                vm.matches
                    .iter()
                    .any(|v| v.id == m.id && v.start == m.start && v.end == m.end + 1),
                "edge match {:?} has no vertex twin",
                (m.id, m.start, m.end)
            );
        }
        // And conversely (vertex exact match of length n has n-1 edges).
        for v in &vm.matches {
            assert!(
                em.matches
                    .iter()
                    .any(|m| m.id == v.id && m.start == v.start && m.end + 1 == v.end),
                "vertex match {:?} has no edge twin",
                (v.id, v.start, v.end)
            );
        }
    }
}

/// Hub labels must agree with Dijkstra on city networks (not just grids).
#[test]
fn hub_labels_agree_with_dijkstra_on_city() {
    let net = CityParams::small(NetworkKind::City).seed(13).generate();
    let hl = HubLabels::build(&net);
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    for _ in 0..5 {
        let src = rng.gen_range(0..net.num_vertices() as u32);
        let d = sssp(&net, src, Mode::UndirectedLength);
        for _ in 0..50 {
            let v = rng.gen_range(0..net.num_vertices() as u32);
            let q = hl.query(src, v);
            assert!(
                (q - d[v as usize]).abs() < 1e-6,
                "hub {q} vs dijkstra {} for {src}->{v}",
                d[v as usize]
            );
        }
    }
}

/// Trip generation + engine: searching for a stretch of any stored trip
/// finds at least that trip itself, with distance 0 at the right position.
#[test]
fn self_retrieval_of_every_sampled_query() {
    let net = Arc::new(CityParams::small(NetworkKind::City).seed(77).generate());
    let store = TripConfig::default()
        .count(100)
        .lengths(12, 40)
        .seed(3)
        .generate(&net);
    let engine = EngineBuilder::new(&Lev, &store, net.num_vertices()).build();
    let mut rng = ChaCha8Rng::seed_from_u64(123);
    for _ in 0..20 {
        let id = rng.gen_range(0..store.len() as u32);
        let t = store.get(id);
        let s = rng.gen_range(0..t.len() - 8);
        let q = t.subpath(s, s + 7).to_vec();
        let out = engine
            .run(&Query::threshold(q.clone(), 1.0).build().unwrap())
            .unwrap();
        assert!(
            out.matches
                .iter()
                .any(|m| m.id == id && m.start == s && m.dist == 0.0),
            "self-match not found for trajectory {id} at {s}"
        );
    }
}

/// The experiment harness runs end to end at tiny scale (smoke test for the
/// repro binary's code paths).
#[test]
fn experiment_harness_smoke() {
    use trajsearch_bench::data::Scale;
    use trajsearch_bench::exp;
    let s = Scale(0.01);
    assert_eq!(exp::table2::run(s).len(), 4);
    assert!(!exp::verification::run(s).is_empty());
    assert!(!exp::table6::run(s).is_empty());
    let rows = exp::temporal::run(&["beijing"], &[0.05], 8, 2, s);
    assert_eq!(rows.len(), 1);
}
