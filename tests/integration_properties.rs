//! Property-based tests of the paper's theorems across crates.
//!
//! * Proposition 1 (WED axioms) on network-backed cost models.
//! * Theorem 1 (subsequence filtering soundness).
//! * Lemma 1 via result-set equality between the engine and a brute-force
//!   oracle on random stores.
//! * MinCand constraint satisfaction and 2-approximation.
//! * Trie-cached DP columns equal freshly computed ones.

use proptest::prelude::*;
use rnet::{CityParams, NetworkKind, RoadNetwork};
use std::sync::Arc;
use traj::{Trajectory, TrajectoryStore};
use trajsearch_core::mincand::{min_cand, min_cand_exhaustive, objective, Item, Selection};
use trajsearch_core::{EngineBuilder, Query};
use wed::models::{Edr, Lev};
use wed::{wed, CostModel, Sym, WedInstance};

fn tiny_net() -> Arc<RoadNetwork> {
    Arc::new(CityParams::tiny(NetworkKind::Grid).generate())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// wed is symmetric, non-negative, and zero on identical strings, for a
    /// network-backed instance (EDR) and arbitrary vertex strings.
    #[test]
    fn wed_axioms_hold_on_edr(
        a in proptest::collection::vec(0u32..64, 0..12),
        b in proptest::collection::vec(0u32..64, 0..12),
    ) {
        let net = tiny_net();
        let edr = Edr::new(net, 130.0);
        let dab = wed(&edr, &a, &b);
        let dba = wed(&edr, &b, &a);
        prop_assert!(dab >= 0.0);
        prop_assert!((dab - dba).abs() < 1e-9, "symmetry violated: {dab} vs {dba}");
        prop_assert_eq!(wed(&edr, &a, &a), 0.0);
    }

    /// wed(P, Q) is upper-bounded by total deletion+insertion cost.
    #[test]
    fn wed_upper_bound(
        a in proptest::collection::vec(0u32..64, 0..12),
        b in proptest::collection::vec(0u32..64, 0..12),
    ) {
        let net = tiny_net();
        let edr = Edr::new(net, 130.0);
        let d = wed(&edr, &a, &b);
        let ub = edr.total_ins(&a) + edr.total_ins(&b);
        prop_assert!(d <= ub + 1e-9, "wed {d} exceeds del+ins bound {ub}");
    }

    /// Theorem 1: if a string avoids B(Q') for a τ-subsequence Q' of Q, its
    /// WED to Q is at least τ.
    #[test]
    fn subsequence_filter_is_sound(
        q in proptest::collection::vec(0u32..64, 1..8),
        p in proptest::collection::vec(0u32..64, 1..14),
        ratio in 0.05f64..0.95,
    ) {
        let net = tiny_net();
        let edr = Edr::new(net, 130.0);
        // Build a tau-subsequence greedily from the query.
        let total_c: f64 = q.iter().map(|&s| edr.lower_cost(s)).sum();
        let tau = ratio * total_c;
        let mut chosen: Vec<Sym> = Vec::new();
        let mut acc = 0.0;
        for &s in &q {
            if acc >= tau { break; }
            chosen.push(s);
            acc += edr.lower_cost(s);
        }
        prop_assume!(acc >= tau && tau > 0.0);
        // The union neighborhood B(Q').
        let b: std::collections::HashSet<Sym> =
            chosen.iter().flat_map(|&s| edr.neighbors(s)).collect();
        // If P avoids B(Q'), then wed(P, Q) >= tau.
        if p.iter().all(|sym| !b.contains(sym)) {
            let d = wed(&edr, &p, &q);
            prop_assert!(
                d >= tau - 1e-9,
                "filter unsound: wed {d} < tau {tau} though P ∩ B(Q') = ∅"
            );
        }
    }

    /// Engine result sets equal brute force on random Lev stores
    /// (Lemma 1 + Theorem 1 end to end).
    #[test]
    fn engine_equals_brute_force(
        paths in proptest::collection::vec(
            proptest::collection::vec(0u32..10, 1..14), 1..10),
        q in proptest::collection::vec(0u32..10, 1..6),
        tau_i in 1u32..4,
    ) {
        let tau = tau_i as f64;
        let store: TrajectoryStore = paths.iter().cloned().map(Trajectory::untimed).collect();
        let engine = EngineBuilder::new(&Lev, &store, 10).build();
        let got = engine
            .run(&Query::threshold(q.clone(), tau).build().unwrap())
            .unwrap();
        let mut want = Vec::new();
        for (id, t) in store.iter() {
            let p = t.path();
            for s in 0..p.len() {
                for e in s..p.len() {
                    let d = wed(&Lev, &p[s..=e], &q);
                    if d < tau {
                        want.push((id, s, e, d));
                    }
                }
            }
        }
        want.sort_by_key(|a| (a.0, a.1, a.2));
        prop_assert_eq!(got.matches.len(), want.len());
        for (g, w) in got.matches.iter().zip(&want) {
            prop_assert_eq!((g.id, g.start, g.end), (w.0, w.1, w.2));
            prop_assert!((g.dist - w.3).abs() < 1e-9);
        }
    }

    /// MinCand: selections satisfy the constraint and stay within 2× of the
    /// exhaustive optimum.
    #[test]
    fn mincand_constraint_and_ratio(
        cs in proptest::collection::vec(0.1f64..5.0, 1..10),
        ns in proptest::collection::vec(0.0f64..100.0, 1..10),
        frac in 0.1f64..1.0,
    ) {
        let k = cs.len().min(ns.len());
        let items: Vec<Item> = (0..k)
            .map(|pos| Item { pos, c: cs[pos], n: ns[pos] })
            .collect();
        let total: f64 = items.iter().map(|i| i.c).sum();
        let tau = frac * total;
        prop_assume!(tau > 0.0);
        match min_cand(&items, tau) {
            Selection::Chosen(sel) => {
                let c: f64 = sel.iter().map(|&i| items[i].c).sum();
                prop_assert!(c >= tau);
                let (_, opt) = min_cand_exhaustive(&items, tau).unwrap();
                prop_assert!(objective(&items, &sel) <= 2.0 * opt + 1e-9);
            }
            Selection::Infeasible => prop_assert!(total < tau),
        }
    }

    /// Monotonicity: enlarging tau can only add results.
    #[test]
    fn results_monotone_in_tau(
        paths in proptest::collection::vec(
            proptest::collection::vec(0u32..8, 1..12), 1..8),
        q in proptest::collection::vec(0u32..8, 1..5),
    ) {
        let store: TrajectoryStore = paths.iter().cloned().map(Trajectory::untimed).collect();
        let engine = EngineBuilder::new(&Lev, &store, 8).build();
        let small = engine
            .run(&Query::threshold(q.clone(), 1.0).build().unwrap())
            .unwrap();
        let large = engine
            .run(&Query::threshold(q.clone(), 2.5).build().unwrap())
            .unwrap();
        let large_keys: std::collections::HashSet<_> =
            large.matches.iter().map(|m| (m.id, m.start, m.end)).collect();
        for m in &small.matches {
            prop_assert!(large_keys.contains(&(m.id, m.start, m.end)));
        }
    }
}
