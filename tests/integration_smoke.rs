//! Fast end-to-end smoke test of the filter→verify pipeline.
//!
//! Builds a tiny synthetic road network and trajectory store, runs threshold
//! queries through the full `SearchEngine` stack (MinCand plan → inverted
//! index → verification) under every verification mode, and cross-checks the
//! result set against the `baselines::naive` cubic oracle. This is the CI
//! canary that exercises the whole engine, not just per-crate unit
//! properties; it must stay fast (one tiny network, a handful of queries).

use baselines::naive_search;
use rnet::{CityParams, NetworkKind};
use std::sync::Arc;
use traj::TripConfig;
use trajsearch_core::{EngineBuilder, MatchResult, Query, VerifyMode};
use wed::models::{Edr, Lev};

fn keys(ms: &[MatchResult]) -> Vec<(u32, usize, usize)> {
    ms.iter().map(|m| (m.id, m.start, m.end)).collect()
}

#[test]
fn engine_matches_naive_oracle_on_tiny_city() {
    let net = Arc::new(CityParams::tiny(NetworkKind::City).seed(99).generate());
    let store = TripConfig::default()
        .count(40)
        .lengths(6, 18)
        .seed(17)
        .generate(&net);
    assert!(store.len() >= 30, "trip generator produced too few trips");

    // Queries: subpaths of stored trips (guaranteed non-empty result sets)
    // plus one query that is nowhere in the store verbatim.
    let mut queries: Vec<Vec<u32>> = (0..4)
        .map(|i| {
            let t = store.get(i * 7);
            let len = t.len().min(6);
            t.subpath(0, len - 1).to_vec()
        })
        .collect();
    queries.push(vec![0, 2, 4, 6, 8]);

    let lev_engine = EngineBuilder::new(&Lev, &store, net.num_vertices()).build();
    let edr = Edr::new(net.clone(), 120.0);
    let edr_engine = EngineBuilder::new(&edr, &store, net.num_vertices()).build();

    let mut total_matches = 0usize;
    for q in &queries {
        for tau in [1.0, 2.5] {
            let expected = keys(&naive_search(&Lev, &store, q, tau));
            for mode in [VerifyMode::Trie, VerifyMode::Local, VerifyMode::Sw] {
                let out = lev_engine
                    .run(
                        &Query::threshold(q.clone(), tau)
                            .verify(mode)
                            .build()
                            .unwrap(),
                    )
                    .unwrap();
                assert_eq!(
                    keys(&out.matches),
                    expected,
                    "Lev/{mode:?} diverges from the naive oracle (q={q:?}, tau={tau})"
                );
            }
            total_matches += expected.len();

            let expected_edr = keys(&naive_search(&edr, &store, q, tau));
            let out = edr_engine
                .run(&Query::threshold(q.clone(), tau).build().unwrap())
                .unwrap();
            assert_eq!(
                keys(&out.matches),
                expected_edr,
                "EDR diverges from the naive oracle (q={q:?}, tau={tau})"
            );
        }
    }
    // The subpath queries must actually hit something, or this test is
    // exercising nothing.
    assert!(
        total_matches > 0,
        "smoke workload produced zero matches; queries are not exercising the pipeline"
    );
}
