//! Cross-method consistency: every method in the repository — the OSF
//! engine under all three verification modes, DISON, Torch, q-gram,
//! Plain-SW and the naive oracle — must return the *identical* Definition 3
//! result set for every WED instance, on realistic road-network workloads.

use baselines::{naive_search, plain_sw_search, Dison, Torch};
use trajsearch_bench::data::{Dataset, FuncKind};
use trajsearch_core::{EngineBuilder, Query, VerifyMode};

fn keys(ms: &[trajsearch_core::MatchResult]) -> Vec<(u32, usize, usize)> {
    ms.iter().map(|m| (m.id, m.start, m.end)).collect()
}

fn check_function(d: &Dataset, func: FuncKind, qlen: usize, ratios: &[f64]) {
    let model = d.model(func);
    let (store, alphabet) = d.store_for(func);
    let engine = EngineBuilder::new(&*model, store, alphabet).build();
    let dison = Dison::new(&*model, store, alphabet, VerifyMode::Trie);
    let torch = Torch::new(&*model, store, alphabet, VerifyMode::Trie);

    for (qi, q) in d.sample_queries(func, qlen, 4, 777).iter().enumerate() {
        for &ratio in ratios {
            let tau = d.tau_for(&*model, q, ratio);
            let reference = {
                let (m, _) = plain_sw_search(&&*model, store, q, tau);
                keys(&m)
            };
            for mode in [VerifyMode::Trie, VerifyMode::Local, VerifyMode::Sw] {
                let out = engine
                    .run(
                        &Query::threshold(q.clone(), tau)
                            .verify(mode)
                            .build()
                            .unwrap(),
                    )
                    .unwrap();
                assert_eq!(
                    keys(&out.matches),
                    reference,
                    "OSF {mode:?} differs from Plain-SW ({}, q#{qi}, r={ratio})",
                    func.name()
                );
                // Reported distances are exact.
                for m in &out.matches {
                    let p = store.get(m.id).path();
                    let direct = wed::wed(&&*model, &p[m.start..=m.end], q);
                    assert!(
                        (m.dist - direct).abs() < 1e-6,
                        "{}: reported {} but wed is {direct}",
                        func.name(),
                        m.dist
                    );
                }
            }
            let (dm, _) = dison.search(q, tau);
            assert_eq!(
                keys(&dm),
                reference,
                "DISON differs ({}, r={ratio})",
                func.name()
            );
            let (tm, _) = torch.search(q, tau);
            assert_eq!(
                keys(&tm),
                reference,
                "Torch differs ({}, r={ratio})",
                func.name()
            );
        }
    }
}

#[test]
fn all_wed_instances_agree_across_methods() {
    let d = Dataset::test_tiny();
    for func in FuncKind::ALL {
        check_function(&d, func, 6, &[0.15, 0.35]);
    }
}

#[test]
fn engine_equals_naive_oracle_on_small_store() {
    // The cubic oracle is the ground truth; run it on a reduced store.
    let d = Dataset::test_tiny();
    let small = d.store.prefix(15);
    for func in [FuncKind::Lev, FuncKind::Edr, FuncKind::Erp] {
        let model = d.model(func);
        let engine = EngineBuilder::new(&*model, &small, d.net.num_vertices()).build();
        for q in d.sample_queries(func, 5, 3, 888) {
            let tau = d.tau_for(&*model, &q, 0.3);
            let got = engine
                .run(&Query::threshold(q.clone(), tau).build().unwrap())
                .unwrap();
            let want = naive_search(&&*model, &small, &q, tau);
            assert_eq!(keys(&got.matches), keys(&want), "{} vs naive", func.name());
            for (g, w) in got.matches.iter().zip(&want) {
                assert!((g.dist - w.dist).abs() < 1e-6);
            }
        }
    }
}

#[test]
fn qgram_matches_engine_for_unit_cost_models() {
    let d = Dataset::test_tiny();
    for func in [FuncKind::Lev, FuncKind::Edr] {
        let model = d.model(func);
        let (store, alphabet) = d.store_for(func);
        let engine = EngineBuilder::new(&*model, store, alphabet).build();
        let qg = baselines::QGramIndex::new(&*model, store, 3);
        for q in d.sample_queries(func, 8, 3, 999) {
            let tau = d.tau_for(&*model, &q, 0.2);
            let got = qg.search(&q, tau);
            let want = engine
                .run(&Query::threshold(q.clone(), tau).build().unwrap())
                .unwrap();
            assert_eq!(
                keys(&got.0),
                keys(&want.matches),
                "q-gram vs engine ({})",
                func.name()
            );
        }
    }
}
