//! End-to-end engine behavior: planted matches are found, thresholds are
//! strict, temporal strategies agree, fallback stays exact, and statistics
//! are coherent.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use rnet::{CityParams, NetworkKind};
use std::sync::Arc;
use traj::generator::random_walk;
use traj::{Trajectory, TrajectoryStore, TripConfig};
use trajsearch_bench::data::{Dataset, FuncKind};
use trajsearch_core::{EngineBuilder, Query, TemporalConstraint, TimeInterval, VerifyMode};
use wed::models::Lev;

/// Plants noisy copies of a query inside longer trajectories and checks the
/// engine finds every planted occurrence at the right positions.
#[test]
fn planted_occurrences_are_found() {
    let net = Arc::new(CityParams::small(NetworkKind::City).seed(5).generate());
    let mut rng = ChaCha8Rng::seed_from_u64(17);
    let motif = random_walk(&net, &mut rng, 100, 12);
    assert_eq!(motif.len(), 12);

    let mut store = TrajectoryStore::new();
    let mut planted: Vec<(u32, usize)> = Vec::new();
    for i in 0..30 {
        // Prefix walk that happens to end where the motif starts.
        let mut path = random_walk(&net, &mut rng, motif[0], (i % 7) + 2);
        // Walk back to motif start if the walk drifted (cheap trick: start
        // the trajectory at the motif head instead).
        if *path.last().unwrap() != motif[0] {
            path = vec![motif[0]];
        }
        let at = path.len() - 1;
        path.extend_from_slice(&motif[1..]);
        let suffix_start = *path.last().unwrap();
        let suffix = random_walk(&net, &mut rng, suffix_start, 6);
        path.extend_from_slice(&suffix[1..]);
        let id = store.push(Trajectory::untimed(path));
        planted.push((id, at));
    }
    // Distractors.
    for _ in 0..50 {
        let start = rng.gen_range(0..net.num_vertices() as u32);
        store.push(Trajectory::untimed(random_walk(&net, &mut rng, start, 25)));
    }

    let engine = EngineBuilder::new(&Lev, &store, net.num_vertices()).build();
    // exact occurrences only
    let out = engine
        .run(&Query::threshold(motif.clone(), 1.0).build().unwrap())
        .unwrap();
    for (id, at) in &planted {
        assert!(
            out.matches
                .iter()
                .any(|m| m.id == *id && m.start == *at && m.dist == 0.0),
            "planted motif in trajectory {id} at {at} not found"
        );
    }
}

#[test]
fn threshold_is_strict_and_monotone() {
    let d = Dataset::test_tiny();
    let model = d.model(FuncKind::Edr);
    let (store, alphabet) = d.store_for(FuncKind::Edr);
    let engine = EngineBuilder::new(&*model, store, alphabet).build();
    let q = d.sample_queries(FuncKind::Edr, 8, 1, 3).pop().unwrap();
    let mut last = 0usize;
    for ratio in [0.05, 0.1, 0.2, 0.4] {
        let tau = d.tau_for(&*model, &q, ratio);
        let out = engine
            .run(&Query::threshold(q.clone(), tau).build().unwrap())
            .unwrap();
        assert!(out.matches.len() >= last, "results must grow with tau");
        for m in &out.matches {
            assert!(
                m.dist < tau,
                "strict inequality violated: {} >= {tau}",
                m.dist
            );
        }
        last = out.matches.len();
    }
}

#[test]
fn temporal_strategies_agree_and_prune() {
    let net = Arc::new(CityParams::small(NetworkKind::City).seed(8).generate());
    let store = TripConfig::default()
        .count(300)
        .lengths(10, 40)
        .seed(21)
        .generate(&net);
    let engine = EngineBuilder::new(&Lev, &store, net.num_vertices()).build();
    let q = store.get(5).subpath(2, 9).to_vec();

    let (mut tmin, mut tmax) = (f64::INFINITY, f64::NEG_INFINITY);
    for (_, t) in store.iter() {
        tmin = tmin.min(t.departure());
        tmax = tmax.max(t.arrival());
    }
    for frac in [0.05, 0.25, 1.0] {
        let c = TemporalConstraint::overlaps(TimeInterval::new(tmin, tmin + frac * (tmax - tmin)));
        let tf = engine
            .run(
                &Query::threshold(q.clone(), 2.0)
                    .verify(VerifyMode::Trie)
                    .temporal(c)
                    .temporal_filter(true)
                    .build()
                    .unwrap(),
            )
            .unwrap();
        let no_tf = engine
            .run(
                &Query::threshold(q.clone(), 2.0)
                    .verify(VerifyMode::Trie)
                    .temporal(c)
                    .temporal_filter(false)
                    .build()
                    .unwrap(),
            )
            .unwrap();
        assert_eq!(
            tf.matches, no_tf.matches,
            "TF and no-TF must agree at frac={frac}"
        );
        assert!(tf.stats.candidates_after_temporal <= no_tf.stats.candidates_after_temporal);
        // Every reported span satisfies the constraint.
        for m in &tf.matches {
            let t = store.get(m.id);
            assert!(c.accepts(t.times()[m.start], t.times()[m.end]));
        }
    }
}

#[test]
fn within_predicate_is_stricter_than_overlap() {
    let net = Arc::new(CityParams::small(NetworkKind::City).seed(9).generate());
    let store = TripConfig::default()
        .count(200)
        .lengths(10, 40)
        .seed(22)
        .generate(&net);
    let engine = EngineBuilder::new(&Lev, &store, net.num_vertices()).build();
    let q = store.get(3).subpath(1, 8).to_vec();
    let interval = TimeInterval::new(0.0, 43_200.0); // first half day
    let overlap = engine
        .run(
            &Query::threshold(q.clone(), 2.0)
                .verify(VerifyMode::Trie)
                .temporal(TemporalConstraint::overlaps(interval))
                .temporal_filter(true)
                .build()
                .unwrap(),
        )
        .unwrap();
    let within = engine
        .run(
            &Query::threshold(q.clone(), 2.0)
                .verify(VerifyMode::Trie)
                .temporal(TemporalConstraint::within(interval))
                .temporal_filter(true)
                .build()
                .unwrap(),
        )
        .unwrap();
    assert!(within.matches.len() <= overlap.matches.len());
    for m in &within.matches {
        assert!(overlap.matches.contains(m), "within ⊆ overlap violated");
    }
}

/// The §4.3 binary-search temporal postings must return exactly the same
/// result set as plain candidate generation, with no more candidates.
#[test]
fn temporal_postings_extension_is_equivalent() {
    let net = Arc::new(CityParams::small(NetworkKind::City).seed(14).generate());
    let store = TripConfig::default()
        .count(400)
        .lengths(10, 40)
        .seed(33)
        .generate(&net);
    use trajsearch_core::PostingSource;
    let plain = EngineBuilder::new(&Lev, &store, net.num_vertices()).build();
    let temporal = EngineBuilder::new(&Lev, &store, net.num_vertices())
        .temporal_postings(true)
        .build();
    assert!(temporal.index().has_temporal_postings());

    let (mut tmin, mut tmax) = (f64::INFINITY, f64::NEG_INFINITY);
    for (_, t) in store.iter() {
        tmin = tmin.min(t.departure());
        tmax = tmax.max(t.arrival());
    }
    for (qi, frac) in [(2u32, 0.02), (9, 0.1), (23, 0.5)] {
        let q = store.get(qi).subpath(1, 9).to_vec();
        let c = TemporalConstraint::overlaps(TimeInterval::new(tmin, tmin + frac * (tmax - tmin)));
        let base = plain
            .run(
                &Query::threshold(q.clone(), 2.0)
                    .verify(VerifyMode::Trie)
                    .temporal(c)
                    .temporal_filter(true)
                    .build()
                    .unwrap(),
            )
            .unwrap();
        let fast = temporal
            .run(
                &Query::threshold(q.clone(), 2.0)
                    .verify(VerifyMode::Trie)
                    .temporal(c)
                    // already pruned at generation, so no TF pass
                    .temporal_postings(true)
                    .build()
                    .unwrap(),
            )
            .unwrap();
        assert_eq!(base.matches, fast.matches, "frac={frac}");
        assert!(
            fast.stats.candidates <= base.stats.candidates,
            "binary-searched generation must not produce more candidates"
        );
    }
}

#[test]
fn top_k_agrees_with_exhaustive_ranking() {
    let d = Dataset::test_tiny();
    let model = d.model(FuncKind::Edr);
    let (store, alphabet) = d.store_for(FuncKind::Edr);
    let engine = EngineBuilder::new(&*model, store, alphabet).build();
    let q = d.sample_queries(FuncKind::Edr, 8, 1, 6).pop().unwrap();
    let max_tau = q.len() as f64 + 1.0;
    let k = 5;
    let top = engine
        .run(&Query::top_k(q.clone(), k, 0.5, max_tau).build().unwrap())
        .unwrap()
        .ranked();
    assert!(top.len() <= k);
    // Oracle: best distance per trajectory by exhaustive threshold search.
    let all = engine
        .run(&Query::threshold(q.clone(), max_tau).build().unwrap())
        .unwrap();
    let best = trajsearch_core::per_trajectory_best(&all.matches);
    let mut oracle: Vec<f64> = best.values().map(|m| m.dist).collect();
    oracle.sort_by(f64::total_cmp);
    for (i, entry) in top.iter().enumerate() {
        assert!(
            (entry.best.dist - oracle[i]).abs() < 1e-9,
            "rank {i}: {} vs oracle {}",
            entry.best.dist,
            oracle[i]
        );
        assert_eq!(entry.rank, i);
    }
}

#[test]
fn fallback_scan_equals_filtered_search_semantics() {
    // ERP with a huge tau forces FilterInfeasible; the fallback must return
    // the same set a plain scan does.
    let d = Dataset::test_tiny();
    let model = d.model(FuncKind::Erp);
    let small = d.store.prefix(10);
    let engine = EngineBuilder::new(&*model, &small, d.net.num_vertices()).build();
    let q = d.sample_queries(FuncKind::Erp, 5, 1, 4).pop().unwrap();
    let tau = 1e12;
    let out = engine
        .run(&Query::threshold(q.clone(), tau).build().unwrap())
        .unwrap();
    assert!(out.stats.fallback);
    let (want, _) = baselines::plain_sw_search(&&*model, &small, &q, tau);
    assert_eq!(out.matches.len(), want.len());
}

#[test]
fn stats_are_internally_consistent() {
    let d = Dataset::test_tiny();
    let model = d.model(FuncKind::Edr);
    let (store, alphabet) = d.store_for(FuncKind::Edr);
    let engine = EngineBuilder::new(&*model, store, alphabet).build();
    for q in d.sample_queries(FuncKind::Edr, 10, 5, 5) {
        let tau = d.tau_for(&*model, &q, 0.2);
        let out = engine
            .run(&Query::threshold(q.clone(), tau).build().unwrap())
            .unwrap();
        let s = &out.stats;
        assert_eq!(s.results, out.matches.len());
        assert!(s.stepdp_calls <= s.columns_passed);
        assert!(s.columns_passed <= s.sw_columns);
        assert!(s.tsubseq_len >= 1);
        assert!(s.candidates >= s.candidates_after_temporal);
        assert!(s.upr() <= 1.0 && s.cmr() <= 1.0);
    }
}
