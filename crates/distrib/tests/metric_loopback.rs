//! Remote-loopback leg of the metric equivalence matrix (the in-process
//! Single/Sharded legs live in `crates/core/tests/metric_equivalence.rs`,
//! which cannot open sockets) plus the capability negotiation a cluster
//! performs at `hello`:
//!
//! * **Equivalence** — DTW / LCSS(ε) / Fréchet / WED queries answered
//!   through [`RemoteShards`] over real loopback shard servers are
//!   byte-identical (matches and deterministic stats, `verify_cost`
//!   included) to the in-process `Single` layout.
//! * **Negotiation** — every shard server advertising the full metric
//!   list yields a pool that supports them all; one *legacy* server
//!   (`advertise_metrics: false`, the pre-minor-2 hello shape) downgrades
//!   the intersection to WED-only, and the coordinator then rejects a
//!   non-WED query with the typed [`QueryError::UnsupportedMetric`] —
//!   never a protocol failure.

use std::thread;
use traj::TrajectoryStore;
use trajsearch_core::{
    Deadline, EngineBuilder, IndexShard, Metric, Parallelism, Query, QueryError,
};
use trajsearch_distrib::{testdata, Coordinator, RemoteShards, ShardEndpoint};
use trajsearch_serve::{
    Handled, IndexShardSource, QueryHandler, Server, ServerConfig, ServerHandle, SUPPORTED_METRICS,
};
use wed::models::Lev;
use wed::Sym;

const ALPHABET: usize = 16;
const EPOCH: u64 = 3;

/// Shuts every server down when dropped, so a failing assertion inside the
/// `thread::scope` unwinds into a clean exit instead of a hang.
struct ShutdownOnDrop(Vec<ServerHandle>);

impl Drop for ShutdownOnDrop {
    fn drop(&mut self) {
        for handle in &self.0 {
            handle.shutdown();
        }
    }
}

/// Runs `body` against in-process shard servers on loopback sockets, one
/// per entry of `advertise` (which also sets each server's
/// `advertise_metrics` flag — `false` simulates a pre-metrics build).
fn with_shard_servers(
    store: &TrajectoryStore,
    advertise: &[bool],
    body: impl FnOnce(Vec<ShardEndpoint>),
) {
    let n = advertise.len();
    let shards: Vec<IndexShard> = (0..n)
        .map(|k| IndexShard::build(store, ALPHABET, k, n))
        .collect();
    let sources: Vec<IndexShardSource<'_>> = shards
        .iter()
        .map(|shard| IndexShardSource::new(shard, EPOCH))
        .collect();
    let servers: Vec<Server> = advertise
        .iter()
        .map(|&advertise_metrics| {
            Server::bind(ServerConfig {
                advertise_metrics,
                ..ServerConfig::default()
            })
            .expect("bind shard server")
        })
        .collect();
    let endpoints: Vec<ShardEndpoint> = servers
        .iter()
        .map(|s| ShardEndpoint::new(s.handle().local_addr().to_string()))
        .collect();
    let handles: Vec<ServerHandle> = servers.iter().map(|s| s.handle()).collect();
    thread::scope(|scope| {
        let guard = ShutdownOnDrop(handles);
        let serving: Vec<_> = servers
            .into_iter()
            .zip(&sources)
            .map(|(server, source)| scope.spawn(move || server.serve_shard(source)))
            .collect();
        body(endpoints);
        drop(guard);
        for thread in serving {
            thread.join().expect("serve thread").expect("serve ok");
        }
    });
}

/// A pattern that occurs verbatim in the store, so τ-ball matches exist
/// under every metric and the equivalence is non-vacuous.
fn embedded_pattern(store: &TrajectoryStore) -> Vec<Sym> {
    store.get(0).path()[2..6].to_vec()
}

#[test]
fn metric_queries_over_remote_shards_match_in_process() {
    let store = testdata::store(40, 12, 11, ALPHABET);
    with_shard_servers(&store, &[true, true], |endpoints| {
        let remote = RemoteShards::connect(&endpoints).expect("connect cluster");
        for metric in SUPPORTED_METRICS {
            assert!(
                remote.supports_metric(metric),
                "full-capability cluster advertises {metric}"
            );
        }
        let remote_engine = EngineBuilder::new(Lev, &store, ALPHABET).build_with(remote);
        let single = EngineBuilder::new(Lev, &store, ALPHABET).build();

        let pattern = embedded_pattern(&store);
        for metric in [
            Metric::Wed,
            Metric::Dtw,
            Metric::Lcss { eps: 0.0 },
            Metric::Frechet,
        ] {
            for parallelism in [Parallelism::Sequential, Parallelism::InQuery(2)] {
                let query = Query::threshold(pattern.clone(), 2.0)
                    .metric(metric)
                    .parallelism(parallelism)
                    .build()
                    .unwrap();
                let want = single.run(&query).expect("single run");
                assert!(
                    !want.matches.is_empty(),
                    "embedded pattern must match under {metric:?}"
                );
                let got = remote_engine.run(&query).expect("remote run");
                let ctx = format!("metric={metric:?} par={parallelism:?}");
                assert_eq!(got.matches, want.matches, "{ctx}: matches diverged");
                let (g, w) = (&got.stats, &want.stats);
                assert_eq!(g.candidates, w.candidates, "{ctx}: candidates");
                assert_eq!(
                    g.candidates_deduped, w.candidates_deduped,
                    "{ctx}: candidates_deduped"
                );
                assert_eq!(g.fallback, w.fallback, "{ctx}: fallback");
                assert_eq!(g.verify_cost, w.verify_cost, "{ctx}: verify_cost");
                assert_eq!(g.results, w.results, "{ctx}: results");
            }
        }
        assert_eq!(
            remote_engine.index().degraded_total(),
            0,
            "healthy cluster must not degrade"
        );
    });
}

#[test]
fn coordinator_fronting_a_legacy_shard_rejects_non_wed_typed() {
    let store = testdata::store(24, 10, 5, ALPHABET);
    with_shard_servers(&store, &[true, false], |endpoints| {
        let remote = RemoteShards::connect(&endpoints).expect("connect cluster");
        // One pre-metrics server downgrades the whole pool's intersection.
        assert_eq!(remote.supported_metrics(), ["wed".to_string()]);
        assert!(remote.supports_metric("wed"));
        assert!(!remote.supports_metric("dtw"));

        let coordinator =
            Coordinator::new(EngineBuilder::new(Lev, &store, ALPHABET).build_with(remote));
        let pattern = embedded_pattern(&store);

        let dtw = Query::threshold(pattern.clone(), 2.0)
            .metric(Metric::Dtw)
            .build()
            .unwrap();
        match coordinator.handle(&dtw, Deadline::NONE) {
            Handled::Rejected(QueryError::UnsupportedMetric(name)) => assert_eq!(name, "dtw"),
            other => panic!("expected a typed unsupported-metric rejection, got {other:?}"),
        }

        // WED still flows: the gate narrows capability, not service.
        let wed = Query::threshold(pattern, 2.0).build().unwrap();
        match coordinator.handle(&wed, Deadline::NONE) {
            Handled::Response(response) => assert!(!response.matches.is_empty()),
            other => panic!("expected a clean WED answer, got {other:?}"),
        }
    });
}
