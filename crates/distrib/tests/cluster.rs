//! Multi-process cluster suite: the PR-3 equivalence bar, enforced against
//! *real* shard-server processes on loopback sockets.
//!
//! * **Placement equivalence** — the same mixed workload (threshold in
//!   every verify mode, top-k, temporal filter, temporal postings,
//!   in-query parallel, fallback scan) answered through [`RemoteShards`]
//!   over a 3-process cluster is byte-identical (matches and every
//!   deterministic stats counter) to in-process `Single` and `Sharded(3)`
//!   — and independent of the order the endpoints are listed in.
//! * **Full topology** — 3 shard servers + 1 coordinator process; a
//!   client speaking the ordinary query protocol gets byte-identical
//!   responses to in-process `run_batch`.
//! * **Degradation** — killing one shard process mid-conversation turns
//!   subsequent answers into typed `degraded` replies naming the dead
//!   shard, within the RPC deadline — no hang, no panic — and the
//!   coordinator keeps serving.
//!
//! Every spawned process is killed on drop (guards), so a failing
//! assertion can never leak a cluster.

use std::io::{BufRead, BufReader};
use std::net::SocketAddr;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};
use trajsearch_core::{BatchOptions, EngineBuilder, IndexLayout, Query, Response};
use trajsearch_distrib::{testdata, RemoteShards, ShardEndpoint};
use trajsearch_serve::{Client, QueryOutcome};
use wed::models::Lev;

/// One deterministic dataset shared (by regeneration) with every spawned
/// process; small enough that the fallback-scan queries stay fast.
const TRAJECTORIES: usize = 90;
const LEN: usize = 16;
const SEED: u64 = 7;
const ALPHABET: usize = 32;
const NUM_SHARDS: usize = 3;
const EPOCH: u64 = 1;

/// Kills every child on drop — assertion failures cannot leak processes.
struct ClusterGuard(Vec<Child>);

impl ClusterGuard {
    fn kill_one(&mut self, index: usize) {
        let child = &mut self.0[index];
        child.kill().expect("kill shard");
        child.wait().expect("reap shard");
    }
}

impl Drop for ClusterGuard {
    fn drop(&mut self) {
        for child in &mut self.0 {
            let _ = child.kill();
            let _ = child.wait();
        }
    }
}

/// Spawns a binary and reads its `LISTENING <addr>` line.
fn spawn_listening(mut cmd: Command) -> (Child, SocketAddr) {
    let mut child = cmd
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn cluster process");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut line = String::new();
    BufReader::new(stdout)
        .read_line(&mut line)
        .expect("read LISTENING line");
    let addr = line
        .trim()
        .strip_prefix("LISTENING ")
        .unwrap_or_else(|| panic!("expected LISTENING line, got {line:?}"))
        .parse()
        .expect("parse listen address");
    (child, addr)
}

fn spawn_shard(shard: usize) -> (Child, SocketAddr) {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_shard_server"));
    cmd.args([
        "--shard",
        &shard.to_string(),
        "--num-shards",
        &NUM_SHARDS.to_string(),
        "--trajectories",
        &TRAJECTORIES.to_string(),
        "--len",
        &LEN.to_string(),
        "--seed",
        &SEED.to_string(),
        "--alphabet",
        &ALPHABET.to_string(),
        "--epoch",
        &EPOCH.to_string(),
    ]);
    spawn_listening(cmd)
}

fn spawn_cluster() -> (ClusterGuard, Vec<SocketAddr>) {
    let mut children = Vec::new();
    let mut addrs = Vec::new();
    for shard in 0..NUM_SHARDS {
        let (child, addr) = spawn_shard(shard);
        children.push(child);
        addrs.push(addr);
    }
    (ClusterGuard(children), addrs)
}

fn spawn_coordinator(shard_addrs: &[SocketAddr]) -> (Child, SocketAddr) {
    let shards = shard_addrs
        .iter()
        .map(|a| a.to_string())
        .collect::<Vec<_>>()
        .join(",");
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_coordinator"));
    cmd.args([
        "--shards",
        &shards,
        "--trajectories",
        &TRAJECTORIES.to_string(),
        "--len",
        &LEN.to_string(),
        "--seed",
        &SEED.to_string(),
        "--alphabet",
        &ALPHABET.to_string(),
        "--workers",
        "1",
    ]);
    spawn_listening(cmd)
}

/// Byte-identical in the sense the wire preserves: matches exactly equal
/// and every deterministic stats counter equal (timings excluded).
fn assert_equivalent(got: &Response, want: &Response, ctx: &str) {
    assert_eq!(got.matches, want.matches, "{ctx}: matches diverged");
    let (g, w) = (&got.stats, &want.stats);
    assert_eq!(g.candidates, w.candidates, "{ctx}: candidates");
    assert_eq!(
        g.candidates_after_temporal, w.candidates_after_temporal,
        "{ctx}: candidates_after_temporal"
    );
    assert_eq!(
        g.candidates_deduped, w.candidates_deduped,
        "{ctx}: candidates_deduped"
    );
    assert_eq!(g.tsubseq_len, w.tsubseq_len, "{ctx}: tsubseq_len");
    assert_eq!(g.fallback, w.fallback, "{ctx}: fallback");
    assert_eq!(g.sw_columns, w.sw_columns, "{ctx}: sw_columns");
    assert_eq!(g.verify_cost, w.verify_cost, "{ctx}: verify_cost");
    assert_eq!(g.results, w.results, "{ctx}: results");
}

#[test]
fn remote_shards_match_single_and_sharded_at_any_placement() {
    let store = testdata::store(TRAJECTORIES, LEN, SEED, ALPHABET);
    let workload = testdata::workload(&store, 21, 0xB0B, ALPHABET);

    let single = EngineBuilder::new(Lev, &store, ALPHABET)
        .temporal_postings(true)
        .build();
    let sharded = EngineBuilder::new(Lev, &store, ALPHABET)
        .layout(IndexLayout::Sharded(NUM_SHARDS))
        .temporal_postings(true)
        .build();
    let want_single = single
        .run_batch(&workload, BatchOptions::with_threads(2))
        .expect("single batch");
    let want_sharded = sharded
        .run_batch(&workload, BatchOptions::with_threads(2))
        .expect("sharded batch");
    for (i, (s, h)) in want_single
        .responses
        .iter()
        .zip(&want_sharded.responses)
        .enumerate()
    {
        assert_equivalent(s, h, &format!("single vs sharded, query {i}"));
    }

    let (_guard, addrs) = spawn_cluster();
    // Two placements of the same shards: endpoint order must not matter
    // (shards identify themselves via shard_info).
    for (placement, order) in [("in order", [0, 1, 2]), ("rotated", [2, 0, 1])] {
        let endpoints: Vec<ShardEndpoint> = order
            .iter()
            .map(|&i| ShardEndpoint::new(addrs[i].to_string()))
            .collect();
        let remote = RemoteShards::connect(&endpoints).expect("connect cluster");
        assert_eq!(remote.num_shards(), NUM_SHARDS);
        let engine = EngineBuilder::new(Lev, &store, ALPHABET).build_with(remote);
        let got = engine
            .run_batch(&workload, BatchOptions::with_threads(2))
            .expect("remote batch");
        for (i, (g, w)) in got.responses.iter().zip(&want_single.responses).enumerate() {
            assert_equivalent(g, w, &format!("remote ({placement}) vs single, query {i}"));
        }
        assert_eq!(
            engine.index().degraded_total(),
            0,
            "healthy cluster must not degrade ({placement})"
        );
    }
}

#[test]
fn coordinator_process_answers_byte_identically_over_the_wire() {
    let store = testdata::store(TRAJECTORIES, LEN, SEED, ALPHABET);
    let workload = testdata::workload(&store, 14, 0xC0FFEE, ALPHABET);
    let want = EngineBuilder::new(Lev, &store, ALPHABET)
        .temporal_postings(true)
        .build()
        .run_batch(&workload, BatchOptions::with_threads(2))
        .expect("in-process reference");

    let (mut guard, addrs) = spawn_cluster();
    let (coord, coord_addr) = spawn_coordinator(&addrs);
    guard.0.push(coord);

    let mut client = Client::connect(coord_addr).expect("connect coordinator");
    let outcomes = client.query_batch(&workload).expect("transport ok");
    assert_eq!(outcomes.len(), workload.len());
    for (i, (outcome, want)) in outcomes.iter().zip(&want.responses).enumerate() {
        let got = outcome
            .response()
            .unwrap_or_else(|| panic!("query {i} not answered cleanly: {outcome:?}"));
        assert_equivalent(got, want, &format!("coordinator query {i}"));
    }
    let stats = client.stats().expect("stats over the wire");
    assert_eq!(stats.completed, workload.len() as u64);
    assert_eq!(stats.degraded, 0);
}

#[test]
fn traced_query_stitches_one_timeline_across_coordinator_and_shards() {
    let (mut guard, addrs) = spawn_cluster();
    let (coord, coord_addr) = spawn_coordinator(&addrs);
    guard.0.push(coord);
    let mut client = Client::connect(coord_addr).expect("connect coordinator");

    // Fresh symbols, so the coordinator's caches cannot answer without
    // fanning the postings fetch out to the shard servers.
    const TRACE_ID: u64 = 0xBEEF;
    let query = Query::threshold(vec![3, 4, 5], 1.5).build().unwrap();
    let response = client
        .query_traced(&query, TRACE_ID)
        .expect("traced query over the coordinator");
    assert_eq!(
        response.matches,
        client.query(&query).expect("untraced repeat").matches,
        "tracing must not change the answer"
    );

    // Coordinator-side timeline: queue wait, the engine's phases, and one
    // shard_rpc span per shard the fan-out touched.
    let entries = client.trace(Some(TRACE_ID)).expect("coordinator trace");
    assert_eq!(entries.len(), 1, "one entry per process");
    let coord_entry = &entries[0];
    assert_eq!(coord_entry.trace_id, TRACE_ID);
    let coord_names: Vec<&str> = coord_entry.spans.iter().map(|s| s.name.as_str()).collect();
    for phase in ["queue_wait", "query", "filter", "verify", "shard_rpc"] {
        assert!(
            coord_names.contains(&phase),
            "coordinator timeline missing {phase}: {coord_names:?}"
        );
    }
    let rpc_shards: std::collections::BTreeSet<u64> = coord_entry
        .spans
        .iter()
        .filter(|s| s.name == "shard_rpc")
        .map(|s| s.detail)
        .collect();
    assert_eq!(
        rpc_shards,
        (0..NUM_SHARDS as u64).collect(),
        "the fan-out bracketed every shard"
    );

    // Shard-server side: each process retained `rpc_serve` spans under the
    // SAME trace id — the cross-process half of the stitched timeline.
    for (k, addr) in addrs.iter().enumerate() {
        let mut shard_client = Client::connect(*addr).expect("connect shard");
        let entries = shard_client.trace(Some(TRACE_ID)).expect("shard trace");
        assert_eq!(entries.len(), 1, "shard {k} retained the trace");
        let entry = &entries[0];
        assert_eq!(entry.trace_id, TRACE_ID, "shard {k} shares the trace id");
        assert!(
            entry.spans.iter().all(|s| s.name == "rpc_serve"),
            "shard-side spans are serve intervals: {:?}",
            entry.spans
        );
        assert!(
            !entry.spans.is_empty(),
            "shard {k} served at least one traced RPC"
        );
    }

    // An untraced query leaves no new timeline anywhere.
    let other = Query::threshold(vec![7, 8], 1.0).build().unwrap();
    client.query(&other).expect("untraced query");
    assert!(
        client.trace(Some(TRACE_ID + 1)).expect("empty").is_empty(),
        "no spurious traces"
    );
}

#[test]
fn killing_a_shard_yields_typed_degraded_replies_and_service_survives() {
    let (mut guard, addrs) = spawn_cluster();
    let (coord, coord_addr) = spawn_coordinator(&addrs);
    guard.0.push(coord);
    let mut client = Client::connect(coord_addr).expect("connect coordinator");

    // Healthy first: a clean answer proves the conversation works.
    let probe = |sym: u32| {
        Query::threshold(vec![sym, sym + 1, sym + 2], 1.5)
            .build()
            .unwrap()
    };
    let healthy = client
        .query_batch(&[probe(1)])
        .expect("transport ok")
        .remove(0);
    assert!(healthy.is_answered(), "healthy cluster: {healthy:?}");

    // Kill shard 1 (guard index 1), then query with *fresh* symbols so the
    // coordinator's caches cannot answer without touching the dead shard.
    guard.kill_one(1);
    let t0 = Instant::now();
    let outcome = client
        .query_batch(&[probe(9)])
        .expect("transport stays healthy")
        .remove(0);
    let elapsed = t0.elapsed();
    match &outcome {
        QueryOutcome::Degraded { degraded, response } => {
            assert!(
                degraded.missing_shards.contains(&1),
                "must name the dead shard: {degraded}"
            );
            assert!(
                response.is_some(),
                "the partial answer rides along with the degraded envelope"
            );
        }
        other => panic!("expected a typed degraded reply, got {other:?}"),
    }
    // Bounded by the RPC deadline (10s default) with generous headroom —
    // a SIGKILLed peer fails the read immediately, not at the deadline.
    assert!(
        elapsed < Duration::from_secs(30),
        "degraded reply took {elapsed:?}"
    );

    // The coordinator keeps serving: later queries still get answers
    // (degraded while the shard stays dead, but typed and prompt).
    let later = client
        .query_batch(&[probe(12)])
        .expect("transport ok")
        .remove(0);
    assert!(
        later.is_degraded(),
        "shard still dead, replies stay typed: {later:?}"
    );
    let stats = client.stats().expect("stats");
    assert!(stats.degraded >= 2, "got {}", stats.degraded);
    assert_eq!(stats.completed, 1);
}
