//! # trajsearch-distrib — distributed shards over the serve wire protocol
//!
//! The sharded index ([`ShardedIndex`](trajsearch_core::ShardedIndex))
//! partitions postings by `traj_id % n` inside one process; this crate
//! moves the shards into *separate processes* without changing a single
//! result byte:
//!
//! * **Shard servers** hold one
//!   [`IndexShard`](trajsearch_core::IndexShard) each and answer the
//!   `shard_*` RPCs via
//!   [`Server::serve_shard`](trajsearch_serve::Server::serve_shard)
//!   (`trajsearch-serve` owns the wire protocol and the role).
//! * [`RemoteShards`] is a [`PostingSource`](trajsearch_core::PostingSource)
//!   that fans postings fetches out over pooled connections to those
//!   servers — pipelined (one round trip per fetch, not one per shard),
//!   epoch-checked, deadline-bounded, with a degraded log for shards that
//!   stop answering.
//! * A [`Coordinator`] runs the full engine (store, model, MinCand,
//!   verification) locally over `RemoteShards` and serves the ordinary
//!   query protocol, answering with typed *degraded* replies whenever a
//!   shard went missing mid-query.
//!
//! The placement-equivalence guarantee: for the same store, a query
//! answered through `RemoteShards` over n shard servers is **byte-identical**
//! (matches and deterministic stats) to `IndexLayout::Sharded(n)` and
//! `IndexLayout::Single` in one process — enforced against a real
//! multi-process cluster by `tests/cluster.rs`.
//!
//! The `shard_server` and `coordinator` binaries in this crate wrap the
//! two roles for test clusters and demos; both print `LISTENING <addr>`
//! once bound (ephemeral ports welcome) and serve until killed.

pub mod coordinator;
pub mod remote;
pub mod testdata;

pub use coordinator::Coordinator;
pub use remote::{DistribError, RemoteOptions, RemoteShards, ShardEndpoint, TraceScope};
