//! The coordinator role: the full search engine (store, model, MinCand
//! plan, verification) running locally, with *only the postings* fetched
//! from remote shard servers through [`RemoteShards`].
//!
//! A [`Coordinator`] implements
//! [`QueryHandler`], so
//! [`Server::serve`](trajsearch_serve::Server::serve) turns it into a
//! network front-end: clients speak the ordinary query protocol and never
//! see the shard RPCs behind it. Each query is bracketed with a degraded
//! mark — if any shard failed to answer while the query ran, the reply is
//! a typed `degraded` envelope naming the missing shards (carrying the
//! partial answer), never a silent partial result.

use crate::remote::{DistribError, RemoteShards, ShardEndpoint};
use std::sync::Arc;
use traj::TrajectoryStore;
use trajsearch_core::{
    Deadline, EngineBuilder, PostingSource, Query, QueryError, RemoteSpec, SearchEngine, TraceSink,
    Tracer,
};
use trajsearch_serve::{Handled, QueryHandler};
use wed::{Sym, WedInstance};

/// A [`SearchEngine`] over [`RemoteShards`] plus the degraded-reply
/// bookkeeping; build one with [`Coordinator::connect`] (or wrap an
/// engine you built yourself with [`Coordinator::new`]).
pub struct Coordinator<'a, M: WedInstance> {
    engine: SearchEngine<'a, M, RemoteShards>,
}

impl<'a, M: WedInstance + Sync> Coordinator<'a, M> {
    /// Connects a [`RemoteShards`] from `spec` and wires it under an
    /// engine over `store` — the networked counterpart of
    /// [`EngineBuilder::build`] with
    /// [`IndexLayout::Remote`](trajsearch_core::IndexLayout::Remote).
    /// The store must be the same one the shard servers indexed.
    pub fn connect(
        model: M,
        store: &'a TrajectoryStore,
        alphabet_size: usize,
        spec: &RemoteSpec,
    ) -> Result<Coordinator<'a, M>, DistribError> {
        let endpoints: Vec<ShardEndpoint> = spec.endpoints.iter().map(ShardEndpoint::new).collect();
        let remote = RemoteShards::connect(&endpoints)?;
        if remote.num_trajectories() != store.len() {
            return Err(DistribError::Topology(format!(
                "shards index {} trajectories, the coordinator's store holds {}",
                remote.num_trajectories(),
                store.len()
            )));
        }
        Ok(Coordinator::new(
            EngineBuilder::new(model, store, alphabet_size).build_with(remote),
        ))
    }

    /// As [`connect`](Coordinator::connect), with tracing wired in: the
    /// [`RemoteShards`] records its per-shard `shard_rpc` spans into
    /// `sink`. Pass the serving [`Server`](trajsearch_serve::Server)'s sink
    /// (via [`ServerConfig::sink`](trajsearch_serve::ServerConfig)) so a
    /// traced query's engine phases, fan-out spans and queue wait land in
    /// one ring under one trace id.
    pub fn connect_traced(
        model: M,
        store: &'a TrajectoryStore,
        alphabet_size: usize,
        spec: &RemoteSpec,
        sink: Arc<TraceSink>,
    ) -> Result<Coordinator<'a, M>, DistribError> {
        let mut coordinator = Coordinator::connect(model, store, alphabet_size, spec)?;
        coordinator.engine.index_mut().set_trace_sink(sink);
        Ok(coordinator)
    }

    pub fn new(engine: SearchEngine<'a, M, RemoteShards>) -> Coordinator<'a, M> {
        Coordinator { engine }
    }

    pub fn engine(&self) -> &SearchEngine<'a, M, RemoteShards> {
        &self.engine
    }

    pub fn remote(&self) -> &RemoteShards {
        self.engine.index()
    }
}

impl<M: WedInstance + Sync> QueryHandler for Coordinator<'_, M> {
    fn handle(&self, query: &Query, deadline: Deadline) -> Handled {
        self.handle_traced(query, deadline, Tracer::disabled())
    }

    fn handle_traced(&self, query: &Query, deadline: Deadline, tracer: Tracer<'_>) -> Handled {
        let remote = self.engine.index();
        // Capability gate first: a cluster fronting a pre-metrics shard
        // server negotiated WED-only at connect, and a metric the pool
        // cannot honor is a typed rejection — not a mid-query protocol
        // failure.
        let metric = query.metric().name();
        if !remote.supports_metric(metric) {
            return Handled::Rejected(QueryError::UnsupportedMetric(metric.to_string()));
        }
        let mark = remote.degraded_mark();
        // Park the trace id where the fan-outs this query triggers can see
        // it: each stamps the id onto its shard RPC frames (so shard
        // servers record their serve-side spans under the same trace) and
        // records a coordinator-side `shard_rpc` span. The guard restores
        // the previous context even on panic.
        let _scope = remote.trace_scope(tracer.trace_id().unwrap_or(0));
        // Coalesce the pattern's frequency fetches into one RPC per shard
        // before the MinCand plan asks for them one by one.
        let syms: Vec<Sym> = query.pattern().to_vec();
        remote.prime_freqs(&syms);
        match self
            .engine
            .run_with_deadline_traced(query, deadline, tracer)
        {
            Ok(response) => match remote.degraded_since(mark) {
                Some(degraded) => Handled::Degraded {
                    degraded,
                    response: Some(response),
                },
                None => Handled::Response(response),
            },
            Err(e) => Handled::Rejected(e),
        }
    }
}
