//! [`RemoteShards`]: the [`PostingSource`] contract answered by remote
//! shard servers over the serve wire protocol.
//!
//! One `RemoteShards` holds a pooled [`Client`] connection per shard server
//! and fans every postings fetch out across them, reassembling the replies
//! in **shard-major order** — exactly the iteration order of the in-process
//! [`ShardedIndex`](trajsearch_core::ShardedIndex), so a search over
//! `RemoteShards` is byte-identical to one over `Sharded(n)` at any
//! placement of the shards onto processes.
//!
//! The `PostingSource` trait is sync and infallible; the network is
//! neither. The gap is bridged three ways:
//!
//! * **Prefetch** — the per-trajectory span table is paged down once at
//!   connect time ([`RemoteShards::connect`]), so `span(id)` never touches
//!   the network.
//! * **Caching** — postings, frequencies and departing-by prefixes are
//!   cached after the first fetch. Only *complete* results (every shard
//!   answered) enter the cache, so a degraded fetch is retried on the next
//!   query rather than frozen in.
//! * **Degradation** — a shard that fails to answer (transport error,
//!   epoch mismatch, expired RPC deadline) contributes nothing to that
//!   fetch and the failure is recorded in a degraded log. A coordinator
//!   brackets each query with [`degraded_mark`](RemoteShards::degraded_mark)
//!   / [`degraded_since`](RemoteShards::degraded_since) and turns a
//!   non-empty window into a typed degraded reply
//!   ([`DegradedInfo`]) instead of passing
//!   off a partial answer as complete.
//!
//! Fan-outs are pipelined: requests are written to every live shard before
//! any reply is read, so a k-shard fetch costs one round trip, not k. Data
//! RPCs echo each shard's build **epoch** (learned from `shard_info` at
//! connect) and carry the configured RPC deadline, so a restarted shard or
//! an overloaded one degrades loudly instead of answering from the wrong
//! index build or stalling the coordinator.

use std::cell::Cell;
use std::collections::HashMap;
use std::fmt;
use std::io;
use std::net::ToSocketAddrs;
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};
use traj::TrajId;
use trajsearch_core::{Posting, PostingSource, TraceSink};
use trajsearch_serve::{Client, ClientError, DegradedInfo, Reply, Request, ShardInfo};
use wed::Sym;

thread_local! {
    /// The trace id of the query currently executing on this thread, or 0.
    ///
    /// [`PostingSource`] is a sync trait with no room for per-call context,
    /// so the coordinator parks the active query's trace id here (via
    /// [`RemoteShards::trace_scope`]) before running the engine; every
    /// [`RemoteShards::fanout`] the query triggers reads it back, stamps
    /// the id onto each shard RPC frame, and records a `shard_rpc` span
    /// per shard. Thread-local because server workers run queries
    /// concurrently — each worker's engine calls happen on its own thread.
    static TRACE_CTX: Cell<u64> = const { Cell::new(0) };
}

/// Clears (restores) the thread's trace context on drop, so a panicking or
/// early-returning query cannot leak its id into the next query on the
/// worker.
pub struct TraceScope {
    prev: u64,
}

impl Drop for TraceScope {
    fn drop(&mut self) {
        TRACE_CTX.with(|c| c.set(self.prev));
    }
}

/// One shard server's address, as given to [`RemoteShards::connect`].
/// Order does not matter: shards identify themselves via `shard_info` and
/// the pool is arranged by shard id.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardEndpoint {
    addr: String,
}

impl ShardEndpoint {
    pub fn new(addr: impl Into<String>) -> ShardEndpoint {
        ShardEndpoint { addr: addr.into() }
    }

    pub fn addr(&self) -> &str {
        &self.addr
    }
}

impl<T: Into<String>> From<T> for ShardEndpoint {
    fn from(addr: T) -> ShardEndpoint {
        ShardEndpoint::new(addr)
    }
}

/// Connection-time tuning for [`RemoteShards::connect_with`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RemoteOptions {
    /// Dial timeout per endpoint (a dead endpoint fails the connect fast
    /// instead of hanging the whole cluster bring-up).
    pub dial_timeout: Duration,
    /// Per-RPC budget: sent as `deadline_ms` on every data RPC *and*
    /// installed as the socket read timeout, so a stalled shard degrades
    /// within this bound instead of blocking a query forever.
    pub rpc_deadline: Duration,
}

impl Default for RemoteOptions {
    fn default() -> RemoteOptions {
        RemoteOptions {
            dial_timeout: Duration::from_secs(2),
            rpc_deadline: Duration::from_secs(10),
        }
    }
}

/// Why a [`RemoteShards::connect`] failed.
#[derive(Debug)]
pub enum DistribError {
    /// Could not reach or negotiate with an endpoint.
    Connect {
        endpoint: String,
        source: ClientError,
    },
    /// The endpoints do not form one coherent cluster (wrong shard count,
    /// duplicate or missing shard ids, inconsistent store shapes).
    Topology(String),
}

impl fmt::Display for DistribError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DistribError::Connect { endpoint, source } => {
                write!(f, "shard endpoint {endpoint}: {source}")
            }
            DistribError::Topology(msg) => write!(f, "cluster topology: {msg}"),
        }
    }
}

impl std::error::Error for DistribError {}

/// One pooled shard connection. The [`Client`] is behind a mutex because
/// the engine may call the posting source from several threads (batch
/// workers, in-query parallelism); `dead` latches after a transport
/// failure so later fetches degrade immediately instead of re-timing-out.
struct ShardConn {
    endpoint: String,
    info: ShardInfo,
    client: Mutex<ConnState>,
}

struct ConnState {
    client: Client,
    dead: bool,
}

/// Append-only record of shard failures; `events.len()` is the generation
/// counter handed out by [`RemoteShards::degraded_mark`].
#[derive(Default)]
struct DegradedLog {
    events: Vec<(u32, String)>,
}

/// `(departure_time, posting)` entries, sorted by departure — the shape
/// `postings_departing_by` returns and the departing cache stores.
type DepartingEntries = Vec<(f64, Posting)>;

/// A [`PostingSource`] whose postings live in remote shard-server
/// processes; see the [module docs](self) for the contract.
pub struct RemoteShards {
    /// Ordered by shard id (position == `shard_id`).
    conns: Vec<ShardConn>,
    rpc_deadline_ms: u64,
    alphabet_size: usize,
    num_trajectories: usize,
    total_postings: usize,
    size_bytes: usize,
    has_temporal: bool,
    /// Metric names every shard server advertised at `hello` — the
    /// intersection across the pool, with a pre-metrics server (empty
    /// advertised list) counting as WED-only.
    metrics: Vec<String>,
    /// Global-id span table, prefetched at connect (`span` is on the
    /// temporal-filter hot path and must be infallible).
    spans: Vec<(f64, f64)>,
    freq_cache: Mutex<HashMap<Sym, u32>>,
    postings_cache: Mutex<HashMap<Sym, Vec<Posting>>>,
    /// Keyed by `(symbol, t_max bits)` — the engine re-asks the same
    /// constraint boundary within one query.
    departing_cache: Mutex<HashMap<(Sym, u64), DepartingEntries>>,
    log: Mutex<DegradedLog>,
    /// Span sink for `shard_rpc` intervals; `None` leaves fan-outs
    /// untraced even inside a trace scope.
    sink: Option<Arc<TraceSink>>,
}

impl fmt::Debug for RemoteShards {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RemoteShards")
            .field(
                "endpoints",
                &self.conns.iter().map(|c| &c.endpoint).collect::<Vec<_>>(),
            )
            .field("num_trajectories", &self.num_trajectories)
            .field("alphabet_size", &self.alphabet_size)
            .field("has_temporal", &self.has_temporal)
            .finish_non_exhaustive()
    }
}

impl RemoteShards {
    /// Connects to one shard server per endpoint with default
    /// [`RemoteOptions`]; see [`connect_with`](RemoteShards::connect_with).
    pub fn connect(endpoints: &[ShardEndpoint]) -> Result<RemoteShards, DistribError> {
        RemoteShards::connect_with(endpoints, RemoteOptions::default())
    }

    /// Dials every endpoint, negotiates the protocol version (`hello`),
    /// learns each shard's identity and epoch (`shard_info`), checks the
    /// endpoints form exactly one shard 0..n cluster over one store, and
    /// prefetches the span table. Endpoint order is irrelevant — shards
    /// are arranged by their self-reported id.
    pub fn connect_with(
        endpoints: &[ShardEndpoint],
        options: RemoteOptions,
    ) -> Result<RemoteShards, DistribError> {
        if endpoints.is_empty() {
            return Err(DistribError::Topology("no shard endpoints given".into()));
        }
        let n = endpoints.len();
        let mut by_id: Vec<Option<ShardConn>> = Vec::new();
        by_id.resize_with(n, || None);
        let mut cluster_metrics: Option<Vec<String>> = None;
        for ep in endpoints {
            let fail = |source: ClientError| DistribError::Connect {
                endpoint: ep.addr.clone(),
                source,
            };
            let mut client = dial(&ep.addr, options.dial_timeout).map_err(|e| fail(e.into()))?;
            client
                .set_read_timeout(Some(options.rpc_deadline))
                .map_err(|e| fail(e.into()))?;
            // hello: a major-version mismatch surfaces here as a typed
            // `unsupported_version` server error, before any data moves.
            // The reply also carries the server's metric capability list
            // (empty = pre-metrics build = WED only); the cluster supports
            // the intersection, so one old shard server downgrades the
            // whole pool to WED instead of failing mid-query.
            let caps = client.hello_caps().map_err(fail)?;
            let advertised: Vec<String> = if caps.metrics.is_empty() {
                vec!["wed".to_string()]
            } else {
                caps.metrics
            };
            cluster_metrics = Some(match cluster_metrics {
                None => advertised,
                Some(prev) => prev
                    .into_iter()
                    .filter(|m| advertised.contains(m))
                    .collect(),
            });
            let info = client.shard_info().map_err(fail)?;
            if info.num_shards as usize != n {
                return Err(DistribError::Topology(format!(
                    "{} believes the cluster has {} shards, but {} endpoints were given",
                    ep.addr, info.num_shards, n
                )));
            }
            let slot = info.shard_id as usize;
            if slot >= n || by_id[slot].is_some() {
                return Err(DistribError::Topology(format!(
                    "shard id {} at {} is {} for this cluster",
                    info.shard_id,
                    ep.addr,
                    if slot >= n {
                        "out of range"
                    } else {
                        "duplicated"
                    }
                )));
            }
            by_id[slot] = Some(ShardConn {
                endpoint: ep.addr.clone(),
                info,
                client: Mutex::new(ConnState {
                    client,
                    dead: false,
                }),
            });
        }
        let conns: Vec<ShardConn> = by_id
            .into_iter()
            .map(|c| c.expect("all slots filled: n endpoints, n distinct ids in range"))
            .collect();

        let first = &conns[0].info;
        for c in &conns[1..] {
            if c.info.alphabet_size != first.alphabet_size
                || c.info.num_trajectories != first.num_trajectories
            {
                return Err(DistribError::Topology(format!(
                    "shard {} at {} indexes a different store (alphabet {}, {} trajectories) \
                     than shard 0 (alphabet {}, {} trajectories)",
                    c.info.shard_id,
                    c.endpoint,
                    c.info.alphabet_size,
                    c.info.num_trajectories,
                    first.alphabet_size,
                    first.num_trajectories
                )));
            }
        }
        let num_trajectories = first.num_trajectories as usize;
        let local_sum: u64 = conns.iter().map(|c| c.info.local_trajectories).sum();
        if local_sum != first.num_trajectories {
            return Err(DistribError::Topology(format!(
                "shards hold {local_sum} trajectories between them, store has {}",
                first.num_trajectories
            )));
        }

        let mut remote = RemoteShards {
            rpc_deadline_ms: options.rpc_deadline.as_millis().max(1) as u64,
            alphabet_size: first.alphabet_size as usize,
            num_trajectories,
            total_postings: conns.iter().map(|c| c.info.total_postings as usize).sum(),
            size_bytes: conns.iter().map(|c| c.info.size_bytes as usize).sum(),
            has_temporal: conns.iter().all(|c| c.info.has_temporal_postings),
            metrics: cluster_metrics.expect("at least one endpoint was negotiated"),
            spans: vec![(0.0, 0.0); num_trajectories],
            conns,
            freq_cache: Mutex::new(HashMap::new()),
            postings_cache: Mutex::new(HashMap::new()),
            departing_cache: Mutex::new(HashMap::new()),
            log: Mutex::new(DegradedLog::default()),
            sink: None,
        };
        remote.prefetch_spans()?;
        Ok(remote)
    }

    /// Pages the whole span table down from every shard. Shard `k`'s local
    /// slot `j` is global trajectory `j * n + k` — the `id % n` placement
    /// of [`ShardedIndex`](trajsearch_core::ShardedIndex).
    fn prefetch_spans(&mut self) -> Result<(), DistribError> {
        let n = self.conns.len();
        for k in 0..n {
            let conn = &self.conns[k];
            let local = conn.info.local_trajectories;
            let mut start = 0u64;
            while start < local {
                let mut state = conn.client.lock().expect("shard client mutex poisoned");
                let id = state.client.allocate_id();
                let page = (|| -> Result<_, ClientError> {
                    state.client.send_request(&Request::ShardSpans {
                        id,
                        epoch: conn.info.epoch,
                        deadline_ms: Some(self.rpc_deadline_ms),
                        trace_id: None,
                        start,
                        count: local - start,
                    })?;
                    state.client.flush()?;
                    match state.client.recv_reply()? {
                        Reply::ShardSpans { id: got, page } if got == id => Ok(page),
                        Reply::Error { error, .. } => Err(ClientError::Server(error)),
                        other => Err(ClientError::Protocol(format!(
                            "expected shard_spans reply, got {other:?}"
                        ))),
                    }
                })()
                .map_err(|source| DistribError::Connect {
                    endpoint: conn.endpoint.clone(),
                    source,
                })?;
                drop(state);
                if page.departures.is_empty() {
                    return Err(DistribError::Topology(format!(
                        "shard {k} returned an empty span page at {start}/{local}"
                    )));
                }
                for (i, (&dep, &arr)) in page.departures.iter().zip(&page.arrivals).enumerate() {
                    let slot = page.start as usize + i;
                    self.spans[slot * n + k] = (dep, arr);
                }
                start = page.start + page.departures.len() as u64;
            }
        }
        Ok(())
    }

    /// Number of shard servers in the pool.
    pub fn num_shards(&self) -> usize {
        self.conns.len()
    }

    /// Installs the sink `shard_rpc` spans are recorded into. Fan-outs
    /// record only while a [`trace_scope`](RemoteShards::trace_scope) is
    /// active on the calling thread.
    pub fn set_trace_sink(&mut self, sink: Arc<TraceSink>) {
        self.sink = Some(sink);
    }

    /// Marks the calling thread as executing a query under `trace_id`
    /// until the returned guard drops: every fan-out on this thread stamps
    /// the id onto its shard RPC frames (cross-process stitching) and
    /// records a per-shard `shard_rpc` span. A zero id (untraced) is a
    /// no-op scope.
    pub fn trace_scope(&self, trace_id: u64) -> TraceScope {
        TRACE_CTX.with(|c| TraceScope {
            prev: c.replace(trace_id),
        })
    }

    /// Whether **every** shard server in the pool advertised support for
    /// the named metric at `hello`. A pre-metrics server (no capability
    /// list on its hello reply) counts as WED-only, so a cluster fronting
    /// one old shard answers `false` for everything but `"wed"` — the
    /// coordinator turns that into a typed rejection before any shard RPC
    /// moves.
    pub fn supports_metric(&self, name: &str) -> bool {
        self.metrics.iter().any(|m| m == name)
    }

    /// The negotiated metric capability list: the intersection of what
    /// every shard server advertised.
    pub fn supported_metrics(&self) -> &[String] {
        &self.metrics
    }

    /// The generation mark for [`degraded_since`](RemoteShards::degraded_since):
    /// take it before running a query.
    pub fn degraded_mark(&self) -> u64 {
        self.log.lock().expect("degraded log poisoned").events.len() as u64
    }

    /// Folds every shard failure recorded after `mark` into one
    /// [`DegradedInfo`]; `None` when the window is clean. With concurrent
    /// queries the log is shared, so a window may include a *neighbor*
    /// query's failures — degradation is over-reported under concurrency,
    /// never under-reported.
    pub fn degraded_since(&self, mark: u64) -> Option<DegradedInfo> {
        let log = self.log.lock().expect("degraded log poisoned");
        let events = log.events.get(mark as usize..).unwrap_or(&[]);
        if events.is_empty() {
            return None;
        }
        let mut missing: Vec<u32> = events.iter().map(|&(shard, _)| shard).collect();
        missing.sort_unstable();
        missing.dedup();
        let reason = events
            .iter()
            .map(|(shard, what)| format!("shard {shard}: {what}"))
            .collect::<Vec<_>>()
            .join("; ");
        Some(DegradedInfo {
            missing_shards: missing,
            reason,
        })
    }

    /// Total shard failures ever recorded — zero on a healthy cluster.
    pub fn degraded_total(&self) -> u64 {
        self.degraded_mark()
    }

    fn record_degraded(&self, shard: u32, what: impl Into<String>) {
        self.log
            .lock()
            .expect("degraded log poisoned")
            .events
            .push((shard, what.into()));
    }

    /// Pipelined fan-out of one data RPC to every live shard: all requests
    /// are written and flushed before any reply is read (one round trip for
    /// the whole cluster), holding each shard's client lock from send to
    /// receive so concurrent fan-outs cannot steal each other's replies.
    /// Locks are taken in shard order, which makes the lock acquisition
    /// deadlock-free. Returns one `Some(reply)` per answering shard;
    /// failures are logged and yield `None`.
    fn fanout(&self, make: impl Fn(u64, &ShardInfo) -> Request) -> Vec<Option<Reply>> {
        // The active trace, if any: stamp it onto every frame so each
        // shard server records its serve-side spans under the same id, and
        // bracket each RPC with a coordinator-side `shard_rpc` span.
        let trace_id = match &self.sink {
            Some(_) => TRACE_CTX.with(Cell::get),
            None => 0,
        };
        let mut guards: Vec<Option<(MutexGuard<'_, ConnState>, u64, Instant)>> = Vec::new();
        for (k, conn) in self.conns.iter().enumerate() {
            let mut state = conn.client.lock().expect("shard client mutex poisoned");
            if state.dead {
                self.record_degraded(k as u32, "connection previously failed");
                guards.push(None);
                continue;
            }
            let id = state.client.allocate_id();
            let mut request = make(id, &conn.info);
            if trace_id != 0 {
                request.set_trace_id(trace_id);
            }
            let sent_at = Instant::now();
            let sent = state
                .client
                .send_request(&request)
                .and_then(|()| state.client.flush());
            match sent {
                Ok(()) => guards.push(Some((state, id, sent_at))),
                Err(e) => {
                    state.dead = true;
                    self.record_degraded(k as u32, format!("send failed: {e}"));
                    guards.push(None);
                }
            }
        }
        guards
            .into_iter()
            .enumerate()
            .map(|(k, guard)| {
                let (mut state, id, sent_at) = guard?;
                let reply = state.client.recv_reply();
                if trace_id != 0 {
                    if let Some(sink) = &self.sink {
                        // Send → reply-read, per shard: includes the wire
                        // and the shard server's `rpc_serve` time (which
                        // that server reports under the same trace id).
                        sink.record_interval(
                            trace_id,
                            0,
                            "shard_rpc",
                            k as u64,
                            sent_at,
                            Instant::now(),
                        );
                    }
                }
                match reply {
                    Ok(Reply::Error { error, .. }) => {
                        // A typed per-RPC refusal (epoch mismatch, expired
                        // deadline): the connection itself is still good.
                        self.record_degraded(k as u32, error.to_string());
                        None
                    }
                    Ok(reply) if reply.id() == Some(id) => Some(reply),
                    Ok(other) => {
                        state.dead = true;
                        self.record_degraded(
                            k as u32,
                            format!("protocol error: unexpected reply {other:?}"),
                        );
                        None
                    }
                    Err(e) => {
                        state.dead = true;
                        self.record_degraded(k as u32, format!("receive failed: {e}"));
                        None
                    }
                }
            })
            .collect()
    }

    /// Batch-fetches and caches the frequencies of `syms` in **one** RPC
    /// per shard — the request-coalescing entry a coordinator calls before
    /// running a query, so the MinCand plan does not pay one cluster round
    /// trip per pattern symbol.
    pub fn prime_freqs(&self, syms: &[Sym]) {
        let missing: Vec<Sym> = {
            let cache = self.freq_cache.lock().expect("freq cache poisoned");
            let mut missing: Vec<Sym> = syms
                .iter()
                .copied()
                .filter(|q| !cache.contains_key(q))
                .collect();
            missing.sort_unstable();
            missing.dedup();
            missing
        };
        if missing.is_empty() {
            return;
        }
        let deadline = self.rpc_deadline_ms;
        let replies = self.fanout(|id, info| Request::ShardFreqs {
            id,
            epoch: info.epoch,
            deadline_ms: Some(deadline),
            trace_id: None,
            syms: missing.clone(),
        });
        let mut sums = vec![0u32; missing.len()];
        let mut complete = true;
        for reply in replies {
            match reply {
                Some(Reply::ShardFreqs { freqs, .. }) if freqs.len() == missing.len() => {
                    for (sum, f) in sums.iter_mut().zip(freqs) {
                        *sum += f;
                    }
                }
                _ => complete = false,
            }
        }
        if complete {
            let mut cache = self.freq_cache.lock().expect("freq cache poisoned");
            for (&q, &sum) in missing.iter().zip(&sums) {
                cache.insert(q, sum);
            }
        }
    }

    /// Fetches one symbol's postings from every shard, concatenated
    /// shard-major; cached only when every shard answered.
    fn fetch_postings(&self, q: Sym) -> Vec<Posting> {
        if let Some(hit) = self
            .postings_cache
            .lock()
            .expect("postings cache poisoned")
            .get(&q)
        {
            return hit.clone();
        }
        let deadline = self.rpc_deadline_ms;
        let replies = self.fanout(|id, info| Request::ShardPostings {
            id,
            epoch: info.epoch,
            deadline_ms: Some(deadline),
            trace_id: None,
            syms: vec![q],
        });
        let mut out: Vec<Posting> = Vec::new();
        let mut complete = true;
        for reply in replies {
            match reply {
                Some(Reply::ShardPostings { mut lists, .. }) if lists.len() == 1 => {
                    out.append(&mut lists[0]);
                }
                _ => complete = false,
            }
        }
        if complete {
            self.postings_cache
                .lock()
                .expect("postings cache poisoned")
                .insert(q, out.clone());
        }
        out
    }
}

/// Resolve-and-dial with a timeout; `ToSocketAddrs` may yield several
/// candidates, any one suffices.
fn dial(addr: &str, timeout: Duration) -> io::Result<Client> {
    let mut last = io::Error::new(io::ErrorKind::InvalidInput, "address resolved to nothing");
    for candidate in addr.to_socket_addrs()? {
        match Client::connect_timeout(&candidate, timeout) {
            Ok(client) => return Ok(client),
            Err(e) => last = e,
        }
    }
    Err(last)
}

impl PostingSource for RemoteShards {
    /// Shard-major, matching
    /// [`ShardedIndex::postings`](trajsearch_core::ShardedIndex) exactly:
    /// shard 0's build-order records, then shard 1's, …
    fn postings(&self, q: Sym) -> impl Iterator<Item = Posting> + '_ {
        self.fetch_postings(q).into_iter()
    }

    fn freq(&self, q: Sym) -> u32 {
        if let Some(&hit) = self.freq_cache.lock().expect("freq cache poisoned").get(&q) {
            return hit;
        }
        self.prime_freqs(std::slice::from_ref(&q));
        if let Some(&hit) = self.freq_cache.lock().expect("freq cache poisoned").get(&q) {
            return hit;
        }
        // Degraded: some shard did not answer (already logged). The partial
        // count keeps the plan total; the coordinator flags the query.
        let deadline = self.rpc_deadline_ms;
        self.fanout(|id, info| Request::ShardFreqs {
            id,
            epoch: info.epoch,
            deadline_ms: Some(deadline),
            trace_id: None,
            syms: vec![q],
        })
        .into_iter()
        .filter_map(|reply| match reply {
            Some(Reply::ShardFreqs { freqs, .. }) => freqs.first().copied(),
            _ => None,
        })
        .sum()
    }

    fn span(&self, id: TrajId) -> (f64, f64) {
        self.spans[id as usize]
    }

    /// Shard-major concatenation of each shard's departure-sorted prefix —
    /// the same "sorted within each shard only" order the in-process
    /// [`ShardedIndex`](trajsearch_core::ShardedIndex) produces.
    fn postings_departing_by(
        &self,
        q: Sym,
        t_max: f64,
    ) -> impl Iterator<Item = (f64, Posting)> + '_ {
        assert!(
            self.has_temporal,
            "temporal postings not enabled on the remote shards"
        );
        let key = (q, t_max.to_bits());
        if let Some(hit) = self
            .departing_cache
            .lock()
            .expect("departing cache poisoned")
            .get(&key)
        {
            return hit.clone().into_iter();
        }
        let deadline = self.rpc_deadline_ms;
        let replies = self.fanout(|id, info| Request::ShardDepartingBy {
            id,
            epoch: info.epoch,
            deadline_ms: Some(deadline),
            trace_id: None,
            sym: q,
            t_max,
        });
        let mut out: Vec<(f64, Posting)> = Vec::new();
        let mut complete = true;
        for reply in replies {
            match reply {
                Some(Reply::ShardDepartingBy { mut entries, .. }) => out.append(&mut entries),
                _ => complete = false,
            }
        }
        if complete {
            self.departing_cache
                .lock()
                .expect("departing cache poisoned")
                .insert(key, out.clone());
        }
        out.into_iter()
    }

    fn has_temporal_postings(&self) -> bool {
        self.has_temporal
    }

    fn alphabet_size(&self) -> usize {
        self.alphabet_size
    }

    fn num_trajectories(&self) -> usize {
        self.num_trajectories
    }

    fn total_postings(&self) -> usize {
        self.total_postings
    }

    fn size_bytes(&self) -> usize {
        self.size_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoint_conversions() {
        let a: ShardEndpoint = "127.0.0.1:9000".into();
        assert_eq!(a.addr(), "127.0.0.1:9000");
        assert_eq!(ShardEndpoint::new(String::from("h:1")).addr(), "h:1");
    }

    #[test]
    fn connect_rejects_an_empty_cluster() {
        match RemoteShards::connect(&[]) {
            Err(DistribError::Topology(msg)) => assert!(msg.contains("no shard endpoints")),
            other => panic!("expected a topology error, got {other:?}"),
        }
    }

    #[test]
    fn connect_fails_fast_on_a_dead_endpoint() {
        // A port nothing listens on: the dial must fail, not hang.
        let dead = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap()
        }; // listener dropped — the port is free again
        let err = RemoteShards::connect_with(
            &[ShardEndpoint::new(dead.to_string())],
            RemoteOptions {
                dial_timeout: Duration::from_millis(500),
                ..RemoteOptions::default()
            },
        )
        .expect_err("nothing listens there");
        match err {
            DistribError::Connect { endpoint, .. } => {
                assert_eq!(endpoint, dead.to_string())
            }
            other => panic!("expected a connect error, got {other}"),
        }
    }
}
