//! Deterministic synthetic data shared by the cluster binaries and the
//! equivalence tests. Every process in a test cluster regenerates the
//! *same* store from the same `(n, len, seed)` — the shard servers index
//! their partition of it, the coordinator keeps it for verification — so
//! no dataset ever crosses the wire. A tiny splitmix/LCG generator keeps
//! the binaries free of the dev-only `rand` shim.

use traj::{Trajectory, TrajectoryStore};
use trajsearch_core::{Parallelism, Query, TemporalConstraint, TimeInterval, VerifyMode};
use wed::Sym;

/// splitmix64 step: the state update is an LCG, the output is bit-mixed.
fn next(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

fn below(state: &mut u64, bound: usize) -> usize {
    (next(state) % bound.max(1) as u64) as usize
}

/// `n` random walks of length `len` over `alphabet` symbols, with
/// increasing per-trajectory timestamps. Identical output for identical
/// arguments on every platform.
pub fn store(n: usize, len: usize, seed: u64, alphabet: usize) -> TrajectoryStore {
    let mut state = seed ^ 0xD1B54A32D192ED03;
    let mut store = TrajectoryStore::new();
    for i in 0..n {
        let path: Vec<Sym> = (0..len)
            .map(|_| below(&mut state, alphabet) as u32)
            .collect();
        let t0 = (i * 7) as f64;
        let times: Vec<f64> = (0..len).map(|j| t0 + j as f64).collect();
        store.push(Trajectory::new(path, times));
    }
    store
}

/// A pattern copied out of the store (so matches exist), with one symbol
/// sometimes perturbed.
fn pattern_from(store: &TrajectoryStore, state: &mut u64, len: usize, alphabet: usize) -> Vec<Sym> {
    let id = below(state, store.len()) as u32;
    let path = store.get(id).path();
    let start = below(state, path.len().saturating_sub(len).max(1));
    let mut q: Vec<Sym> = path[start..(start + len).min(path.len())].to_vec();
    if below(state, 2) == 1 && !q.is_empty() {
        let at = below(state, q.len());
        q[at] = below(state, alphabet) as u32;
    }
    q
}

/// A mixed workload covering every distributed code path: plain and
/// Smith–Waterman thresholds, top-k, temporal filtering, by-departure
/// temporal postings (the `shard_departing_by` RPC), in-query parallelism,
/// and the exact fallback scan (an infeasible threshold — postings cannot
/// prune, the engine scans the store it holds locally).
pub fn workload(store: &TrajectoryStore, n: usize, seed: u64, alphabet: usize) -> Vec<Query> {
    let mut state = seed ^ 0xA0761D6478BD642F;
    (0..n)
        .map(|i| {
            let q = pattern_from(store, &mut state, 4 + i % 4, alphabet);
            let tau = 1.0 + (i % 3) as f64 * 0.75;
            match i % 7 {
                0 => Query::threshold(q, tau).build().unwrap(),
                1 => Query::threshold(q, tau)
                    .verify(VerifyMode::Sw)
                    .build()
                    .unwrap(),
                2 => Query::top_k(q, 3, 0.5, 6.0).build().unwrap(),
                3 => Query::threshold(q, tau)
                    .verify(VerifyMode::Local)
                    .temporal(TemporalConstraint::overlaps(TimeInterval::new(0.0, 300.0)))
                    .temporal_filter(true)
                    .build()
                    .unwrap(),
                4 => Query::threshold(q, tau)
                    .temporal(TemporalConstraint::overlaps(TimeInterval::new(0.0, 250.0)))
                    .temporal_postings(true)
                    .build()
                    .unwrap(),
                5 => Query::threshold(q, tau)
                    .parallelism(Parallelism::InQuery(2))
                    .build()
                    .unwrap(),
                _ => {
                    // tau > |Q|: no tau-subsequence exists, forcing the
                    // exact fallback scan; the temporal post-check keeps
                    // the response small.
                    let scan_len = q.len().max(4);
                    Query::threshold(q, scan_len as f64 + 0.5)
                        .verify(VerifyMode::Sw)
                        .temporal(TemporalConstraint::within(TimeInterval::new(0.0, 30.0)))
                        .build()
                        .unwrap()
                }
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = store(20, 12, 9, 16);
        let b = store(20, 12, 9, 16);
        assert_eq!(a.len(), 20);
        for id in 0..20u32 {
            assert_eq!(a.get(id).path(), b.get(id).path());
            assert_eq!(a.get(id).times(), b.get(id).times());
        }
        assert_eq!(workload(&a, 14, 3, 16), workload(&b, 14, 3, 16));
    }

    #[test]
    fn workload_covers_the_fallback_scan() {
        let s = store(20, 12, 9, 16);
        let w = workload(&s, 14, 3, 16);
        // i % 7 == 6 queries have tau > |Q| — the infeasible shape.
        assert!(w.len() >= 7);
    }
}
