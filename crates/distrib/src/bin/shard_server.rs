//! `shard_server` — one shard of a test cluster.
//!
//! Regenerates the deterministic synthetic store from `(--trajectories,
//! --len, --seed, --alphabet)`, builds its `--shard`-of-`--num-shards`
//! partition as an [`IndexShard`], binds a loopback ephemeral port (or
//! `--addr`), prints `LISTENING <addr>` on stdout, and answers shard RPCs
//! until killed.
//!
//! ```text
//! shard_server --shard 1 --num-shards 3 --trajectories 90 --len 16 \
//!              --seed 7 --alphabet 32 [--epoch 1] [--addr 127.0.0.1:0]
//! ```

use trajsearch_core::IndexShard;
use trajsearch_distrib::testdata;
use trajsearch_serve::{IndexShardSource, Server, ServerConfig};

struct Args {
    shard: usize,
    num_shards: usize,
    trajectories: usize,
    len: usize,
    seed: u64,
    alphabet: usize,
    epoch: u64,
    addr: std::net::SocketAddr,
}

fn parse_args() -> Args {
    let mut args = Args {
        shard: 0,
        num_shards: 1,
        trajectories: 90,
        len: 16,
        seed: 7,
        alphabet: 32,
        epoch: 1,
        addr: std::net::SocketAddr::from(([127, 0, 0, 1], 0)),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let value = it.next().unwrap_or_else(|| panic!("{flag} needs a value"));
        let fail = |what: &str| -> ! { panic!("{flag} must be {what}, got {value:?}") };
        match flag.as_str() {
            "--shard" => args.shard = value.parse().unwrap_or_else(|_| fail("an integer")),
            "--num-shards" => {
                args.num_shards = value.parse().unwrap_or_else(|_| fail("an integer"))
            }
            "--trajectories" => {
                args.trajectories = value.parse().unwrap_or_else(|_| fail("an integer"))
            }
            "--len" => args.len = value.parse().unwrap_or_else(|_| fail("an integer")),
            "--seed" => args.seed = value.parse().unwrap_or_else(|_| fail("an integer")),
            "--alphabet" => args.alphabet = value.parse().unwrap_or_else(|_| fail("an integer")),
            "--epoch" => args.epoch = value.parse().unwrap_or_else(|_| fail("an integer")),
            "--addr" => args.addr = value.parse().unwrap_or_else(|_| fail("a socket address")),
            other => panic!("unknown flag {other:?}"),
        }
    }
    args
}

fn main() {
    use std::io::Write as _;

    let args = parse_args();
    let store = testdata::store(args.trajectories, args.len, args.seed, args.alphabet);
    let mut shard = IndexShard::build(&store, args.alphabet, args.shard, args.num_shards);
    shard.enable_temporal_postings();
    let source = IndexShardSource::new(&shard, args.epoch);

    let server = Server::bind(ServerConfig {
        addr: args.addr,
        ..ServerConfig::default()
    })
    .expect("bind shard server");
    println!("LISTENING {}", server.handle().local_addr());
    std::io::stdout().flush().expect("flush stdout");

    // Serves until the process is killed (test clusters SIGKILL their
    // shards; there is no filesystem or in-flight state to corrupt).
    server.serve_shard(&source).expect("serve shard RPCs");
}
