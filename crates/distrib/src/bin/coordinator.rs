//! `coordinator` — the query-serving front of a test cluster.
//!
//! Regenerates the same deterministic store as its `shard_server` peers,
//! connects a [`RemoteShards`](trajsearch_distrib::RemoteShards) over
//! `--shards`, and serves the ordinary
//! query protocol: clients send `query` frames, postings come from the
//! shard servers, and a missing shard turns the reply into a typed
//! `degraded` envelope instead of a wrong answer. Prints `LISTENING
//! <addr>` once bound; serves until killed.
//!
//! ```text
//! coordinator --shards 127.0.0.1:4001,127.0.0.1:4002 --trajectories 90 \
//!             --len 16 --seed 7 --alphabet 32 [--workers 1] [--addr 127.0.0.1:0]
//! ```

use trajsearch_core::RemoteSpec;
use trajsearch_distrib::{testdata, Coordinator};
use trajsearch_serve::{Server, ServerConfig};
use wed::models::Lev;

struct Args {
    shards: Vec<String>,
    trajectories: usize,
    len: usize,
    seed: u64,
    alphabet: usize,
    workers: usize,
    addr: std::net::SocketAddr,
}

fn parse_args() -> Args {
    let mut args = Args {
        shards: Vec::new(),
        trajectories: 90,
        len: 16,
        seed: 7,
        alphabet: 32,
        workers: 1,
        addr: std::net::SocketAddr::from(([127, 0, 0, 1], 0)),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let value = it.next().unwrap_or_else(|| panic!("{flag} needs a value"));
        let fail = |what: &str| -> ! { panic!("{flag} must be {what}, got {value:?}") };
        match flag.as_str() {
            "--shards" => args.shards = value.split(',').map(str::to_string).collect(),
            "--trajectories" => {
                args.trajectories = value.parse().unwrap_or_else(|_| fail("an integer"))
            }
            "--len" => args.len = value.parse().unwrap_or_else(|_| fail("an integer")),
            "--seed" => args.seed = value.parse().unwrap_or_else(|_| fail("an integer")),
            "--alphabet" => args.alphabet = value.parse().unwrap_or_else(|_| fail("an integer")),
            "--workers" => args.workers = value.parse().unwrap_or_else(|_| fail("an integer")),
            "--addr" => args.addr = value.parse().unwrap_or_else(|_| fail("a socket address")),
            other => panic!("unknown flag {other:?}"),
        }
    }
    assert!(!args.shards.is_empty(), "--shards is required");
    args
}

fn main() {
    use std::io::Write as _;

    let args = parse_args();
    let store = testdata::store(args.trajectories, args.len, args.seed, args.alphabet);
    // One sink shared by the server (queue-wait + engine-phase spans) and
    // the RemoteShards (per-shard `shard_rpc` spans), so a traced query's
    // whole coordinator-side timeline lands under one trace id.
    let sink = std::sync::Arc::new(trajsearch_core::TraceSink::new(
        trajsearch_serve::DEFAULT_SINK_SPANS,
    ));
    let coordinator = Coordinator::connect_traced(
        Lev,
        &store,
        args.alphabet,
        &RemoteSpec::new(args.shards.iter().cloned()),
        std::sync::Arc::clone(&sink),
    )
    .expect("connect shard cluster");

    let server = Server::bind(ServerConfig {
        addr: args.addr,
        workers: args.workers,
        sink: Some(sink),
        ..ServerConfig::default()
    })
    .expect("bind coordinator");
    println!("LISTENING {}", server.handle().local_addr());
    std::io::stdout().flush().expect("flush stdout");

    server.serve(&coordinator).expect("serve queries");
}
