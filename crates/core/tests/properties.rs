//! Property-based tests of the engine against network-backed cost models:
//! all verification modes agree with a brute-force oracle on random
//! workloads, for unit-cost and continuous-cost instances alike.

use proptest::prelude::*;
use rnet::{CityParams, NetworkKind, RoadNetwork};
use std::sync::Arc;
use traj::{Trajectory, TrajectoryStore};
use trajsearch_core::{EngineBuilder, Query, VerifyMode};
use wed::models::{Edr, Erp, Lev};
use wed::{wed, Sym};

fn net() -> Arc<RoadNetwork> {
    Arc::new(CityParams::tiny(NetworkKind::Grid).generate())
}

fn brute<M: wed::CostModel>(
    m: &M,
    store: &TrajectoryStore,
    q: &[Sym],
    tau: f64,
) -> Vec<(u32, usize, usize, f64)> {
    let mut out = Vec::new();
    for (id, t) in store.iter() {
        let p = t.path();
        for s in 0..p.len() {
            for e in s..p.len() {
                let d = wed(m, &p[s..=e], q);
                if d < tau {
                    out.push((id, s, e, d));
                }
            }
        }
    }
    out.sort_by_key(|a| (a.0, a.1, a.2));
    out
}

fn check_engine<M: wed::WedInstance + Copy + Sync>(
    m: M,
    store: &TrajectoryStore,
    alphabet: usize,
    q: &[Sym],
    tau: f64,
) -> Result<(), TestCaseError> {
    let want = brute(&m, store, q, tau);
    let engine = EngineBuilder::new(m, store, alphabet).build();
    for mode in [VerifyMode::Trie, VerifyMode::Local, VerifyMode::Sw] {
        let query = Query::threshold(q, tau)
            .verify(mode)
            .build()
            .expect("valid test query");
        let got = engine.run(&query).expect("run");
        prop_assert_eq!(got.matches.len(), want.len(), "mode {:?}", mode);
        for (g, w) in got.matches.iter().zip(&want) {
            prop_assert_eq!((g.id, g.start, g.end), (w.0, w.1, w.2));
            prop_assert!(
                (g.dist - w.3).abs() < 1e-6,
                "distance {} vs {}",
                g.dist,
                w.3
            );
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Unit-cost instance over an arbitrary (non-path) symbol store: the
    /// engine is a pure string algorithm and must match brute force.
    #[test]
    fn engine_is_exact_for_lev(
        paths in proptest::collection::vec(proptest::collection::vec(0u32..12, 1..12), 1..8),
        q in proptest::collection::vec(0u32..12, 1..6),
        tau_i in 1u32..4,
    ) {
        let store: TrajectoryStore = paths.into_iter().map(Trajectory::untimed).collect();
        check_engine(Lev, &store, 12, &q, tau_i as f64)?;
    }

    /// EDR with a spatial neighborhood (symbols are real vertices).
    #[test]
    fn engine_is_exact_for_edr(
        paths in proptest::collection::vec(proptest::collection::vec(0u32..64, 1..10), 1..6),
        q in proptest::collection::vec(0u32..64, 1..5),
        tau_i in 1u32..4,
    ) {
        let n = net();
        let edr = Edr::new(n.clone(), 130.0);
        let store: TrajectoryStore = paths.into_iter().map(Trajectory::untimed).collect();
        check_engine(&edr, &store, n.num_vertices(), &q, tau_i as f64)?;
    }

    /// ERP: continuous substitution costs, positive η, possible fallback.
    #[test]
    fn engine_is_exact_for_erp(
        paths in proptest::collection::vec(proptest::collection::vec(0u32..64, 1..8), 1..5),
        q in proptest::collection::vec(0u32..64, 1..4),
        tau in 30.0f64..3000.0,
    ) {
        let n = net();
        let erp = Erp::new(n.clone(), 150.0);
        let store: TrajectoryStore = paths.into_iter().map(Trajectory::untimed).collect();
        check_engine(&erp, &store, n.num_vertices(), &q, tau)?;
    }

    /// The reported distance of every match is the true WED (Lemma 1
    /// min-merge exactness), under EDR.
    #[test]
    fn distances_are_exact_under_edr(
        paths in proptest::collection::vec(proptest::collection::vec(0u32..64, 2..10), 1..6),
        q in proptest::collection::vec(0u32..64, 1..5),
    ) {
        let n = net();
        let edr = Edr::new(n.clone(), 130.0);
        let store: TrajectoryStore = paths.into_iter().map(Trajectory::untimed).collect();
        let engine = EngineBuilder::new(&edr, &store, n.num_vertices()).build();
        let out = engine
            .run(&Query::threshold(q.clone(), 2.0).build().expect("valid"))
            .expect("run");
        for m in &out.matches {
            let p = store.get(m.id).path();
            let direct = wed(&edr, &p[m.start..=m.end], &q);
            prop_assert!((m.dist - direct).abs() < 1e-9);
        }
    }

    /// Candidate counts: the MinCand-optimized plan never generates more
    /// candidates than filtering on the whole query (Torch-style).
    #[test]
    fn mincand_plan_no_worse_than_whole_query(
        paths in proptest::collection::vec(proptest::collection::vec(0u32..12, 1..12), 1..8),
        q in proptest::collection::vec(0u32..12, 1..6),
        tau_i in 1u32..3,
    ) {
        use trajsearch_core::{FilterPlan, InvertedIndex};
        let store: TrajectoryStore = paths.into_iter().map(Trajectory::untimed).collect();
        let index = InvertedIndex::build(&store, 12);
        let tau = tau_i as f64;
        prop_assume!(tau <= q.len() as f64); // feasible under Lev
        let plan = FilterPlan::build(&&Lev, &index, &q, tau);
        prop_assert!(plan.feasible);
        let osf = plan.candidates(&index).len();
        // Whole-query filtering: every position contributes its postings.
        let whole: usize = q.iter().map(|&s| index.postings(s).len()).sum();
        prop_assert!(osf <= whole, "OSF {osf} > whole-query {whole}");
    }
}
