//! Fuzz-style hardening of the wire codec (`core/json.rs`) and the
//! `Query`/`Response` decoders on top of it.
//!
//! This codec now fronts a network socket (`trajsearch-serve`), so the
//! *sender* controls every byte: the contract under test is **typed errors,
//! never panics** — truncated frames, number-token junk (NaN/Infinity),
//! hostile nesting depth, duplicate keys, and arbitrary byte soup must all
//! come back as `Err`, and valid documents must round-trip exactly.
//! (A panic anywhere in these properties fails the test run itself, so
//! "never panics" is asserted by construction.)

use proptest::prelude::*;
use trajsearch_core::json::{JsonValue, MAX_DEPTH};
use trajsearch_core::{Query, QueryError, Response};

/// Characters that keep generated soup "almost JSON", maximizing parser
/// path coverage compared to uniform bytes.
const SOUP: &[u8] = br#"{}[]",:.-+eE0123456789 truefalsenul\"abc"#;

fn soup_string(picks: &[usize]) -> String {
    picks
        .iter()
        .map(|&i| SOUP[i % SOUP.len()] as char)
        .collect()
}

/// A valid query document to mutate.
fn wire_query() -> Query {
    Query::top_k(vec![3, 1, 4, 1, 5], 7, 0.25, 8.0)
        .temporal_filter(false)
        .deadline_ms(1500)
        .build()
        .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn parser_survives_json_like_soup(picks in proptest::collection::vec(0usize..1024, 0..120)) {
        let text = soup_string(&picks);
        // Typed result, no panic; rendering a successful parse re-parses
        // to the same document (idempotence even on weird-but-valid input).
        if let Ok(v) = JsonValue::parse(&text) {
            let rendered = v.to_string();
            prop_assert_eq!(JsonValue::parse(&rendered).unwrap(), v);
        }
    }

    #[test]
    fn parser_survives_arbitrary_bytes(bytes in proptest::collection::vec(0usize..256, 0..120)) {
        let bytes: Vec<u8> = bytes.iter().map(|&b| b as u8).collect();
        let text = String::from_utf8_lossy(&bytes).into_owned();
        let _ = JsonValue::parse(&text);
        let _ = Query::from_json(&text);
        let _ = Response::from_json(&text);
    }

    #[test]
    fn truncated_query_frames_are_typed_errors(cut in 0usize..4096) {
        let full = wire_query().to_json();
        // The document opens with '{', so every strict prefix is incomplete.
        let cut = cut % full.len(); // strict prefix
        let prefix = &full[..cut];
        match Query::from_json(prefix) {
            Err(QueryError::Parse(_)) => {}
            other => prop_assert!(false, "prefix of len {} gave {:?}", cut, other),
        }
    }

    #[test]
    fn byte_flipped_query_frames_never_panic(
        cut in 0usize..4096,
        flip in 0usize..1024,
    ) {
        let full = wire_query().to_json();
        let mut bytes = full.into_bytes();
        let at = cut % bytes.len();
        bytes[at] = SOUP[flip % SOUP.len()];
        let text = String::from_utf8_lossy(&bytes).into_owned();
        // Either it still decodes to a valid query (flip hit a digit or
        // whitespace-equivalent position) or it is a typed error.
        if let Ok(q) = Query::from_json(&text) {
            // Whatever decoded must re-validate on a round trip.
            prop_assert_eq!(Query::from_json(&q.to_json()).unwrap(), q);
        }
    }

    #[test]
    fn generated_documents_round_trip(
        ints in proptest::collection::vec(0u64..u64::MAX, 1..8),
        floats in proptest::collection::vec(-1.0e12_f64..1.0e12, 1..8),
        key_picks in proptest::collection::vec(0usize..1024, 1..8),
        flag in 0u8..2,
    ) {
        let doc = JsonValue::Obj(vec![
            (
                "ints".into(),
                JsonValue::Arr(ints.iter().map(|&x| JsonValue::num_u64(x)).collect()),
            ),
            (
                "floats".into(),
                JsonValue::Arr(floats.iter().map(|&x| JsonValue::num_f64(x)).collect()),
            ),
            (soup_string(&key_picks), JsonValue::Bool(flag == 1)),
            (
                "nested".into(),
                JsonValue::Obj(vec![
                    ("null".into(), JsonValue::Null),
                    ("str".into(), JsonValue::Str(soup_string(&key_picks))),
                ]),
            ),
        ]);
        let rendered = doc.to_string();
        prop_assert_eq!(JsonValue::parse(&rendered).unwrap(), doc);
    }

    #[test]
    fn nesting_bombs_are_rejected_at_any_size(extra in 1usize..4096) {
        let depth = MAX_DEPTH + extra;
        let bomb = format!("{}1{}", "[".repeat(depth), "]".repeat(depth));
        prop_assert!(JsonValue::parse(&bomb).unwrap_err().contains("nesting deeper"));
        // Unclosed variant (the truncated-frame shape of the same attack).
        let bomb = "[".repeat(depth);
        prop_assert!(JsonValue::parse(&bomb).is_err());
    }
}

#[test]
fn nan_and_infinity_tokens_are_rejected_in_queries() {
    for tau in ["NaN", "Infinity", "-Infinity", "nan", "1e", "0x10"] {
        let text = format!(r#"{{"pattern":[1],"objective":{{"type":"threshold","tau":{tau}}}}}"#);
        assert!(
            matches!(Query::from_json(&text), Err(QueryError::Parse(_))),
            "accepted tau={tau}"
        );
    }
    // A finite-looking token that overflows to infinity is caught by query
    // validation rather than the parser — still typed, never a panic.
    let text = r#"{"pattern":[1],"objective":{"type":"threshold","tau":1e999}}"#;
    assert!(matches!(
        Query::from_json(text),
        Err(QueryError::InvalidTau(_))
    ));
}

#[test]
fn duplicate_keys_decode_first_wins_not_panic() {
    // Duplicate keys are not merged; the first wins throughout decoding.
    let text =
        r#"{"pattern":[1,2],"pattern":[9],"objective":{"type":"threshold","tau":1.5,"tau":99}}"#;
    let q = Query::from_json(text).unwrap();
    assert_eq!(q.pattern(), &[1, 2]);
    assert!(matches!(
        q.objective(),
        trajsearch_core::Objective::Threshold { tau } if tau == 1.5
    ));
}

#[test]
fn truncated_response_frames_are_typed_errors() {
    let text = r#"{"matches":[{"id":3,"start":1,"end":4,"dist":0.5}],"stats":{"mincand_ns":1,"lookup_ns":2,"verify_ns":3,"candidates":4,"candidates_after_temporal":4,"candidates_deduped":3,"tsubseq_len":2,"fallback":false,"sw_columns":9,"columns_passed":8,"stepdp_calls":7,"results":1}}"#;
    let full = Response::from_json(text).unwrap();
    assert_eq!(Response::from_json(&full.to_json()).unwrap(), full);
    for cut in 0..text.len() {
        assert!(
            matches!(Response::from_json(&text[..cut]), Err(QueryError::Parse(_))),
            "prefix of len {cut} accepted"
        );
    }
}
