//! Randomized equivalence: batched/parallel execution must be byte-identical
//! to the sequential engine.
//!
//! `run_batch` runs each query on one worker and `Parallelism::InQuery`
//! shards one query's verification across workers; in both cases workers
//! never share mutable state and the per-triple min-merge is associative,
//! so the outcomes — match triples *and* `f64` distances — must equal the
//! sequential `run` exactly (`assert_eq!`, no epsilon) across verify modes,
//! temporal constraints, thread counts, and the fallback path.

use proptest::prelude::*;
use rnet::{CityParams, NetworkKind, RoadNetwork};
use std::sync::Arc;
use traj::{Trajectory, TrajectoryStore};
use trajsearch_core::batch::BatchOptions;
use trajsearch_core::{
    EngineBuilder, Parallelism, Query, SearchOptions, TemporalConstraint, TimeInterval, VerifyMode,
};
use wed::models::{Edr, Erp, Lev};
use wed::{Sym, WedInstance};

fn net() -> Arc<RoadNetwork> {
    Arc::new(CityParams::tiny(NetworkKind::Grid).generate())
}

/// Timed store: trajectory `i` departs at `10·i` with unit steps, so small
/// query intervals split the store into in-window and out-of-window parts.
fn timed_store(paths: Vec<Vec<Sym>>) -> TrajectoryStore {
    paths
        .into_iter()
        .enumerate()
        .map(|(i, p)| {
            let t0 = 10.0 * i as f64;
            let times: Vec<f64> = (0..p.len()).map(|k| t0 + k as f64).collect();
            Trajectory::new(p, times)
        })
        .collect()
}

/// Asserts batch (at several worker counts) and in-query parallel
/// verification both reproduce the sequential outcome exactly.
fn queries_for(workload: &[(Vec<Sym>, f64)], opts: SearchOptions) -> Vec<Query> {
    workload
        .iter()
        .map(|(q, tau)| {
            let mut b = Query::threshold(q.clone(), *tau)
                .verify(opts.verify)
                .temporal_filter(opts.temporal_filter);
            if let Some(c) = opts.temporal {
                b = b.temporal(c);
            }
            b.build().expect("workload queries are valid")
        })
        .collect()
}

fn check_equivalence<M: WedInstance + Sync>(
    model: M,
    store: &TrajectoryStore,
    alphabet: usize,
    workload: &[(Vec<Sym>, f64)],
    opts: SearchOptions,
) -> Result<(), TestCaseError> {
    let engine = EngineBuilder::new(model, store, alphabet).build();
    let queries = queries_for(workload, opts);
    let want: Vec<_> = queries
        .iter()
        .map(|q| engine.run(q).expect("sequential run"))
        .collect();

    for threads in [1, 2, 4] {
        let got = engine
            .run_batch(&queries, BatchOptions::with_threads(threads))
            .expect("batch admitted");
        prop_assert_eq!(got.responses.len(), want.len());
        for (i, (g, w)) in got.responses.iter().zip(&want).enumerate() {
            // Byte-identical: same triples, same f64 distances, same order.
            prop_assert_eq!(
                &g.matches,
                &w.matches,
                "batch query {} at {} threads",
                i,
                threads
            );
            prop_assert_eq!(g.stats.fallback, w.stats.fallback);
            prop_assert_eq!(g.stats.candidates, w.stats.candidates);
            prop_assert_eq!(g.stats.candidates_deduped, w.stats.candidates_deduped);
            prop_assert_eq!(g.stats.results, w.stats.results);
        }

        // The opt-in shared trie cache must never change results — only
        // which worker computes a DP column first.
        let shared = engine
            .run_batch(
                &queries,
                BatchOptions::with_threads(threads).share_tries(true),
            )
            .expect("shared-cache batch admitted");
        for (i, (g, w)) in shared.responses.iter().zip(&want).enumerate() {
            prop_assert_eq!(
                &g.matches,
                &w.matches,
                "shared-cache batch query {} at {} threads",
                i,
                threads
            );
            prop_assert_eq!(g.stats.fallback, w.stats.fallback);
            prop_assert_eq!(g.stats.candidates, w.stats.candidates);
            prop_assert_eq!(g.stats.results, w.stats.results);
        }

        for (i, query) in queries.iter().enumerate() {
            let par = Query::from_json(&query.to_json())
                .expect("wire round-trip")
                .with_parallelism(Parallelism::InQuery(threads))
                .expect("threads >= 1");
            let g = engine.run(&par).expect("parallel run");
            prop_assert_eq!(
                &g.matches,
                &want[i].matches,
                "in-query parallel query {} at {} threads",
                i,
                threads
            );
        }
    }
    Ok(())
}

/// A repeated-query Trie-mode batch: with `share_tries` on, the first
/// execution of the pattern materializes the DP columns and every repeat
/// reuses them, so the merged `stepdp_calls` (the CMR numerator) drops
/// strictly below the private-trie baseline while matches stay
/// byte-identical at every thread count.
#[test]
fn shared_cache_repeated_batch_is_byte_identical_and_cheaper() {
    let store: TrajectoryStore = vec![
        vec![0, 1, 2, 3, 4],
        vec![3, 1, 5, 1, 2],
        vec![1, 2, 1, 2, 1],
        vec![2, 3, 4, 5, 6],
    ]
    .into_iter()
    .map(Trajectory::untimed)
    .collect();
    let engine = EngineBuilder::new(Lev, &store, 12).build();
    let q = Query::threshold(vec![1, 2, 3], 2.0)
        .verify(VerifyMode::Trie)
        .build()
        .unwrap();
    let queries: Vec<Query> = (0..8).map(|_| q.clone()).collect();

    let private = engine
        .run_batch(&queries, BatchOptions::with_threads(1))
        .unwrap();
    assert!(
        private.stats.merged.stepdp_calls > 0,
        "workload must exercise trie verification"
    );
    assert_eq!(private.stats.merged.trie_cache_hits, 0);
    assert_eq!(private.stats.merged.trie_cache_misses, 0);

    for threads in [1, 2, 4] {
        let shared = engine
            .run_batch(
                &queries,
                BatchOptions::with_threads(threads).share_tries(true),
            )
            .unwrap();
        for (i, (g, w)) in shared.responses.iter().zip(&private.responses).enumerate() {
            assert_eq!(g.matches, w.matches, "query {i} at {threads} threads");
        }
        assert!(
            shared.stats.merged.stepdp_calls < private.stats.merged.stepdp_calls,
            "sharing must reduce fresh columns at {threads} threads: {} !< {}",
            shared.stats.merged.stepdp_calls,
            private.stats.merged.stepdp_calls
        );
        assert!(
            shared.stats.merged.trie_cache_hits > 0,
            "repeats must hit the warm tries at {threads} threads"
        );
        // One miss per distinct (anchor-relative) query suffix, regardless
        // of thread interleaving.
        assert_eq!(
            shared.stats.merged.trie_cache_misses,
            engine
                .run_batch(&queries, BatchOptions::with_threads(1).share_tries(true))
                .unwrap()
                .stats
                .merged
                .trie_cache_misses,
            "misses are deterministic at {threads} threads"
        );
    }
}

/// Overlapping (not identical) patterns: different thresholds over the same
/// pattern and different patterns sharing anchor suffixes still verify to
/// byte-identical results with the batch cache on.
#[test]
fn shared_cache_overlapping_batch_is_byte_identical() {
    let store: TrajectoryStore = vec![
        vec![0, 1, 2, 3, 4],
        vec![3, 1, 5, 1, 2],
        vec![1, 2, 1, 2, 1],
        vec![9, 8, 7, 6],
    ]
    .into_iter()
    .map(Trajectory::untimed)
    .collect();
    let engine = EngineBuilder::new(Lev, &store, 12).build();
    let queries: Vec<Query> = [
        (vec![1, 2, 3], 1.0),
        (vec![1, 2, 3], 2.0), // same pattern, wider τ: same suffix set
        (vec![5, 2, 3], 2.0), // distinct pattern sharing the [2,3] suffix
        (vec![1, 2], 1.5),
        (vec![1, 2, 3], 3.0),
    ]
    .into_iter()
    .map(|(p, tau)| {
        Query::threshold(p, tau)
            .verify(VerifyMode::Trie)
            .build()
            .unwrap()
    })
    .collect();

    let want: Vec<_> = queries.iter().map(|q| engine.run(q).unwrap()).collect();
    for threads in [1, 2, 4] {
        let shared = engine
            .run_batch(
                &queries,
                BatchOptions::with_threads(threads).share_tries(true),
            )
            .unwrap();
        for (i, (g, w)) in shared.responses.iter().zip(&want).enumerate() {
            assert_eq!(g.matches, w.matches, "query {i} at {threads} threads");
            assert_eq!(g.stats.results, w.stats.results);
        }
        assert!(shared.stats.merged.trie_cache_hits > 0);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Unit costs, every verify mode, including infeasible-τ workloads that
    /// exercise the fallback scan inside a batch.
    #[test]
    fn batch_equals_sequential_for_lev(
        paths in proptest::collection::vec(proptest::collection::vec(0u32..12, 1..12), 1..8),
        queries in proptest::collection::vec(
            (proptest::collection::vec(0u32..12, 1..6), 1u32..4),
            1..5,
        ),
        mode_i in 0usize..3,
    ) {
        let store: TrajectoryStore = paths.into_iter().map(Trajectory::untimed).collect();
        // tau > |Q| makes Lev filtering infeasible: mixing feasible and
        // fallback queries in one workload is the interesting case.
        let workload: Vec<(Vec<Sym>, f64)> = queries
            .into_iter()
            .map(|(q, tau_i)| {
                let tau = tau_i as f64;
                (q, tau)
            })
            .collect();
        let mode = [VerifyMode::Trie, VerifyMode::Local, VerifyMode::Sw][mode_i];
        let opts = SearchOptions { verify: mode, ..Default::default() };
        check_equivalence(Lev, &store, 12, &workload, opts)?;
    }

    /// Network-backed EDR with spatial neighborhoods.
    #[test]
    fn batch_equals_sequential_for_edr(
        paths in proptest::collection::vec(proptest::collection::vec(0u32..64, 1..10), 1..6),
        queries in proptest::collection::vec(
            (proptest::collection::vec(0u32..64, 1..5), 1u32..4),
            1..4,
        ),
        mode_i in 0usize..3,
    ) {
        let n = net();
        let edr = Edr::new(n.clone(), 130.0);
        let store: TrajectoryStore = paths.into_iter().map(Trajectory::untimed).collect();
        let workload: Vec<(Vec<Sym>, f64)> = queries
            .into_iter()
            .map(|(q, tau_i)| (q, tau_i as f64))
            .collect();
        let mode = [VerifyMode::Trie, VerifyMode::Local, VerifyMode::Sw][mode_i];
        let opts = SearchOptions { verify: mode, ..Default::default() };
        check_equivalence(&edr, &store, n.num_vertices(), &workload, opts)?;
    }

    /// ERP: continuous costs where large τ forces the fallback scan.
    #[test]
    fn batch_equals_sequential_for_erp_with_fallback(
        paths in proptest::collection::vec(proptest::collection::vec(0u32..64, 1..8), 1..5),
        queries in proptest::collection::vec(
            (proptest::collection::vec(0u32..64, 1..4), 30.0f64..3000.0),
            1..4,
        ),
    ) {
        let n = net();
        let erp = Erp::new(n.clone(), 150.0);
        let store: TrajectoryStore = paths.into_iter().map(Trajectory::untimed).collect();
        let workload: Vec<(Vec<Sym>, f64)> = queries.into_iter().collect();
        let opts = SearchOptions::default();
        check_equivalence(&erp, &store, n.num_vertices(), &workload, opts)?;
    }

    /// Temporal constraints, with and without the TF candidate pre-filter.
    #[test]
    fn batch_equals_sequential_under_temporal_constraints(
        paths in proptest::collection::vec(proptest::collection::vec(0u32..12, 1..10), 1..8),
        queries in proptest::collection::vec(
            (proptest::collection::vec(0u32..12, 1..5), 1u32..4),
            1..4,
        ),
        win_start in 0.0f64..60.0,
        win_len in 1.0f64..40.0,
        tf_i in 0u32..2,
        mode_i in 0usize..3,
    ) {
        let tf = tf_i == 1;
        let store = timed_store(paths);
        let workload: Vec<(Vec<Sym>, f64)> = queries
            .into_iter()
            .map(|(q, tau_i)| (q, tau_i as f64))
            .collect();
        let constraint =
            TemporalConstraint::overlaps(TimeInterval::new(win_start, win_start + win_len));
        let opts = SearchOptions {
            verify: [VerifyMode::Trie, VerifyMode::Local, VerifyMode::Sw][mode_i],
            temporal: Some(constraint),
            temporal_filter: tf,
            ..Default::default()
        };
        check_equivalence(Lev, &store, 12, &workload, opts)?;
    }
}
