//! Randomized equivalence of the unified surface vs every legacy entry
//! point, plus wire-format round-trip properties.
//!
//! The API redesign's contract is that `SearchEngine::run`/`run_batch` are
//! pure re-plumbing: for every option combination the legacy methods could
//! express — verify modes × temporal constraints (TF and by-departure
//! postings included) × index layouts × thread counts — the unified surface
//! returns **byte-identical** results (`assert_eq!` on matches including
//! `f64` distances, no epsilon) to `search`, `search_opts`,
//! `par_search_opts`, `search_top_k` and `search_batch`. JSON round-trips
//! (`from_json(to_json(q)) == q`, same for responses) are property-tested
//! on the same random workloads.

#![allow(deprecated)] // exercising the legacy entry points is the point

use proptest::prelude::*;
use traj::{Trajectory, TrajectoryStore};
use trajsearch_core::batch::BatchOptions;
use trajsearch_core::{
    EngineBuilder, IndexLayout, Parallelism, Query, Response, SearchEngine, SearchOptions,
    SearchOutcome, TemporalConstraint, TimeInterval, VerifyMode,
};
use wed::models::Lev;
use wed::Sym;

const ALPHABET: usize = 12;

/// Timed store: trajectory `i` departs at `10·i` with unit steps, so small
/// query intervals split the store into in-window and out-of-window parts.
fn timed_store(paths: Vec<Vec<Sym>>) -> TrajectoryStore {
    paths
        .into_iter()
        .enumerate()
        .map(|(i, p)| {
            let t0 = 10.0 * i as f64;
            let times: Vec<f64> = (0..p.len()).map(|k| t0 + k as f64).collect();
            Trajectory::new(p, times)
        })
        .collect()
}

/// The full legacy option grid: every verify mode × no-temporal / temporal
/// with and without the TF pre-filter and the by-departure postings path.
fn option_grid(constraint: TemporalConstraint) -> Vec<SearchOptions> {
    let mut grid = Vec::new();
    for verify in [VerifyMode::Trie, VerifyMode::Local, VerifyMode::Sw] {
        grid.push(SearchOptions {
            verify,
            ..Default::default()
        });
        for (tf, use_dep) in [(false, false), (true, false), (false, true), (true, true)] {
            grid.push(SearchOptions {
                verify,
                temporal: Some(constraint),
                temporal_filter: tf,
                use_temporal_postings: use_dep,
                ..Default::default()
            });
        }
    }
    grid
}

/// The unified `Query` equivalent of a legacy `(pattern, tau, opts)` call
/// against an engine whose temporal-postings availability is `available`
/// (the legacy path silently fell back; the unified path must be told).
fn unified(q: &[Sym], tau: f64, opts: SearchOptions, available: bool) -> Query {
    let mut b = Query::threshold(q, tau)
        .verify(opts.verify)
        .temporal_filter(opts.temporal_filter)
        .temporal_postings(opts.use_temporal_postings && available && opts.temporal.is_some());
    if let Some(c) = opts.temporal {
        b = b.temporal(c);
    }
    b.build().expect("legacy-expressible queries are valid")
}

fn assert_same(got: &Response, want: &SearchOutcome, label: &str) -> Result<(), TestCaseError> {
    prop_assert_eq!(&got.matches, &want.matches, "matches diverged ({})", label);
    prop_assert_eq!(got.stats.fallback, want.stats.fallback, "{}", label);
    prop_assert_eq!(got.stats.candidates, want.stats.candidates, "{}", label);
    prop_assert_eq!(
        got.stats.candidates_after_temporal,
        want.stats.candidates_after_temporal,
        "{}",
        label
    );
    prop_assert_eq!(
        got.stats.candidates_deduped,
        want.stats.candidates_deduped,
        "{}",
        label
    );
    prop_assert_eq!(got.stats.tsubseq_len, want.stats.tsubseq_len, "{}", label);
    prop_assert_eq!(got.stats.results, want.stats.results, "{}", label);
    prop_assert_eq!(got.stats.sw_columns, want.stats.sw_columns, "{}", label);
    prop_assert_eq!(
        got.stats.columns_passed,
        want.stats.columns_passed,
        "{}",
        label
    );
    prop_assert_eq!(got.stats.stepdp_calls, want.stats.stepdp_calls, "{}", label);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// `run` / `run_batch` vs `search` / `search_opts` / `par_search_opts` /
    /// `search_batch`, across the whole option grid and three layouts
    /// (legacy single-list engine, builder single, builder sharded).
    #[test]
    fn run_matches_every_legacy_threshold_path(
        paths in proptest::collection::vec(
            proptest::collection::vec(0u32..(ALPHABET as u32), 1..10),
            1..8,
        ),
        queries in proptest::collection::vec(
            // tau up to 4 > |Q| is possible: exercises the fallback scan.
            (proptest::collection::vec(0u32..(ALPHABET as u32), 1..5), 1u32..4),
            1..4,
        ),
        win_start in 0.0f64..60.0,
        win_len in 1.0f64..40.0,
    ) {
        let store = timed_store(paths);
        let workload: Vec<(Vec<Sym>, f64)> = queries
            .into_iter()
            .map(|(q, tau_i)| (q, tau_i as f64))
            .collect();
        let constraint =
            TemporalConstraint::overlaps(TimeInterval::new(win_start, win_start + win_len));

        // The legacy engine answers through the deprecated wrappers; the
        // unified engines answer through `run`. All three must agree.
        let legacy = SearchEngine::with_temporal_postings(Lev, &store, ALPHABET);
        let single = EngineBuilder::new(Lev, &store, ALPHABET)
            .temporal_postings(true)
            .build();
        let sharded = EngineBuilder::new(Lev, &store, ALPHABET)
            .layout(IndexLayout::Sharded(3))
            .temporal_postings(true)
            .build();

        for opts in option_grid(constraint) {
            let unified_queries: Vec<Query> = workload
                .iter()
                .map(|(q, tau)| unified(q, *tau, opts, true))
                .collect();
            for ((q, tau), query) in workload.iter().zip(&unified_queries) {
                let want = legacy.search_opts(q, *tau, opts);
                let label = format!("opts={opts:?}, q={q:?}, tau={tau}");
                assert_same(&legacy.run(query).unwrap(), &want, &format!("legacy/run {label}"))?;
                assert_same(&single.run(query).unwrap(), &want, &format!("single {label}"))?;
                assert_same(&sharded.run(query).unwrap(), &want, &format!("sharded {label}"))?;

                // In-query parallelism vs the legacy parallel wrapper.
                let par_want = legacy.par_search_opts(q, *tau, opts, 2);
                let par_query = query
                    .clone()
                    .with_parallelism(Parallelism::InQuery(2))
                    .unwrap();
                assert_same(
                    &single.run(&par_query).unwrap(),
                    &par_want,
                    &format!("par {label}"),
                )?;
            }

            // Whole-batch path vs the legacy tuple-workload wrapper.
            let want_batch = legacy.search_batch(&workload, BatchOptions::with_threads(2), opts);
            for engine_batch in [
                single.run_batch(&unified_queries, BatchOptions::with_threads(2)).unwrap(),
                sharded.run_batch(&unified_queries, BatchOptions::with_threads(2)).unwrap(),
            ] {
                prop_assert_eq!(engine_batch.responses.len(), want_batch.outcomes.len());
                for (i, (got, want)) in engine_batch
                    .responses
                    .iter()
                    .zip(&want_batch.outcomes)
                    .enumerate()
                {
                    assert_same(got, want, &format!("batch query {i}, opts={opts:?}"))?;
                }
            }
        }
    }

    /// Top-k: `run(Query::top_k)` vs the legacy `search_top_k`, at both
    /// layouts, including k larger than the match count and tight max_tau.
    #[test]
    fn run_matches_legacy_top_k(
        paths in proptest::collection::vec(
            proptest::collection::vec(0u32..(ALPHABET as u32), 1..10),
            1..8,
        ),
        q in proptest::collection::vec(0u32..(ALPHABET as u32), 1..5),
        k in 1usize..6,
        tau0_i in 1u32..3,
        growth in 1u32..4,
    ) {
        let store = timed_store(paths);
        let initial_tau = tau0_i as f64 * 0.5;
        let max_tau = initial_tau * (1 << growth) as f64;
        let legacy = SearchEngine::new(Lev, &store, ALPHABET);
        let want = legacy.search_top_k(&q, k, initial_tau, max_tau);
        for layout in [IndexLayout::Single, IndexLayout::Sharded(2), IndexLayout::Compact] {
            let engine = EngineBuilder::new(Lev, &store, ALPHABET).layout(layout.clone()).build();
            let query = Query::top_k(q.clone(), k, initial_tau, max_tau).build().unwrap();
            let got = engine.run(&query).unwrap().ranked();
            prop_assert_eq!(
                &got,
                &want,
                "top-k diverged (layout={:?}, k={}, tau0={}, max={})",
                layout,
                k,
                initial_tau,
                max_tau
            );
        }
    }

    /// Wire format: `Query::from_json(q.to_json()) == q` over the whole
    /// builder space, and responses round-trip bit-for-bit off real runs.
    #[test]
    fn json_round_trips(
        paths in proptest::collection::vec(
            proptest::collection::vec(0u32..(ALPHABET as u32), 1..10),
            1..6,
        ),
        pattern in proptest::collection::vec(0u32..(ALPHABET as u32), 1..6),
        tau in 0.1f64..10.0,
        k in 1usize..5,
        verify_i in 0usize..3,
        predicate_i in 0usize..2,
        temporal_i in 0usize..3,
        tf in 0u32..2,
        par_i in 0usize..3,
        win_start in -5.0f64..60.0,
        win_len in 0.0f64..40.0,
    ) {
        let interval = TimeInterval::new(win_start, win_start + win_len);
        let constraint = if predicate_i == 0 {
            TemporalConstraint::overlaps(interval)
        } else {
            TemporalConstraint::within(interval)
        };
        // temporal_i: 0 = none, 1 = constraint only, 2 = constraint + postings
        let mut builder = Query::threshold(pattern.clone(), tau)
            .verify([VerifyMode::Trie, VerifyMode::Local, VerifyMode::Sw][verify_i])
            .temporal_filter(tf == 1 && temporal_i > 0)
            .parallelism([
                Parallelism::Sequential,
                Parallelism::InQuery(2),
                Parallelism::InQuery(7),
            ][par_i]);
        if temporal_i > 0 {
            builder = builder.temporal(constraint).temporal_postings(temporal_i == 2);
        }
        let query = builder.build().unwrap();
        prop_assert_eq!(&Query::from_json(&query.to_json()).unwrap(), &query);

        // Top-k queries round-trip too.
        let topk = Query::top_k(pattern, k, tau, tau * 4.0).build().unwrap();
        prop_assert_eq!(&Query::from_json(&topk.to_json()).unwrap(), &topk);

        // Responses (matches with f64 distances + stats counters/timings)
        // round-trip bit-for-bit off a real engine run.
        let store = timed_store(paths);
        let engine = EngineBuilder::new(Lev, &store, ALPHABET)
            .temporal_postings(true)
            .build();
        for q in [&query, &topk] {
            let response = engine.run(q).unwrap();
            prop_assert_eq!(
                Response::from_json(&response.to_json()).unwrap(),
                response,
                "response round-trip for {}",
                q.to_json()
            );
        }
    }
}
