//! Randomized equivalence: the non-WED metric back halves (DTW, LCSS(ε),
//! discrete Fréchet) must agree with the brute-force oracles in
//! `baselines::metric_naive` — through every index layout and execution
//! schedule, since neither may observe the metric.
//!
//! The suite also pins the [`SearchStats`] attribution contract of the
//! metric-pluggable verifier refactor: non-WED paths charge their DP work
//! to the metric-neutral `verify_cost` and leave the WED-specific counters
//! (`sw_columns`, `columns_passed`, `stepdp_calls`) at zero, while the WED
//! strategies keep `verify_cost` in lock-step with their native counter.
//! (The remote-loopback leg of the equivalence matrix lives in
//! `crates/distrib/tests/metric_loopback.rs` — this crate has no
//! networking.)

use baselines::{naive_dtw_search, naive_frechet_search, naive_lcss_search};
use proptest::prelude::*;
use traj::{Trajectory, TrajectoryStore};
use trajsearch_core::batch::BatchOptions;
use trajsearch_core::{
    EngineBuilder, IndexLayout, MatchResult, Metric, Parallelism, Query, VerifyMode,
};
use wed::models::Lev;
use wed::Sym;

const ALPHABET: usize = 10;

fn store_from(paths: Vec<Vec<Sym>>) -> TrajectoryStore {
    paths.into_iter().map(Trajectory::untimed).collect()
}

fn oracle(metric: Metric, store: &TrajectoryStore, q: &[Sym], tau: f64) -> Vec<MatchResult> {
    match metric {
        Metric::Dtw => naive_dtw_search(&Lev, store, q, tau),
        Metric::Lcss { eps } => naive_lcss_search(&Lev, store, q, tau, eps),
        Metric::Frechet => naive_frechet_search(&Lev, store, q, tau),
        Metric::Wed => unreachable!("the WED oracle is baselines::naive_search"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Engine == oracle for each metric, across Single/Sharded/Compact
    /// layouts and Sequential/InQuery schedules, distances compared
    /// bit-for-bit.
    #[test]
    fn metric_engines_match_their_oracles(
        paths in proptest::collection::vec(
            proptest::collection::vec(0u32..(ALPHABET as u32), 1..12),
            1..7,
        ),
        pattern in proptest::collection::vec(0u32..(ALPHABET as u32), 1..5),
        tau_i in 0usize..4,
    ) {
        let tau = [0.5, 1.0, 2.0, 3.0][tau_i];
        let store = store_from(paths);
        for metric in [Metric::Dtw, Metric::Lcss { eps: 0.0 }, Metric::Frechet] {
            let want = oracle(metric, &store, &pattern, tau);
            for layout in [IndexLayout::Single, IndexLayout::Sharded(3), IndexLayout::Compact] {
                let engine = EngineBuilder::new(&Lev, &store, ALPHABET)
                    .layout(layout.clone())
                    .build();
                for parallelism in [Parallelism::Sequential, Parallelism::InQuery(2)] {
                    let query = Query::threshold(pattern.clone(), tau)
                        .metric(metric)
                        .parallelism(parallelism)
                        .build()
                        .unwrap();
                    let got = engine.run(&query).expect("metric run");
                    prop_assert_eq!(
                        &got.matches, &want,
                        "metric={:?} layout={:?} par={:?}", metric, layout, parallelism
                    );
                    // Attribution: non-WED verification never touches the
                    // WED-specific counters…
                    prop_assert_eq!(got.stats.sw_columns, 0);
                    prop_assert_eq!(got.stats.columns_passed, 0);
                    prop_assert_eq!(got.stats.stepdp_calls, 0);
                    // …and any scan work shows up in `verify_cost`.
                    if !want.is_empty() {
                        prop_assert!(got.stats.verify_cost > 0);
                    }
                    prop_assert_eq!(got.stats.results, want.len());
                }
            }
        }
    }

    /// WED keeps `verify_cost` in lock-step with the native counter of the
    /// chosen strategy: `columns_passed` for Local/Trie (columns actually
    /// visited), `sw_columns` for SW (one full scan per distinct
    /// trajectory).
    #[test]
    fn wed_verify_cost_mirrors_the_strategy_counters(
        paths in proptest::collection::vec(
            proptest::collection::vec(0u32..(ALPHABET as u32), 1..12),
            1..7,
        ),
        pattern in proptest::collection::vec(0u32..(ALPHABET as u32), 1..5),
        tau_i in 0usize..2,
    ) {
        let tau = [1.0, 2.0][tau_i];
        let store = store_from(paths);
        let engine = EngineBuilder::new(&Lev, &store, ALPHABET).build();
        for mode in [VerifyMode::Trie, VerifyMode::Local, VerifyMode::Sw] {
            let query = Query::threshold(pattern.clone(), tau)
                .verify(mode)
                .build()
                .unwrap();
            let got = engine.run(&query).expect("wed run");
            // On the fallback scan (no τ-subsequence) every mode runs the
            // same exact SW scan, so `sw_columns` is the native counter.
            let native = if got.stats.fallback {
                got.stats.sw_columns
            } else {
                match mode {
                    VerifyMode::Sw => got.stats.sw_columns,
                    VerifyMode::Trie | VerifyMode::Local => got.stats.columns_passed,
                }
            };
            prop_assert_eq!(
                got.stats.verify_cost, native,
                "mode={:?}", mode
            );
        }
    }
}

/// Mixed-metric batches come free from dispatching per query: each response
/// is byte-identical to its standalone `run`.
#[test]
fn mixed_metric_batch_matches_individual_runs() {
    let store = store_from(vec![
        vec![0, 1, 2, 3, 4],
        vec![3, 1, 5, 1, 2],
        vec![1, 2, 1, 2, 1],
        vec![9, 8, 7, 6],
    ]);
    let engine = EngineBuilder::new(&Lev, &store, ALPHABET)
        .layout(IndexLayout::Sharded(2))
        .build();
    let pattern = vec![1, 2, 3];
    let queries: Vec<Query> = [
        Metric::Wed,
        Metric::Dtw,
        Metric::Lcss { eps: 0.0 },
        Metric::Frechet,
    ]
    .into_iter()
    .map(|metric| {
        Query::threshold(pattern.clone(), 2.0)
            .metric(metric)
            .build()
            .unwrap()
    })
    .collect();

    let batch = engine
        .run_batch(&queries, BatchOptions::with_threads(2))
        .expect("mixed-metric batch admitted");
    assert_eq!(batch.responses.len(), queries.len());
    for (query, got) in queries.iter().zip(&batch.responses) {
        let want = engine.run(query).expect("standalone run");
        assert_eq!(got.matches, want.matches, "metric {:?}", query.metric());
    }
}

/// The WED fallback scan now also charges `verify_cost` (same units as
/// `sw_columns` there), so merged workload stats stay comparable across
/// indexed and fallback rows.
#[test]
fn wed_fallback_scan_charges_verify_cost() {
    use rnet::{CityParams, NetworkKind};
    use std::sync::Arc;
    use wed::models::Erp;

    let net = Arc::new(CityParams::tiny(NetworkKind::Grid).generate());
    let erp = Erp::new(net.clone(), 5.0);
    let store = store_from(vec![vec![0, 1, 2], vec![10, 11]]);
    let engine = EngineBuilder::new(&erp, &store, net.num_vertices()).build();
    let out = engine
        .run(&Query::threshold(vec![0, 1], 1e9).build().unwrap())
        .expect("fallback run");
    assert!(out.stats.fallback);
    assert!(out.stats.verify_cost > 0);
    assert_eq!(out.stats.verify_cost, out.stats.sw_columns);
}
