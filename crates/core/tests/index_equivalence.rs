//! Randomized equivalence: `ShardedIndex` and `CompactIndex` must be
//! indistinguishable from `InvertedIndex` through every consumer surface.
//!
//! Sharding partitions the postings lists by `traj_id % num_shards`, and
//! compaction re-encodes them delta+varint in one arena; nothing downstream
//! may observe either. The suite checks, for random stores and shard counts
//! in {1, 2, 3, 7}:
//!
//! * the *index* surface — postings sets, `freq`, spans,
//!   `postings_departing_by` — agrees record-for-record (as multisets; the
//!   trait documents iteration order as source-defined);
//! * the *engine* surface — full `SearchEngine` results — is byte-identical
//!   (`assert_eq!` on matches including `f64` distances, no epsilon) across
//!   shard counts, for all verify modes × temporal on/off (TF and
//!   by-departure postings included) × append-after-build.

use proptest::prelude::*;
use traj::{TrajId, Trajectory, TrajectoryStore};
use trajsearch_core::batch::BatchOptions;
use trajsearch_core::{
    AnyIndex, CompactIndex, EngineBuilder, InvertedIndex, Parallelism, Posting, PostingSource,
    Query, SearchEngine, SearchOptions, ShardedIndex, TemporalConstraint, TimeInterval, VerifyMode,
};
use wed::models::Lev;
use wed::Sym;

const SHARD_COUNTS: [usize; 4] = [1, 2, 3, 7];
const ALPHABET: usize = 12;

/// Timed store: trajectory `i` departs at `10·i` with unit steps, so small
/// query intervals split the store into in-window and out-of-window parts.
fn timed_store(paths: Vec<Vec<Sym>>) -> TrajectoryStore {
    paths
        .into_iter()
        .enumerate()
        .map(|(i, p)| {
            let t0 = 10.0 * i as f64;
            let times: Vec<f64> = (0..p.len()).map(|k| t0 + k as f64).collect();
            Trajectory::new(p, times)
        })
        .collect()
}

fn sorted_postings(idx: &impl PostingSource, q: Sym) -> Vec<Posting> {
    let mut v: Vec<Posting> = idx.postings(q).collect();
    v.sort_unstable();
    v
}

fn sorted_departing(idx: &impl PostingSource, q: Sym, t_max: f64) -> Vec<(f64, Posting)> {
    let mut v: Vec<(f64, Posting)> = idx.postings_departing_by(q, t_max).collect();
    v.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
    v
}

/// Index-surface equivalence: sizes, freqs, spans, postings sets, and (when
/// both sides have temporal postings) the by-departure prefixes at several
/// cut points.
fn check_index_surface(
    candidate: &impl PostingSource,
    reference: &InvertedIndex,
) -> Result<(), TestCaseError> {
    prop_assert_eq!(candidate.alphabet_size(), reference.alphabet_size());
    prop_assert_eq!(candidate.num_trajectories(), reference.num_trajectories());
    prop_assert_eq!(candidate.total_postings(), reference.total_postings());
    for q in 0..reference.alphabet_size() as Sym {
        prop_assert_eq!(candidate.freq(q), reference.freq(q));
        prop_assert_eq!(
            sorted_postings(candidate, q),
            reference.postings(q).to_vec(),
            "postings set of symbol {} diverged",
            q
        );
    }
    for id in 0..reference.num_trajectories() as TrajId {
        prop_assert_eq!(candidate.span(id), reference.span(id));
    }
    prop_assert_eq!(
        candidate.has_temporal_postings(),
        reference.has_temporal_postings()
    );
    if reference.has_temporal_postings() {
        let horizon = 10.0 * reference.num_trajectories() as f64 + 20.0;
        for q in 0..reference.alphabet_size() as Sym {
            for t_max in [-1.0, 0.0, 5.0, 17.0, horizon] {
                prop_assert_eq!(
                    sorted_departing(candidate, q, t_max),
                    sorted_departing(reference, q, t_max),
                    "departing-by set of symbol {} at t_max {} diverged",
                    q,
                    t_max
                );
            }
        }
    }
    Ok(())
}

/// Engine-surface equivalence: byte-identical outcomes for one option set,
/// through the sequential, batch and in-query-parallel paths (the latter
/// two are generic over the source as well, so a regression that makes
/// them sensitive to shard-major candidate order must fail here).
fn unified_queries(
    workload: &[(Vec<Sym>, f64)],
    opts: SearchOptions,
    available: bool,
) -> Vec<Query> {
    workload
        .iter()
        .map(|(q, tau)| {
            let mut b = Query::threshold(q.clone(), *tau)
                .verify(opts.verify)
                .temporal_filter(opts.temporal_filter)
                // The unified surface rejects temporal-postings requests the
                // index cannot serve, so mirror availability here.
                .temporal_postings(
                    opts.use_temporal_postings && available && opts.temporal.is_some(),
                );
            if let Some(c) = opts.temporal {
                b = b.temporal(c);
            }
            b.build().expect("workload queries are valid")
        })
        .collect()
}

fn check_outcomes<I: PostingSource + Sync>(
    reference: &SearchEngine<'_, Lev, AnyIndex>,
    engine: &SearchEngine<'_, Lev, I>,
    workload: &[(Vec<Sym>, f64)],
    opts: SearchOptions,
    label: &str,
) -> Result<(), TestCaseError> {
    let available = engine.index().has_temporal_postings();
    let queries = unified_queries(workload, opts, available);
    for ((q, tau), query) in workload.iter().zip(&queries) {
        let want = reference.run(query).expect("reference run");
        let got = engine.run(query).expect("run");
        prop_assert_eq!(
            &got.matches,
            &want.matches,
            "matches diverged ({}, q={:?}, tau={})",
            label,
            q,
            tau
        );
        prop_assert_eq!(got.stats.fallback, want.stats.fallback);
        prop_assert_eq!(got.stats.candidates, want.stats.candidates);
        prop_assert_eq!(got.stats.candidates_deduped, want.stats.candidates_deduped);
        prop_assert_eq!(got.stats.tsubseq_len, want.stats.tsubseq_len);
        prop_assert_eq!(got.stats.results, want.stats.results);

        let par = engine
            .run(
                &query
                    .clone()
                    .with_parallelism(Parallelism::InQuery(2))
                    .expect("threads >= 1"),
            )
            .expect("parallel run");
        prop_assert_eq!(
            &par.matches,
            &want.matches,
            "in-query parallel run diverged ({}, q={:?}, tau={})",
            label,
            q,
            tau
        );
    }
    let batch = engine
        .run_batch(&queries, BatchOptions::with_threads(2))
        .expect("batch admitted");
    for (i, (query, got)) in queries.iter().zip(&batch.responses).enumerate() {
        let want = reference.run(query).expect("reference run");
        prop_assert_eq!(
            &got.matches,
            &want.matches,
            "run_batch query {} diverged ({})",
            i,
            label
        );
    }
    Ok(())
}

/// The full option grid: every verify mode × no-temporal / temporal with
/// and without the TF pre-filter and the by-departure postings path.
fn option_grid(constraint: TemporalConstraint) -> Vec<SearchOptions> {
    let mut grid = Vec::new();
    for verify in [VerifyMode::Trie, VerifyMode::Local, VerifyMode::Sw] {
        grid.push(SearchOptions {
            verify,
            ..Default::default()
        });
        for (tf, use_dep) in [(false, false), (true, false), (false, true), (true, true)] {
            grid.push(SearchOptions {
                verify,
                temporal: Some(constraint),
                temporal_filter: tf,
                use_temporal_postings: use_dep,
                ..Default::default()
            });
        }
    }
    grid
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Index surface: build — and append-after-build — agree with the
    /// single-list reference at every shard count.
    #[test]
    fn sharded_index_surface_matches_inverted(
        paths in proptest::collection::vec(
            proptest::collection::vec(0u32..(ALPHABET as u32), 1..10),
            0..10,
        ),
        split in 0usize..10,
        shard_i in 0usize..SHARD_COUNTS.len(),
    ) {
        let shards = SHARD_COUNTS[shard_i];
        let full = timed_store(paths);
        let split = split.min(full.len());

        // Straight build over the whole store.
        let mut reference = InvertedIndex::build(&full, ALPHABET);
        let mut sharded = ShardedIndex::build_parallel(&full, ALPHABET, shards);
        check_index_surface(&sharded, &reference)?;
        check_index_surface(&reference.to_compact(), &reference)?;
        reference.enable_temporal_postings();
        sharded.enable_temporal_postings();
        check_index_surface(&sharded, &reference)?;
        // Compacting either layout yields the same surface again.
        check_index_surface(&reference.to_compact(), &reference)?;
        check_index_surface(&CompactIndex::from_source(&sharded), &reference)?;

        // Build on a prefix, then append the rest to both sides: appends
        // must land exactly where a fresh build would have put them, and
        // must drop both sides' temporal orderings symmetrically.
        let base = full.prefix(split);
        let mut ref_app = InvertedIndex::build(&base, ALPHABET);
        let mut sh_app = ShardedIndex::build_parallel(&base, ALPHABET, shards);
        ref_app.enable_temporal_postings();
        sh_app.enable_temporal_postings();
        for id in split..full.len() {
            let t = full.get(id as TrajId);
            ref_app.append(id as TrajId, t);
            sh_app.append(id as TrajId, t);
        }
        check_index_surface(&sh_app, &ref_app)?;
        ref_app.enable_temporal_postings();
        sh_app.enable_temporal_postings();
        check_index_surface(&sh_app, &ref_app)?;
        // And the appended result equals the straight build, compacted too.
        check_index_surface(&sh_app, &reference)?;
        check_index_surface(&CompactIndex::from_source(&sh_app), &reference)?;
    }

    /// Engine surface: full search results are byte-identical across shard
    /// counts, for all verify modes × temporal on/off.
    #[test]
    fn search_results_identical_across_shard_counts(
        paths in proptest::collection::vec(
            proptest::collection::vec(0u32..(ALPHABET as u32), 1..10),
            1..8,
        ),
        queries in proptest::collection::vec(
            // tau up to 4 > |Q| is possible: exercises the fallback scan.
            (proptest::collection::vec(0u32..(ALPHABET as u32), 1..5), 1u32..4),
            1..4,
        ),
        win_start in 0.0f64..60.0,
        win_len in 1.0f64..40.0,
    ) {
        let store = timed_store(paths);
        let workload: Vec<(Vec<Sym>, f64)> = queries
            .into_iter()
            .map(|(q, tau_i)| (q, tau_i as f64))
            .collect();
        let constraint =
            TemporalConstraint::overlaps(TimeInterval::new(win_start, win_start + win_len));
        let reference = EngineBuilder::new(Lev, &store, ALPHABET)
            .temporal_postings(true)
            .build();

        for &shards in &SHARD_COUNTS {
            let mut idx = ShardedIndex::build_parallel(&store, ALPHABET, shards);
            idx.enable_temporal_postings();
            let compact = CompactIndex::from_source(&idx);
            let engine = EngineBuilder::new(Lev, &store, ALPHABET).build_with(idx);
            let compact_engine = EngineBuilder::new(Lev, &store, ALPHABET).build_with(compact);
            for opts in option_grid(constraint) {
                check_outcomes(
                    &reference,
                    &engine,
                    &workload,
                    opts,
                    &format!("{shards} shards, opts={opts:?}"),
                )?;
                check_outcomes(
                    &reference,
                    &compact_engine,
                    &workload,
                    opts,
                    &format!("compact of {shards} shards, opts={opts:?}"),
                )?;
            }
        }
    }

    /// Engine surface after appends: an index grown by `append` serves the
    /// same results as one built from scratch, at every shard count.
    #[test]
    fn search_results_identical_after_appends(
        paths in proptest::collection::vec(
            proptest::collection::vec(0u32..(ALPHABET as u32), 1..10),
            2..8,
        ),
        queries in proptest::collection::vec(
            (proptest::collection::vec(0u32..(ALPHABET as u32), 1..5), 1u32..3),
            1..4,
        ),
        split_i in 0usize..8,
        mode_i in 0usize..3,
    ) {
        let store = timed_store(paths);
        // Keep at least one trajectory in the base so the build is not
        // degenerate, and append at least zero (split may equal len).
        let split = 1 + split_i % store.len();
        let workload: Vec<(Vec<Sym>, f64)> = queries
            .into_iter()
            .map(|(q, tau_i)| (q, tau_i as f64))
            .collect();
        let opts = SearchOptions {
            verify: [VerifyMode::Trie, VerifyMode::Local, VerifyMode::Sw][mode_i],
            ..Default::default()
        };
        let reference = EngineBuilder::new(Lev, &store, ALPHABET).build();

        let base = store.prefix(split);
        for &shards in &SHARD_COUNTS {
            let mut idx = ShardedIndex::build_parallel(&base, ALPHABET, shards);
            for id in split..store.len() {
                idx.append(id as TrajId, store.get(id as TrajId));
            }
            let compact = CompactIndex::from_source(&idx);
            let engine = EngineBuilder::new(Lev, &store, ALPHABET).build_with(idx);
            check_outcomes(
                &reference,
                &engine,
                &workload,
                opts,
                &format!("{shards} shards after {} appends", store.len() - split),
            )?;
            let compact_engine = EngineBuilder::new(Lev, &store, ALPHABET).build_with(compact);
            check_outcomes(
                &reference,
                &compact_engine,
                &workload,
                opts,
                &format!("compact after {} appends", store.len() - split),
            )?;
        }
    }
}
