//! Batch execution support types.
//!
//! The paper's engine answers one query at a time; a serving deployment
//! sees a *workload*. [`SearchEngine::run_batch`](crate::SearchEngine::run_batch)
//! fans whole queries out across `std::thread::scope` workers (no external
//! thread-pool dependency) claiming from a shared atomic cursor:
//!
//! * **Across queries** — each worker claims whole [`Query`]
//!   values and runs the ordinary pipeline on them. By default a query's
//!   bidirectional-trie caches stay on the worker that built them (the
//!   [`Verifier`](crate::verify::Verifier) is thread-local), so cache
//!   locality is exactly that of sequential execution;
//!   [`BatchOptions::share_tries`] opts the whole batch into one shared
//!   [`TrieCache`](crate::verify::TrieCache) so repeated or overlapping
//!   patterns reuse each other's DP columns. One batch may mix thresholds,
//!   top-k, temporal and plain queries freely.
//! * **Within a query** —
//!   [`Parallelism::InQuery`] shards one
//!   query's candidate trajectories across workers; useful for
//!   tail-latency on a single heavy query, not for throughput.
//!
//! Either way the result sets — distances included — are identical to
//! sequential execution: the only shared mutable state is the opt-in trie
//! cache, whose columns are bit-identical to privately computed ones, and
//! the per-triple min-merge is associative.
//!
//! This module holds the workload-level types: [`BatchOptions`] (worker
//! count), [`BatchStats`] (wall-clock vs summed-CPU time so a throughput
//! experiment can report queries/sec and effective parallel speedup
//! directly), and the legacy `(pattern, tau)` wrapper
//! [`SearchEngine::search_batch`].

use crate::index::PostingSource;
use crate::query::{Parallelism, Query};
use crate::search::{SearchEngine, SearchOptions, SearchOutcome};
use crate::stats::SearchStats;
use std::time::Duration;
use wed::{Sym, WedInstance};

/// Options for one batch run. Per-query behavior lives in each
/// [`Query`]; this only schedules the workload.
///
/// Batch workers run untraced (this is a plain `Copy` bag and cannot carry
/// a [`TraceSink`](trajsearch_obs::TraceSink) reference); workloads that
/// need per-phase spans run their queries through
/// [`SearchEngine::run_traced`](crate::SearchEngine::run_traced) instead.
#[derive(Debug, Clone, Copy, Default)]
pub struct BatchOptions {
    /// Worker count; `0` means [`std::thread::available_parallelism`].
    pub threads: usize,
    /// Share one [`TrieCache`](crate::verify::TrieCache) across every WED
    /// Trie-mode query of the batch, so repeated or overlapping patterns
    /// reuse warm DP columns (`stats.trie_cache_hits`). Results are
    /// bit-identical either way.
    ///
    /// Off by default: with sharing on, a query's `stepdp_calls` /
    /// `trie_cache_*` counters (and hence its CMR) depend on which queries
    /// ran before it in the batch, so per-query counter reproducibility
    /// against a standalone `run` is deliberately opt-in.
    pub share_tries: bool,
}

impl BatchOptions {
    /// `threads` workers, private tries.
    pub fn with_threads(threads: usize) -> Self {
        BatchOptions {
            threads,
            share_tries: false,
        }
    }

    /// Toggles batch-level trie sharing (see [`BatchOptions::share_tries`]).
    pub fn share_tries(mut self, on: bool) -> Self {
        self.share_tries = on;
        self
    }

    pub(crate) fn resolve_threads(&self) -> usize {
        if self.threads > 0 {
            self.threads
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        }
    }
}

/// Workload-level instrumentation: wall-clock vs CPU time plus the merged
/// per-phase aggregates of every query.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BatchStats {
    /// Wall-clock time of the whole batch (dispatch to last join).
    pub wall_time: Duration,
    /// Summed per-query phase time across all workers (`Σ total_time()`),
    /// i.e. the time a 1-thread run would have spent inside the engine.
    pub cpu_time: Duration,
    /// Worker count actually used.
    pub threads: usize,
    /// Number of queries executed.
    pub queries: usize,
    /// Per-phase and counter aggregates merged over every query.
    pub merged: SearchStats,
}

impl BatchStats {
    /// Batch throughput in queries per second (wall-clock).
    pub fn queries_per_sec(&self) -> f64 {
        let secs = self.wall_time.as_secs_f64();
        if secs > 0.0 {
            self.queries as f64 / secs
        } else {
            0.0
        }
    }

    /// Effective parallel speedup: engine CPU time over wall-clock time.
    /// Bounded by `threads` (minus scheduling overhead); ≈ 1 on one core.
    pub fn speedup(&self) -> f64 {
        let wall = self.wall_time.as_secs_f64();
        if wall > 0.0 {
            self.cpu_time.as_secs_f64() / wall
        } else {
            0.0
        }
    }
}

/// A batch answer in the legacy shape: per-query outcomes in workload order
/// plus batch stats. The unified surface returns the equivalent
/// [`BatchResponse`](crate::BatchResponse).
#[derive(Debug, Clone)]
pub struct BatchOutcome {
    /// One [`SearchOutcome`] per workload entry, in input order.
    pub outcomes: Vec<SearchOutcome>,
    pub stats: BatchStats,
}

impl<'a, M: WedInstance + Sync, I: PostingSource + Sync> SearchEngine<'a, M, I> {
    /// Executes a workload of `(query, τ)` pairs, all with the same
    /// [`SearchOptions`], across scoped worker threads.
    #[deprecated(
        note = "build `Query` values and call `run_batch` (one batch may now mix objectives)"
    )]
    pub fn search_batch(
        &self,
        workload: &[(Vec<Sym>, f64)],
        opts: BatchOptions,
        search: SearchOptions,
    ) -> BatchOutcome {
        let queries: Vec<Query> = workload
            .iter()
            .map(|(q, tau)| self.legacy_threshold_query(q, *tau, search, Parallelism::Sequential))
            .collect();
        let response = self
            .run_batch(&queries, opts)
            .expect("legacy queries are admissible by construction");
        BatchOutcome {
            outcomes: response
                .responses
                .into_iter()
                .map(|r| SearchOutcome {
                    matches: r.matches,
                    stats: r.stats,
                })
                .collect(),
            stats: response.stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::VerifyMode;
    use crate::{EngineBuilder, Query};
    use traj::{Trajectory, TrajectoryStore};
    use wed::models::Lev;

    fn store() -> TrajectoryStore {
        let mut s = TrajectoryStore::new();
        s.push(Trajectory::untimed(vec![0, 1, 2, 3, 4]));
        s.push(Trajectory::untimed(vec![3, 1, 5, 1, 2]));
        s.push(Trajectory::untimed(vec![9, 8, 7, 6]));
        s.push(Trajectory::untimed(vec![1, 2, 1, 2, 1]));
        s
    }

    fn workload() -> Vec<(Vec<Sym>, f64)> {
        vec![
            (vec![1, 5, 2], 2.0),
            (vec![1, 2], 1.0),
            (vec![9, 8], 1.5),
            (vec![7, 7, 7], 4.0), // infeasible for Lev: exercises fallback
            (vec![0, 1, 2, 3], 2.0),
        ]
    }

    fn queries(mode: VerifyMode) -> Vec<Query> {
        workload()
            .into_iter()
            .map(|(q, tau)| Query::threshold(q, tau).verify(mode).build().unwrap())
            .collect()
    }

    #[test]
    fn batch_equals_run_loop_in_order() {
        let store = store();
        let engine = EngineBuilder::new(&Lev, &store, 10).build();
        for mode in [VerifyMode::Trie, VerifyMode::Local, VerifyMode::Sw] {
            let qs = queries(mode);
            let want: Vec<_> = qs.iter().map(|q| engine.run(q).unwrap()).collect();
            for threads in [1, 2, 3, 16] {
                let got = engine
                    .run_batch(&qs, BatchOptions::with_threads(threads))
                    .unwrap();
                assert_eq!(got.responses.len(), want.len());
                for (i, (g, w)) in got.responses.iter().zip(&want).enumerate() {
                    assert_eq!(
                        g.matches, w.matches,
                        "query {i} diverged at threads={threads} mode={mode:?}"
                    );
                    assert_eq!(g.stats.candidates, w.stats.candidates);
                    assert_eq!(g.stats.fallback, w.stats.fallback);
                }
            }
        }
    }

    #[test]
    #[allow(deprecated)]
    fn legacy_search_batch_matches_run_batch() {
        let store = store();
        let engine = EngineBuilder::new(&Lev, &store, 10).build();
        let wl = workload();
        let search = SearchOptions {
            verify: VerifyMode::Local,
            ..Default::default()
        };
        let legacy = engine.search_batch(&wl, BatchOptions::with_threads(2), search);
        let qs: Vec<Query> = wl
            .iter()
            .map(|(q, tau)| {
                Query::threshold(q.clone(), *tau)
                    .verify(VerifyMode::Local)
                    .build()
                    .unwrap()
            })
            .collect();
        let unified = engine
            .run_batch(&qs, BatchOptions::with_threads(2))
            .unwrap();
        assert_eq!(legacy.outcomes.len(), unified.responses.len());
        for (l, u) in legacy.outcomes.iter().zip(&unified.responses) {
            assert_eq!(l.matches, u.matches);
            assert_eq!(l.stats.candidates, u.stats.candidates);
        }
    }

    #[test]
    fn batch_stats_aggregate_the_workload() {
        let store = store();
        let engine = EngineBuilder::new(&Lev, &store, 10).build();
        let qs = queries(VerifyMode::Trie);
        let out = engine
            .run_batch(&qs, BatchOptions::with_threads(2))
            .unwrap();
        assert_eq!(out.stats.queries, qs.len());
        assert_eq!(out.stats.threads, 2);
        assert!(out.stats.merged.fallback, "workload contains a fallback");
        let sum: usize = out.responses.iter().map(|o| o.stats.results).sum();
        assert_eq!(out.stats.merged.results, sum);
        assert!(out.stats.wall_time > Duration::ZERO);
        assert!(out.stats.cpu_time >= out.stats.merged.verify_time);
        assert!(out.stats.queries_per_sec() > 0.0);
    }

    #[test]
    fn empty_workload_is_fine() {
        let store = store();
        let engine = EngineBuilder::new(&Lev, &store, 10).build();
        let out = engine
            .run_batch(&[], BatchOptions::with_threads(4))
            .unwrap();
        assert!(out.responses.is_empty());
        assert_eq!(out.stats.queries, 0);
    }

    #[test]
    fn more_threads_than_queries_is_capped() {
        let store = store();
        let engine = EngineBuilder::new(&Lev, &store, 10).build();
        let qs = vec![Query::threshold(vec![1, 2], 1.0).build().unwrap()];
        let out = engine
            .run_batch(&qs, BatchOptions::with_threads(64))
            .unwrap();
        assert_eq!(out.stats.threads, 1);
        assert_eq!(out.responses.len(), 1);
    }

    #[test]
    fn zero_threads_resolves_to_available_parallelism() {
        let store = store();
        let engine = EngineBuilder::new(&Lev, &store, 10).build();
        let qs = queries(VerifyMode::Trie);
        let out = engine.run_batch(&qs, BatchOptions::default()).unwrap();
        assert!(out.stats.threads >= 1);
        assert_eq!(out.responses.len(), qs.len());
    }
}
