//! Parallel batched query execution.
//!
//! The paper's engine (and [`SearchEngine::search_opts`]) answers one query
//! at a time; a serving deployment sees a *workload*. Candidate verification
//! is embarrassingly parallel per trajectory and queries are independent, so
//! a batch fans out across `std::thread::scope` workers (no external
//! thread-pool dependency):
//!
//! * **Across queries** — each worker claims whole queries from a shared
//!   atomic cursor and runs the ordinary sequential pipeline on them. A
//!   query's bidirectional-trie caches stay on the worker that built them
//!   (the [`Verifier`](crate::verify::Verifier) is thread-local), so cache
//!   locality is exactly that of the sequential engine.
//! * **Within a query** — [`SearchEngine::par_search_opts`] shards one
//!   query's candidate trajectories across workers; useful for tail-latency
//!   on a single heavy query, not for throughput.
//!
//! Either way the result sets — distances included — are identical to
//! sequential execution: workers never share mutable state, and the
//! per-triple min-merge is associative.
//!
//! [`BatchStats`] complements the per-query [`SearchStats`] with wall-clock
//! vs summed-CPU time so a throughput experiment can report queries/sec and
//! effective parallel speedup directly.

use crate::index::PostingSource;
use crate::search::{SearchEngine, SearchOptions, SearchOutcome};
use crate::stats::SearchStats;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};
use wed::{Sym, WedInstance};

/// Options for one batch run.
#[derive(Debug, Clone, Copy, Default)]
pub struct BatchOptions {
    /// Worker count; `0` means [`std::thread::available_parallelism`].
    pub threads: usize,
    /// Per-query options, applied to every query in the workload.
    pub search: SearchOptions,
}

impl BatchOptions {
    /// `threads` workers, default search options.
    pub fn with_threads(threads: usize) -> Self {
        BatchOptions {
            threads,
            ..Default::default()
        }
    }

    fn resolve_threads(&self) -> usize {
        if self.threads > 0 {
            self.threads
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        }
    }
}

/// Workload-level instrumentation: wall-clock vs CPU time plus the merged
/// per-phase aggregates of every query.
#[derive(Debug, Clone, Default)]
pub struct BatchStats {
    /// Wall-clock time of the whole batch (dispatch to last join).
    pub wall_time: Duration,
    /// Summed per-query phase time across all workers (`Σ total_time()`),
    /// i.e. the time a 1-thread run would have spent inside the engine.
    pub cpu_time: Duration,
    /// Worker count actually used.
    pub threads: usize,
    /// Number of queries executed.
    pub queries: usize,
    /// Per-phase and counter aggregates merged over every query.
    pub merged: SearchStats,
}

impl BatchStats {
    /// Batch throughput in queries per second (wall-clock).
    pub fn queries_per_sec(&self) -> f64 {
        let secs = self.wall_time.as_secs_f64();
        if secs > 0.0 {
            self.queries as f64 / secs
        } else {
            0.0
        }
    }

    /// Effective parallel speedup: engine CPU time over wall-clock time.
    /// Bounded by `threads` (minus scheduling overhead); ≈ 1 on one core.
    pub fn speedup(&self) -> f64 {
        let wall = self.wall_time.as_secs_f64();
        if wall > 0.0 {
            self.cpu_time.as_secs_f64() / wall
        } else {
            0.0
        }
    }
}

/// A batch answer: per-query outcomes in workload order plus batch stats.
#[derive(Debug, Clone)]
pub struct BatchOutcome {
    /// One [`SearchOutcome`] per workload entry, in input order.
    pub outcomes: Vec<SearchOutcome>,
    pub stats: BatchStats,
}

impl<'a, M: WedInstance + Sync, I: PostingSource + Sync> SearchEngine<'a, M, I> {
    /// Executes a workload of `(query, τ)` pairs across scoped worker
    /// threads and returns per-query outcomes in input order.
    ///
    /// Work distribution is dynamic (an atomic cursor), so a few heavy
    /// queries cannot strand idle workers behind a static partition. Each
    /// query runs the ordinary sequential pipeline, so outcomes are
    /// *identical* — matches, distances and per-query counters — to calling
    /// [`search_opts`](SearchEngine::search_opts) in a loop, for any thread
    /// count.
    ///
    /// Requires `M: Sync`; memoizing wrappers with interior mutability (e.g.
    /// `wed::models::Memo`) are not shareable — use the unmemoized model.
    pub fn search_batch(&self, workload: &[(Vec<Sym>, f64)], opts: BatchOptions) -> BatchOutcome {
        let threads = opts.resolve_threads().min(workload.len().max(1));
        let t0 = Instant::now();

        let mut slots: Vec<Option<SearchOutcome>> = Vec::with_capacity(workload.len());
        slots.resize_with(workload.len(), || None);

        if threads <= 1 {
            for (slot, (q, tau)) in slots.iter_mut().zip(workload) {
                *slot = Some(self.search_opts(q, *tau, opts.search));
            }
        } else {
            let cursor = AtomicUsize::new(0);
            let collected = std::thread::scope(|scope| {
                let handles: Vec<_> = (0..threads)
                    .map(|_| {
                        let cursor = &cursor;
                        scope.spawn(move || {
                            let mut local: Vec<(usize, SearchOutcome)> = Vec::new();
                            loop {
                                let i = cursor.fetch_add(1, Ordering::Relaxed);
                                let Some((q, tau)) = workload.get(i) else {
                                    break;
                                };
                                local.push((i, self.search_opts(q, *tau, opts.search)));
                            }
                            local
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("batch worker panicked"))
                    .collect::<Vec<_>>()
            });
            for (i, outcome) in collected.into_iter().flatten() {
                slots[i] = Some(outcome);
            }
        }
        let wall_time = t0.elapsed();

        let outcomes: Vec<SearchOutcome> = slots
            .into_iter()
            .map(|s| s.expect("every workload slot is filled"))
            .collect();
        let mut merged = SearchStats::default();
        for o in &outcomes {
            merged.merge(&o.stats);
        }
        let cpu_time = merged.total_time();
        BatchOutcome {
            stats: BatchStats {
                wall_time,
                cpu_time,
                threads,
                queries: outcomes.len(),
                merged,
            },
            outcomes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::VerifyMode;
    use traj::{Trajectory, TrajectoryStore};
    use wed::models::Lev;

    fn store() -> TrajectoryStore {
        let mut s = TrajectoryStore::new();
        s.push(Trajectory::untimed(vec![0, 1, 2, 3, 4]));
        s.push(Trajectory::untimed(vec![3, 1, 5, 1, 2]));
        s.push(Trajectory::untimed(vec![9, 8, 7, 6]));
        s.push(Trajectory::untimed(vec![1, 2, 1, 2, 1]));
        s
    }

    fn workload() -> Vec<(Vec<Sym>, f64)> {
        vec![
            (vec![1, 5, 2], 2.0),
            (vec![1, 2], 1.0),
            (vec![9, 8], 1.5),
            (vec![7, 7, 7], 4.0), // infeasible for Lev: exercises fallback
            (vec![0, 1, 2, 3], 2.0),
        ]
    }

    #[test]
    fn batch_equals_sequential_loop_in_order() {
        let store = store();
        let engine = SearchEngine::new(&Lev, &store, 10);
        let wl = workload();
        for mode in [VerifyMode::Trie, VerifyMode::Local, VerifyMode::Sw] {
            let search = SearchOptions {
                verify: mode,
                ..Default::default()
            };
            let want: Vec<_> = wl
                .iter()
                .map(|(q, tau)| engine.search_opts(q, *tau, search))
                .collect();
            for threads in [1, 2, 3, 16] {
                let got = engine.search_batch(&wl, BatchOptions { threads, search });
                assert_eq!(got.outcomes.len(), want.len());
                for (i, (g, w)) in got.outcomes.iter().zip(&want).enumerate() {
                    assert_eq!(
                        g.matches, w.matches,
                        "query {i} diverged at threads={threads} mode={mode:?}"
                    );
                    assert_eq!(g.stats.candidates, w.stats.candidates);
                    assert_eq!(g.stats.fallback, w.stats.fallback);
                }
            }
        }
    }

    #[test]
    fn batch_stats_aggregate_the_workload() {
        let store = store();
        let engine = SearchEngine::new(&Lev, &store, 10);
        let wl = workload();
        let out = engine.search_batch(&wl, BatchOptions::with_threads(2));
        assert_eq!(out.stats.queries, wl.len());
        assert_eq!(out.stats.threads, 2);
        assert!(out.stats.merged.fallback, "workload contains a fallback");
        let sum: usize = out.outcomes.iter().map(|o| o.stats.results).sum();
        assert_eq!(out.stats.merged.results, sum);
        assert!(out.stats.wall_time > Duration::ZERO);
        assert!(out.stats.cpu_time >= out.stats.merged.verify_time);
        assert!(out.stats.queries_per_sec() > 0.0);
    }

    #[test]
    fn empty_workload_is_fine() {
        let store = store();
        let engine = SearchEngine::new(&Lev, &store, 10);
        let out = engine.search_batch(&[], BatchOptions::with_threads(4));
        assert!(out.outcomes.is_empty());
        assert_eq!(out.stats.queries, 0);
    }

    #[test]
    fn more_threads_than_queries_is_capped() {
        let store = store();
        let engine = SearchEngine::new(&Lev, &store, 10);
        let wl = vec![(vec![1, 2], 1.0)];
        let out = engine.search_batch(&wl, BatchOptions::with_threads(64));
        assert_eq!(out.stats.threads, 1);
        assert_eq!(out.outcomes.len(), 1);
    }

    #[test]
    fn zero_threads_resolves_to_available_parallelism() {
        let store = store();
        let engine = SearchEngine::new(&Lev, &store, 10);
        let wl = workload();
        let out = engine.search_batch(&wl, BatchOptions::default());
        assert!(out.stats.threads >= 1);
        assert_eq!(out.outcomes.len(), wl.len());
    }
}
