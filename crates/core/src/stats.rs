//! Per-query instrumentation.
//!
//! The paper reports a running-time breakdown (Table 4: MinCand / index
//! lookup / verification) and verification-pruning rates (Table 5: UPR, CMR,
//! TUR). Every search populates a [`SearchStats`] so the experiment harness
//! can regenerate those tables without touching engine internals.

use std::time::Duration;

/// Counters and timings collected during one query. `PartialEq` compares
/// every field (timings included) — it exists for the wire-format
/// round-trip guarantee of [`Response`](crate::Response), not for
/// cross-run comparisons.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SearchStats {
    /// Time spent choosing the τ-subsequence (Algorithm 1).
    pub mincand_time: Duration,
    /// Time spent materializing neighborhoods and scanning postings lists.
    pub lookup_time: Duration,
    /// Time spent verifying candidates (Algorithms 3–6).
    pub verify_time: Duration,
    /// Number of generated candidates `(id, j, iq)`. On the fallback path
    /// (no τ-subsequence) every trajectory position counts as a candidate —
    /// that is exactly what the exact scan verifies — so workload-merged
    /// stats stay comparable across the two paths.
    pub candidates: usize,
    /// Candidates surviving the temporal filter (equals `candidates` when no
    /// temporal constraint is active).
    pub candidates_after_temporal: usize,
    /// Candidates remaining after exact-triple deduplication (overlapping
    /// substitution neighborhoods can emit the same `(id, j, iq)` several
    /// times; only distinct triples are verified). Always
    /// `≤ candidates_after_temporal`.
    pub candidates_deduped: usize,
    /// Length of the chosen τ-subsequence `|Q'|`.
    pub tsubseq_len: usize,
    /// True when no τ-subsequence exists (`c(Q) < τ`) and the engine fell
    /// back to an exact Smith–Waterman scan.
    pub fallback: bool,
    /// DP columns an exact Smith–Waterman verification would compute — the
    /// UPR denominator. In SW mode the scan runs once per **distinct**
    /// candidate trajectory, so `Σ |P|` is accumulated once per deduped id
    /// (not per candidate, which would inflate the Table 5 denominator
    /// whenever one trajectory carries several anchors). Local/Trie modes
    /// accumulate `|P|` per verified (deduped) candidate, the work a
    /// per-candidate scan would have done in their place.
    pub sw_columns: u64,
    /// DP columns actually visited before early termination (Eq. 11) —
    /// UPR numerator / CMR denominator.
    pub columns_passed: u64,
    /// Columns computed fresh (trie cache misses; Algorithm 5 line 6) —
    /// the CMR numerator.
    pub stepdp_calls: u64,
    /// Metric-neutral verification cost: DP columns/rows actually evaluated,
    /// each `O(|Q|)`. For WED this equals `sw_columns` on scan paths
    /// (SW verification and the fallback scan) and `columns_passed` on the
    /// Local/Trie paths; DTW/LCSS/Fréchet verifiers count their per-start DP
    /// rows here and leave the WED-specific counters (`sw_columns`,
    /// `columns_passed`, `stepdp_calls`) at zero, so merged workload stats
    /// never mix incomparable units.
    pub verify_cost: u64,
    /// Shared-trie acquisitions that found a [`TrieCache`] entry an earlier
    /// worker or query had already created (the cross-shard and batch cache
    /// levels; stays zero with private tries and for non-WED verifiers).
    ///
    /// [`TrieCache`]: crate::verify::TrieCache
    pub trie_cache_hits: u64,
    /// Shared-trie acquisitions that created the [`TrieCache`] entry —
    /// exactly one per distinct query suffix regardless of thread
    /// interleaving (insert-race losers count as hits).
    ///
    /// [`TrieCache`]: crate::verify::TrieCache
    pub trie_cache_misses: u64,
    /// Number of result triples `(id, s, t)`.
    pub results: usize,
}

impl SearchStats {
    /// Unpruned position rate (Table 5): visited columns / SW columns.
    pub fn upr(&self) -> f64 {
        ratio(self.columns_passed, self.sw_columns)
    }

    /// Cache miss rate (Table 5): fresh columns / visited columns.
    pub fn cmr(&self) -> f64 {
        ratio(self.stepdp_calls, self.columns_passed)
    }

    /// Total unpruned rate: UPR × CMR = fresh columns / SW columns.
    pub fn tur(&self) -> f64 {
        ratio(self.stepdp_calls, self.sw_columns)
    }

    /// Total wall-clock time across the three phases.
    pub fn total_time(&self) -> Duration {
        self.mincand_time + self.lookup_time + self.verify_time
    }

    /// Merges counters from another query (used when averaging over a query
    /// workload).
    pub fn merge(&mut self, other: &SearchStats) {
        self.mincand_time += other.mincand_time;
        self.lookup_time += other.lookup_time;
        self.verify_time += other.verify_time;
        self.candidates += other.candidates;
        self.candidates_after_temporal += other.candidates_after_temporal;
        self.candidates_deduped += other.candidates_deduped;
        self.tsubseq_len += other.tsubseq_len;
        self.fallback |= other.fallback;
        self.sw_columns += other.sw_columns;
        self.columns_passed += other.columns_passed;
        self.stepdp_calls += other.stepdp_calls;
        self.verify_cost += other.verify_cost;
        self.trie_cache_hits += other.trie_cache_hits;
        self.trie_cache_misses += other.trie_cache_misses;
        self.results += other.results;
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_handle_zero_denominators() {
        let s = SearchStats::default();
        assert_eq!(s.upr(), 0.0);
        assert_eq!(s.cmr(), 0.0);
        assert_eq!(s.tur(), 0.0);
    }

    #[test]
    fn tur_is_product_of_upr_and_cmr() {
        let s = SearchStats {
            sw_columns: 1000,
            columns_passed: 200,
            stepdp_calls: 20,
            ..Default::default()
        };
        assert!((s.upr() - 0.2).abs() < 1e-12);
        assert!((s.cmr() - 0.1).abs() < 1e-12);
        assert!((s.tur() - s.upr() * s.cmr()).abs() < 1e-12);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = SearchStats {
            candidates: 3,
            results: 1,
            ..Default::default()
        };
        let b = SearchStats {
            candidates: 4,
            results: 2,
            fallback: true,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.candidates, 7);
        assert_eq!(a.results, 3);
        assert!(a.fallback);
    }

    #[test]
    fn total_time_sums_phases() {
        let s = SearchStats {
            mincand_time: Duration::from_millis(1),
            lookup_time: Duration::from_millis(2),
            verify_time: Duration::from_millis(3),
            ..Default::default()
        };
        assert_eq!(s.total_time(), Duration::from_millis(6));
    }
}
