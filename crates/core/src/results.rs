//! Result collection with exact-distance merging.
//!
//! Verification may reach the same subtrajectory `(id, s, t)` from several
//! candidates `(id, j, iq)`; each candidate contributes the cost of the best
//! alignment *through* its anchor (Eq. 10), which upper-bounds the true WED.
//! By Lemma 1 the optimal alignment of every true match passes through at
//! least one candidate anchor, so the per-triple minimum over candidates is
//! the exact WED. [`ResultSet`] performs that min-merge.

use std::collections::HashMap;
use traj::TrajId;

/// One similarity-search result: `wed(P^(id)[s..=t], Q) = dist < τ`
/// (0-based inclusive positions).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MatchResult {
    pub id: TrajId,
    pub start: usize,
    pub end: usize,
    pub dist: f64,
}

/// Deduplicating accumulator for `(id, s, t)` triples keeping the minimum
/// observed distance.
#[derive(Debug, Default)]
pub struct ResultSet {
    map: HashMap<(TrajId, u32, u32), f64>,
}

impl ResultSet {
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a (possibly duplicate) match with an upper-bound distance.
    pub fn push(&mut self, id: TrajId, start: usize, end: usize, dist: f64) {
        let key = (id, start as u32, end as u32);
        self.map
            .entry(key)
            .and_modify(|d| {
                if dist < *d {
                    *d = dist;
                }
            })
            .or_insert(dist);
    }

    pub fn len(&self) -> usize {
        self.map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Drains into a deterministic ordering (by id, start, end).
    pub fn into_sorted_vec(self) -> Vec<MatchResult> {
        let mut v: Vec<MatchResult> = self
            .map
            .into_iter()
            .map(|((id, s, t), dist)| MatchResult {
                id,
                start: s as usize,
                end: t as usize,
                dist,
            })
            .collect();
        v.sort_by_key(|a| (a.id, a.start, a.end));
        v
    }

    /// Filters in place by a predicate on the triple (used by temporal
    /// post-filtering).
    pub fn retain(&mut self, mut keep: impl FnMut(TrajId, usize, usize) -> bool) {
        self.map
            .retain(|&(id, s, t), _| keep(id, s as usize, t as usize));
    }

    /// Min-merges another result set into this one (parallel verification
    /// shards accumulate into per-thread sets and merge afterwards; the
    /// per-triple minimum is associative, so sharding cannot change the
    /// final distances).
    pub fn merge(&mut self, other: ResultSet) {
        for ((id, s, t), dist) in other.map {
            self.push(id, s as usize, t as usize, dist);
        }
    }
}

/// Sorts a plain result vector into the canonical order (test helper shared
/// by baselines).
pub fn sort_results(v: &mut [MatchResult]) {
    v.sort_by_key(|a| (a.id, a.start, a.end));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_keeps_minimum_distance() {
        let mut r = ResultSet::new();
        r.push(1, 2, 5, 3.0);
        r.push(1, 2, 5, 1.5);
        r.push(1, 2, 5, 2.0);
        let v = r.into_sorted_vec();
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].dist, 1.5);
    }

    #[test]
    fn distinct_triples_kept_separately() {
        let mut r = ResultSet::new();
        r.push(1, 2, 5, 1.0);
        r.push(1, 2, 6, 1.0);
        r.push(2, 2, 5, 1.0);
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn sorted_output_is_deterministic() {
        let mut r = ResultSet::new();
        r.push(2, 0, 1, 0.5);
        r.push(1, 3, 4, 0.5);
        r.push(1, 0, 9, 0.5);
        let v = r.into_sorted_vec();
        let keys: Vec<_> = v.iter().map(|m| (m.id, m.start, m.end)).collect();
        assert_eq!(keys, vec![(1, 0, 9), (1, 3, 4), (2, 0, 1)]);
    }

    #[test]
    fn merge_is_a_min_merge() {
        let mut a = ResultSet::new();
        a.push(1, 0, 1, 2.0);
        a.push(1, 2, 3, 0.5);
        let mut b = ResultSet::new();
        b.push(1, 0, 1, 1.0);
        b.push(2, 0, 0, 4.0);
        a.merge(b);
        let v = a.into_sorted_vec();
        let got: Vec<_> = v.iter().map(|m| (m.id, m.start, m.end, m.dist)).collect();
        assert_eq!(got, vec![(1, 0, 1, 1.0), (1, 2, 3, 0.5), (2, 0, 0, 4.0)]);
    }

    #[test]
    fn retain_filters_triples() {
        let mut r = ResultSet::new();
        r.push(1, 0, 1, 0.5);
        r.push(2, 0, 1, 0.5);
        r.retain(|id, _, _| id == 2);
        let v = r.into_sorted_vec();
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].id, 2);
    }
}
