//! The unified request/response surface: [`EngineBuilder`] constructs a
//! [`SearchEngine`], [`SearchEngine::run`] answers a [`Query`], and
//! [`SearchEngine::run_batch`] answers a mixed workload of them.
//!
//! Everything the engine can do — threshold and top-k objectives, all
//! verification strategies, temporal constraints, sequential / in-query /
//! whole-batch parallelism, single or sharded postings layouts — is reached
//! through these two methods; the pre-redesign entry points remain as
//! `#[deprecated]` wrappers over them. Dispatch stays monomorphized over
//! [`PostingSource`], and [`Response`] carries the same wire-format JSON as
//! [`Query`], so a serving front-end or shard server can speak this exact
//! type over a socket.

use crate::batch::{BatchOptions, BatchStats};
use crate::compact::CompactIndex;
use crate::deadline::Deadline;
use crate::index::{InvertedIndex, Posting, PostingSource};
use crate::json::JsonValue;
use crate::query::{Objective, Parallelism, Query, QueryError};
use crate::results::MatchResult;
use crate::search::{SearchEngine, SearchOutcome};
use crate::sharded::ShardedIndex;
use crate::stats::SearchStats;
use crate::topk::TopKEntry;
use crate::verify::TrieCache;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};
use traj::{TrajId, TrajectoryStore};
use trajsearch_obs::Tracer;
use wed::{Sym, WedInstance};

// ---------------------------------------------------------------------------
// Engine construction
// ---------------------------------------------------------------------------

/// Postings storage layout for [`EngineBuilder`].
///
/// Migration note (PR 6): the enum gained [`IndexLayout::Remote`] and, since
/// that variant carries endpoint strings, the type is now `Clone` but no
/// longer `Copy` — clone it where a copy was implicit before.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IndexLayout {
    /// One contiguous postings list per symbol ([`InvertedIndex`]).
    Single,
    /// Postings partitioned by `traj_id % n`, built in parallel
    /// ([`ShardedIndex`]); results are identical at any shard count.
    Sharded(usize),
    /// Delta+varint postings in one contiguous arena ([`CompactIndex`]):
    /// builds a single-list index, compacts it, and drops the mutable form
    /// — smallest footprint, no appends. This is also the layout
    /// `Snapshot::open` in `trajsearch-persist` yields, so an engine built
    /// this way is byte-identical to one reopened from a snapshot of the
    /// same store.
    Compact,
    /// Postings served by remote shard servers. This is a *descriptor*:
    /// `trajsearch-core` has no networking, so [`EngineBuilder::build`]
    /// panics on it — connect a `trajsearch_distrib::RemoteShards` from the
    /// spec and pass it to [`EngineBuilder::build_with`] instead (the
    /// `trajsearch-distrib` coordinator does exactly that). Results are
    /// byte-identical to `Sharded(spec.endpoints.len())` at any placement.
    Remote(RemoteSpec),
}

/// Endpoint list for [`IndexLayout::Remote`]: one `host:port` per shard
/// server, ordered by shard id.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RemoteSpec {
    pub endpoints: Vec<String>,
}

impl RemoteSpec {
    pub fn new(endpoints: impl IntoIterator<Item = impl Into<String>>) -> RemoteSpec {
        RemoteSpec {
            endpoints: endpoints.into_iter().map(Into::into).collect(),
        }
    }
}

/// Either postings layout behind one engine type, so the layout is a
/// runtime choice ([`EngineBuilder::layout`]) while every search path stays
/// monomorphized (a two-arm match, no `dyn`, in each [`PostingSource`]
/// call).
#[derive(Debug, Clone)]
pub enum AnyIndex {
    Single(InvertedIndex),
    Sharded(ShardedIndex),
    Compact(CompactIndex),
}

/// `impl Iterator` returned from a three-arm match.
enum EitherIter<A, B, C> {
    A(A),
    B(B),
    C(C),
}

impl<T, A: Iterator<Item = T>, B: Iterator<Item = T>, C: Iterator<Item = T>> Iterator
    for EitherIter<A, B, C>
{
    type Item = T;

    fn next(&mut self) -> Option<T> {
        match self {
            EitherIter::A(it) => it.next(),
            EitherIter::B(it) => it.next(),
            EitherIter::C(it) => it.next(),
        }
    }
}

impl PostingSource for AnyIndex {
    fn postings(&self, q: Sym) -> impl Iterator<Item = Posting> + '_ {
        match self {
            AnyIndex::Single(i) => EitherIter::A(i.postings(q).iter().copied()),
            AnyIndex::Sharded(i) => EitherIter::B(i.postings(q)),
            AnyIndex::Compact(i) => EitherIter::C(i.postings(q)),
        }
    }

    fn freq(&self, q: Sym) -> u32 {
        match self {
            AnyIndex::Single(i) => i.freq(q),
            AnyIndex::Sharded(i) => PostingSource::freq(i, q),
            AnyIndex::Compact(i) => PostingSource::freq(i, q),
        }
    }

    fn span(&self, id: TrajId) -> (f64, f64) {
        match self {
            AnyIndex::Single(i) => i.span(id),
            AnyIndex::Sharded(i) => PostingSource::span(i, id),
            AnyIndex::Compact(i) => PostingSource::span(i, id),
        }
    }

    fn postings_departing_by(
        &self,
        q: Sym,
        t_max: f64,
    ) -> impl Iterator<Item = (f64, Posting)> + '_ {
        match self {
            AnyIndex::Single(i) => EitherIter::A(i.postings_departing_by(q, t_max).iter().copied()),
            AnyIndex::Sharded(i) => EitherIter::B(i.postings_departing_by(q, t_max)),
            AnyIndex::Compact(i) => EitherIter::C(i.postings_departing_by(q, t_max)),
        }
    }

    fn has_temporal_postings(&self) -> bool {
        match self {
            AnyIndex::Single(i) => i.has_temporal_postings(),
            AnyIndex::Sharded(i) => PostingSource::has_temporal_postings(i),
            AnyIndex::Compact(i) => PostingSource::has_temporal_postings(i),
        }
    }

    fn alphabet_size(&self) -> usize {
        match self {
            AnyIndex::Single(i) => i.alphabet_size(),
            AnyIndex::Sharded(i) => PostingSource::alphabet_size(i),
            AnyIndex::Compact(i) => PostingSource::alphabet_size(i),
        }
    }

    fn num_trajectories(&self) -> usize {
        match self {
            AnyIndex::Single(i) => i.num_trajectories(),
            AnyIndex::Sharded(i) => PostingSource::num_trajectories(i),
            AnyIndex::Compact(i) => PostingSource::num_trajectories(i),
        }
    }

    fn total_postings(&self) -> usize {
        match self {
            AnyIndex::Single(i) => i.total_postings(),
            AnyIndex::Sharded(i) => PostingSource::total_postings(i),
            AnyIndex::Compact(i) => PostingSource::total_postings(i),
        }
    }

    fn size_bytes(&self) -> usize {
        match self {
            AnyIndex::Single(i) => i.size_bytes(),
            AnyIndex::Sharded(i) => PostingSource::size_bytes(i),
            AnyIndex::Compact(i) => PostingSource::size_bytes(i),
        }
    }
}

/// One constructor for every engine configuration, replacing the four
/// pre-redesign constructors (`new`, `with_temporal_postings`,
/// `new_sharded`, `with_index`):
///
/// ```
/// use trajsearch_core::{EngineBuilder, IndexLayout, Query};
/// use traj::{Trajectory, TrajectoryStore};
/// use wed::models::Lev;
///
/// let mut store = TrajectoryStore::new();
/// store.push(Trajectory::untimed(vec![0, 1, 2, 3]));
/// let engine = EngineBuilder::new(Lev, &store, 8)
///     .layout(IndexLayout::Sharded(2))
///     .temporal_postings(true)
///     .build();
/// let response = engine.run(&Query::threshold(vec![1, 2], 0.5).build()?)?;
/// assert_eq!(response.matches.len(), 1); // [1, 2] at distance 0
/// # Ok::<(), trajsearch_core::QueryError>(())
/// ```
#[derive(Debug)]
pub struct EngineBuilder<'a, M: WedInstance> {
    model: M,
    store: &'a TrajectoryStore,
    alphabet_size: usize,
    layout: IndexLayout,
    temporal_postings: bool,
}

impl<'a, M: WedInstance> EngineBuilder<'a, M> {
    /// Starts a builder over `store`; `alphabet_size` is `|V|` or `|E|`
    /// depending on the representation the store uses.
    pub fn new(model: M, store: &'a TrajectoryStore, alphabet_size: usize) -> Self {
        EngineBuilder {
            model,
            store,
            alphabet_size,
            layout: IndexLayout::Single,
            temporal_postings: false,
        }
    }

    /// Postings layout (default [`IndexLayout::Single`]). The layout never
    /// changes results; pick a shard count near the host's core count for
    /// build throughput.
    pub fn layout(mut self, layout: IndexLayout) -> Self {
        self.layout = layout;
        self
    }

    /// Additionally builds the by-departure postings orderings so queries
    /// may set [`QueryBuilder::temporal_postings`](crate::QueryBuilder::temporal_postings);
    /// without this, such queries are rejected with
    /// [`QueryError::TemporalPostingsUnavailable`].
    pub fn temporal_postings(mut self, on: bool) -> Self {
        self.temporal_postings = on;
        self
    }

    /// Builds the index and wraps it into an engine.
    ///
    /// # Panics
    /// Panics on [`IndexLayout::Remote`] — that layout is a descriptor for
    /// the networked builder in `trajsearch-distrib`
    /// (`RemoteShards::connect` + [`EngineBuilder::build_with`]); core
    /// cannot dial sockets.
    pub fn build(self) -> SearchEngine<'a, M, AnyIndex> {
        let t0 = Instant::now();
        let index = match self.layout {
            IndexLayout::Remote(spec) => panic!(
                "IndexLayout::Remote({} endpoints) cannot be built by trajsearch-core: \
                 connect trajsearch_distrib::RemoteShards and use EngineBuilder::build_with",
                spec.endpoints.len()
            ),
            IndexLayout::Single => {
                let mut index = InvertedIndex::build(self.store, self.alphabet_size);
                if self.temporal_postings {
                    index.enable_temporal_postings();
                }
                AnyIndex::Single(index)
            }
            IndexLayout::Sharded(n) => {
                let mut index = ShardedIndex::build_parallel(self.store, self.alphabet_size, n);
                if self.temporal_postings {
                    index.enable_temporal_postings();
                }
                AnyIndex::Sharded(index)
            }
            IndexLayout::Compact => {
                let mut index = InvertedIndex::build(self.store, self.alphabet_size);
                if self.temporal_postings {
                    index.enable_temporal_postings();
                }
                AnyIndex::Compact(index.to_compact())
            }
        };
        SearchEngine::from_parts(self.model, self.store, index, t0.elapsed())
    }

    /// Wraps a pre-built posting source instead (built, appended to, or
    /// temporal-enabled by the caller) — the expert escape hatch that
    /// replaces the old `with_index`. The index must cover exactly the
    /// trajectories of the store; `layout`/`temporal_postings` settings are
    /// ignored, and [`build_time`](SearchEngine::build_time) reports zero
    /// since construction happened outside.
    ///
    /// # Panics
    /// Panics if `index.num_trajectories() != store.len()`.
    pub fn build_with<I: PostingSource>(self, index: I) -> SearchEngine<'a, M, I> {
        assert_eq!(
            index.num_trajectories(),
            self.store.len(),
            "index and store must cover the same trajectories"
        );
        SearchEngine::from_parts(self.model, self.store, index, Duration::ZERO)
    }
}

// ---------------------------------------------------------------------------
// Response envelope
// ---------------------------------------------------------------------------

/// A query answer behind one envelope, whatever the objective:
///
/// * **Threshold** — `matches` is the exact Definition 3 result set in
///   canonical `(id, start, end)` order;
/// * **Top-k** — `matches` holds each ranked trajectory's best match in
///   rank order (position = rank; see [`Response::ranked`]).
///
/// `stats` carries the per-query instrumentation (merged over the
/// threshold-growth rounds for top-k). [`Response::to_json`] /
/// [`Response::from_json`] are the wire format.
#[derive(Debug, Clone, PartialEq)]
pub struct Response {
    pub matches: Vec<MatchResult>,
    pub stats: SearchStats,
}

impl Response {
    /// Top-k view of the matches: entry `i` is rank `i`.
    pub fn ranked(&self) -> Vec<TopKEntry> {
        self.matches
            .iter()
            .enumerate()
            .map(|(rank, &best)| TopKEntry { rank, best })
            .collect()
    }

    /// Encodes the response for the wire; [`Response::from_json`] inverts
    /// it losslessly (distances bit-for-bit, durations in nanoseconds).
    pub fn to_json(&self) -> String {
        self.to_value().to_string()
    }

    /// The document-model form of [`Response::to_json`] — for embedding a
    /// response inside a larger envelope (as the serve protocol does)
    /// without a render-and-reparse round trip.
    pub fn to_value(&self) -> JsonValue {
        let matches = JsonValue::Arr(
            self.matches
                .iter()
                .map(|m| {
                    JsonValue::Obj(vec![
                        ("id".into(), JsonValue::num_u64(m.id as u64)),
                        ("start".into(), JsonValue::num_usize(m.start)),
                        ("end".into(), JsonValue::num_usize(m.end)),
                        ("dist".into(), JsonValue::num_f64(m.dist)),
                    ])
                })
                .collect(),
        );
        let s = &self.stats;
        let stats = JsonValue::Obj(vec![
            ("mincand_ns".into(), nanos(s.mincand_time)),
            ("lookup_ns".into(), nanos(s.lookup_time)),
            ("verify_ns".into(), nanos(s.verify_time)),
            ("candidates".into(), JsonValue::num_usize(s.candidates)),
            (
                "candidates_after_temporal".into(),
                JsonValue::num_usize(s.candidates_after_temporal),
            ),
            (
                "candidates_deduped".into(),
                JsonValue::num_usize(s.candidates_deduped),
            ),
            ("tsubseq_len".into(), JsonValue::num_usize(s.tsubseq_len)),
            ("fallback".into(), JsonValue::Bool(s.fallback)),
            ("sw_columns".into(), JsonValue::num_u64(s.sw_columns)),
            (
                "columns_passed".into(),
                JsonValue::num_u64(s.columns_passed),
            ),
            ("stepdp_calls".into(), JsonValue::num_u64(s.stepdp_calls)),
            ("verify_cost".into(), JsonValue::num_u64(s.verify_cost)),
            (
                "trie_cache_hits".into(),
                JsonValue::num_u64(s.trie_cache_hits),
            ),
            (
                "trie_cache_misses".into(),
                JsonValue::num_u64(s.trie_cache_misses),
            ),
            ("results".into(), JsonValue::num_usize(s.results)),
        ]);
        JsonValue::Obj(vec![("matches".into(), matches), ("stats".into(), stats)])
    }

    /// Decodes a wire response.
    pub fn from_json(text: &str) -> Result<Response, QueryError> {
        let doc = JsonValue::parse(text).map_err(QueryError::Parse)?;
        Response::from_value(&doc)
    }

    /// The document-model form of [`Response::from_json`] — for decoding a
    /// response already sitting inside a parsed envelope.
    pub fn from_value(doc: &JsonValue) -> Result<Response, QueryError> {
        let parse = |msg: &str| QueryError::Parse(msg.to_string());
        let matches = doc
            .get("matches")
            .and_then(|v| v.as_arr())
            .ok_or_else(|| parse("missing \"matches\" array"))?
            .iter()
            .map(|m| {
                Some(MatchResult {
                    id: u32::try_from(m.get("id")?.as_u64()?).ok()?,
                    start: m.get("start")?.as_usize()?,
                    end: m.get("end")?.as_usize()?,
                    dist: m.get("dist")?.as_f64()?,
                })
            })
            .collect::<Option<Vec<_>>>()
            .ok_or_else(|| parse("malformed match entry"))?;
        let s = doc.get("stats").ok_or_else(|| parse("missing \"stats\""))?;
        let dur = |key: &str| -> Result<Duration, QueryError> {
            s.get(key)
                .and_then(|v| v.as_u64())
                .map(Duration::from_nanos)
                .ok_or_else(|| parse(&format!("stats field \"{key}\" must be u64 nanoseconds")))
        };
        let count = |key: &str| -> Result<usize, QueryError> {
            s.get(key)
                .and_then(|v| v.as_usize())
                .ok_or_else(|| parse(&format!("stats field \"{key}\" must be an integer")))
        };
        let count64 = |key: &str| -> Result<u64, QueryError> {
            s.get(key)
                .and_then(|v| v.as_u64())
                .ok_or_else(|| parse(&format!("stats field \"{key}\" must be an integer")))
        };
        let stats = SearchStats {
            mincand_time: dur("mincand_ns")?,
            lookup_time: dur("lookup_ns")?,
            verify_time: dur("verify_ns")?,
            candidates: count("candidates")?,
            candidates_after_temporal: count("candidates_after_temporal")?,
            candidates_deduped: count("candidates_deduped")?,
            tsubseq_len: count("tsubseq_len")?,
            fallback: s
                .get("fallback")
                .and_then(|v| v.as_bool())
                .ok_or_else(|| parse("stats field \"fallback\" must be a boolean"))?,
            sw_columns: count64("sw_columns")?,
            columns_passed: count64("columns_passed")?,
            stepdp_calls: count64("stepdp_calls")?,
            // Absent on older wire responses: decode as 0, not an error, so
            // a new client can front an old server. (`verify_cost` predates
            // the trie-cache counters but shares the same rule.)
            verify_cost: lenient64(s, "verify_cost", &parse)?,
            trie_cache_hits: lenient64(s, "trie_cache_hits", &parse)?,
            trie_cache_misses: lenient64(s, "trie_cache_misses", &parse)?,
            results: count("results")?,
        };
        Ok(Response { matches, stats })
    }
}

fn nanos(d: Duration) -> JsonValue {
    JsonValue::num_u64(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX))
}

/// Decodes a u64 stats field that absent (or `null`) on older wire peers:
/// missing means 0, present-but-not-an-integer is still a parse error.
fn lenient64(
    s: &JsonValue,
    key: &str,
    parse: &impl Fn(&str) -> QueryError,
) -> Result<u64, QueryError> {
    match s.get(key) {
        None | Some(JsonValue::Null) => Ok(0),
        Some(v) => v
            .as_u64()
            .ok_or_else(|| parse(&format!("stats field \"{key}\" must be an integer"))),
    }
}

/// A batch answer: per-query responses in workload order plus the
/// wall-vs-CPU [`BatchStats`].
#[derive(Debug, Clone, PartialEq)]
pub struct BatchResponse {
    pub responses: Vec<Response>,
    pub stats: BatchStats,
}

// ---------------------------------------------------------------------------
// run / run_batch
// ---------------------------------------------------------------------------

impl<'a, M: WedInstance + Sync, I: PostingSource + Sync> SearchEngine<'a, M, I> {
    /// Engine-dependent admission checks; shape checks already ran in
    /// [`QueryBuilder::build`](crate::QueryBuilder::build).
    fn admit(&self, query: &Query) -> Result<(), QueryError> {
        if query.temporal_postings() && !self.index().has_temporal_postings() {
            return Err(QueryError::TemporalPostingsUnavailable);
        }
        Ok(())
    }

    /// Answers one [`Query`] — the single entry point for every search
    /// path. Returns [`QueryError::TemporalPostingsUnavailable`] when the
    /// query asks for by-departure candidate generation on an index built
    /// without it (formerly a silent fallback); every other invalid shape
    /// was already rejected by [`QueryBuilder::build`](crate::QueryBuilder::build).
    ///
    /// A [`Query::deadline_ms`] budget starts counting *now*: expiry at any
    /// cooperative checkpoint (see [`crate::deadline`]) returns
    /// [`QueryError::DeadlineExceeded`] instead of a late answer.
    pub fn run(&self, query: &Query) -> Result<Response, QueryError> {
        self.run_with_deadline(
            query,
            Deadline::for_query(Instant::now(), query.deadline_ms()),
        )
    }

    /// [`run`](SearchEngine::run) against a caller-supplied [`Deadline`] —
    /// the serving entry point. The deadline is used **exactly as given**
    /// (it replaces, not combines with, [`Query::deadline_ms`]), so a
    /// front-end can start the clock at admission and make queue time count
    /// against the budget.
    pub fn run_with_deadline(
        &self,
        query: &Query,
        deadline: Deadline,
    ) -> Result<Response, QueryError> {
        self.run_with_deadline_traced(query, deadline, Tracer::disabled())
    }

    /// [`run`](SearchEngine::run) with span recording: phase spans (filter,
    /// lookup, dedup, verification shards, top-k rounds, fallback scans)
    /// land in the [`TraceSink`](trajsearch_obs::TraceSink) the `tracer` is
    /// bound to, under a root `"query"` span. A disabled tracer makes this
    /// exactly [`run`](SearchEngine::run).
    pub fn run_traced(&self, query: &Query, tracer: Tracer<'_>) -> Result<Response, QueryError> {
        self.run_with_deadline_traced(
            query,
            Deadline::for_query(Instant::now(), query.deadline_ms()),
            tracer,
        )
    }

    /// [`run_with_deadline`](SearchEngine::run_with_deadline) with span
    /// recording — the traced serving entry point.
    pub fn run_with_deadline_traced(
        &self,
        query: &Query,
        deadline: Deadline,
        tracer: Tracer<'_>,
    ) -> Result<Response, QueryError> {
        self.admit(query)?;
        deadline.check()?;
        let root = tracer.span("query");
        self.run_admitted(query, deadline, None, root.child())
    }

    /// Post-admission execution, shared by `run` and the batch workers.
    /// `cache` is the batch-level shared [`TrieCache`]
    /// ([`BatchOptions::share_tries`]); `run` always passes `None`.
    pub(crate) fn run_admitted(
        &self,
        query: &Query,
        deadline: Deadline,
        cache: Option<&TrieCache>,
        tracer: Tracer<'_>,
    ) -> Result<Response, QueryError> {
        let opts = query.search_options();
        match query.objective() {
            Objective::Threshold { tau } => {
                let out = self.threshold_outcome(
                    query.pattern(),
                    tau,
                    opts,
                    query.parallelism(),
                    deadline,
                    cache,
                    tracer,
                )?;
                Ok(Response {
                    matches: out.matches,
                    stats: out.stats,
                })
            }
            Objective::TopK {
                k,
                initial_tau,
                max_tau,
            } => {
                let (matches, stats) = crate::topk::top_k_growth(
                    self,
                    query.pattern(),
                    k,
                    initial_tau,
                    max_tau,
                    opts,
                    query.parallelism(),
                    deadline,
                    cache,
                    tracer,
                )?;
                Ok(Response { matches, stats })
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    pub(crate) fn threshold_outcome(
        &self,
        q: &[Sym],
        tau: f64,
        opts: crate::search::SearchOptions,
        parallelism: Parallelism,
        deadline: Deadline,
        cache: Option<&TrieCache>,
        tracer: Tracer<'_>,
    ) -> Result<SearchOutcome, QueryError> {
        match parallelism {
            Parallelism::Sequential | Parallelism::InQuery(1) => {
                self.search_opts_impl(q, tau, opts, deadline, cache, tracer)
            }
            Parallelism::InQuery(threads) => {
                self.par_search_opts_impl(q, tau, opts, threads, deadline, cache, tracer)
            }
        }
    }

    /// Answers a workload of queries across scoped worker threads, outcomes
    /// in input order. Unlike the retired `search_batch`, one batch may
    /// freely mix thresholds, top-k, temporal constraints and verify modes
    /// — each [`Query`] is self-contained.
    ///
    /// All queries are admission-checked up front: an invalid one fails the
    /// whole batch *before* any work starts, so a partially executed batch
    /// is impossible. Work distribution is dynamic (an atomic cursor);
    /// every query runs exactly as [`run`](SearchEngine::run) would
    /// (including its own [`Parallelism`] — note that `InQuery` inside a
    /// multi-threaded batch oversubscribes the host), so responses are
    /// byte-identical to calling `run` in a loop, for any thread count.
    ///
    /// A query's [`deadline_ms`](Query::deadline_ms) clock starts when a
    /// worker **dequeues** it (claims it from the cursor), mirroring `run`'s
    /// call-time epoch; time spent behind earlier queries in the batch does
    /// not count. Since [`BatchResponse`] has no per-query error slot, an
    /// expired deadline fails the whole batch with
    /// [`QueryError::DeadlineExceeded`] — a workload mixing deadlines with
    /// per-query timeout *responses* is the serving front-end's job
    /// (`trajsearch-serve`), not `run_batch`'s.
    pub fn run_batch(
        &self,
        queries: &[Query],
        opts: BatchOptions,
    ) -> Result<BatchResponse, QueryError> {
        for query in queries {
            self.admit(query)?;
        }
        let threads = opts.resolve_threads().min(queries.len().max(1));
        let t0 = Instant::now();

        let mut slots: Vec<Option<Response>> = Vec::with_capacity(queries.len());
        slots.resize_with(queries.len(), || None);

        // Batch-level cache tier: one TrieCache for every WED Trie-mode
        // query of the batch (opt-in, see `BatchOptions::share_tries`).
        let trie_cache = opts.share_tries.then(TrieCache::new);

        // Deadline epoch = dequeue time, for the sequential and the
        // fanned-out path alike.
        // Batch workers run untraced: `BatchOptions` is a plain `Copy` bag
        // and cannot carry a sink reference; workloads that need spans run
        // their queries through `run_traced` individually.
        let run_claimed = |query: &Query| -> Result<Response, QueryError> {
            self.run_admitted(
                query,
                Deadline::for_query(Instant::now(), query.deadline_ms()),
                trie_cache.as_ref(),
                Tracer::disabled(),
            )
        };

        if threads <= 1 {
            for (slot, query) in slots.iter_mut().zip(queries) {
                *slot = Some(run_claimed(query)?);
            }
        } else {
            let cursor = AtomicUsize::new(0);
            // First failure (a deadline expiry) flips the flag so the other
            // workers stop claiming: the batch's result is already decided,
            // running out the remaining queries would be pure waste.
            let abort = std::sync::atomic::AtomicBool::new(false);
            let collected = std::thread::scope(|scope| {
                let handles: Vec<_> = (0..threads)
                    .map(|_| {
                        let cursor = &cursor;
                        let abort = &abort;
                        let run_claimed = &run_claimed;
                        scope.spawn(move || {
                            let mut local: Vec<(usize, Response)> = Vec::new();
                            loop {
                                if abort.load(Ordering::Relaxed) {
                                    break;
                                }
                                let i = cursor.fetch_add(1, Ordering::Relaxed);
                                let Some(query) = queries.get(i) else {
                                    break;
                                };
                                match run_claimed(query) {
                                    Ok(response) => local.push((i, response)),
                                    Err(e) => {
                                        abort.store(true, Ordering::Relaxed);
                                        return Err(e);
                                    }
                                }
                            }
                            Ok::<_, QueryError>(local)
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("batch worker panicked"))
                    .collect::<Vec<_>>()
            });
            for worker in collected {
                for (i, response) in worker? {
                    slots[i] = Some(response);
                }
            }
        }
        let wall_time = t0.elapsed();

        let responses: Vec<Response> = slots
            .into_iter()
            .map(|s| s.expect("every workload slot is filled"))
            .collect();
        let mut merged = SearchStats::default();
        for r in &responses {
            merged.merge(&r.stats);
        }
        let cpu_time = merged.total_time();
        Ok(BatchResponse {
            stats: BatchStats {
                wall_time,
                cpu_time,
                threads,
                queries: responses.len(),
                merged,
            },
            responses,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::Parallelism;
    use crate::temporal::{TemporalConstraint, TimeInterval};
    use crate::verify::VerifyMode;
    use traj::Trajectory;
    use wed::models::Lev;

    fn store() -> TrajectoryStore {
        let mut s = TrajectoryStore::new();
        s.push(Trajectory::new(
            vec![0, 1, 2, 3, 4],
            vec![0.0, 1.0, 2.0, 3.0, 4.0],
        ));
        s.push(Trajectory::new(
            vec![3, 1, 5, 1, 2],
            vec![10.0, 11.0, 12.0, 13.0, 14.0],
        ));
        s.push(Trajectory::new(
            vec![9, 8, 7, 6],
            vec![20.0, 21.0, 22.0, 23.0],
        ));
        s.push(Trajectory::new(
            vec![1, 2, 1, 2, 1],
            vec![30.0, 31.0, 32.0, 33.0, 34.0],
        ));
        s
    }

    #[test]
    fn builder_layouts_agree() {
        let store = store();
        let single = EngineBuilder::new(Lev, &store, 10).build();
        let sharded = EngineBuilder::new(Lev, &store, 10)
            .layout(IndexLayout::Sharded(3))
            .build();
        let q = Query::threshold(vec![1, 5, 2], 2.0).build().unwrap();
        assert_eq!(
            single.run(&q).unwrap().matches,
            sharded.run(&q).unwrap().matches
        );
        assert!(matches!(single.index(), AnyIndex::Single(_)));
        assert!(matches!(sharded.index(), AnyIndex::Sharded(_)));
    }

    #[test]
    #[should_panic(expected = "cannot be built by trajsearch-core")]
    fn remote_layout_is_a_descriptor_not_a_local_build() {
        let store = store();
        let _ = EngineBuilder::new(Lev, &store, 10)
            .layout(IndexLayout::Remote(RemoteSpec::new([
                "127.0.0.1:7001",
                "127.0.0.1:7002",
            ])))
            .build();
    }

    #[test]
    fn run_rejects_temporal_postings_without_index_support() {
        let store = store();
        let engine = EngineBuilder::new(Lev, &store, 10).build();
        let q = Query::threshold(vec![1, 2], 1.0)
            .temporal(TemporalConstraint::overlaps(TimeInterval::new(0.0, 5.0)))
            .temporal_postings(true)
            .build()
            .unwrap();
        assert_eq!(
            engine.run(&q).unwrap_err(),
            QueryError::TemporalPostingsUnavailable
        );
        // With temporal postings built, the same query is admitted.
        let engine = EngineBuilder::new(Lev, &store, 10)
            .temporal_postings(true)
            .build();
        assert!(engine.run(&q).is_ok());
    }

    #[test]
    fn run_batch_rejects_before_executing() {
        let store = store();
        let engine = EngineBuilder::new(Lev, &store, 10).build();
        let good = Query::threshold(vec![1, 2], 1.0).build().unwrap();
        let bad = Query::threshold(vec![1, 2], 1.0)
            .temporal(TemporalConstraint::overlaps(TimeInterval::new(0.0, 5.0)))
            .temporal_postings(true)
            .build()
            .unwrap();
        let err = engine
            .run_batch(&[good, bad], BatchOptions::with_threads(2))
            .unwrap_err();
        assert_eq!(err, QueryError::TemporalPostingsUnavailable);
    }

    #[test]
    fn mixed_batch_equals_run_loop() {
        let store = store();
        let engine = EngineBuilder::new(Lev, &store, 10)
            .temporal_postings(true)
            .build();
        let queries = vec![
            Query::threshold(vec![1, 5, 2], 2.0).build().unwrap(),
            Query::top_k(vec![1, 2], 2, 0.5, 4.0).build().unwrap(),
            Query::threshold(vec![1, 2], 1.5)
                .verify(VerifyMode::Sw)
                .temporal(TemporalConstraint::overlaps(TimeInterval::new(0.0, 15.0)))
                .temporal_filter(true)
                .temporal_postings(true)
                .build()
                .unwrap(),
            Query::threshold(vec![9, 8], 1.0)
                .parallelism(Parallelism::InQuery(2))
                .build()
                .unwrap(),
        ];
        let want: Vec<Response> = queries.iter().map(|q| engine.run(q).unwrap()).collect();
        for threads in [1, 2, 4] {
            let got = engine
                .run_batch(&queries, BatchOptions::with_threads(threads))
                .unwrap();
            assert_eq!(got.responses.len(), want.len());
            for (g, w) in got.responses.iter().zip(&want) {
                // Matches byte-identical; stats counters identical (timings
                // necessarily differ between runs).
                assert_eq!(g.matches, w.matches, "threads={threads}");
                assert_eq!(g.stats.candidates, w.stats.candidates);
                assert_eq!(g.stats.results, w.stats.results);
                assert_eq!(g.stats.fallback, w.stats.fallback);
            }
            assert_eq!(got.stats.queries, queries.len());
        }
    }

    #[test]
    fn expired_deadline_is_typed_on_every_entry_point() {
        let store = store();
        let engine = EngineBuilder::new(Lev, &store, 10).build();
        let past = Deadline::at(Instant::now() - Duration::from_millis(5));
        for q in [
            Query::threshold(vec![1, 5, 2], 2.0).build().unwrap(),
            Query::top_k(vec![1, 2], 2, 0.5, 4.0).build().unwrap(),
            Query::threshold(vec![1, 2], 1.0)
                .parallelism(Parallelism::InQuery(2))
                .build()
                .unwrap(),
        ] {
            assert_eq!(
                engine.run_with_deadline(&q, past).unwrap_err(),
                QueryError::DeadlineExceeded
            );
        }
        // A generous explicit deadline (or a generous deadline_ms through
        // `run`) is byte-identical to no deadline at all.
        let q = Query::threshold(vec![1, 5, 2], 2.0)
            .deadline_ms(3_600_000)
            .build()
            .unwrap();
        let relaxed = engine.run(&q).unwrap();
        let bare = engine
            .run(&Query::threshold(vec![1, 5, 2], 2.0).build().unwrap())
            .unwrap();
        assert_eq!(relaxed.matches, bare.matches);
        assert_eq!(relaxed.stats.candidates, bare.stats.candidates);
        assert_eq!(
            engine
                .run_with_deadline(&q, Deadline::within(Duration::from_secs(3600)))
                .unwrap()
                .matches,
            bare.matches
        );
    }

    #[test]
    fn run_batch_honors_deadlines_from_dequeue() {
        let store = store();
        let engine = EngineBuilder::new(Lev, &store, 10).build();
        // Generous per-query deadlines: the batch completes normally even
        // though the deadline clock only starts at each query's dequeue.
        let qs: Vec<Query> = (0..4)
            .map(|_| {
                Query::threshold(vec![1, 2], 1.0)
                    .deadline_ms(3_600_000)
                    .build()
                    .unwrap()
            })
            .collect();
        for threads in [1, 3] {
            let out = engine
                .run_batch(&qs, BatchOptions::with_threads(threads))
                .unwrap();
            assert_eq!(out.responses.len(), qs.len());
        }
    }

    #[test]
    fn deadline_round_trips_through_the_wire() {
        let q = Query::threshold(vec![1, 2], 1.0)
            .deadline_ms(750)
            .build()
            .unwrap();
        let back = Query::from_json(&q.to_json()).unwrap();
        assert_eq!(back.deadline_ms(), Some(750));
        assert_eq!(back, q);
    }

    #[test]
    fn top_k_response_is_ranked() {
        let store = store();
        let engine = EngineBuilder::new(Lev, &store, 10).build();
        let q = Query::top_k(vec![1, 2], 3, 0.5, 4.0).build().unwrap();
        let r = engine.run(&q).unwrap();
        assert!(!r.matches.is_empty());
        let ranked = r.ranked();
        assert_eq!(ranked[0].rank, 0);
        for pair in ranked.windows(2) {
            assert!(pair[0].best.dist <= pair[1].best.dist, "ranks out of order");
        }
    }

    #[test]
    fn response_json_round_trip() {
        let store = store();
        let engine = EngineBuilder::new(Lev, &store, 10).build();
        let q = Query::threshold(vec![1, 5, 2], 2.5).build().unwrap();
        let r = engine.run(&q).unwrap();
        assert!(!r.matches.is_empty());
        let back = Response::from_json(&r.to_json()).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn prebuilt_index_escape_hatch() {
        let store = store();
        let index = InvertedIndex::build(&store, 10);
        let engine = EngineBuilder::new(Lev, &store, 10).build_with(index);
        let q = Query::threshold(vec![1, 2], 1.0).build().unwrap();
        assert!(!engine.run(&q).unwrap().matches.is_empty());
        assert_eq!(engine.build_time(), Duration::ZERO);
    }

    #[test]
    #[should_panic(expected = "same trajectories")]
    fn prebuilt_index_must_cover_store() {
        let store = store();
        let partial = store.prefix(2);
        let index = InvertedIndex::build(&partial, 10);
        EngineBuilder::new(Lev, &store, 10).build_with(index);
    }
}
