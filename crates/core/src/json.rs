//! Minimal, dependency-free JSON used by the wire format.
//!
//! The build environment is offline (no serde); [`Query`](crate::Query) and
//! [`Response`](crate::Response) hand-roll their encoding over this small
//! document model instead. Two properties matter for a wire format and are
//! guaranteed here:
//!
//! * **Lossless numbers** — [`JsonValue::Num`] stores the raw token, so
//!   `u64` counters and nanosecond durations survive a round trip without
//!   passing through `f64`; floats are written with Rust's shortest
//!   round-trip formatting, so `parse(render(x)) == x` bit-for-bit.
//! * **Deterministic rendering** — objects keep insertion order and the
//!   writer emits no insignificant whitespace, so equal values render to
//!   equal strings (usable as cache keys by a serving layer).
//!
//! The parser is a strict recursive-descent JSON reader (escapes and
//! `\uXXXX` surrogate pairs included). It rejects trailing garbage, and —
//! because this codec now fronts a network socket where the *sender* picks
//! the document shape — bounds nesting at [`MAX_DEPTH`] so a frame of ten
//! thousand `[`s is a typed parse error, not a stack overflow. Malformed
//! input of any kind returns `Err`; the parser never panics (fuzzed in
//! `tests/json_hardening.rs`).

use std::fmt;

/// Maximum container nesting the parser accepts. The wire formats use a
/// small constant depth (≤ 4); 128 leaves two orders of magnitude of
/// headroom while keeping recursion far from the stack guard.
pub const MAX_DEPTH: usize = 128;

/// One JSON document node.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    Null,
    Bool(bool),
    /// A number kept as its raw token (see module docs for why).
    Num(String),
    Str(String),
    Arr(Vec<JsonValue>),
    /// Key–value pairs in insertion order (duplicates are not merged; `get`
    /// returns the first).
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Wraps a float using Rust's shortest round-trip `Display` formatting.
    /// The value must be finite — JSON has no NaN/∞ tokens.
    pub fn num_f64(x: f64) -> JsonValue {
        debug_assert!(x.is_finite(), "JSON numbers must be finite");
        JsonValue::Num(format!("{x}"))
    }

    pub fn num_u64(x: u64) -> JsonValue {
        JsonValue::Num(x.to_string())
    }

    pub fn num_usize(x: usize) -> JsonValue {
        JsonValue::Num(x.to_string())
    }

    /// First value under `key` if this is an object.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    pub fn as_usize(&self) -> Option<usize> {
        match self {
            JsonValue::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Parses a complete JSON document; trailing non-whitespace is an
    /// error, as is nesting deeper than [`MAX_DEPTH`].
    pub fn parse(text: &str) -> Result<JsonValue, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos, 0)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing garbage at byte {pos}"));
        }
        Ok(value)
    }
}

impl fmt::Display for JsonValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JsonValue::Null => f.write_str("null"),
            JsonValue::Bool(b) => write!(f, "{b}"),
            JsonValue::Num(raw) => f.write_str(raw),
            JsonValue::Str(s) => write_escaped(f, s),
            JsonValue::Arr(items) => {
                f.write_str("[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            JsonValue::Obj(pairs) => {
                f.write_str("{")?;
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    write!(f, ":{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&b) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!(
            "expected {:?} at byte {} but found {:?}",
            b as char,
            *pos,
            bytes.get(*pos).map(|&b| b as char)
        ))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<JsonValue, String> {
    if depth > MAX_DEPTH {
        return Err(format!("nesting deeper than {MAX_DEPTH} at byte {pos}"));
    }
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_obj(bytes, pos, depth),
        Some(b'[') => parse_arr(bytes, pos, depth),
        Some(b'"') => Ok(JsonValue::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_keyword(bytes, pos, "true", JsonValue::Bool(true)),
        Some(b'f') => parse_keyword(bytes, pos, "false", JsonValue::Bool(false)),
        Some(b'n') => parse_keyword(bytes, pos, "null", JsonValue::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_keyword(
    bytes: &[u8],
    pos: &mut usize,
    word: &str,
    value: JsonValue,
) -> Result<JsonValue, String> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}", pos = *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let digits = |bytes: &[u8], pos: &mut usize| {
        let d0 = *pos;
        while matches!(bytes.get(*pos), Some(b'0'..=b'9')) {
            *pos += 1;
        }
        *pos > d0
    };
    if !digits(bytes, pos) {
        return Err(format!("invalid number at byte {start}"));
    }
    if bytes.get(*pos) == Some(&b'.') {
        *pos += 1;
        if !digits(bytes, pos) {
            return Err(format!("invalid number at byte {start}"));
        }
    }
    if matches!(bytes.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(bytes.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        if !digits(bytes, pos) {
            return Err(format!("invalid number at byte {start}"));
        }
    }
    let raw = std::str::from_utf8(&bytes[start..*pos]).expect("number tokens are ASCII");
    Ok(JsonValue::Num(raw.to_string()))
}

fn parse_hex4(bytes: &[u8], pos: &mut usize) -> Result<u32, String> {
    let slice = bytes
        .get(*pos..*pos + 4)
        .ok_or_else(|| format!("truncated \\u escape at byte {}", *pos))?;
    let s = std::str::from_utf8(slice).map_err(|_| "non-ASCII in \\u escape".to_string())?;
    let v = u32::from_str_radix(s, 16).map_err(|_| format!("invalid \\u escape {s:?}"))?;
    *pos += 4;
    Ok(v)
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        *pos += 1;
                        let hi = parse_hex4(bytes, pos)?;
                        let cp = if (0xD800..0xDC00).contains(&hi) {
                            // Surrogate pair: a \uXXXX low half must follow.
                            if bytes.get(*pos) != Some(&b'\\') || bytes.get(*pos + 1) != Some(&b'u')
                            {
                                return Err("unpaired surrogate in \\u escape".into());
                            }
                            *pos += 2;
                            let lo = parse_hex4(bytes, pos)?;
                            if !(0xDC00..0xE000).contains(&lo) {
                                return Err("invalid low surrogate in \\u escape".into());
                            }
                            0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                        } else {
                            hi
                        };
                        out.push(
                            char::from_u32(cp)
                                .ok_or_else(|| format!("invalid code point U+{cp:X}"))?,
                        );
                        continue; // pos already past the escape
                    }
                    other => return Err(format!("invalid escape {other:?}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 character (input is a &str, so slicing
                // at char boundaries is safe; find the next boundary).
                let start = *pos;
                *pos += 1;
                while *pos < bytes.len() && (bytes[*pos] & 0xC0) == 0x80 {
                    *pos += 1;
                }
                out.push_str(std::str::from_utf8(&bytes[start..*pos]).expect("UTF-8 input"));
            }
        }
    }
}

fn parse_arr(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<JsonValue, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(JsonValue::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos, depth + 1)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(JsonValue::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_obj(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<JsonValue, String> {
    expect(bytes, pos, b'{')?;
    let mut pairs = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(JsonValue::Obj(pairs));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos, depth + 1)?;
        pairs.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(JsonValue::Obj(pairs));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_a_document() {
        let text = r#"{"a":[1,2.5,-3e-2],"b":"x\"y\\z","c":true,"d":null,"e":{}}"#;
        let v = JsonValue::parse(text).unwrap();
        assert_eq!(v.to_string(), text);
    }

    #[test]
    fn numbers_are_lossless() {
        for x in [0.1, 1.0 / 3.0, f64::MAX, f64::MIN_POSITIVE, -0.0, 1e-300] {
            let rendered = JsonValue::num_f64(x).to_string();
            let back = JsonValue::parse(&rendered).unwrap().as_f64().unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{x} mangled via {rendered}");
        }
        let big = u64::MAX;
        let rendered = JsonValue::num_u64(big).to_string();
        assert_eq!(JsonValue::parse(&rendered).unwrap().as_u64(), Some(big));
    }

    #[test]
    fn string_escapes() {
        let v = JsonValue::Str("tab\there \"quoted\" \\ \u{1}".into());
        let text = v.to_string();
        assert_eq!(JsonValue::parse(&text).unwrap(), v);
        // Unicode escapes (incl. surrogate pairs) parse correctly.
        let v = JsonValue::parse(r#""\u00e9\ud83d\ude00""#).unwrap();
        assert_eq!(v.as_str(), Some("é😀"));
    }

    #[test]
    fn rejects_malformed() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "tru",
            "01x",
            "\"\\q\"",
            "1 2",
            "{\"a\":1,}",
        ] {
            assert!(JsonValue::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn depth_limit_is_a_typed_error() {
        // A hostile frame of nested containers must be a parse error, not a
        // stack overflow (this parser fronts a network socket).
        for open in ["[", "{\"k\":"] {
            let bomb = open.repeat(50_000);
            let err = JsonValue::parse(&bomb).unwrap_err();
            assert!(err.contains("nesting deeper"), "got {err:?}");
        }
        // Depth exactly at the limit parses; one past it does not.
        let ok = format!("{}1{}", "[".repeat(MAX_DEPTH), "]".repeat(MAX_DEPTH));
        assert!(JsonValue::parse(&ok).is_ok());
        let too_deep = format!(
            "{}1{}",
            "[".repeat(MAX_DEPTH + 1),
            "]".repeat(MAX_DEPTH + 1)
        );
        assert!(JsonValue::parse(&too_deep).is_err());
    }

    #[test]
    fn non_finite_tokens_are_rejected() {
        // JSON has no NaN/Infinity literals; they must not sneak in as
        // keywords or numbers.
        for bad in ["NaN", "nan", "Infinity", "-Infinity", "inf", "-inf"] {
            assert!(JsonValue::parse(bad).is_err(), "accepted {bad:?}");
        }
        // Huge exponents still parse as raw tokens; the conversion is what
        // saturates, and callers validate finiteness downstream.
        let v = JsonValue::parse("1e999").unwrap();
        assert_eq!(v.as_f64(), Some(f64::INFINITY));
        assert_eq!(v.as_u64(), None);
    }

    #[test]
    fn duplicate_keys_keep_first_wins_semantics() {
        let v = JsonValue::parse(r#"{"a":1,"a":2,"b":3}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_usize(), Some(1));
        assert_eq!(v.get("b").unwrap().as_usize(), Some(3));
    }

    #[test]
    fn get_and_accessors() {
        let v = JsonValue::parse(r#"{"k":3,"s":"x","b":false,"a":[1]}"#).unwrap();
        assert_eq!(v.get("k").unwrap().as_usize(), Some(3));
        assert_eq!(v.get("s").unwrap().as_str(), Some("x"));
        assert_eq!(v.get("b").unwrap().as_bool(), Some(false));
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 1);
        assert!(v.get("missing").is_none());
    }
}
