//! Sharded inverted index: postings partitioned by trajectory id.
//!
//! The paper's index (§4.1) is one set of per-symbol postings lists;
//! [`InvertedIndex`](crate::index::InvertedIndex) realizes that directly and
//! PR 2's batch engine parallelizes *queries* against it — but construction
//! and appends stayed serial. [`ShardedIndex`] removes that bottleneck by
//! partitioning every postings list by `traj_id % num_shards`:
//!
//! * **Parallel build** — each shard indexes a disjoint subset of
//!   trajectories, so [`ShardedIndex::build_parallel`] constructs all shards
//!   concurrently on `std::thread::scope` workers with no synchronization
//!   (workers share only the read-only store).
//! * **Single-shard appends** — a new trajectory's id determines its shard,
//!   so [`ShardedIndex::append`] touches exactly one shard; the other
//!   shards' lists (and their by-departure orderings) are untouched, which
//!   also makes the temporal-ordering rebuild after appends incremental.
//! * **Lock-free reads** — queries iterate shards through the
//!   [`PostingSource`] trait with plain shared references; there is no
//!   interior mutability anywhere.
//!
//! The layout is invisible to search: `freq`, spans and the candidate
//! *multiset* are identical to the single-list index, and verification
//! sorts/dedups candidates, so `SearchEngine` results are byte-identical at
//! any shard count (enforced by `tests/index_equivalence.rs`). This is the
//! stepping stone to shards living on different machines (see ROADMAP).

use crate::index::{Posting, PostingSource, SizeBreakdown};
use traj::{TrajId, TrajectoryStore};
use wed::Sym;

/// One shard: a complete mini inverted index over the trajectories with
/// `id % num_shards == shard_id`. Postings carry *global* ids; the
/// per-trajectory spans are stored densely at local slot `id / num_shards`.
#[derive(Debug, Clone)]
struct Shard {
    postings: Vec<Vec<Posting>>,
    departures: Vec<f64>,
    arrivals: Vec<f64>,
    total_postings: usize,
    /// By-departure ordering of this shard's lists (§4.3), built on demand;
    /// dropped by appends *to this shard only*.
    dep_postings: Option<Vec<Vec<(f64, Posting)>>>,
}

impl Shard {
    fn build(
        store: &TrajectoryStore,
        alphabet_size: usize,
        shard_id: usize,
        num_shards: usize,
    ) -> Self {
        let mut shard = Shard {
            postings: vec![Vec::new(); alphabet_size],
            departures: Vec::new(),
            arrivals: Vec::new(),
            total_postings: 0,
            dep_postings: None,
        };
        // Visit only owned ids (ascending, so local slots stay dense):
        // per-worker cost is O(total/num_shards), not a full store scan.
        for id in (shard_id..store.len()).step_by(num_shards) {
            shard.push(id as TrajId, store.get(id as TrajId));
        }
        shard
    }

    /// Records one trajectory. Callers guarantee `id` belongs to this shard
    /// and arrives in ascending order, so local slots stay dense.
    fn push(&mut self, id: TrajId, t: &traj::Trajectory) {
        for (j, &q) in t.path().iter().enumerate() {
            self.postings[q as usize].push((id, j as u32));
            self.total_postings += 1;
        }
        self.departures.push(t.departure());
        self.arrivals.push(t.arrival());
        self.dep_postings = None;
    }

    fn enable_temporal_postings(&mut self, num_shards: usize) {
        if self.dep_postings.is_some() {
            return;
        }
        let mut dp: Vec<Vec<(f64, Posting)>> = Vec::with_capacity(self.postings.len());
        for list in &self.postings {
            let mut v: Vec<(f64, Posting)> = list
                .iter()
                .map(|&(id, j)| (self.departures[id as usize / num_shards], (id, j)))
                .collect();
            v.sort_by(|a, b| a.0.total_cmp(&b.0));
            dp.push(v);
        }
        self.dep_postings = Some(dp);
    }

    fn size_breakdown(&self) -> SizeBreakdown {
        SizeBreakdown {
            postings: self.total_postings * std::mem::size_of::<Posting>(),
            list_headers: self.postings.len() * std::mem::size_of::<Vec<Posting>>(),
            spans: self.departures.len() * 2 * std::mem::size_of::<f64>(),
            by_departure: self
                .dep_postings
                .as_ref()
                .map(|dp| {
                    self.total_postings * std::mem::size_of::<(f64, Posting)>()
                        + dp.len() * std::mem::size_of::<Vec<(f64, Posting)>>()
                })
                .unwrap_or(0),
        }
    }
}

/// Inverted index partitioned by `traj_id % num_shards` — same query
/// semantics as [`InvertedIndex`](crate::index::InvertedIndex) (which is the
/// 1-shard special case), parallel construction and per-shard growth. See
/// the [module docs](self) for the layout.
#[derive(Debug, Clone)]
pub struct ShardedIndex {
    shards: Vec<Shard>,
    alphabet_size: usize,
    num_trajectories: usize,
}

impl ShardedIndex {
    /// Builds the index serially (one shard at a time). Prefer
    /// [`build_parallel`](ShardedIndex::build_parallel); this exists as the
    /// reference implementation and for single-threaded contexts.
    ///
    /// # Panics
    /// Panics if `num_shards == 0`.
    pub fn build(store: &TrajectoryStore, alphabet_size: usize, num_shards: usize) -> Self {
        assert!(num_shards >= 1, "need at least one shard");
        let shards = (0..num_shards)
            .map(|s| Shard::build(store, alphabet_size, s, num_shards))
            .collect();
        ShardedIndex {
            shards,
            alphabet_size,
            num_trajectories: store.len(),
        }
    }

    /// Builds all shards concurrently, one `std::thread::scope` worker per
    /// shard. Workers share only the read-only store, so no locks are
    /// needed; the result is identical to [`build`](ShardedIndex::build).
    ///
    /// # Panics
    /// Panics if `num_shards == 0`.
    pub fn build_parallel(
        store: &TrajectoryStore,
        alphabet_size: usize,
        num_shards: usize,
    ) -> Self {
        assert!(num_shards >= 1, "need at least one shard");
        if num_shards == 1 {
            return Self::build(store, alphabet_size, 1);
        }
        let shards = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..num_shards)
                .map(|s| scope.spawn(move || Shard::build(store, alphabet_size, s, num_shards)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("shard build worker panicked"))
                .collect::<Vec<_>>()
        });
        ShardedIndex {
            shards,
            alphabet_size,
            num_trajectories: store.len(),
        }
    }

    /// Appends one trajectory, touching exactly the shard that owns its id
    /// (`id % num_shards`). The id must be the next dense global id (the
    /// store's `push` return value).
    ///
    /// Only the touched shard's by-departure ordering is dropped — the
    /// source-wide [`has_temporal_postings`] reports `false` until the next
    /// [`enable_temporal_postings`] call, which rebuilds *only* the stale
    /// shard (append-then-re-enable costs one shard's sort, not the whole
    /// index's).
    ///
    /// [`has_temporal_postings`]: PostingSource::has_temporal_postings
    /// [`enable_temporal_postings`]: ShardedIndex::enable_temporal_postings
    pub fn append(&mut self, id: TrajId, t: &traj::Trajectory) {
        assert_eq!(
            id as usize, self.num_trajectories,
            "ids must stay dense: expected {}, got {id}",
            self.num_trajectories
        );
        let n = self.shards.len();
        self.shards[id as usize % n].push(id, t);
        self.num_trajectories += 1;
    }

    /// Builds the by-departure ordering of every shard's postings lists
    /// (§4.3), in parallel (one scoped worker per shard that needs it).
    /// Shards whose ordering is already current are skipped, so re-enabling
    /// after [`append`](ShardedIndex::append) is incremental.
    pub fn enable_temporal_postings(&mut self) {
        let n = self.shards.len();
        std::thread::scope(|scope| {
            for shard in self.shards.iter_mut().filter(|s| s.dep_postings.is_none()) {
                scope.spawn(move || shard.enable_temporal_postings(n));
            }
        });
    }

    /// Number of shards the postings are partitioned into.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Component attribution of [`size_bytes`](PostingSource::size_bytes),
    /// summed over all shards. The `list_headers` component is what grows
    /// with the shard count (every shard keeps a full per-symbol list
    /// table), which is the 7–47% overhead `BENCH_index.json` reports over
    /// the single-list layout.
    pub fn size_breakdown(&self) -> SizeBreakdown {
        self.shards
            .iter()
            .map(Shard::size_breakdown)
            .fold(SizeBreakdown::default(), |a, b| a + b)
    }

    /// Snapshot hook: compacts the partitioned postings into the immutable
    /// delta+varint arena layout
    /// ([`CompactIndex`](crate::compact::CompactIndex)). Canonicalization
    /// makes the result identical to compacting the equivalent
    /// [`InvertedIndex`](crate::index::InvertedIndex) — the shard count
    /// leaves no trace in a snapshot.
    pub fn to_compact(&self) -> crate::compact::CompactIndex {
        crate::compact::CompactIndex::from_source(self)
    }
}

/// One shard of the partitioned index as a **standalone, servable** unit —
/// the building block for running shards in separate processes (see the
/// `trajsearch-serve` shard-server role and `trajsearch-distrib`).
///
/// `IndexShard::build(store, a, k, n)` constructs byte-for-byte the same
/// postings, orderings and spans as shard `k` inside
/// `ShardedIndex::build(store, a, n)` — both delegate to the same internal
/// shard builder. That identity is what makes remote placement provably
/// equivalent to in-process sharding: a coordinator concatenating remote
/// shards in shard-id order reproduces [`ShardedIndex`]'s iteration order
/// exactly.
///
/// Postings carry **global** trajectory ids; spans are stored densely at
/// local slot `id / num_shards`. Accessors return borrowed slices so a
/// serving layer can encode them without copies.
#[derive(Debug, Clone)]
pub struct IndexShard {
    shard: Shard,
    shard_id: usize,
    num_shards: usize,
    alphabet_size: usize,
    num_trajectories: usize,
}

impl IndexShard {
    /// Builds shard `shard_id` of an `num_shards`-way partition over
    /// `store`. Cost is `O(total_postings / num_shards)`.
    ///
    /// # Panics
    /// Panics if `num_shards == 0` or `shard_id >= num_shards`.
    pub fn build(
        store: &TrajectoryStore,
        alphabet_size: usize,
        shard_id: usize,
        num_shards: usize,
    ) -> Self {
        assert!(num_shards >= 1, "need at least one shard");
        assert!(
            shard_id < num_shards,
            "shard_id {shard_id} out of range for {num_shards} shards"
        );
        IndexShard {
            shard: Shard::build(store, alphabet_size, shard_id, num_shards),
            shard_id,
            num_shards,
            alphabet_size,
            num_trajectories: store.len(),
        }
    }

    /// Builds this shard's by-departure orderings (§4.3); idempotent.
    pub fn enable_temporal_postings(&mut self) {
        self.shard.enable_temporal_postings(self.num_shards);
    }

    pub fn has_temporal_postings(&self) -> bool {
        self.shard.dep_postings.is_some()
    }

    pub fn shard_id(&self) -> usize {
        self.shard_id
    }

    pub fn num_shards(&self) -> usize {
        self.num_shards
    }

    pub fn alphabet_size(&self) -> usize {
        self.alphabet_size
    }

    /// Trajectories owned by this shard.
    pub fn num_local_trajectories(&self) -> usize {
        self.shard.departures.len()
    }

    /// Trajectories in the *whole* store the shard was cut from — what the
    /// assembled [`PostingSource`] must report.
    pub fn num_trajectories(&self) -> usize {
        self.num_trajectories
    }

    /// This shard's share of symbol `q`'s postings list, in build order
    /// (ascending global id, then position).
    pub fn postings(&self, q: Sym) -> &[Posting] {
        &self.shard.postings[q as usize]
    }

    pub fn freq(&self, q: Sym) -> u32 {
        self.shard.postings[q as usize].len() as u32
    }

    /// Departure-sorted prefix of this shard's list for `q` with departure
    /// `<= t_max`; `None` until
    /// [`enable_temporal_postings`](IndexShard::enable_temporal_postings).
    pub fn postings_departing_by(&self, q: Sym, t_max: f64) -> Option<&[(f64, Posting)]> {
        let list = &self.shard.dep_postings.as_ref()?[q as usize];
        let cut = list.partition_point(|&(dep, _)| dep <= t_max);
        Some(&list[..cut])
    }

    /// Departures of the owned trajectories, dense by local slot
    /// (`global_id / num_shards`).
    pub fn departures(&self) -> &[f64] {
        &self.shard.departures
    }

    /// Arrivals, same layout as [`departures`](IndexShard::departures).
    pub fn arrivals(&self) -> &[f64] {
        &self.shard.arrivals
    }

    pub fn total_postings(&self) -> usize {
        self.shard.total_postings
    }

    pub fn size_bytes(&self) -> usize {
        self.shard.size_breakdown().total()
    }

    /// Component attribution of [`size_bytes`](IndexShard::size_bytes).
    pub fn size_breakdown(&self) -> SizeBreakdown {
        self.shard.size_breakdown()
    }
}

impl PostingSource for ShardedIndex {
    /// Shard-major order: shard 0's records (in build/append order), then
    /// shard 1's, … Consumers must treat `L_q` as a multiset.
    fn postings(&self, q: Sym) -> impl Iterator<Item = Posting> + '_ {
        self.shards
            .iter()
            .flat_map(move |s| s.postings[q as usize].iter().copied())
    }

    fn freq(&self, q: Sym) -> u32 {
        self.shards
            .iter()
            .map(|s| s.postings[q as usize].len() as u32)
            .sum()
    }

    fn span(&self, id: TrajId) -> (f64, f64) {
        let n = self.shards.len();
        let shard = &self.shards[id as usize % n];
        let slot = id as usize / n;
        (shard.departures[slot], shard.arrivals[slot])
    }

    /// Shard-major; **departure-sorted within each shard only**. Complete
    /// (every qualifying record appears exactly once), which is all the
    /// temporal candidate generation needs.
    fn postings_departing_by(
        &self,
        q: Sym,
        t_max: f64,
    ) -> impl Iterator<Item = (f64, Posting)> + '_ {
        self.shards.iter().flat_map(move |s| {
            let list = &s
                .dep_postings
                .as_ref()
                .expect("temporal postings not enabled")[q as usize];
            let cut = list.partition_point(|&(dep, _)| dep <= t_max);
            list[..cut].iter().copied()
        })
    }

    fn has_temporal_postings(&self) -> bool {
        self.shards.iter().all(|s| s.dep_postings.is_some())
    }

    fn alphabet_size(&self) -> usize {
        self.alphabet_size
    }

    fn num_trajectories(&self) -> usize {
        self.num_trajectories
    }

    fn total_postings(&self) -> usize {
        self.shards.iter().map(|s| s.total_postings).sum()
    }

    fn size_bytes(&self) -> usize {
        self.size_breakdown().total()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::InvertedIndex;
    use traj::Trajectory;

    fn store() -> TrajectoryStore {
        let mut s = TrajectoryStore::new();
        s.push(Trajectory::new(vec![0, 1, 2], vec![10.0, 11.0, 12.0]));
        s.push(Trajectory::new(vec![2, 1, 2], vec![5.0, 6.0, 7.0]));
        s.push(Trajectory::new(vec![3, 0], vec![20.0, 21.0]));
        s.push(Trajectory::new(vec![1, 1, 1, 3], vec![1.0, 2.0, 3.0, 4.0]));
        s.push(Trajectory::new(vec![2], vec![30.0]));
        s
    }

    fn sorted_postings(idx: &impl PostingSource, q: Sym) -> Vec<Posting> {
        let mut v: Vec<Posting> = idx.postings(q).collect();
        v.sort_unstable();
        v
    }

    #[test]
    fn parallel_build_equals_serial_build_equals_inverted() {
        let s = store();
        let reference = InvertedIndex::build(&s, 6);
        for shards in [1, 2, 3, 5, 8] {
            let serial = ShardedIndex::build(&s, 6, shards);
            let parallel = ShardedIndex::build_parallel(&s, 6, shards);
            assert_eq!(parallel.num_shards(), shards);
            assert_eq!(parallel.num_trajectories(), reference.num_trajectories());
            assert_eq!(parallel.total_postings(), reference.total_postings());
            for q in 0..6u32 {
                let want: Vec<Posting> = reference.postings(q).to_vec();
                assert_eq!(sorted_postings(&serial, q), want, "serial, q={q}");
                assert_eq!(sorted_postings(&parallel, q), want, "parallel, q={q}");
                assert_eq!(PostingSource::freq(&parallel, q), reference.freq(q));
            }
            for id in 0..s.len() as TrajId {
                assert_eq!(parallel.span(id), reference.span(id));
            }
        }
    }

    #[test]
    fn one_shard_preserves_build_order() {
        // The 1-shard layout *is* the InvertedIndex layout, order included.
        let s = store();
        let reference = InvertedIndex::build(&s, 6);
        let sharded = ShardedIndex::build_parallel(&s, 6, 1);
        for q in 0..6u32 {
            let got: Vec<Posting> = PostingSource::postings(&sharded, q).collect();
            assert_eq!(got, reference.postings(q));
        }
    }

    #[test]
    fn append_touches_one_shard_and_matches_rebuild() {
        let mut s = store();
        let mut idx = ShardedIndex::build_parallel(&s, 6, 3);
        idx.enable_temporal_postings();
        let extra = Trajectory::new(vec![4, 1], vec![50.0, 51.0]);
        let id = s.push(extra.clone());
        idx.append(id, &extra);
        assert!(
            !idx.has_temporal_postings(),
            "the owning shard's ordering must be dropped"
        );
        // Untouched shards keep their ordering: exactly one shard is stale.
        let stale = idx
            .shards
            .iter()
            .filter(|sh| sh.dep_postings.is_none())
            .count();
        assert_eq!(stale, 1);

        idx.enable_temporal_postings();
        assert!(idx.has_temporal_postings());
        let rebuilt = ShardedIndex::build(&s, 6, 3);
        assert_eq!(idx.total_postings(), rebuilt.total_postings());
        for q in 0..6u32 {
            assert_eq!(sorted_postings(&idx, q), sorted_postings(&rebuilt, q));
        }
        assert_eq!(idx.span(id), (50.0, 51.0));
        let mut deps: Vec<(f64, Posting)> = idx.postings_departing_by(4, 1e9).collect();
        deps.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        assert_eq!(deps, vec![(50.0, (id, 0))]);
    }

    #[test]
    fn departing_by_is_complete_and_bounded() {
        let s = store();
        let mut idx = ShardedIndex::build_parallel(&s, 6, 3);
        idx.enable_temporal_postings();
        let mut reference = InvertedIndex::build(&s, 6);
        reference.enable_temporal_postings();
        for q in 0..6u32 {
            for t_max in [0.0, 4.5, 10.0, 25.0, 1e9] {
                let mut got: Vec<(f64, Posting)> = idx.postings_departing_by(q, t_max).collect();
                got.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
                let mut want = reference.postings_departing_by(q, t_max).to_vec();
                want.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
                assert_eq!(got, want, "q={q} t_max={t_max}");
            }
        }
    }

    #[test]
    fn index_shard_is_byte_identical_to_the_sharded_index_shard() {
        let s = store();
        for num_shards in [1, 2, 3, 5] {
            let mut whole = ShardedIndex::build(&s, 6, num_shards);
            whole.enable_temporal_postings();
            for k in 0..num_shards {
                let mut solo = IndexShard::build(&s, 6, k, num_shards);
                solo.enable_temporal_postings();
                let inner = &whole.shards[k];
                assert_eq!(solo.shard_id(), k);
                assert_eq!(solo.num_shards(), num_shards);
                assert_eq!(solo.num_trajectories(), s.len());
                assert_eq!(solo.num_local_trajectories(), inner.departures.len());
                assert_eq!(solo.total_postings(), inner.total_postings);
                assert_eq!(solo.departures(), &inner.departures[..]);
                assert_eq!(solo.arrivals(), &inner.arrivals[..]);
                for q in 0..6u32 {
                    assert_eq!(solo.postings(q), &inner.postings[q as usize][..]);
                    assert_eq!(solo.freq(q), inner.postings[q as usize].len() as u32);
                    for t_max in [0.0, 6.0, 25.0, 1e9] {
                        let want = &inner.dep_postings.as_ref().unwrap()[q as usize];
                        let cut = want.partition_point(|&(dep, _)| dep <= t_max);
                        assert_eq!(
                            solo.postings_departing_by(q, t_max).unwrap(),
                            &want[..cut],
                            "shards={num_shards} k={k} q={q} t_max={t_max}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn index_shard_without_temporal_returns_none() {
        let solo = IndexShard::build(&store(), 6, 0, 2);
        assert!(!solo.has_temporal_postings());
        assert!(solo.postings_departing_by(1, 10.0).is_none());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn index_shard_rejects_out_of_range_ids() {
        IndexShard::build(&store(), 6, 3, 3);
    }

    #[test]
    fn size_bytes_monotone_under_appends() {
        let mut s = store();
        let mut idx = ShardedIndex::build_parallel(&s, 6, 4);
        let mut last = idx.size_bytes();
        for path in [vec![0u32], vec![1, 2], vec![3, 3, 3]] {
            let t = Trajectory::untimed(path);
            let id = s.push(t.clone());
            idx.append(id, &t);
            assert!(idx.size_bytes() > last);
            last = idx.size_bytes();
        }
    }

    #[test]
    fn size_breakdown_attributes_the_shard_overhead() {
        let s = store();
        let single = ShardedIndex::build(&s, 6, 1).size_breakdown();
        let wide = ShardedIndex::build(&s, 6, 4).size_breakdown();
        assert_eq!(single.total(), ShardedIndex::build(&s, 6, 1).size_bytes());
        // Postings records and spans are partition-invariant; only the
        // per-shard list headers replicate.
        assert_eq!(wide.postings, single.postings);
        assert_eq!(wide.spans, single.spans);
        assert_eq!(wide.list_headers, 4 * single.list_headers);
        assert_eq!(wide.by_departure, 0);

        let mut temporal = ShardedIndex::build(&s, 6, 4);
        temporal.enable_temporal_postings();
        let tb = temporal.size_breakdown();
        assert!(tb.by_departure > 0);
        assert_eq!(tb.total(), temporal.size_bytes());
        // The standalone shard agrees with its in-index twin.
        let solo = IndexShard::build(&s, 6, 0, 4);
        assert_eq!(solo.size_breakdown().total(), solo.size_bytes());
    }

    #[test]
    #[should_panic(expected = "ids must stay dense: expected 5, got 9")]
    fn append_rejects_gaps() {
        let s = store();
        let mut idx = ShardedIndex::build_parallel(&s, 6, 2);
        idx.append(9, &Trajectory::untimed(vec![1]));
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_rejected() {
        ShardedIndex::build_parallel(&store(), 6, 0);
    }

    #[test]
    #[should_panic(expected = "temporal postings not enabled")]
    fn departing_by_requires_enabling() {
        let idx = ShardedIndex::build_parallel(&store(), 6, 2);
        let _ = idx.postings_departing_by(1, 10.0).count();
    }

    #[test]
    fn empty_store_and_more_shards_than_trajectories() {
        let empty = ShardedIndex::build_parallel(&TrajectoryStore::new(), 4, 3);
        assert_eq!(empty.num_trajectories(), 0);
        assert_eq!(empty.total_postings(), 0);
        assert_eq!(PostingSource::postings(&empty, 0).count(), 0);

        let s = store();
        let idx = ShardedIndex::build_parallel(&s, 6, 16);
        assert_eq!(idx.num_trajectories(), s.len());
        let reference = InvertedIndex::build(&s, 6);
        for q in 0..6u32 {
            assert_eq!(sorted_postings(&idx, q), reference.postings(q));
        }
    }
}
