//! Per-query deadlines and cooperative cancellation.
//!
//! A serving deployment cannot let one heavy query hold a worker forever:
//! past its latency budget, a *typed timeout* is more useful than a late
//! answer. [`Deadline`] is the engine-side half of that contract — a point
//! in time after which execution should stop — and the pipeline checks it
//! at its natural quiescent points (**cooperative** cancellation, no thread
//! is ever killed):
//!
//! * before filtering starts and after candidate lookup,
//! * between whole-trajectory candidate groups during verification (the
//!   unit of work distribution, so the check granularity matches the
//!   scheduling granularity on both the sequential and sharded paths),
//! * between trajectories of the exact fallback scan,
//! * between threshold-growth rounds of a top-k query.
//!
//! Expiry surfaces as [`QueryError::DeadlineExceeded`] from
//! [`SearchEngine::run_with_deadline`](crate::SearchEngine::run_with_deadline)
//! (or [`run`](crate::SearchEngine::run), which derives the deadline from
//! [`Query::deadline_ms`](crate::Query::deadline_ms) at call time). Partial
//! results are never returned: a query either completes exactly or fails
//! with the typed error.
//!
//! [`Deadline::NONE`] costs one branch per checkpoint and never reads the
//! clock, so deadline-free queries are unaffected.

use crate::query::QueryError;
use std::time::{Duration, Instant};

/// A point in time after which a query should stop executing; see the
/// [module docs](self) for where the pipeline checks it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Deadline {
    at: Option<Instant>,
}

impl Deadline {
    /// No deadline: every checkpoint passes without reading the clock.
    pub const NONE: Deadline = Deadline { at: None };

    /// Expires at `instant`.
    pub fn at(instant: Instant) -> Deadline {
        Deadline { at: Some(instant) }
    }

    /// Expires `budget` from now.
    pub fn within(budget: Duration) -> Deadline {
        Deadline::at(Instant::now() + budget)
    }

    /// The deadline of a query whose clock started at `epoch` — the wire
    /// semantics: a serving layer stamps `epoch` at admission, so time spent
    /// queued counts against the budget. `None` budget means no deadline.
    pub fn for_query(epoch: Instant, deadline_ms: Option<u64>) -> Deadline {
        match deadline_ms {
            Some(ms) => Deadline::at(epoch + Duration::from_millis(ms)),
            None => Deadline::NONE,
        }
    }

    /// True when no deadline is set.
    pub fn is_none(&self) -> bool {
        self.at.is_none()
    }

    /// True once the deadline has passed. `Deadline::NONE` never expires
    /// (and never reads the clock).
    pub fn expired(&self) -> bool {
        self.at.is_some_and(|at| Instant::now() >= at)
    }

    /// The checkpoint primitive: `Err(QueryError::DeadlineExceeded)` once
    /// expired, `Ok(())` before (or without) the deadline.
    pub fn check(&self) -> Result<(), QueryError> {
        if self.expired() {
            Err(QueryError::DeadlineExceeded)
        } else {
            Ok(())
        }
    }

    /// Time left until expiry; `None` without a deadline, zero once past.
    pub fn remaining(&self) -> Option<Duration> {
        self.at
            .map(|at| at.saturating_duration_since(Instant::now()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_never_expires() {
        assert!(Deadline::NONE.is_none());
        assert!(!Deadline::NONE.expired());
        assert!(Deadline::NONE.check().is_ok());
        assert_eq!(Deadline::NONE.remaining(), None);
        assert_eq!(Deadline::default(), Deadline::NONE);
    }

    #[test]
    fn past_deadline_is_expired() {
        let d = Deadline::at(Instant::now() - Duration::from_millis(1));
        assert!(d.expired());
        assert_eq!(d.check().unwrap_err(), QueryError::DeadlineExceeded);
        assert_eq!(d.remaining(), Some(Duration::ZERO));
    }

    #[test]
    fn future_deadline_is_live() {
        let d = Deadline::within(Duration::from_secs(3600));
        assert!(!d.is_none());
        assert!(!d.expired());
        assert!(d.check().is_ok());
        assert!(d.remaining().unwrap() > Duration::from_secs(3000));
    }

    #[test]
    fn for_query_counts_queue_time() {
        // A query admitted 10ms ago with a 1ms budget is already expired
        // even though "now + 1ms" would not be.
        let epoch = Instant::now() - Duration::from_millis(10);
        assert!(Deadline::for_query(epoch, Some(1)).expired());
        assert!(Deadline::for_query(epoch, None).is_none());
    }
}
