//! Subsequence filtering (§3): building the filtering plan and generating
//! candidates.
//!
//! Theorem 1: for any subsequence `Q' ⊆ Q` with `Σ_{q∈Q'} c(q) ≥ τ`
//! (a *τ-subsequence*), any subtrajectory disjoint from `B(Q')` has
//! `wed ≥ τ` and can be pruned. The plan chooses `Q'` with MinCand
//! (Algorithm 1) to minimize the candidate count, then candidates are read
//! off the postings lists of all `b ∈ B(q)`, `q ∈ Q'` (Algorithm 2 lines
//! 3–6).

use crate::index::PostingSource;
use crate::mincand::{min_cand, Item, Selection};
use crate::verify::Candidate;
use std::collections::HashMap;
use wed::{Sym, WedInstance};

/// The filtering plan for one query: the chosen τ-subsequence with its
/// neighborhoods, or infeasibility.
#[derive(Debug, Clone)]
pub struct FilterPlan {
    /// `(position in Q, symbol, B(q))` for each chosen element, in selection
    /// order.
    pub chosen: Vec<(usize, Sym, Vec<Sym>)>,
    /// `Σ c(q)` over the chosen subsequence.
    pub c_total: f64,
    /// False when `c(Q) < τ`: no τ-subsequence exists (possible for
    /// continuous cost models with tiny η) and the caller must fall back to
    /// an exact scan to stay correct.
    pub feasible: bool,
}

impl FilterPlan {
    /// Builds the plan: materializes `B(q)` and `c(q)` per query position
    /// (memoized per distinct symbol), prices positions by
    /// `N_q = Σ_{b∈B(q)} n(b)`, and runs MinCand.
    ///
    /// Generic over the [`PostingSource`] layout; only `n(q)` is consumed
    /// here and frequencies are layout-independent, so the plan — and hence
    /// the candidate multiset — is identical for every source over the same
    /// store.
    pub fn build<M: WedInstance, I: PostingSource>(
        model: &M,
        index: &I,
        q: &[Sym],
        tau: f64,
    ) -> Self {
        assert!(tau > 0.0, "threshold must be positive");
        assert!(!q.is_empty(), "query must be non-empty");
        let mut memo: HashMap<Sym, (Vec<Sym>, f64, f64)> = HashMap::new();
        let mut items = Vec::with_capacity(q.len());
        for (pos, &sym) in q.iter().enumerate() {
            let (_, c, n) = memo.entry(sym).or_insert_with(|| {
                let nb = model.neighbors(sym);
                debug_assert!(nb.contains(&sym), "B(q) must contain q");
                let n: f64 = nb.iter().map(|&b| index.freq(b) as f64).sum();
                let c = model.lower_cost(sym);
                (nb, c, n)
            });
            items.push(Item { pos, c: *c, n: *n });
        }
        match min_cand(&items, tau) {
            Selection::Chosen(sel) => {
                let mut chosen = Vec::with_capacity(sel.len());
                let mut c_total = 0.0;
                for i in sel {
                    let pos = items[i].pos;
                    let sym = q[pos];
                    c_total += items[i].c;
                    chosen.push((pos, sym, memo[&sym].0.clone()));
                }
                FilterPlan {
                    chosen,
                    c_total,
                    feasible: true,
                }
            }
            Selection::Infeasible => FilterPlan {
                chosen: Vec::new(),
                c_total: 0.0,
                feasible: false,
            },
        }
    }

    /// Single-element plan for **bottleneck** metrics (discrete Fréchet).
    ///
    /// Theorem 1 sums lower costs over `Q'`, which is only sound when the
    /// metric adds coupled costs. A bottleneck metric still admits a
    /// one-element plan: every coupling pairs `q` with at least one
    /// subtrajectory symbol `p`, and `p ∉ B(q)` implies `sub(p, q) ≥ c(q)`
    /// (Definition 4), so if `c(q) ≥ τ` any subtrajectory disjoint from
    /// `B(q)` has bottleneck distance `≥ τ` and is prunable. Among eligible
    /// positions the one with the fewest predicted candidates is chosen;
    /// the plan is infeasible when no position has `c(q) ≥ τ` and the
    /// caller must fall back to an exact scan.
    pub fn build_single<M: WedInstance, I: PostingSource>(
        model: &M,
        index: &I,
        q: &[Sym],
        tau: f64,
    ) -> Self {
        assert!(tau > 0.0, "threshold must be positive");
        assert!(!q.is_empty(), "query must be non-empty");
        let mut memo: HashMap<Sym, (Vec<Sym>, f64, f64)> = HashMap::new();
        let mut best: Option<(f64, usize, Sym)> = None;
        for (pos, &sym) in q.iter().enumerate() {
            let (_, c, n) = memo.entry(sym).or_insert_with(|| {
                let nb = model.neighbors(sym);
                debug_assert!(nb.contains(&sym), "B(q) must contain q");
                let n: f64 = nb.iter().map(|&b| index.freq(b) as f64).sum();
                let c = model.lower_cost(sym);
                (nb, c, n)
            });
            if *c >= tau && best.is_none_or(|(bn, _, _)| *n < bn) {
                best = Some((*n, pos, sym));
            }
        }
        match best {
            Some((_, pos, sym)) => FilterPlan {
                chosen: vec![(pos, sym, memo[&sym].0.clone())],
                c_total: memo[&sym].1,
                feasible: true,
            },
            None => FilterPlan {
                chosen: Vec::new(),
                c_total: 0.0,
                feasible: false,
            },
        }
    }

    /// Algorithm 2 lines 3–6: candidates from the postings lists of every
    /// substitution neighbor of every chosen element.
    ///
    /// Candidate *order* follows the source's iteration order (shard-major
    /// for a sharded source); verification sorts and dedups before any DP
    /// work, so results do not depend on it.
    pub fn candidates<I: PostingSource>(&self, index: &I) -> Vec<Candidate> {
        let mut out = Vec::new();
        for (pos, _sym, nbrs) in &self.chosen {
            for &b in nbrs {
                for (id, j) in index.postings(b) {
                    out.push(Candidate {
                        id,
                        j,
                        iq: *pos as u32,
                    });
                }
            }
        }
        out
    }

    /// §4.3 extension: candidate generation that skips trajectories unable
    /// to satisfy the temporal constraint, using binary search on
    /// by-departure postings
    /// ([`PostingSource::postings_departing_by`]).
    ///
    /// A trajectory can only contain a satisfying match if its span
    /// intersects the query interval: departure ≤ `I.end` (binary-searched
    /// prefix, per shard for a sharded source) and arrival ≥ `I.start`
    /// (checked per record). Sound for both `Overlaps` and `Within`
    /// predicates.
    pub fn candidates_temporal<I: PostingSource>(
        &self,
        index: &I,
        constraint: &crate::temporal::TemporalConstraint,
    ) -> Vec<Candidate> {
        let interval = constraint.interval;
        let mut out = Vec::new();
        for (pos, _sym, nbrs) in &self.chosen {
            for &b in nbrs {
                for (_dep, (id, j)) in index.postings_departing_by(b, interval.end) {
                    if index.span(id).1 >= interval.start {
                        out.push(Candidate {
                            id,
                            j,
                            iq: *pos as u32,
                        });
                    }
                }
            }
        }
        out
    }

    /// Predicted candidate count (the Definition 5 objective for the chosen
    /// subsequence); equals `candidates().len()`.
    ///
    /// This is the **pre-dedup upper bound**: when substitution
    /// neighborhoods overlap, [`candidates`](FilterPlan::candidates) can
    /// emit the same `(id, j, iq)` triple more than once, and verification
    /// dedups exact triples before doing any DP work (compare
    /// `SearchStats::candidates` against `SearchStats::candidates_deduped`).
    pub fn predicted_candidates<I: PostingSource>(&self, index: &I) -> usize {
        self.chosen
            .iter()
            .map(|(_, _, nbrs)| nbrs.iter().map(|&b| index.freq(b) as usize).sum::<usize>())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::InvertedIndex;
    use traj::{Trajectory, TrajectoryStore};
    use wed::models::Lev;

    fn setup() -> (TrajectoryStore, InvertedIndex) {
        let mut s = TrajectoryStore::new();
        s.push(Trajectory::untimed(vec![0, 1, 2, 3]));
        s.push(Trajectory::untimed(vec![1, 1, 4]));
        s.push(Trajectory::untimed(vec![5, 2, 0]));
        let idx = InvertedIndex::build(&s, 8);
        (s, idx)
    }

    #[test]
    fn plan_prefers_rare_symbols_under_unit_costs() {
        let (_s, idx) = setup();
        // Q = [1, 3]: freq(1) = 3, freq(3) = 1; tau = 1 → choose position of 3.
        let plan = FilterPlan::build(&Lev, &idx, &[1, 3], 1.0);
        assert!(plan.feasible);
        assert_eq!(plan.chosen.len(), 1);
        assert_eq!(plan.chosen[0].0, 1); // position of symbol 3
        assert_eq!(plan.chosen[0].1, 3);
        assert_eq!(plan.c_total, 1.0);
    }

    #[test]
    fn candidates_carry_positions() {
        let (_s, idx) = setup();
        let plan = FilterPlan::build(&Lev, &idx, &[1, 3], 1.0);
        let cands = plan.candidates(&idx);
        assert_eq!(cands, vec![Candidate { id: 0, j: 3, iq: 1 }]);
        assert_eq!(plan.predicted_candidates(&idx), cands.len());
    }

    #[test]
    fn larger_tau_selects_more_positions() {
        let (_s, idx) = setup();
        let plan = FilterPlan::build(&Lev, &idx, &[1, 3, 2], 2.0);
        assert!(plan.feasible);
        assert_eq!(plan.chosen.len(), 2);
        assert!(plan.c_total >= 2.0);
        // Selected the two rarest: 3 (freq 1) and 2 (freq 2).
        let syms: Vec<Sym> = plan.chosen.iter().map(|&(_, s, _)| s).collect();
        assert!(syms.contains(&3) && syms.contains(&2));
    }

    #[test]
    fn infeasible_when_query_too_cheap() {
        let (_s, idx) = setup();
        // Lev: c(q) = 1 per position, |Q| = 2 < tau = 3.
        let plan = FilterPlan::build(&Lev, &idx, &[1, 3], 3.0);
        assert!(!plan.feasible);
        assert!(plan.candidates(&idx).is_empty());
    }

    /// A unit-cost model whose neighborhood enumeration repeats symbols —
    /// the shape produced by overlapping `B(q)` sets — so that
    /// `FilterPlan::candidates` emits exact duplicate triples.
    #[derive(Clone, Copy)]
    struct OverlappingNbr;

    impl wed::CostModel for OverlappingNbr {
        fn sub(&self, a: Sym, b: Sym) -> f64 {
            if a == b {
                0.0
            } else {
                1.0
            }
        }
        fn ins(&self, _a: Sym) -> f64 {
            1.0
        }
    }

    impl WedInstance for OverlappingNbr {
        fn name(&self) -> &'static str {
            "OverlappingNbr"
        }
        fn neighbors(&self, q: Sym) -> Vec<Sym> {
            // q's neighborhood overlaps itself: symbol 2 is enumerated from
            // two sources, so its postings are read twice.
            vec![q, 2, 2]
        }
        fn lower_cost(&self, _q: Sym) -> f64 {
            1.0
        }
    }

    #[test]
    fn overlapping_neighborhoods_emit_duplicates_and_verification_dedups() {
        use crate::stats::SearchStats;
        use crate::verify::{verify_candidates, VerifyMode};

        let (s, idx) = setup();
        let q: Vec<Sym> = vec![3];
        let plan = FilterPlan::build(&OverlappingNbr, &idx, &q, 1.0);
        assert!(plan.feasible);
        let cands = plan.candidates(&idx);
        // predicted_candidates is the pre-dedup upper bound and matches the
        // emitted (duplicate-carrying) list.
        assert_eq!(plan.predicted_candidates(&idx), cands.len());
        let mut unique = cands.clone();
        unique.sort_unstable_by_key(|c| (c.id, c.j, c.iq));
        unique.dedup();
        assert!(
            unique.len() < cands.len(),
            "overlapping B(q) must emit duplicate triples ({} unique of {})",
            unique.len(),
            cands.len()
        );

        // Verification sees the duplicates but only verifies distinct
        // triples.
        let mut stats = SearchStats::default();
        let _ = verify_candidates(
            &OverlappingNbr,
            &s,
            |id| s.get(id).span(),
            &q,
            1.0,
            &cands,
            VerifyMode::Trie,
            None,
            false,
            &mut stats,
        );
        assert_eq!(stats.candidates, cands.len());
        assert_eq!(stats.candidates_deduped, unique.len());
    }

    #[test]
    fn single_symbol_plan_picks_the_rarest_eligible_position() {
        let (_s, idx) = setup();
        // Lev: c(q) = 1 ≥ τ for every position; symbol 3 (freq 1) is rarest.
        let plan = FilterPlan::build_single(&Lev, &idx, &[1, 3, 2], 1.0);
        assert!(plan.feasible);
        assert_eq!(plan.chosen.len(), 1);
        assert_eq!(plan.chosen[0].1, 3);
        assert_eq!(plan.c_total, 1.0);
        // τ above every c(q): no single position suffices.
        let infeasible = FilterPlan::build_single(&Lev, &idx, &[1, 3, 2], 1.5);
        assert!(!infeasible.feasible);
        assert!(infeasible.chosen.is_empty());
    }

    #[test]
    fn duplicate_query_symbols_are_distinct_items() {
        let (_s, idx) = setup();
        // Q = [3, 3]: both positions selectable, tau = 2 needs both.
        let plan = FilterPlan::build(&Lev, &idx, &[3, 3], 2.0);
        assert!(plan.feasible);
        let positions: Vec<usize> = plan.chosen.iter().map(|&(p, _, _)| p).collect();
        assert_eq!(
            {
                let mut p = positions.clone();
                p.sort();
                p
            },
            vec![0, 1]
        );
        // Candidates are generated for each position separately.
        let cands = plan.candidates(&idx);
        assert_eq!(cands.len(), 2);
    }
}
