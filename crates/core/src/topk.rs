//! Top-k subtrajectory search.
//!
//! The paper's effectiveness study (Table 3) uses a *top-k* setting: the `k`
//! trajectories whose best-matching subtrajectory has the smallest WED to
//! the query, with ties broken by the shorter and then earlier span. This
//! module implements that on top of threshold search by geometric threshold
//! growth: search at τ, and if fewer than `k` distinct trajectories matched,
//! double τ and retry. The result is exact: once `k` trajectories match
//! below τ, any unseen trajectory's best distance is ≥ τ and cannot enter
//! the top `k`.
//!
//! Reached through the unified surface as
//! [`Query::top_k`](crate::Query::top_k) +
//! [`SearchEngine::run`](crate::SearchEngine::run); the responses' `matches`
//! are the ranked best matches (position = rank).

use crate::deadline::Deadline;
use crate::index::PostingSource;
use crate::query::{Parallelism, QueryError};
use crate::results::MatchResult;
use crate::search::{SearchEngine, SearchOptions};
use crate::stats::SearchStats;
use crate::verify::TrieCache;
use std::cmp::Ordering;
use std::collections::HashMap;
use traj::TrajId;
use trajsearch_obs::Tracer;
use wed::{Sym, WedInstance};

/// One top-k entry: the best match of one trajectory.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TopKEntry {
    pub rank: usize,
    pub best: MatchResult,
}

/// The threshold-growth loop behind [`Objective::TopK`](crate::Objective):
/// ranked best matches (rank order) plus the per-round stats merged over
/// every growth round, with `results` set to the returned entry count.
///
/// The [`Deadline`] is checked between growth rounds (on top of the
/// checkpoints each round's threshold search performs internally); expiry
/// is [`QueryError::DeadlineExceeded`] — a partially grown ranking is never
/// returned.
#[allow(clippy::too_many_arguments)]
pub(crate) fn top_k_growth<M: WedInstance + Sync, I: PostingSource + Sync>(
    engine: &SearchEngine<'_, M, I>,
    q: &[Sym],
    k: usize,
    initial_tau: f64,
    max_tau: f64,
    opts: SearchOptions,
    parallelism: Parallelism,
    deadline: Deadline,
    cache: Option<&TrieCache>,
    tracer: Tracer<'_>,
) -> Result<(Vec<MatchResult>, SearchStats), QueryError> {
    let mut stats = SearchStats::default();
    let mut tau = initial_tau;
    let mut round: u64 = 0;
    loop {
        deadline.check()?;
        // One span per growth round (`detail` = round index), so a trace
        // shows how many thresholds a top-k answer burned through.
        let span = tracer.span_with("topk_round", round);
        let out =
            engine.threshold_outcome(q, tau, opts, parallelism, deadline, cache, span.child());
        span.finish();
        round += 1;
        let out = out?;
        stats.merge(&out.stats);
        let best = per_trajectory_best(&out.matches);
        if best.len() >= k || tau >= max_tau {
            let mut ranked: Vec<MatchResult> = best.into_values().collect();
            ranked.sort_by(rank_cmp);
            ranked.truncate(k);
            stats.results = ranked.len();
            return Ok((ranked, stats));
        }
        tau = (tau * 2.0).min(max_tau);
    }
}

/// The one top-k comparator (§6.2.1): exact distance (`total_cmp`, no
/// epsilon), then shorter span, then `(id, start)` for a total
/// deterministic order. Both [`per_trajectory_best`] and the final ranking
/// use it, so near-equal distances can never tie-break by span *within* a
/// trajectory while ranking by raw float bits *across* trajectories.
pub(crate) fn rank_cmp(a: &MatchResult, b: &MatchResult) -> Ordering {
    a.dist
        .total_cmp(&b.dist)
        .then((a.end - a.start).cmp(&(b.end - b.start)))
        .then((a.id, a.start).cmp(&(b.id, b.start)))
}

impl<'a, M: WedInstance + Sync, I: PostingSource + Sync> SearchEngine<'a, M, I> {
    /// The `k` trajectories most similar to `q` (by their best-matching
    /// subtrajectory), or fewer if the whole database has fewer matching
    /// trajectories below `max_tau`.
    ///
    /// `initial_tau` seeds the threshold-growth loop (e.g. 10% of
    /// `Σ c(q)`); `max_tau` bounds it (e.g. the total insertion cost of `q`,
    /// above which everything matches).
    #[deprecated(note = "build a `Query::top_k(..)` and call `SearchEngine::run`")]
    pub fn search_top_k(
        &self,
        q: &[Sym],
        k: usize,
        initial_tau: f64,
        max_tau: f64,
    ) -> Vec<TopKEntry> {
        // The old asserts admitted infinite bounds; `legacy_tau` maps them
        // to the behaviorally identical `f64::MAX` (see its docs).
        let initial_tau = crate::search::legacy_tau(initial_tau);
        let max_tau = crate::search::legacy_tau(max_tau);
        let query = match crate::query::Query::top_k(q, k, initial_tau, max_tau).build() {
            Ok(query) => query,
            Err(crate::query::QueryError::InvalidK) => panic!("k must be positive"),
            Err(crate::query::QueryError::EmptyPattern) => panic!("query must be non-empty"),
            Err(e) => panic!("invalid legacy top-k query: {e}"),
        };
        self.run(&query)
            .expect("legacy queries are admissible by construction")
            .ranked()
    }
}

/// Per-trajectory best match: smallest distance, tie-broken by shorter span,
/// then earlier start (the paper's tie-break in §6.2.1) — via the same
/// exact `rank_cmp` comparator the final ranking sorts with. The engine
/// reports exact (not approximated) distances, so there is no epsilon: two
/// spans tie only when their distances are bit-equal.
pub fn per_trajectory_best(matches: &[MatchResult]) -> HashMap<TrajId, MatchResult> {
    let mut best: HashMap<TrajId, MatchResult> = HashMap::new();
    for m in matches {
        match best.get(&m.id) {
            None => {
                best.insert(m.id, *m);
            }
            Some(cur) => {
                if rank_cmp(m, cur) == Ordering::Less {
                    best.insert(m.id, *m);
                }
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EngineBuilder, Query};
    use traj::{Trajectory, TrajectoryStore};
    use wed::models::Lev;

    fn store() -> TrajectoryStore {
        let mut s = TrajectoryStore::new();
        s.push(Trajectory::untimed(vec![1, 2, 3, 4])); // exact match
        s.push(Trajectory::untimed(vec![1, 2, 9, 4])); // distance 1
        s.push(Trajectory::untimed(vec![1, 9, 9, 4])); // distance 2
        s.push(Trajectory::untimed(vec![7, 7, 7, 7])); // distance 4 (all subs)
        s
    }

    fn run_top_k(
        engine: &SearchEngine<'_, &Lev, crate::AnyIndex>,
        q: &[u32],
        k: usize,
        initial_tau: f64,
        max_tau: f64,
    ) -> Vec<TopKEntry> {
        engine
            .run(&Query::top_k(q, k, initial_tau, max_tau).build().unwrap())
            .unwrap()
            .ranked()
    }

    #[test]
    fn top_k_ranks_by_best_distance() {
        let s = store();
        let engine = EngineBuilder::new(&Lev, &s, 12).build();
        let q = [1u32, 2, 3, 4];
        let top = run_top_k(&engine, &q, 3, 0.5, 10.0);
        assert_eq!(top.len(), 3);
        let ids: Vec<TrajId> = top.iter().map(|e| e.best.id).collect();
        assert_eq!(ids, vec![0, 1, 2]);
        assert_eq!(top[0].best.dist, 0.0);
        assert_eq!(top[1].best.dist, 1.0);
        assert_eq!(top[2].best.dist, 2.0);
        assert_eq!(top[0].rank, 0);
    }

    #[test]
    fn threshold_growth_finds_far_matches() {
        let s = store();
        let engine = EngineBuilder::new(&Lev, &s, 12).build();
        let q = [1u32, 2, 3, 4];
        // k = 4 forces tau to grow until trajectory 3 (distance 4) matches.
        let top = run_top_k(&engine, &q, 4, 0.5, 16.0);
        assert_eq!(top.len(), 4);
        assert_eq!(top[3].best.id, 3);
        assert_eq!(top[3].best.dist, 4.0);
    }

    #[test]
    fn max_tau_caps_the_result() {
        let s = store();
        let engine = EngineBuilder::new(&Lev, &s, 12).build();
        let q = [1u32, 2, 3, 4];
        // With max_tau = 1.5 only distances < 1.5 can be found.
        let top = run_top_k(&engine, &q, 4, 1.5, 1.5);
        assert_eq!(top.len(), 2);
        assert!(top.iter().all(|e| e.best.dist < 1.5));
    }

    #[test]
    fn tie_break_prefers_shorter_then_earlier() {
        let mut s = TrajectoryStore::new();
        // Two distance-0 matches in the same trajectory: [1,2] at 0 and 3.
        s.push(Trajectory::untimed(vec![1, 2, 9, 1, 2]));
        let engine = EngineBuilder::new(&Lev, &s, 12).build();
        let top = run_top_k(&engine, &[1, 2], 1, 0.5, 4.0);
        assert_eq!(top[0].best.start, 0, "earlier span must win the tie");
        assert_eq!(top[0].best.end, 1);
    }

    #[test]
    #[allow(deprecated)]
    fn legacy_search_top_k_matches_run() {
        let s = store();
        let engine = EngineBuilder::new(&Lev, &s, 12).build();
        let q = [1u32, 2, 3, 4];
        assert_eq!(
            engine.search_top_k(&q, 3, 0.5, 10.0),
            run_top_k(&engine, &q, 3, 0.5, 10.0)
        );
    }

    #[test]
    fn top_k_stats_cover_growth_rounds() {
        let s = store();
        let engine = EngineBuilder::new(&Lev, &s, 12).build();
        // Forcing growth (k=4) merges several rounds' counters.
        let r = engine
            .run(
                &Query::top_k(vec![1, 2, 3, 4], 4, 0.5, 16.0)
                    .build()
                    .unwrap(),
            )
            .unwrap();
        assert_eq!(r.stats.results, r.matches.len());
        assert!(r.stats.candidates > 0);
    }

    #[test]
    fn per_trajectory_best_tiebreaks() {
        let ms = [
            MatchResult {
                id: 1,
                start: 2,
                end: 5,
                dist: 1.0,
            },
            MatchResult {
                id: 1,
                start: 3,
                end: 5,
                dist: 1.0,
            }, // shorter
            MatchResult {
                id: 1,
                start: 0,
                end: 2,
                dist: 1.0,
            }, // same len, earlier
        ];
        let best = per_trajectory_best(&ms);
        let b = best[&1];
        assert_eq!((b.start, b.end), (0, 2));
    }

    #[test]
    fn sub_epsilon_distances_rank_exactly() {
        use std::cmp::Ordering;
        // Regression: `per_trajectory_best` used a 1e-12 epsilon while the
        // final ranking compared exactly, so distances differing by less
        // than the epsilon tie-broke by span within a trajectory but by raw
        // float bits across trajectories.
        let tiny = 1.0 + 4e-13; // < 1e-12 above 1.0, yet representable
        assert!(tiny > 1.0);
        let ms = [
            MatchResult {
                id: 1,
                start: 0,
                end: 4,
                dist: 1.0,
            },
            MatchResult {
                id: 1,
                start: 0,
                end: 1,
                dist: tiny,
            }, // much shorter span, fractionally farther
            MatchResult {
                id: 2,
                start: 3,
                end: 4,
                dist: tiny,
            },
        ];
        let best = per_trajectory_best(&ms);
        // Exact comparison: the strictly smaller distance wins within the
        // trajectory; the old epsilon would have let the shorter span win.
        assert_eq!((best[&1].start, best[&1].end), (0, 4));
        assert_eq!(best[&1].dist, 1.0);
        // The identical comparator orders the survivors across
        // trajectories, so the two passes can never disagree.
        assert_eq!(rank_cmp(&best[&1], &best[&2]), Ordering::Less);
    }
}
