//! The minimum-candidate problem (Definition 5) and its 2-approximation
//! (Algorithm 1).
//!
//! Choosing which subsequence `Q' ⊆ Q` to filter with is a covering problem:
//! minimize the candidate count `Σ_{q∈Q'} Σ_{b∈B(q)} n(b)` subject to the
//! τ-subsequence constraint `Σ_{q∈Q'} c(q) ≥ τ`. The problem is NP-hard
//! (reduction from the minimum knapsack problem, Proposition 2); the greedy
//! primal–dual algorithm of Carnes & Shmoys gives a 2-approximation
//! (Proposition 3) and is *optimal* when `c(q)` is constant — which covers
//! Lev, EDR and NetEDR (Proposition 4).

/// One selectable item: query position `pos`, its lower cost `c` (Eq. 7) and
/// its candidate weight `n = Σ_{b∈B(q)} n(b)` — the frequencies come from
/// [`PostingSource::freq`](crate::index::PostingSource::freq) and are
/// layout-independent, so the selection is identical for every postings
/// layout over the same store.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Item {
    pub pos: usize,
    pub c: f64,
    pub n: f64,
}

/// Outcome of τ-subsequence selection.
#[derive(Debug, Clone, PartialEq)]
pub enum Selection {
    /// Chosen item indices (into the input slice), in selection order.
    Chosen(Vec<usize>),
    /// `Σ c(q) < τ`: no τ-subsequence exists and subsequence filtering is
    /// unsound — the caller must fall back to an exact scan.
    Infeasible,
}

/// Algorithm 1 (MinCand): greedy primal–dual selection of a τ-subsequence.
///
/// Runs in O(|Q|²). Items with non-positive `c` are never selected (they
/// cannot contribute to the constraint and only add candidates).
pub fn min_cand(items: &[Item], tau: f64) -> Selection {
    assert!(tau > 0.0, "threshold must be positive");
    let usable: f64 = items.iter().filter(|it| it.c > 0.0).map(|it| it.c).sum();
    if usable < tau {
        return Selection::Infeasible;
    }
    let k = items.len();
    let mut chosen: Vec<usize> = Vec::new();
    let mut in_q = vec![false; k];
    let mut w = vec![0.0f64; k];
    let mut c_total = 0.0f64;
    while c_total < tau {
        // Price each remaining item: v_q = (N_q − w_q) / min(c_q, τ − c(Q')).
        let residual = tau - c_total;
        let mut best: Option<(usize, f64)> = None;
        for (i, it) in items.iter().enumerate() {
            if in_q[i] || it.c <= 0.0 {
                continue;
            }
            let denom = it.c.min(residual);
            let v = (it.n - w[i]) / denom;
            if best.is_none_or(|(_, bv)| v < bv) {
                best = Some((i, v));
            }
        }
        let (star, v_star) = best.expect("feasibility was checked above");
        // Raise duals of every remaining item (Algorithm 1 line 6).
        for (i, it) in items.iter().enumerate() {
            if in_q[i] || it.c <= 0.0 || i == star {
                continue;
            }
            w[i] += it.c.min(residual) * v_star;
        }
        in_q[star] = true;
        c_total += items[star].c;
        chosen.push(star);
    }
    Selection::Chosen(chosen)
}

/// Exhaustive optimum of Definition 5 by subset enumeration — test oracle
/// only (exponential; panics beyond 20 items).
pub fn min_cand_exhaustive(items: &[Item], tau: f64) -> Option<(Vec<usize>, f64)> {
    assert!(items.len() <= 20, "oracle is exponential");
    let k = items.len();
    let mut best: Option<(Vec<usize>, f64)> = None;
    for mask in 0u32..(1 << k) {
        let mut c = 0.0;
        let mut n = 0.0;
        let mut sel = Vec::new();
        for (i, it) in items.iter().enumerate() {
            if mask & (1 << i) != 0 {
                c += it.c;
                n += it.n;
                sel.push(i);
            }
        }
        if c >= tau && best.as_ref().is_none_or(|&(_, bn)| n < bn) {
            best = Some((sel, n));
        }
    }
    best
}

/// Objective value (candidate count) of a selection.
pub fn objective(items: &[Item], chosen: &[usize]) -> f64 {
    chosen.iter().map(|&i| items[i].n).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn items(cs: &[f64], ns: &[f64]) -> Vec<Item> {
        cs.iter()
            .zip(ns)
            .enumerate()
            .map(|(pos, (&c, &n))| Item { pos, c, n })
            .collect()
    }

    #[test]
    fn paper_example_6() {
        // Q = ABCD, c = [1,2,3,4], N = [5,2,9,8], τ = 4.
        // Algorithm selects B (pos 1) then D (pos 3); objective 10 vs opt 8.
        let its = items(&[1.0, 2.0, 3.0, 4.0], &[5.0, 2.0, 9.0, 8.0]);
        match min_cand(&its, 4.0) {
            Selection::Chosen(sel) => {
                assert_eq!(sel, vec![1, 3]);
                assert_eq!(objective(&its, &sel), 10.0);
            }
            Selection::Infeasible => panic!("feasible instance"),
        }
        let (opt_sel, opt_obj) = min_cand_exhaustive(&its, 4.0).unwrap();
        assert_eq!(opt_sel, vec![3]);
        assert_eq!(opt_obj, 8.0);
    }

    #[test]
    fn paper_example_5() {
        // Q = ABC with c = [3,1,2], N = [5,10,3] (N(B) counts B and D), τ=3:
        // optimal is {A} with objective 5; constant-c does not hold but the
        // greedy finds a valid τ-subsequence with objective ≤ 2×5.
        let its = items(&[3.0, 1.0, 2.0], &[5.0, 10.0, 3.0]);
        let Selection::Chosen(sel) = min_cand(&its, 3.0) else {
            panic!()
        };
        let c: f64 = sel.iter().map(|&i| its[i].c).sum();
        assert!(c >= 3.0);
        assert!(objective(&its, &sel) <= 2.0 * 5.0);
    }

    #[test]
    fn infeasible_when_costs_too_small() {
        let its = items(&[0.5, 0.5], &[1.0, 1.0]);
        assert_eq!(min_cand(&its, 2.0), Selection::Infeasible);
    }

    #[test]
    fn zero_cost_items_are_ignored() {
        let its = items(&[0.0, 1.0], &[0.0, 7.0]);
        let Selection::Chosen(sel) = min_cand(&its, 1.0) else {
            panic!()
        };
        assert_eq!(sel, vec![1]);
        // Only zero-cost items -> infeasible.
        let its2 = items(&[0.0, 0.0], &[1.0, 1.0]);
        assert_eq!(min_cand(&its2, 0.5), Selection::Infeasible);
    }

    #[test]
    fn constant_cost_selects_smallest_frequencies() {
        // Proposition 4: with constant c the algorithm returns the optimum —
        // the top-k least-frequent positions.
        let its = items(&[1.0; 6], &[9.0, 2.0, 7.0, 1.0, 5.0, 3.0]);
        let Selection::Chosen(mut sel) = min_cand(&its, 3.0) else {
            panic!()
        };
        sel.sort();
        assert_eq!(sel, vec![1, 3, 5]); // N = 2, 1, 3
        let (_, opt) = min_cand_exhaustive(&its, 3.0).unwrap();
        assert_eq!(objective(&its, &sel), opt);
    }

    #[test]
    fn selection_always_satisfies_constraint() {
        let mut rng = ChaCha8Rng::seed_from_u64(17);
        for _ in 0..200 {
            let k = rng.gen_range(1..12);
            let its: Vec<Item> = (0..k)
                .map(|pos| Item {
                    pos,
                    c: rng.gen_range(0.1..5.0),
                    n: rng.gen_range(0.0..100.0),
                })
                .collect();
            let total: f64 = its.iter().map(|i| i.c).sum();
            let tau = rng.gen_range(0.05..total * 1.2);
            match min_cand(&its, tau) {
                Selection::Chosen(sel) => {
                    let c: f64 = sel.iter().map(|&i| its[i].c).sum();
                    assert!(c >= tau, "constraint violated: {c} < {tau}");
                    // No duplicates.
                    let mut s = sel.clone();
                    s.sort();
                    s.dedup();
                    assert_eq!(s.len(), sel.len());
                }
                Selection::Infeasible => assert!(total < tau),
            }
        }
    }

    #[test]
    fn approximation_ratio_is_at_most_two() {
        // Proposition 3 on random instances, checked against the exhaustive
        // optimum.
        let mut rng = ChaCha8Rng::seed_from_u64(23);
        for trial in 0..150 {
            let k = rng.gen_range(2..10);
            let its: Vec<Item> = (0..k)
                .map(|pos| Item {
                    pos,
                    c: rng.gen_range(0.5..4.0),
                    n: rng.gen_range(1.0..50.0),
                })
                .collect();
            let total: f64 = its.iter().map(|i| i.c).sum();
            let tau = rng.gen_range(0.1..total);
            let Selection::Chosen(sel) = min_cand(&its, tau) else {
                continue;
            };
            let (_, opt) = min_cand_exhaustive(&its, tau).unwrap();
            let got = objective(&its, &sel);
            assert!(
                got <= 2.0 * opt + 1e-9,
                "trial {trial}: approx {got} > 2×opt {opt} (tau={tau}, items={its:?})"
            );
        }
    }

    #[test]
    #[should_panic(expected = "threshold must be positive")]
    fn zero_tau_rejected() {
        min_cand(&[], 0.0);
    }
}
