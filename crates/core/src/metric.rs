//! Distance-metric selection and the non-WED verifier back halves.
//!
//! The engine defaults to the paper's weighted edit distance, but a
//! [`Query`](crate::Query) may select DTW, LCSS(ε) or discrete Fréchet
//! instead — all grounded in the active cost model's substitution cost (see
//! [`wed::metric`]). The front half of the pipeline is shared; what changes
//! per metric is **which filter bound is sound** and which scan verifies a
//! candidate trajectory:
//!
//! | metric  | filter front half                  | why |
//! |---------|------------------------------------|-----|
//! | WED     | MinCand τ-subsequence (Theorem 1)  | costs add over edits |
//! | DTW     | MinCand τ-subsequence              | costs add over couplings; every chosen `q` couples with ≥ 1 subtrajectory symbol, so a subtrajectory disjoint from `B(Q')` costs `≥ Σ c(q) ≥ τ` |
//! | Fréchet | single symbol with `c(q) ≥ τ` ([`FilterPlan::build_single`](crate::filter::FilterPlan::build_single)) | the bottleneck does not add, but one sufficiently expensive symbol prunes alone |
//! | LCSS(ε) | none — exact fallback scan         | the ε-match predicate is unrelated to the lower costs `c(q)`, so no neighborhood bound applies |
//!
//! Metric verifiers score **whole candidate trajectories** (one scan per
//! distinct id, like the WED SW strategy) and charge their DP rows to the
//! metric-neutral `SearchStats::verify_cost`, leaving the WED-specific
//! counters at zero.

use crate::json::JsonValue;
use crate::query::QueryError;
use crate::results::ResultSet;
use crate::stats::SearchStats;
use crate::verify::{Candidate, Verifier};
use wed::{CostModel, SubMatch, Sym};

/// Which distance the query's threshold `τ` ranges over. `Wed` is the
/// default and the only metric older peers understand; see the module docs
/// for the per-metric filter bounds and the README "Metrics" section for
/// the wire form.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum Metric {
    /// Weighted edit distance (the paper's metric; Definition 1).
    #[default]
    Wed,
    /// Dynamic time warping: minimum over monotone couplings of the *sum*
    /// of `sub` costs.
    Dtw,
    /// LCSS distance `|Q| − L` under the ε-match `sub(a, b) ≤ eps`; `τ`
    /// therefore counts unmatched query symbols (integral distances).
    Lcss {
        /// Ground-distance tolerance for a symbol match; must be finite
        /// and non-negative.
        eps: f64,
    },
    /// Discrete Fréchet: minimum over monotone couplings of the *maximum*
    /// `sub` cost.
    Frechet,
}

impl Metric {
    /// The wire name (also the capability token advertised by servers).
    pub fn name(&self) -> &'static str {
        match self {
            Metric::Wed => "wed",
            Metric::Dtw => "dtw",
            Metric::Lcss { .. } => "lcss",
            Metric::Frechet => "frechet",
        }
    }

    pub fn is_wed(&self) -> bool {
        matches!(self, Metric::Wed)
    }

    /// Shape validation shared by the builder and the wire decoder.
    pub(crate) fn validate(&self) -> Result<(), QueryError> {
        if let Metric::Lcss { eps } = self {
            if !(eps.is_finite() && *eps >= 0.0) {
                return Err(QueryError::InvalidEps(*eps));
            }
        }
        Ok(())
    }

    /// Wire encoding: `None` for WED — the field is omitted so pre-metric
    /// query JSON stays byte-identical — otherwise `{"name": ...}` with an
    /// `"eps"` number for LCSS.
    pub(crate) fn to_value(self) -> Option<JsonValue> {
        match self {
            Metric::Wed => None,
            Metric::Dtw | Metric::Frechet => Some(JsonValue::Obj(vec![(
                "name".into(),
                JsonValue::Str(self.name().into()),
            )])),
            Metric::Lcss { eps } => Some(JsonValue::Obj(vec![
                ("name".into(), JsonValue::Str("lcss".into())),
                ("eps".into(), JsonValue::num_f64(eps)),
            ])),
        }
    }

    /// Wire decoding: absent (or `null`) means WED for back-compat; an
    /// unknown name is a typed [`QueryError::Parse`] — never a silent
    /// fall-back to WED, which would answer under the wrong metric.
    pub(crate) fn from_value(doc: Option<&JsonValue>) -> Result<Metric, QueryError> {
        let parse = |msg: String| QueryError::Parse(msg);
        let Some(doc) = doc else {
            return Ok(Metric::Wed);
        };
        if matches!(doc, JsonValue::Null) {
            return Ok(Metric::Wed);
        }
        match doc.get("name").and_then(|v| v.as_str()) {
            Some("wed") => Ok(Metric::Wed),
            Some("dtw") => Ok(Metric::Dtw),
            Some("frechet") => Ok(Metric::Frechet),
            Some("lcss") => {
                let eps = doc
                    .get("eps")
                    .and_then(|v| v.as_f64())
                    .ok_or_else(|| parse("lcss metric needs a numeric \"eps\"".into()))?;
                Ok(Metric::Lcss { eps })
            }
            Some(other) => Err(parse(format!("unknown metric {other:?}"))),
            None => Err(parse("\"metric\" needs a \"name\" string".into())),
        }
    }
}

/// One scan of a whole data sequence under a non-WED metric: all matching
/// substrings plus the DP rows evaluated. Shared by the metric verifiers
/// and the metric fallback scan.
pub(crate) fn metric_scan_all<M: CostModel>(
    model: &M,
    metric: Metric,
    path: &[Sym],
    q: &[Sym],
    tau: f64,
) -> (Vec<SubMatch>, u64) {
    match metric {
        Metric::Wed => unreachable!("WED verification goes through WedVerifier"),
        Metric::Dtw => wed::metric::dtw_scan_all(model, path, q, tau),
        Metric::Lcss { eps } => wed::metric::lcss_scan_all(model, path, q, tau, eps),
        Metric::Frechet => wed::metric::frechet_scan_all(model, path, q, tau),
    }
}

macro_rules! scan_verifier {
    ($(#[$doc:meta])* $name:ident, $metric:expr) => {
        $(#[$doc])*
        pub struct $name<'a, M: CostModel> {
            model: &'a M,
            q: &'a [Sym],
            tau: f64,
            metric: Metric,
        }

        impl<'a, M: CostModel> $name<'a, M> {
            pub fn new(model: &'a M, q: &'a [Sym], tau: f64) -> Self {
                $name {
                    model,
                    q,
                    tau,
                    metric: $metric,
                }
            }
        }

        impl<M: CostModel> Verifier for $name<'_, M> {
            fn verify_group(
                &mut self,
                path: &[Sym],
                group: &[Candidate],
                results: &mut ResultSet,
                stats: &mut SearchStats,
            ) {
                // One exact scan per distinct candidate trajectory,
                // whatever the number of anchors the group carries.
                let id = group[0].id;
                let (matches, rows) =
                    metric_scan_all(self.model, self.metric, path, self.q, self.tau);
                stats.verify_cost += rows;
                for m in matches {
                    results.push(id, m.start, m.end, m.dist);
                }
            }
        }
    };
}

scan_verifier!(
    /// DTW back half: one [`wed::metric::dtw_scan_all`] per candidate
    /// trajectory.
    DtwVerifier,
    Metric::Dtw
);
scan_verifier!(
    /// Discrete-Fréchet back half: one [`wed::metric::frechet_scan_all`]
    /// per candidate trajectory.
    FrechetVerifier,
    Metric::Frechet
);

/// LCSS back half: one [`wed::metric::lcss_scan_all`] per candidate
/// trajectory. In the current pipeline LCSS always takes the fallback scan
/// (no sound filter bound exists), but the verifier is provided for custom
/// candidate sets.
pub struct LcssVerifier<'a, M: CostModel> {
    model: &'a M,
    q: &'a [Sym],
    tau: f64,
    eps: f64,
}

impl<'a, M: CostModel> LcssVerifier<'a, M> {
    pub fn new(model: &'a M, q: &'a [Sym], tau: f64, eps: f64) -> Self {
        LcssVerifier { model, q, tau, eps }
    }
}

impl<M: CostModel> Verifier for LcssVerifier<'_, M> {
    fn verify_group(
        &mut self,
        path: &[Sym],
        group: &[Candidate],
        results: &mut ResultSet,
        stats: &mut SearchStats,
    ) {
        let id = group[0].id;
        let (matches, rows) = metric_scan_all(
            self.model,
            Metric::Lcss { eps: self.eps },
            path,
            self.q,
            self.tau,
        );
        stats.verify_cost += rows;
        for m in matches {
            results.push(id, m.start, m.end, m.dist);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_and_default() {
        assert_eq!(Metric::default(), Metric::Wed);
        assert!(Metric::Wed.is_wed());
        assert_eq!(Metric::Dtw.name(), "dtw");
        assert_eq!(Metric::Lcss { eps: 0.5 }.name(), "lcss");
        assert_eq!(Metric::Frechet.name(), "frechet");
    }

    #[test]
    fn wed_is_omitted_on_the_wire() {
        assert!(Metric::Wed.to_value().is_none());
        assert_eq!(Metric::from_value(None).unwrap(), Metric::Wed);
        assert_eq!(
            Metric::from_value(Some(&JsonValue::Null)).unwrap(),
            Metric::Wed
        );
    }

    #[test]
    fn non_wed_metrics_round_trip() {
        for m in [Metric::Dtw, Metric::Frechet, Metric::Lcss { eps: 0.25 }] {
            let v = m.to_value().expect("non-WED metrics are encoded");
            let back = Metric::from_value(Some(&v)).unwrap();
            assert_eq!(back, m);
        }
    }

    #[test]
    fn unknown_metric_is_a_typed_error() {
        let doc = JsonValue::parse(r#"{"name":"hausdorff"}"#).unwrap();
        assert!(matches!(
            Metric::from_value(Some(&doc)),
            Err(QueryError::Parse(_))
        ));
        let doc = JsonValue::parse(r#"{"eps":1}"#).unwrap();
        assert!(matches!(
            Metric::from_value(Some(&doc)),
            Err(QueryError::Parse(_))
        ));
        let doc = JsonValue::parse(r#"{"name":"lcss"}"#).unwrap();
        assert!(matches!(
            Metric::from_value(Some(&doc)),
            Err(QueryError::Parse(_))
        ));
    }

    #[test]
    fn lcss_eps_is_validated() {
        for eps in [f64::NAN, f64::INFINITY, -0.5] {
            assert!(matches!(
                Metric::Lcss { eps }.validate().unwrap_err(),
                QueryError::InvalidEps(_)
            ));
        }
        assert!(Metric::Lcss { eps: 0.0 }.validate().is_ok());
        assert!(Metric::Dtw.validate().is_ok());
    }
}
