//! Candidate verification (§5, Algorithms 3–6).
//!
//! Given candidates `(id, j, iq)` — trajectory `id` carries, at position
//! `j`, a substitution neighbor of query symbol `Q[iq]` — verification must
//! report every subtrajectory `P[s..=t]` with `s ≤ j ≤ t` and
//! `wed(P[s..=t], Q) < τ`. Three strategies are provided:
//!
//! * [`VerifyMode::Sw`] — Smith–Waterman over each candidate *trajectory*
//!   (the `*-SW` baselines): exact, no locality, no sharing.
//! * [`VerifyMode::Local`] — bidirectional local verification (§5.1): two
//!   DPs growing outward from `j`, early-terminated by the Eq. (11) lower
//!   bound; no cross-candidate sharing (ablation point).
//! * [`VerifyMode::Trie`] — local verification plus bidirectional tries
//!   (§5.2): DP columns are cached per `(iq, direction)` in a trie keyed by
//!   the data symbols, exploiting the small out-degree of road networks.
//!
//! Trie-mode caching is a three-level hierarchy. The per-query level above
//! is always on. When in-query parallelism shards one query's groups across
//! workers, the workers share one [`TrieCache`] instead of rebuilding
//! identical tries per worker (cross-shard level). A batch may opt in to
//! the same cache across its queries (`BatchOptions::share_tries`), so
//! repeated or overlapping patterns hit warm columns. Sharing never changes
//! results: a trie is fully determined by its query suffix `Q^d` and the
//! cost model, and StepDP is deterministic, so shared columns are
//! bit-identical to privately computed ones. Non-WED verifiers
//! ([`crate::metric`]) never consult the cache.
//!
//! The split at the anchor follows Eq. (10):
//! `wed(P[s..=t], Q) = wed(P[s..j-1], Q[..iq]) + sub(P[j], Q[iq]) +
//! wed(P[j+1..=t], Q[iq+1..])` for the optimal alignment of some candidate,
//! so enumerating pairs of backward/forward prefix WEDs below
//! `τ' = τ − sub(P[j], Q[iq])` recovers exactly the Definition 3 result set
//! (Lemma 1), with per-triple min-merge restoring exact distances.
//!
//! Verification is **metric-pluggable**: the front half (candidate dedup,
//! per-trajectory grouping, work distribution, deadline checkpoints,
//! temporal post-check) is shared, while the back half is a [`Verifier`]
//! implementation invoked once per trajectory group — [`WedVerifier`] for
//! the three WED strategies above, or the DTW/LCSS/Fréchet verifiers in
//! [`crate::metric`].

use crate::deadline::Deadline;
use crate::query::QueryError;
use crate::results::ResultSet;
use crate::stats::SearchStats;
use crate::temporal::TemporalConstraint;
use std::collections::hash_map::{DefaultHasher, Entry};
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::{Arc, Mutex};
use traj::{TrajId, TrajectoryStore};
use trajsearch_obs::Tracer;
use wed::dp::{initial_column_into, step_dp_into};
use wed::{sw_scan_all, CostModel, Sym};

/// A filtering candidate `(id, j, iq)` (§3.1): `P^(id)[j] ∈ B(Q[iq])`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Candidate {
    pub id: TrajId,
    pub j: u32,
    pub iq: u32,
}

/// Verification strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum VerifyMode {
    /// Full Smith–Waterman scan per candidate trajectory.
    Sw,
    /// Bidirectional local verification without caching.
    Local,
    /// Bidirectional local verification with trie caching (the paper's BT).
    #[default]
    Trie,
}

// ---------------------------------------------------------------------------
// DP-column trie
// ---------------------------------------------------------------------------

/// Sentinel for absent node links in the flat arena.
const NIL: u32 = u32::MAX;

/// Arena node: 24 bytes of links and bound, no owned storage. The DP column
/// itself lives in the trie's contiguous `cols` slab at the node's index.
#[derive(Debug, Clone, Copy)]
struct Node {
    /// Column minimum — the Eq. (11) lower bound `LB^d_k`.
    min: f64,
    /// Head of this node's intrusive child list (`NIL` for a leaf).
    first_child: u32,
    /// Next child of the same parent (`NIL` at the end of the list).
    next_sibling: u32,
    /// The data symbol on the edge from the parent (unused at the root).
    sym: Sym,
}

/// A DP-column cache for one query suffix `Q^d` (§5.2) — one per
/// `(iq, direction)` pair in private mode, one per *distinct* suffix when
/// shared through a [`TrieCache`]. The paper builds `2·|Q'|` of these per
/// query.
///
/// Layout is a flat arena: one contiguous node table plus one contiguous
/// `f64` slab holding every DP column back to back (node `k`'s column is
/// `cols[k·stride .. (k+1)·stride]` with `stride = |Q^d| + 1`). Children
/// form intrusive sibling lists inside the node table, so a trie makes two
/// allocations' worth of growth instead of two per node, and a walk touches
/// memory sequentially within each column.
#[derive(Debug)]
pub struct DpTrie {
    qd: Vec<Sym>,
    nodes: Vec<Node>,
    cols: Vec<f64>,
}

impl DpTrie {
    /// Creates the trie with a root column for the empty data prefix.
    pub fn new<M: CostModel>(model: &M, qd: Vec<Sym>) -> Self {
        let mut cols = Vec::new();
        let min = initial_column_into(model, &qd, &mut cols);
        DpTrie {
            qd,
            nodes: vec![Node {
                min,
                first_child: NIL,
                next_sibling: NIL,
                sym: 0,
            }],
            cols,
        }
    }

    #[inline]
    fn stride(&self) -> usize {
        self.qd.len() + 1
    }

    /// The cached DP column of `node`:
    /// `col[j] = wed(P^d[..k], Q^d[..j])` for the node's depth `k`.
    /// Threshold-independent, hence reusable across candidates and queries.
    fn col(&self, node: u32) -> &[f64] {
        let s = self.stride();
        let at = node as usize * s;
        &self.cols[at..at + s]
    }

    /// Existing child `node --sym-->`, if cached. The linear sibling scan is
    /// optimal at road-network out-degrees (~3).
    fn lookup(&self, node: u32, sym: Sym) -> Option<u32> {
        let mut c = self.nodes[node as usize].first_child;
        while c != NIL {
            let n = &self.nodes[c as usize];
            if n.sym == sym {
                return Some(c);
            }
            c = n.next_sibling;
        }
        None
    }

    /// Returns `(child id, freshly created?)` for `node --sym-->`.
    fn child<M: CostModel>(&mut self, model: &M, node: u32, sym: Sym) -> (u32, bool) {
        if let Some(c) = self.lookup(node, sym) {
            return (c, false);
        }
        let s = self.stride();
        let old_len = self.cols.len();
        self.cols.resize(old_len + s, 0.0);
        // The parent's column sits strictly below the freshly reserved tail,
        // so a split borrow lets StepDP read it while writing in place.
        let (head, fresh) = self.cols.split_at_mut(old_len);
        let at = node as usize * s;
        let min = step_dp_into(model, &self.qd, sym, &head[at..at + s], fresh);
        (self.link(node, sym, min), true)
    }

    /// Adopts an externally computed column — the shared-cache path, where
    /// StepDP ran outside the trie lock.
    fn insert_child(&mut self, node: u32, sym: Sym, col: &[f64], min: f64) -> u32 {
        debug_assert_eq!(col.len(), self.stride());
        self.cols.extend_from_slice(col);
        self.link(node, sym, min)
    }

    /// Appends a node and heads it into `parent`'s child list (order among
    /// siblings is unobservable — lookup is by symbol).
    fn link(&mut self, parent: u32, sym: Sym, min: f64) -> u32 {
        let id = self.nodes.len() as u32;
        let head = self.nodes[parent as usize].first_child;
        self.nodes.push(Node {
            min,
            first_child: NIL,
            next_sibling: head,
            sym,
        });
        self.nodes[parent as usize].first_child = id;
        id
    }

    fn ed(&self, node: u32) -> f64 {
        self.cols[(node as usize + 1) * self.stride() - 1]
    }

    fn min(&self, node: u32) -> f64 {
        self.nodes[node as usize].min
    }

    /// Number of materialized nodes (diagnostics/tests).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when nothing beyond the always-present root column is cached
    /// (root-only semantics: a fresh trie holds no data-symbol columns, so
    /// `is_empty() == (len() == 1)`).
    pub fn is_empty(&self) -> bool {
        self.nodes.len() == 1
    }
}

// ---------------------------------------------------------------------------
// Shared trie cache (cross-shard / batch levels)
// ---------------------------------------------------------------------------

const CACHE_SHARDS: usize = 8;

/// A concurrency-safe cache of [`DpTrie`]s keyed by their query suffix
/// `Q^d`, shared across in-query verification workers and (opt-in,
/// [`crate::BatchOptions::share_tries`]) across the queries of one batch.
///
/// Keying by the suffix symbols alone is strictly more sharing than keying
/// by `(iq, direction)`: a trie's contents are fully determined by `Q^d`
/// and the cost model (the direction only decides the order data symbols
/// are fed in, which the trie never sees), so any two pairs with the same
/// suffix — even a backward and a forward one — reuse one trie. One cache
/// must therefore only ever be used with one cost model; the engine scopes
/// caches per query or per batch, which pins the model.
///
/// The locking discipline follows `Memo` in the `wed` crate: the key map is
/// sharded across [`CACHE_SHARDS`] mutexes, misses build the root column
/// outside the lock, and a double-checked insert lets race losers adopt the
/// winner's trie — so `trie_cache_misses` counts each distinct suffix
/// exactly once regardless of interleaving.
/// One lock-sharded slice of the cache: suffix symbols → shared trie.
type TrieShard = Mutex<HashMap<Box<[Sym]>, Arc<Mutex<DpTrie>>>>;

pub struct TrieCache {
    shards: [TrieShard; CACHE_SHARDS],
}

impl TrieCache {
    pub fn new() -> Self {
        TrieCache {
            shards: std::array::from_fn(|_| Mutex::new(HashMap::new())),
        }
    }

    fn shard_of(qd: &[Sym]) -> usize {
        let mut h = DefaultHasher::new();
        qd.hash(&mut h);
        h.finish() as usize & (CACHE_SHARDS - 1)
    }

    /// Returns `(trie, warm?)`: the shared trie for `qd`, and whether it
    /// already existed (a cache hit at trie granularity).
    fn get_or_create<M: CostModel>(&self, model: &M, qd: &[Sym]) -> (Arc<Mutex<DpTrie>>, bool) {
        let shard = &self.shards[Self::shard_of(qd)];
        if let Some(t) = shard.lock().unwrap().get(qd) {
            return (t.clone(), true);
        }
        // Build the root column outside the lock; losers of the insert race
        // drop their fresh trie and adopt the winner's.
        let fresh = Arc::new(Mutex::new(DpTrie::new(model, qd.to_vec())));
        match shard.lock().unwrap().entry(qd.to_vec().into_boxed_slice()) {
            Entry::Occupied(e) => (e.get().clone(), true),
            Entry::Vacant(v) => {
                v.insert(fresh.clone());
                (fresh, false)
            }
        }
    }
}

impl Default for TrieCache {
    fn default() -> Self {
        Self::new()
    }
}

/// A verifier's handle on one trie: owned outright, or a lease on a
/// [`TrieCache`] entry shared with other workers/queries.
enum TrieHandle {
    Private(DpTrie),
    Shared {
        qd: Vec<Sym>,
        trie: Arc<Mutex<DpTrie>>,
    },
}

// ---------------------------------------------------------------------------
// Verifier trait and the WED back half
// ---------------------------------------------------------------------------

/// The metric back half of verification: turns one trajectory group of
/// sorted, deduped candidates into result triples.
///
/// The shared front half hands each implementation one **whole-trajectory
/// group** at a time (all of a trajectory's anchors, sorted by
/// `(j, iq)`), together with the trajectory's path. Implementations push
/// every matching `(id, s, t, dist)` into `results` (duplicates are
/// min-merged by the [`ResultSet`]) and account their DP work in
/// `stats.verify_cost` — the metric-neutral unit (columns/rows of `O(|Q|)`
/// each) that stays comparable when workloads mix metrics.
///
/// A verifier may carry state across groups (the WED tries do); the
/// parallel path constructs one verifier per worker, so implementations
/// need not be `Sync`.
pub trait Verifier {
    /// Verifies one trajectory group. `group` is non-empty and all its
    /// candidates share one trajectory id; `path` is that trajectory's
    /// symbol sequence.
    fn verify_group(
        &mut self,
        path: &[Sym],
        group: &[Candidate],
        results: &mut ResultSet,
        stats: &mut SearchStats,
    );
}

/// Stateful WED verifier holding the bidirectional tries of one query —
/// the [`Verifier`] back half for all three [`VerifyMode`] strategies.
pub struct WedVerifier<'a, M: CostModel> {
    model: &'a M,
    q: &'a [Sym],
    tau: f64,
    mode: VerifyMode,
    /// Shared [`TrieCache`] for the cross-shard/batch levels; `None` keeps
    /// every trie private to this verifier (the classic §5.2 behavior).
    cache: Option<&'a TrieCache>,
    /// Trie handles keyed by candidate query position `iq`; `[0]` backward,
    /// `[1]` forward.
    tries: HashMap<u32, [TrieHandle; 2]>,
}

impl<'a, M: CostModel> WedVerifier<'a, M> {
    pub fn new(model: &'a M, q: &'a [Sym], tau: f64, mode: VerifyMode) -> Self {
        Self::with_cache(model, q, tau, mode, None)
    }

    /// [`WedVerifier::new`] resolving Trie-mode tries through a shared
    /// [`TrieCache`] (hits and misses are accounted per acquisition in
    /// `stats.trie_cache_hits` / `trie_cache_misses`). Results are
    /// bit-identical to the private-trie path.
    pub fn with_cache(
        model: &'a M,
        q: &'a [Sym],
        tau: f64,
        mode: VerifyMode,
        cache: Option<&'a TrieCache>,
    ) -> Self {
        WedVerifier {
            model,
            q,
            tau,
            mode,
            cache,
            tries: HashMap::new(),
        }
    }

    /// Algorithm 4 (VerifyCandidate): verify one candidate, pushing all
    /// `(id, s, t)` triples through the anchor into `results`.
    pub fn verify_candidate(
        &mut self,
        path: &[Sym],
        cand: Candidate,
        results: &mut ResultSet,
        stats: &mut SearchStats,
    ) {
        let j = cand.j as usize;
        let iq = cand.iq as usize;
        debug_assert!(j < path.len() && iq < self.q.len());
        stats.sw_columns += path.len() as u64;

        let sub0 = self.model.sub(path[j], self.q[iq]);
        if sub0 >= self.tau {
            return; // anchor substitution alone exceeds the budget
        }
        let tau_p = self.tau - sub0;

        let (eb, ef) = match self.mode {
            VerifyMode::Trie => {
                let (model, q, cache) = (self.model, self.q, self.cache);
                let tries = self.tries.entry(cand.iq).or_insert_with(|| {
                    let qb_rev: Vec<Sym> = q[..iq].iter().rev().cloned().collect();
                    let qf: Vec<Sym> = q[iq + 1..].to_vec();
                    [qb_rev, qf].map(|qd| match cache {
                        Some(c) => {
                            let (trie, warm) = c.get_or_create(model, &qd);
                            if warm {
                                stats.trie_cache_hits += 1;
                            } else {
                                stats.trie_cache_misses += 1;
                            }
                            TrieHandle::Shared { qd, trie }
                        }
                        None => TrieHandle::Private(DpTrie::new(model, qd)),
                    })
                });
                let eb = walk_handle(
                    &mut tries[0],
                    model,
                    path[..j].iter().rev().cloned(),
                    tau_p,
                    stats,
                );
                let ef = walk_handle(
                    &mut tries[1],
                    model,
                    path[j + 1..].iter().cloned(),
                    tau_p,
                    stats,
                );
                (eb, ef)
            }
            VerifyMode::Local => {
                let qb_rev: Vec<Sym> = self.q[..iq].iter().rev().cloned().collect();
                let qf: Vec<Sym> = self.q[iq + 1..].to_vec();
                let eb = prefix_weds_local(
                    self.model,
                    &qb_rev,
                    path[..j].iter().rev().cloned(),
                    tau_p,
                    stats,
                );
                let ef =
                    prefix_weds_local(self.model, &qf, path[j + 1..].iter().cloned(), tau_p, stats);
                (eb, ef)
            }
            VerifyMode::Sw => unreachable!("SW mode is handled per trajectory"),
        };

        // Enumerate (s, t) pairs through the anchor (Algorithm 4 line 6).
        for (kb, &b) in eb.iter().enumerate() {
            if sub0 + b >= self.tau {
                continue;
            }
            for (kf, &f) in ef.iter().enumerate() {
                let d = sub0 + b + f;
                if d < self.tau {
                    results.push(cand.id, j - kb, j + kf, d);
                }
            }
        }
    }
}

impl<M: CostModel> Verifier for WedVerifier<'_, M> {
    fn verify_group(
        &mut self,
        path: &[Sym],
        group: &[Candidate],
        results: &mut ResultSet,
        stats: &mut SearchStats,
    ) {
        match self.mode {
            VerifyMode::Sw => {
                // One exact scan per distinct candidate trajectory; the UPR
                // denominator counts each scanned trajectory once.
                let id = group[0].id;
                stats.sw_columns += path.len() as u64;
                stats.verify_cost += path.len() as u64;
                for m in sw_scan_all(self.model, path, self.q, self.tau) {
                    results.push(id, m.start, m.end, m.dist);
                }
            }
            VerifyMode::Local | VerifyMode::Trie => {
                for cand in group {
                    self.verify_candidate(path, *cand, results, stats);
                }
            }
        }
    }
}

/// Dispatches Algorithm 5 to the private or shared walk.
fn walk_handle<M: CostModel>(
    handle: &mut TrieHandle,
    model: &M,
    syms: impl Iterator<Item = Sym>,
    tau_p: f64,
    stats: &mut SearchStats,
) -> Vec<f64> {
    match handle {
        TrieHandle::Private(trie) => walk_trie(trie, model, syms, tau_p, stats),
        TrieHandle::Shared { qd, trie } => walk_shared_trie(trie, qd, model, syms, tau_p, stats),
    }
}

/// Algorithm 5 (AllPrefixWED) against a trie: returns
/// `E^d[k] = wed(P^d[..k], Q^d)` for `k = 0..` until early termination.
fn walk_trie<M: CostModel>(
    trie: &mut DpTrie,
    model: &M,
    syms: impl Iterator<Item = Sym>,
    tau_p: f64,
    stats: &mut SearchStats,
) -> Vec<f64> {
    let mut ed = vec![trie.ed(0)];
    let mut node = 0u32;
    for sym in syms {
        let (child, created) = trie.child(model, node, sym);
        stats.columns_passed += 1;
        stats.verify_cost += 1;
        if created {
            stats.stepdp_calls += 1;
        }
        // Eq. (11): if every alignment of this prefix already costs ≥ τ',
        // extensions cannot recover — stop. The column value for this k is
        // ≥ min ≥ τ' and thus cannot contribute to a pair either.
        if trie.min(child) >= tau_p {
            break;
        }
        ed.push(trie.ed(child));
        node = child;
    }
    ed
}

/// [`walk_trie`] against a [`TrieCache`] entry other workers walk
/// concurrently. Misses compute their column *outside* the lock (into a
/// reused scratch buffer) and re-check on re-lock; a race loser adopts the
/// winner's bit-identical column and its StepDP is left uncounted, so
/// `stepdp_calls` equals the number of distinct columns materialized —
/// deterministic at any thread count (the walks themselves depend only on
/// column values, never on which worker computed them).
fn walk_shared_trie<M: CostModel>(
    shared: &Mutex<DpTrie>,
    qd: &[Sym],
    model: &M,
    syms: impl Iterator<Item = Sym>,
    tau_p: f64,
    stats: &mut SearchStats,
) -> Vec<f64> {
    let mut parent = Vec::new();
    let mut fresh = vec![0.0; qd.len() + 1];
    let mut guard = shared.lock().unwrap();
    let mut ed = vec![guard.ed(0)];
    let mut node = 0u32;
    for sym in syms {
        let child = match guard.lookup(node, sym) {
            Some(c) => c,
            None => {
                parent.clear();
                parent.extend_from_slice(guard.col(node));
                drop(guard);
                let min = step_dp_into(model, qd, sym, &parent, &mut fresh);
                guard = shared.lock().unwrap();
                match guard.lookup(node, sym) {
                    Some(c) => c, // lost the insert race; adopt the winner's
                    None => {
                        stats.stepdp_calls += 1;
                        guard.insert_child(node, sym, &fresh, min)
                    }
                }
            }
        };
        stats.columns_passed += 1;
        stats.verify_cost += 1;
        if guard.min(child) >= tau_p {
            break;
        }
        ed.push(guard.ed(child));
        node = child;
    }
    ed
}

/// AllPrefixWED without caching (ablation; every column is computed fresh).
fn prefix_weds_local<M: CostModel>(
    model: &M,
    qd: &[Sym],
    syms: impl Iterator<Item = Sym>,
    tau_p: f64,
    stats: &mut SearchStats,
) -> Vec<f64> {
    let mut col = Vec::new();
    initial_column_into(model, qd, &mut col);
    let mut next = vec![0.0; col.len()];
    let mut ed = vec![col[qd.len()]];
    for sym in syms {
        let min = step_dp_into(model, qd, sym, &col, &mut next);
        std::mem::swap(&mut col, &mut next);
        stats.columns_passed += 1;
        stats.verify_cost += 1;
        stats.stepdp_calls += 1;
        if min >= tau_p {
            break;
        }
        ed.push(col[qd.len()]);
    }
    ed
}

// ---------------------------------------------------------------------------
// Top-level verification (Algorithm 3)
// ---------------------------------------------------------------------------

/// Applies the TF pre-filter, sorts by `(id, j, iq)` and removes exact
/// duplicate triples. Overlapping substitution neighborhoods can emit the
/// same `(id, j, iq)` several times; verifying each copy repeats the whole
/// bidirectional DP (correctness survives only through the ResultSet
/// min-merge), so only distinct triples proceed. The sort doubles as the
/// per-trajectory grouping the shard runner relies on.
fn prepare_candidates(
    index_span: impl Fn(TrajId) -> (f64, f64),
    candidates: &[Candidate],
    temporal: Option<&TemporalConstraint>,
    temporal_filter: bool,
    stats: &mut SearchStats,
) -> Vec<Candidate> {
    stats.candidates = candidates.len();
    let mut filtered: Vec<Candidate> = match (temporal, temporal_filter) {
        (Some(c), true) => candidates
            .iter()
            .filter(|cand| c.may_contain_match(index_span(cand.id)))
            .cloned()
            .collect(),
        _ => candidates.to_vec(),
    };
    stats.candidates_after_temporal = filtered.len();
    filtered.sort_unstable_by_key(|c| (c.id, c.j, c.iq));
    filtered.dedup();
    stats.candidates_deduped = filtered.len();
    filtered
}

/// Contiguous `[start, end)` runs of equal trajectory id in a sorted
/// candidate slice — the unit of work distribution: a whole trajectory's
/// anchors stay together so one worker's tries and scans share its locality.
fn trajectory_groups(sorted: &[Candidate]) -> Vec<(usize, usize)> {
    let mut groups = Vec::new();
    let mut start = 0;
    for i in 1..=sorted.len() {
        if i == sorted.len() || sorted[i].id != sorted[start].id {
            groups.push((start, i));
            start = i;
        }
    }
    groups
}

/// Verifies a set of whole-trajectory groups with one [`Verifier`] (for WED,
/// one set of tries) into a private result set — the unit both the
/// sequential path (all groups, one call) and each parallel worker run.
///
/// The deadline is checked **between trajectory groups** — the same
/// granularity the parallel scheduler distributes work at — so an expired
/// query stops within one trajectory's worth of DP work
/// ([`QueryError::DeadlineExceeded`]; `results` may then hold partial
/// output and must be discarded by the caller).
fn verify_shard_with<V: Verifier>(
    store: &TrajectoryStore,
    sorted: &[Candidate],
    groups: &[(usize, usize)],
    verifier: &mut V,
    deadline: Deadline,
    results: &mut ResultSet,
    stats: &mut SearchStats,
) -> Result<(), QueryError> {
    for &(start, end) in groups {
        deadline.check()?;
        let path = store.get(sorted[start].id).path();
        verifier.verify_group(path, &sorted[start..end], results, stats);
    }
    Ok(())
}

/// Exact temporal post-check, deterministic ordering, result count.
fn finish_verification(
    mut results: ResultSet,
    store: &TrajectoryStore,
    temporal: Option<&TemporalConstraint>,
    stats: &mut SearchStats,
) -> Vec<crate::results::MatchResult> {
    if let Some(c) = temporal {
        results.retain(|id, s, t| {
            let times = store.get(id).times();
            c.accepts(times[s], times[t])
        });
    }
    let out = results.into_sorted_vec();
    stats.results = out.len();
    out
}

/// Verifies a candidate set and returns the exact Definition 3 result set.
///
/// With a [`TemporalConstraint`] and `temporal_filter = true`, candidates
/// whose trajectory span cannot overlap the query interval are pruned before
/// verification (the TF strategy of §4.3); the exact per-match span check is
/// applied afterwards in both cases. Exact duplicate triples are verified
/// once (`stats.candidates_deduped`).
///
/// This is the single-shard special case of [`par_verify_candidates`].
#[allow(clippy::too_many_arguments)]
pub fn verify_candidates<M: CostModel>(
    model: &M,
    store: &TrajectoryStore,
    index_span: impl Fn(TrajId) -> (f64, f64),
    q: &[Sym],
    tau: f64,
    candidates: &[Candidate],
    mode: VerifyMode,
    temporal: Option<&TemporalConstraint>,
    temporal_filter: bool,
    stats: &mut SearchStats,
) -> Vec<crate::results::MatchResult> {
    verify_candidates_deadline(
        model,
        store,
        index_span,
        q,
        tau,
        candidates,
        mode,
        temporal,
        temporal_filter,
        Deadline::NONE,
        None,
        stats,
        Tracer::disabled(),
    )
    .expect("verification without a deadline cannot expire")
}

/// [`verify_candidates`] with a cooperative [`Deadline`], checked between
/// trajectory groups; expiry returns [`QueryError::DeadlineExceeded`] and no
/// partial results. A `cache` resolves Trie-mode tries through the shared
/// batch-level [`TrieCache`] instead of building them privately.
#[allow(clippy::too_many_arguments)]
pub(crate) fn verify_candidates_deadline<M: CostModel>(
    model: &M,
    store: &TrajectoryStore,
    index_span: impl Fn(TrajId) -> (f64, f64),
    q: &[Sym],
    tau: f64,
    candidates: &[Candidate],
    mode: VerifyMode,
    temporal: Option<&TemporalConstraint>,
    temporal_filter: bool,
    deadline: Deadline,
    cache: Option<&TrieCache>,
    stats: &mut SearchStats,
    tracer: Tracer<'_>,
) -> Result<Vec<crate::results::MatchResult>, QueryError> {
    verify_candidates_with(
        store,
        index_span,
        candidates,
        &mut WedVerifier::with_cache(model, q, tau, mode, cache),
        temporal,
        temporal_filter,
        deadline,
        stats,
        tracer,
    )
}

/// Metric-generic sequential verification: the shared front half (TF
/// pre-filter, sort/dedup, per-trajectory grouping) followed by one
/// `verifier` pass over all groups and the exact temporal post-check.
#[allow(clippy::too_many_arguments)]
pub(crate) fn verify_candidates_with<V: Verifier>(
    store: &TrajectoryStore,
    index_span: impl Fn(TrajId) -> (f64, f64),
    candidates: &[Candidate],
    verifier: &mut V,
    temporal: Option<&TemporalConstraint>,
    temporal_filter: bool,
    deadline: Deadline,
    stats: &mut SearchStats,
    tracer: Tracer<'_>,
) -> Result<Vec<crate::results::MatchResult>, QueryError> {
    let dedup = tracer.span("dedup");
    let sorted = prepare_candidates(index_span, candidates, temporal, temporal_filter, stats);
    let groups = trajectory_groups(&sorted);
    dedup.finish();
    let mut results = ResultSet::new();
    let shard = tracer.span_with("verify_shard", 0);
    verify_shard_with(
        store,
        &sorted,
        &groups,
        verifier,
        deadline,
        &mut results,
        stats,
    )?;
    shard.finish();
    Ok(finish_verification(results, store, temporal, stats))
}

/// Splits the group list into at most `shards` contiguous slices of roughly
/// equal candidate count (groups are never split: a trajectory's anchors
/// stay on one worker).
fn partition_groups(
    groups: &[(usize, usize)],
    total: usize,
    shards: usize,
) -> Vec<&[(usize, usize)]> {
    if groups.is_empty() {
        return Vec::new();
    }
    let shards = shards.clamp(1, groups.len());
    let target = total.div_ceil(shards);
    let mut out = Vec::with_capacity(shards);
    let mut start = 0;
    let mut acc = 0;
    for (i, &(s, e)) in groups.iter().enumerate() {
        acc += e - s;
        // Close the shard once it carries its share; the last shard takes
        // whatever remains (at most `shards` slices, each non-empty).
        if acc >= target && out.len() + 1 < shards {
            out.push(&groups[start..=i]);
            start = i + 1;
            acc = 0;
        }
    }
    if start < groups.len() {
        out.push(&groups[start..]);
    }
    out
}

/// Parallel [`verify_candidates`]: trajectory groups are sharded across
/// `threads` scoped workers, each with a private [`ResultSet`]; shard
/// outputs are min-merged, so the result set — distances included — is
/// identical to the sequential path for any thread count.
///
/// In Trie mode the workers share one [`TrieCache`] (the cross-shard level
/// of the hierarchy), so a DP column two shards both need is computed once
/// instead of once per worker and `stepdp_calls` stays the number of
/// distinct columns rather than multiplying with the thread count. Counter
/// totals (`sw_columns`, `columns_passed`, `stepdp_calls`, `verify_cost`,
/// `trie_cache_hits`, `trie_cache_misses`) are summed across shards.
#[allow(clippy::too_many_arguments)]
pub fn par_verify_candidates<M: CostModel + Sync>(
    model: &M,
    store: &TrajectoryStore,
    index_span: impl Fn(TrajId) -> (f64, f64),
    q: &[Sym],
    tau: f64,
    candidates: &[Candidate],
    mode: VerifyMode,
    temporal: Option<&TemporalConstraint>,
    temporal_filter: bool,
    threads: usize,
    stats: &mut SearchStats,
) -> Vec<crate::results::MatchResult> {
    par_verify_candidates_deadline(
        model,
        store,
        index_span,
        q,
        tau,
        candidates,
        mode,
        temporal,
        temporal_filter,
        threads,
        Deadline::NONE,
        None,
        stats,
        Tracer::disabled(),
    )
    .expect("verification without a deadline cannot expire")
}

/// [`par_verify_candidates`] with a cooperative [`Deadline`]: every worker
/// checks it between its trajectory groups and bails out early; if any shard
/// expired the whole verification returns [`QueryError::DeadlineExceeded`]
/// (partial shard outputs are discarded, never merged into an answer).
///
/// An explicit `cache` (the batch level) takes precedence; otherwise Trie
/// mode at `threads > 1` gets a query-local [`TrieCache`] for its workers.
#[allow(clippy::too_many_arguments)]
pub(crate) fn par_verify_candidates_deadline<M: CostModel + Sync>(
    model: &M,
    store: &TrajectoryStore,
    index_span: impl Fn(TrajId) -> (f64, f64),
    q: &[Sym],
    tau: f64,
    candidates: &[Candidate],
    mode: VerifyMode,
    temporal: Option<&TemporalConstraint>,
    temporal_filter: bool,
    threads: usize,
    deadline: Deadline,
    cache: Option<&TrieCache>,
    stats: &mut SearchStats,
    tracer: Tracer<'_>,
) -> Result<Vec<crate::results::MatchResult>, QueryError> {
    let local;
    let cache = match (cache, mode) {
        (Some(c), VerifyMode::Trie) => Some(c),
        (None, VerifyMode::Trie) if threads > 1 => {
            local = TrieCache::new();
            Some(&local)
        }
        _ => None,
    };
    par_verify_candidates_with(
        store,
        index_span,
        candidates,
        || WedVerifier::with_cache(model, q, tau, mode, cache),
        temporal,
        temporal_filter,
        threads,
        deadline,
        stats,
        tracer,
    )
}

/// Metric-generic parallel verification: the shared front half, then
/// trajectory groups sharded across `threads` scoped workers, each running
/// a fresh verifier from `make_verifier` into a private [`ResultSet`];
/// shard outputs are min-merged, so the result set — distances included —
/// is identical to the sequential path for any thread count.
#[allow(clippy::too_many_arguments)]
pub(crate) fn par_verify_candidates_with<V: Verifier, F: Fn() -> V + Sync>(
    store: &TrajectoryStore,
    index_span: impl Fn(TrajId) -> (f64, f64),
    candidates: &[Candidate],
    make_verifier: F,
    temporal: Option<&TemporalConstraint>,
    temporal_filter: bool,
    threads: usize,
    deadline: Deadline,
    stats: &mut SearchStats,
    tracer: Tracer<'_>,
) -> Result<Vec<crate::results::MatchResult>, QueryError> {
    let dedup = tracer.span("dedup");
    let sorted = prepare_candidates(index_span, candidates, temporal, temporal_filter, stats);
    let groups = trajectory_groups(&sorted);
    dedup.finish();
    let shards = partition_groups(&groups, sorted.len(), threads);

    let mut results = ResultSet::new();
    if shards.len() <= 1 {
        // Sequential special case: no threads, no merge.
        let span = tracer.span_with("verify_shard", 0);
        let mut verifier = make_verifier();
        verify_shard_with(
            store,
            &sorted,
            &groups,
            &mut verifier,
            deadline,
            &mut results,
            stats,
        )?;
        span.finish();
    } else {
        let outputs = std::thread::scope(|scope| {
            let handles: Vec<_> = shards
                .iter()
                .enumerate()
                .map(|(worker, shard)| {
                    let sorted = &sorted;
                    let make_verifier = &make_verifier;
                    scope.spawn(move || {
                        // One span per worker (`detail` = worker index):
                        // traces expose shard imbalance directly.
                        let span = tracer.span_with("verify_shard", worker as u64);
                        let mut verifier = make_verifier();
                        let mut local_results = ResultSet::new();
                        let mut local_stats = SearchStats::default();
                        let status = verify_shard_with(
                            store,
                            sorted,
                            shard,
                            &mut verifier,
                            deadline,
                            &mut local_results,
                            &mut local_stats,
                        );
                        span.finish();
                        (status, local_results, local_stats)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("verification worker panicked"))
                .collect::<Vec<_>>()
        });
        for (status, shard_results, shard_stats) in outputs {
            status?;
            results.merge(shard_results);
            stats.sw_columns += shard_stats.sw_columns;
            stats.columns_passed += shard_stats.columns_passed;
            stats.stepdp_calls += shard_stats.stepdp_calls;
            stats.verify_cost += shard_stats.verify_cost;
            stats.trie_cache_hits += shard_stats.trie_cache_hits;
            stats.trie_cache_misses += shard_stats.trie_cache_misses;
        }
    }
    Ok(finish_verification(results, store, temporal, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use traj::Trajectory;
    use wed::models::Lev;
    use wed::wed;

    fn store_of(paths: &[&[Sym]]) -> TrajectoryStore {
        paths
            .iter()
            .map(|p| Trajectory::untimed(p.to_vec()))
            .collect()
    }

    /// Exhaustive candidate set: every (id, j) with P[j] == some Q[iq]
    /// (Lev neighborhoods are singletons).
    fn all_candidates(store: &TrajectoryStore, q: &[Sym]) -> Vec<Candidate> {
        let mut c = Vec::new();
        for (id, t) in store.iter() {
            for (j, &p) in t.path().iter().enumerate() {
                for (iq, &qs) in q.iter().enumerate() {
                    if p == qs {
                        c.push(Candidate {
                            id,
                            j: j as u32,
                            iq: iq as u32,
                        });
                    }
                }
            }
        }
        c
    }

    fn brute(store: &TrajectoryStore, q: &[Sym], tau: f64) -> Vec<(TrajId, usize, usize, f64)> {
        let mut out = Vec::new();
        for (id, t) in store.iter() {
            let p = t.path();
            for s in 0..p.len() {
                for e in s..p.len() {
                    let d = wed(&Lev, &p[s..=e], q);
                    if d < tau {
                        out.push((id, s, e, d));
                    }
                }
            }
        }
        out.sort_by(|a, b| (a.0, a.1, a.2).partial_cmp(&(b.0, b.1, b.2)).unwrap());
        out
    }

    fn run(
        store: &TrajectoryStore,
        q: &[Sym],
        tau: f64,
        mode: VerifyMode,
    ) -> Vec<crate::results::MatchResult> {
        let cands = all_candidates(store, q);
        let mut stats = SearchStats::default();
        verify_candidates(
            &Lev,
            store,
            |id| store.get(id).span(),
            q,
            tau,
            &cands,
            mode,
            None,
            false,
            &mut stats,
        )
    }

    #[test]
    fn all_modes_match_brute_force() {
        let store = store_of(&[
            &[0, 1, 2, 3, 4],
            &[3, 1, 5, 1, 2],
            &[9, 8, 7],
            &[1, 2, 1, 2, 1, 2],
        ]);
        let q: Vec<Sym> = vec![1, 5, 2];
        for tau in [1.0, 1.5, 2.0, 3.0] {
            let want = brute(&store, &q, tau);
            for mode in [VerifyMode::Sw, VerifyMode::Local, VerifyMode::Trie] {
                let got = run(&store, &q, tau, mode);
                let got_k: Vec<_> = got.iter().map(|m| (m.id, m.start, m.end)).collect();
                let want_k: Vec<_> = want.iter().map(|&(id, s, t, _)| (id, s, t)).collect();
                assert_eq!(got_k, want_k, "mode {mode:?} tau {tau}");
                for (g, w) in got.iter().zip(&want) {
                    assert!((g.dist - w.3).abs() < 1e-9, "distance mismatch in {mode:?}");
                }
            }
        }
    }

    #[test]
    fn trie_shares_columns_across_candidates() {
        // Two trajectories with a long shared suffix after the anchor: the
        // second verification should hit the cache.
        let store = store_of(&[&[9, 1, 2, 3, 4, 5], &[8, 1, 2, 3, 4, 6]]);
        let q: Vec<Sym> = vec![1, 2, 3];
        let cands = all_candidates(&store, &q);
        let mut stats = SearchStats::default();
        let _ = verify_candidates(
            &Lev,
            &store,
            |id| store.get(id).span(),
            &q,
            2.0,
            &cands,
            VerifyMode::Trie,
            None,
            false,
            &mut stats,
        );
        assert!(
            stats.stepdp_calls < stats.columns_passed,
            "expected cache hits: {} fresh of {} visited",
            stats.stepdp_calls,
            stats.columns_passed
        );
        // On the Local/Trie paths the metric-neutral cost is the visited
        // columns, not the SW upper bound.
        assert_eq!(stats.verify_cost, stats.columns_passed);

        // Local mode computes every visited column fresh.
        let mut stats_local = SearchStats::default();
        let _ = verify_candidates(
            &Lev,
            &store,
            |id| store.get(id).span(),
            &q,
            2.0,
            &cands,
            VerifyMode::Local,
            None,
            false,
            &mut stats_local,
        );
        assert_eq!(stats_local.stepdp_calls, stats_local.columns_passed);
    }

    #[test]
    fn early_termination_prunes_columns() {
        // One anchor in the middle of a long non-matching trajectory: the
        // verifier must not walk to the ends.
        let mut path = vec![7u32; 60];
        path[30] = 1;
        let store = store_of(&[&path]);
        let q: Vec<Sym> = vec![1, 2];
        let cands = all_candidates(&store, &q);
        assert_eq!(cands.len(), 1);
        let mut stats = SearchStats::default();
        let _ = verify_candidates(
            &Lev,
            &store,
            |id| store.get(id).span(),
            &q,
            1.5,
            &cands,
            VerifyMode::Trie,
            None,
            false,
            &mut stats,
        );
        assert!(
            stats.columns_passed < 20,
            "early termination failed: {} columns",
            stats.columns_passed
        );
        assert!(stats.upr() < 0.5);
    }

    #[test]
    fn anchor_over_budget_is_skipped() {
        let store = store_of(&[&[1, 2, 3]]);
        let q: Vec<Sym> = vec![5, 6];
        // Candidate manually anchored at (0,0): sub(1,5)=1 >= tau=1.
        let cands = vec![Candidate { id: 0, j: 0, iq: 0 }];
        let mut stats = SearchStats::default();
        let got = verify_candidates(
            &Lev,
            &store,
            |id| store.get(id).span(),
            &q,
            1.0,
            &cands,
            VerifyMode::Trie,
            None,
            false,
            &mut stats,
        );
        assert!(got.is_empty());
        assert_eq!(stats.columns_passed, 0);
    }

    #[test]
    fn temporal_filter_prunes_and_postcheck_is_exact() {
        use crate::temporal::{TemporalConstraint, TimeInterval};
        let mut store = TrajectoryStore::new();
        store.push(Trajectory::new(vec![1, 2, 3], vec![0.0, 1.0, 2.0]));
        store.push(Trajectory::new(vec![1, 2, 3], vec![100.0, 101.0, 102.0]));
        let q: Vec<Sym> = vec![1, 2, 3];
        let cands = all_candidates(&store, &q);
        let constraint = TemporalConstraint::overlaps(TimeInterval::new(0.0, 50.0));

        let mut stats = SearchStats::default();
        let got = verify_candidates(
            &Lev,
            &store,
            |id| store.get(id).span(),
            &q,
            1.0,
            &cands,
            VerifyMode::Trie,
            Some(&constraint),
            true,
            &mut stats,
        );
        assert!(got.iter().all(|m| m.id == 0));
        assert!(stats.candidates_after_temporal < stats.candidates);

        // no-TF path returns the same results.
        let mut stats2 = SearchStats::default();
        let got2 = verify_candidates(
            &Lev,
            &store,
            |id| store.get(id).span(),
            &q,
            1.0,
            &cands,
            VerifyMode::Trie,
            Some(&constraint),
            false,
            &mut stats2,
        );
        assert_eq!(got, got2);
        assert_eq!(stats2.candidates_after_temporal, stats2.candidates);
    }

    #[test]
    fn trie_len_grows_only_on_miss() {
        let mut trie = DpTrie::new(&Lev, vec![1, 2]);
        assert_eq!(trie.len(), 1);
        let (a, created_a) = trie.child(&Lev, 0, 5);
        assert!(created_a);
        let (b, created_b) = trie.child(&Lev, 0, 5);
        assert!(!created_b);
        assert_eq!(a, b);
        assert_eq!(trie.len(), 2);
        assert!(!trie.is_empty());
    }

    #[test]
    fn trie_is_empty_iff_root_only() {
        // Regression: `is_empty` used to return `false` unconditionally,
        // contradicting the root-only state that `len() == 1` reports.
        let mut trie = DpTrie::new(&Lev, vec![1, 2]);
        assert!(trie.is_empty(), "a fresh trie caches no data columns");
        assert_eq!(trie.len(), 1);
        trie.child(&Lev, 0, 9);
        assert!(!trie.is_empty());
        assert_eq!(trie.len(), 2);
    }

    #[test]
    fn arena_trie_columns_match_direct_dp() {
        let qd = vec![1u32, 2, 3];
        let mut trie = DpTrie::new(&Lev, qd.clone());
        let syms = [4u32, 2, 3, 1, 2];
        let mut node = 0u32;
        for (k, &s) in syms.iter().enumerate() {
            let (child, created) = trie.child(&Lev, node, s);
            assert!(created);
            // `ed` reads the slab column: it must equal a fresh DP.
            assert_eq!(trie.ed(child), wed(&Lev, &syms[..k + 1], &qd));
            node = child;
        }
        // A branch off the root shares nothing but the root column.
        let (b, created) = trie.child(&Lev, 0, 9);
        assert!(created);
        assert_eq!(trie.ed(b), wed(&Lev, &[9], &qd));
        assert_eq!(trie.len(), syms.len() + 2);
    }

    #[test]
    fn shared_cache_is_bit_identical_and_warms_across_runs() {
        let store = store_of(&[
            &[0, 1, 2, 3, 4],
            &[3, 1, 5, 1, 2],
            &[1, 2, 1, 2, 1, 2],
            &[5, 1, 2, 5],
        ]);
        let q: Vec<Sym> = vec![1, 5, 2];
        let cands = all_candidates(&store, &q);
        let run_with = |cache: Option<&TrieCache>| {
            let mut stats = SearchStats::default();
            let got = verify_candidates_deadline(
                &Lev,
                &store,
                |id| store.get(id).span(),
                &q,
                2.0,
                &cands,
                VerifyMode::Trie,
                None,
                false,
                Deadline::NONE,
                cache,
                &mut stats,
                Tracer::disabled(),
            )
            .unwrap();
            (got, stats)
        };
        let (want, private) = run_with(None);
        assert_eq!(private.trie_cache_hits + private.trie_cache_misses, 0);

        let cache = TrieCache::new();
        let (got, cold) = run_with(Some(&cache));
        assert_eq!(got, want, "shared tries must not change results");
        assert!(cold.trie_cache_misses > 0);
        // Suffix-keyed sharing can only reduce DP work vs private tries.
        assert!(cold.stepdp_calls <= private.stepdp_calls);
        assert_eq!(cold.columns_passed, private.columns_passed);

        // A second identical run hits warm tries end to end: every column
        // is already materialized, so no StepDP runs at all.
        let (again, warm) = run_with(Some(&cache));
        assert_eq!(again, want);
        assert_eq!(warm.stepdp_calls, 0);
        assert_eq!(warm.trie_cache_misses, 0);
        assert!(warm.trie_cache_hits > 0);
    }

    #[test]
    fn par_shared_cache_counters_are_deterministic() {
        let store = store_of(&[
            &[0, 1, 2, 3, 4],
            &[3, 1, 5, 1, 2],
            &[9, 8, 7],
            &[1, 2, 1, 2, 1, 2],
            &[5, 1, 2, 5],
            &[2, 5, 1, 2, 0, 1],
        ]);
        let q: Vec<Sym> = vec![1, 5, 2];
        let cands = all_candidates(&store, &q);
        let mut seq_stats = SearchStats::default();
        let want = verify_candidates(
            &Lev,
            &store,
            |id| store.get(id).span(),
            &q,
            2.0,
            &cands,
            VerifyMode::Trie,
            None,
            false,
            &mut seq_stats,
        );
        for threads in [2, 4] {
            let run = || {
                let mut stats = SearchStats::default();
                let got = par_verify_candidates(
                    &Lev,
                    &store,
                    |id| store.get(id).span(),
                    &q,
                    2.0,
                    &cands,
                    VerifyMode::Trie,
                    None,
                    false,
                    threads,
                    &mut stats,
                );
                (got, stats)
            };
            let (got_a, stats_a) = run();
            let (got_b, stats_b) = run();
            assert_eq!(got_a, want, "threads {threads}");
            assert_eq!(got_b, want, "threads {threads}");
            // Race losers are uncounted, so every counter is reproducible
            // at a fixed thread count.
            assert_eq!(stats_a.stepdp_calls, stats_b.stepdp_calls);
            assert_eq!(stats_a.trie_cache_hits, stats_b.trie_cache_hits);
            assert_eq!(stats_a.trie_cache_misses, stats_b.trie_cache_misses);
            // Cross-shard sharing keeps total StepDP work bounded by the
            // sequential private-trie run instead of multiplying with the
            // worker count.
            assert!(stats_a.stepdp_calls <= seq_stats.stepdp_calls);
        }
    }

    #[test]
    fn sw_mode_counts_columns_per_distinct_trajectory() {
        // Regression: SW mode used to accumulate `sw_columns` once per
        // candidate while scanning once per distinct trajectory, inflating
        // the UPR denominator whenever a trajectory carries several anchors.
        let store = store_of(&[&[1, 2, 1, 2, 1]]);
        let q: Vec<Sym> = vec![1];
        let cands = all_candidates(&store, &q);
        assert_eq!(cands.len(), 3, "three anchors in the single trajectory");
        let mut stats = SearchStats::default();
        let _ = verify_candidates(
            &Lev,
            &store,
            |id| store.get(id).span(),
            &q,
            0.5,
            &cands,
            VerifyMode::Sw,
            None,
            false,
            &mut stats,
        );
        // Exactly one scan of the length-5 trajectory; the metric-neutral
        // cost counts the same columns.
        assert_eq!(stats.sw_columns, 5);
        assert_eq!(stats.verify_cost, stats.sw_columns);
    }

    #[test]
    fn duplicate_candidates_verified_once() {
        // Regression: exact duplicate `(id, j, iq)` triples used to be fully
        // re-verified (correctness survived only via the ResultSet
        // min-merge). They must be deduped before verification.
        let store = store_of(&[&[0, 1, 2, 3, 4]]);
        let q: Vec<Sym> = vec![1, 2];
        let unique = all_candidates(&store, &q);
        let mut dup = unique.clone();
        dup.extend_from_slice(&unique);
        dup.extend_from_slice(&unique);

        let run_with = |cands: &[Candidate]| {
            let mut stats = SearchStats::default();
            let got = verify_candidates(
                &Lev,
                &store,
                |id| store.get(id).span(),
                &q,
                1.5,
                cands,
                VerifyMode::Trie,
                None,
                false,
                &mut stats,
            );
            (got, stats)
        };
        let (got_unique, stats_unique) = run_with(&unique);
        let (got_dup, stats_dup) = run_with(&dup);

        assert_eq!(got_dup, got_unique, "dedup must not change results");
        assert_eq!(stats_dup.candidates, 3 * unique.len());
        assert_eq!(stats_dup.candidates_deduped, unique.len());
        // The DP work is that of the unique set, not three times it.
        assert_eq!(stats_dup.sw_columns, stats_unique.sw_columns);
        assert_eq!(stats_dup.columns_passed, stats_unique.columns_passed);
        assert_eq!(stats_dup.stepdp_calls, stats_unique.stepdp_calls);
    }

    #[test]
    fn par_verify_matches_sequential_for_all_thread_counts() {
        let store = store_of(&[
            &[0, 1, 2, 3, 4],
            &[3, 1, 5, 1, 2],
            &[9, 8, 7],
            &[1, 2, 1, 2, 1, 2],
            &[5, 1, 2, 5],
        ]);
        let q: Vec<Sym> = vec![1, 5, 2];
        for tau in [1.0, 2.0, 3.0] {
            let cands = all_candidates(&store, &q);
            for mode in [VerifyMode::Sw, VerifyMode::Local, VerifyMode::Trie] {
                let mut seq_stats = SearchStats::default();
                let want = verify_candidates(
                    &Lev,
                    &store,
                    |id| store.get(id).span(),
                    &q,
                    tau,
                    &cands,
                    mode,
                    None,
                    false,
                    &mut seq_stats,
                );
                for threads in [1, 2, 3, 8] {
                    let mut stats = SearchStats::default();
                    let got = par_verify_candidates(
                        &Lev,
                        &store,
                        |id| store.get(id).span(),
                        &q,
                        tau,
                        &cands,
                        mode,
                        None,
                        false,
                        threads,
                        &mut stats,
                    );
                    assert_eq!(got, want, "mode {mode:?} tau {tau} threads {threads}");
                    assert_eq!(stats.candidates_deduped, seq_stats.candidates_deduped);
                    // SW columns are per distinct trajectory, independent of
                    // sharding.
                    if mode == VerifyMode::Sw {
                        assert_eq!(stats.sw_columns, seq_stats.sw_columns);
                    }
                }
            }
        }
    }

    #[test]
    fn expired_deadline_is_typed_and_yields_no_partial_results() {
        use std::time::{Duration, Instant};
        let store = store_of(&[&[0, 1, 2, 3, 4], &[3, 1, 5, 1, 2], &[1, 2, 1, 2, 1, 2]]);
        let q: Vec<Sym> = vec![1, 5, 2];
        let cands = all_candidates(&store, &q);
        let past = Deadline::at(Instant::now() - Duration::from_millis(1));
        for mode in [VerifyMode::Sw, VerifyMode::Local, VerifyMode::Trie] {
            let mut stats = SearchStats::default();
            let err = verify_candidates_deadline(
                &Lev,
                &store,
                |id| store.get(id).span(),
                &q,
                2.0,
                &cands,
                mode,
                None,
                false,
                past,
                None,
                &mut stats,
                Tracer::disabled(),
            )
            .unwrap_err();
            assert_eq!(err, QueryError::DeadlineExceeded, "mode {mode:?}");
            for threads in [1, 3] {
                let mut stats = SearchStats::default();
                let err = par_verify_candidates_deadline(
                    &Lev,
                    &store,
                    |id| store.get(id).span(),
                    &q,
                    2.0,
                    &cands,
                    mode,
                    None,
                    false,
                    threads,
                    past,
                    None,
                    &mut stats,
                    Tracer::disabled(),
                )
                .unwrap_err();
                assert_eq!(
                    err,
                    QueryError::DeadlineExceeded,
                    "mode {mode:?} x{threads}"
                );
            }
        }
        // A generous deadline changes nothing about the results.
        let relaxed = Deadline::within(Duration::from_secs(3600));
        let mut s1 = SearchStats::default();
        let got = verify_candidates_deadline(
            &Lev,
            &store,
            |id| store.get(id).span(),
            &q,
            2.0,
            &cands,
            VerifyMode::Trie,
            None,
            false,
            relaxed,
            None,
            &mut s1,
            Tracer::disabled(),
        )
        .unwrap();
        assert_eq!(got, run(&store, &q, 2.0, VerifyMode::Trie));
    }

    #[test]
    fn partition_groups_is_a_complete_cover() {
        // Groups of candidate counts 3, 1, 4, 1, 5 (total 14).
        let groups = vec![(0, 3), (3, 4), (4, 8), (8, 9), (9, 14)];
        for shards in 1..=7 {
            let parts = partition_groups(&groups, 14, shards);
            assert!(parts.len() <= shards.max(1));
            assert!(parts.iter().all(|p| !p.is_empty()));
            let flat: Vec<(usize, usize)> = parts.iter().flat_map(|p| p.iter().copied()).collect();
            assert_eq!(flat, groups, "shards={shards} must cover every group once");
        }
        assert!(partition_groups(&[], 0, 4).is_empty());
    }
}
