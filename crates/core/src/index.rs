//! Inverted index over trajectory symbols (§4.1).
//!
//! For every symbol `q ∈ Σ` the postings list `L_q` holds `(id, j)` records:
//! trajectory `id` passes symbol `q` at position `j`. The index also keeps
//! the global frequency table `n(q)` that the MinCand optimizer consumes,
//! and (when timestamps are present) a by-departure ordering that enables
//! the binary-search refinement for temporal constraints described in §4.3.

use traj::{TrajId, TrajectoryStore};
use wed::Sym;

/// A single postings record: trajectory `id` has the indexed symbol at
/// position `j` (0-based).
pub type Posting = (TrajId, u32);

/// Everything the filtering and search layers consume from a postings
/// index, abstracted so the storage layout is swappable: contiguous
/// per-symbol lists ([`InvertedIndex`]), postings partitioned by trajectory
/// id ([`ShardedIndex`](crate::sharded::ShardedIndex)), or future layouts
/// (compressed, trie-backed, remote shards) — without changing query
/// semantics.
///
/// All consumers are monomorphized over the implementor (no `dyn` in the
/// hot path). The contract mirrors the paper's §4.1 index:
///
/// * [`postings`](PostingSource::postings) iterates `L_q`. **Iteration
///   order is source-defined** — a sharded source yields shard-major order
///   — and consumers must not rely on it; verification sorts and dedups
///   candidates before any DP work, which is what makes search results
///   independent of the layout.
/// * [`freq`](PostingSource::freq) is the global `n(q)` (with
///   multiplicity), identical across layouts so the MinCand plan — and
///   hence the candidate set — is byte-identical.
/// * [`postings_departing_by`](PostingSource::postings_departing_by) is the
///   §4.3 temporal refinement: every posting of `L_q` whose trajectory
///   departs no later than `t_max`, again in source-defined order.
pub trait PostingSource {
    /// Iterates the postings list `L_q` in source-defined order.
    fn postings(&self, q: Sym) -> impl Iterator<Item = Posting> + '_;

    /// Symbol frequency `n(q)` (with multiplicity, per the Definition 5
    /// remark). Layout-independent: equals `postings(q).count()`.
    fn freq(&self, q: Sym) -> u32;

    /// Trajectory time span `[T_1, T_n]` (the `I^(id)` of §4.3).
    fn span(&self, id: TrajId) -> (f64, f64);

    /// Every posting of `L_q` whose trajectory departs no later than
    /// `t_max`, in source-defined order, paired with the departure time.
    ///
    /// # Panics
    /// Panics if temporal postings were not enabled on the source.
    fn postings_departing_by(
        &self,
        q: Sym,
        t_max: f64,
    ) -> impl Iterator<Item = (f64, Posting)> + '_;

    /// Whether the by-departure ordering is available (and hence
    /// [`postings_departing_by`](PostingSource::postings_departing_by) may
    /// be called).
    fn has_temporal_postings(&self) -> bool;

    /// `|Σ|`: the number of per-symbol postings lists.
    fn alphabet_size(&self) -> usize;

    /// Number of indexed trajectories.
    fn num_trajectories(&self) -> usize;

    /// Total number of postings records across all symbols.
    fn total_postings(&self) -> usize;

    /// Approximate index memory footprint in bytes (Table 6), **including**
    /// the optional by-departure orderings when they are built. The local
    /// layouts expose the component attribution behind this number through
    /// their inherent `size_breakdown()` methods ([`SizeBreakdown`]).
    fn size_bytes(&self) -> usize;
}

/// Component attribution of an index's memory footprint — which bytes pay
/// for raw postings records, which for per-symbol bookkeeping (list
/// headers / offset tables), which for the span tables, and which for the
/// optional §4.3 by-departure orderings. Summing the fields reproduces the
/// layout's [`PostingSource::size_bytes`], so `BENCH_index.json`'s shard
/// overhead (list headers replicated per shard) is attributable instead of
/// a single opaque number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SizeBreakdown {
    /// Raw postings records (`(id, j)` pairs, or their encoded bytes in a
    /// compact layout).
    pub postings: usize,
    /// Per-symbol bookkeeping: `Vec` headers on the list layouts, offset +
    /// frequency tables on the compact layout. This is the component that
    /// scales with `alphabet_size × num_shards`.
    pub list_headers: usize,
    /// Per-trajectory departure/arrival tables.
    pub spans: usize,
    /// The optional by-departure orderings (entries plus their per-symbol
    /// headers); zero until temporal postings are enabled.
    pub by_departure: usize,
}

impl SizeBreakdown {
    /// Sum of all components — equals the layout's
    /// [`PostingSource::size_bytes`].
    pub fn total(&self) -> usize {
        self.postings + self.list_headers + self.spans + self.by_departure
    }
}

impl std::ops::Add for SizeBreakdown {
    type Output = SizeBreakdown;

    fn add(self, rhs: SizeBreakdown) -> SizeBreakdown {
        SizeBreakdown {
            postings: self.postings + rhs.postings,
            list_headers: self.list_headers + rhs.list_headers,
            spans: self.spans + rhs.spans,
            by_departure: self.by_departure + rhs.by_departure,
        }
    }
}

/// Inverted index with per-symbol postings and frequencies.
#[derive(Debug, Clone)]
pub struct InvertedIndex {
    postings: Vec<Vec<Posting>>,
    /// Per-trajectory departure times, for temporal pre-filtering.
    departures: Vec<f64>,
    /// Per-trajectory arrival times.
    arrivals: Vec<f64>,
    total_postings: usize,
    /// §4.3 extension: per-symbol postings sorted by trajectory departure
    /// time, so temporal candidate generation can binary-search instead of
    /// scanning. Built on demand by [`enable_temporal_postings`].
    ///
    /// [`enable_temporal_postings`]: InvertedIndex::enable_temporal_postings
    dep_postings: Option<Vec<Vec<(f64, Posting)>>>,
}

impl InvertedIndex {
    /// Builds the index over `store`; `alphabet_size` is `|V|` (vertex
    /// representation) or `|E|` (edge representation).
    ///
    /// Single pass, append-only — matching the paper's observation that the
    /// index is updatable by appending records (§4.1).
    pub fn build(store: &TrajectoryStore, alphabet_size: usize) -> Self {
        let mut postings: Vec<Vec<Posting>> = vec![Vec::new(); alphabet_size];
        let mut departures = Vec::with_capacity(store.len());
        let mut arrivals = Vec::with_capacity(store.len());
        let mut total = 0usize;
        for (id, t) in store.iter() {
            for (j, &q) in t.path().iter().enumerate() {
                postings[q as usize].push((id, j as u32));
                total += 1;
            }
            departures.push(t.departure());
            arrivals.push(t.arrival());
        }
        InvertedIndex {
            postings,
            departures,
            arrivals,
            total_postings: total,
            dep_postings: None,
        }
    }

    /// Appends one trajectory's postings (§4.1: "we can update the index by
    /// appending a new record to the corresponding postings list"). The id
    /// must be the next dense id (i.e. the store's `push` return value).
    ///
    /// **Drops the optional by-departure ordering**: keeping `dep_postings`
    /// across an append would let `postings_departing_by` serve answers that
    /// silently omit the appended trajectory, so the ordering is invalidated
    /// instead — [`has_temporal_postings`] reports `false` (searches with
    /// `use_temporal_postings` fall back to full-list candidate generation)
    /// and [`postings_departing_by`] panics until the next
    /// [`enable_temporal_postings`] call rebuilds the ordering with the new
    /// records included.
    ///
    /// [`has_temporal_postings`]: InvertedIndex::has_temporal_postings
    /// [`postings_departing_by`]: InvertedIndex::postings_departing_by
    /// [`enable_temporal_postings`]: InvertedIndex::enable_temporal_postings
    pub fn append(&mut self, id: TrajId, t: &traj::Trajectory) {
        assert_eq!(
            id as usize,
            self.departures.len(),
            "ids must stay dense: expected {}, got {id}",
            self.departures.len()
        );
        for (j, &q) in t.path().iter().enumerate() {
            self.postings[q as usize].push((id, j as u32));
            self.total_postings += 1;
        }
        self.departures.push(t.departure());
        self.arrivals.push(t.arrival());
        self.dep_postings = None;
    }

    /// Builds the by-departure ordering of every postings list (§4.3:
    /// "we may sort the records in each postings list by their temporal
    /// information such as departure time"). Doubles postings memory;
    /// enables [`postings_departing_by`].
    ///
    /// [`postings_departing_by`]: InvertedIndex::postings_departing_by
    pub fn enable_temporal_postings(&mut self) {
        if self.dep_postings.is_some() {
            return;
        }
        let mut dp: Vec<Vec<(f64, Posting)>> = Vec::with_capacity(self.postings.len());
        for list in &self.postings {
            let mut v: Vec<(f64, Posting)> = list
                .iter()
                .map(|&(id, j)| (self.departures[id as usize], (id, j)))
                .collect();
            v.sort_by(|a, b| a.0.total_cmp(&b.0));
            dp.push(v);
        }
        self.dep_postings = Some(dp);
    }

    /// Whether [`enable_temporal_postings`] has been called.
    ///
    /// [`enable_temporal_postings`]: InvertedIndex::enable_temporal_postings
    pub fn has_temporal_postings(&self) -> bool {
        self.dep_postings.is_some()
    }

    /// The prefix of `L_q` whose trajectories depart no later than `t_max`,
    /// found by binary search on the by-departure ordering. A trajectory
    /// departing after the query interval ends cannot overlap it, so this
    /// prefix is a complete candidate source for overlap constraints.
    ///
    /// # Panics
    /// Panics if temporal postings were not enabled.
    pub fn postings_departing_by(&self, q: Sym, t_max: f64) -> &[(f64, Posting)] {
        let list = &self
            .dep_postings
            .as_ref()
            .expect("temporal postings not enabled")[q as usize];
        let cut = list.partition_point(|&(dep, _)| dep <= t_max);
        &list[..cut]
    }

    /// The postings list `L_q`.
    pub fn postings(&self, q: Sym) -> &[Posting] {
        &self.postings[q as usize]
    }

    /// Symbol frequency `n(q)` (with multiplicity, per the Definition 5
    /// remark).
    pub fn freq(&self, q: Sym) -> u32 {
        self.postings[q as usize].len() as u32
    }

    pub fn alphabet_size(&self) -> usize {
        self.postings.len()
    }

    pub fn num_trajectories(&self) -> usize {
        self.departures.len()
    }

    pub fn total_postings(&self) -> usize {
        self.total_postings
    }

    /// Trajectory time span `[T_1, T_n]` (the `I^(id)` of §4.3).
    pub fn span(&self, id: TrajId) -> (f64, f64) {
        (self.departures[id as usize], self.arrivals[id as usize])
    }

    /// Approximate index memory footprint in bytes (postings + spans +
    /// per-symbol list headers + the by-departure ordering when built),
    /// reported in Table 6. See [`size_breakdown`](InvertedIndex::size_breakdown)
    /// for the attribution.
    pub fn size_bytes(&self) -> usize {
        self.size_breakdown().total()
    }

    /// Component attribution of [`size_bytes`](InvertedIndex::size_bytes).
    pub fn size_breakdown(&self) -> SizeBreakdown {
        SizeBreakdown {
            postings: self.total_postings * std::mem::size_of::<Posting>(),
            list_headers: self.postings.len() * std::mem::size_of::<Vec<Posting>>(),
            spans: self.departures.len() * 2 * std::mem::size_of::<f64>(),
            by_departure: self
                .dep_postings
                .as_ref()
                .map(|dp| {
                    self.total_postings * std::mem::size_of::<(f64, Posting)>()
                        + dp.len() * std::mem::size_of::<Vec<(f64, Posting)>>()
                })
                .unwrap_or(0),
        }
    }

    /// Snapshot hook: compacts this index into the immutable delta+varint
    /// arena layout ([`CompactIndex`](crate::compact::CompactIndex)) —
    /// what `trajsearch-persist` writes to disk and reopens without a
    /// rebuild.
    pub fn to_compact(&self) -> crate::compact::CompactIndex {
        crate::compact::CompactIndex::from_source(self)
    }
}

/// The contiguous single-list layout is the canonical [`PostingSource`]
/// (and the 1-shard special case of
/// [`ShardedIndex`](crate::sharded::ShardedIndex)). The trait methods
/// delegate to the inherent slice-returning accessors, which remain the
/// preferred API when the concrete type is known.
impl PostingSource for InvertedIndex {
    fn postings(&self, q: Sym) -> impl Iterator<Item = Posting> + '_ {
        self.postings[q as usize].iter().copied()
    }

    fn freq(&self, q: Sym) -> u32 {
        InvertedIndex::freq(self, q)
    }

    fn span(&self, id: TrajId) -> (f64, f64) {
        InvertedIndex::span(self, id)
    }

    fn postings_departing_by(
        &self,
        q: Sym,
        t_max: f64,
    ) -> impl Iterator<Item = (f64, Posting)> + '_ {
        InvertedIndex::postings_departing_by(self, q, t_max)
            .iter()
            .copied()
    }

    fn has_temporal_postings(&self) -> bool {
        InvertedIndex::has_temporal_postings(self)
    }

    fn alphabet_size(&self) -> usize {
        InvertedIndex::alphabet_size(self)
    }

    fn num_trajectories(&self) -> usize {
        InvertedIndex::num_trajectories(self)
    }

    fn total_postings(&self) -> usize {
        InvertedIndex::total_postings(self)
    }

    fn size_bytes(&self) -> usize {
        InvertedIndex::size_bytes(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use traj::Trajectory;

    fn store() -> TrajectoryStore {
        let mut s = TrajectoryStore::new();
        s.push(Trajectory::new(vec![0, 1, 2], vec![10.0, 11.0, 12.0]));
        s.push(Trajectory::new(vec![2, 1, 2], vec![5.0, 6.0, 7.0]));
        s
    }

    #[test]
    fn postings_record_all_occurrences() {
        let idx = InvertedIndex::build(&store(), 4);
        assert_eq!(idx.postings(0), &[(0, 0)]);
        assert_eq!(idx.postings(1), &[(0, 1), (1, 1)]);
        assert_eq!(idx.postings(2), &[(0, 2), (1, 0), (1, 2)]);
        assert!(idx.postings(3).is_empty());
    }

    #[test]
    fn frequencies_match_postings() {
        let idx = InvertedIndex::build(&store(), 4);
        assert_eq!(idx.freq(2), 3);
        assert_eq!(idx.freq(3), 0);
        assert_eq!(idx.total_postings(), 6);
        assert_eq!(idx.alphabet_size(), 4);
        assert_eq!(idx.num_trajectories(), 2);
    }

    #[test]
    fn spans_are_departure_arrival() {
        let idx = InvertedIndex::build(&store(), 4);
        assert_eq!(idx.span(0), (10.0, 12.0));
        assert_eq!(idx.span(1), (5.0, 7.0));
    }

    #[test]
    fn append_equals_rebuild() {
        let mut s = store();
        let extra = Trajectory::new(vec![3, 0, 3], vec![20.0, 21.0, 22.0]);
        let mut idx = InvertedIndex::build(&s, 4);
        let id = s.push(extra.clone());
        idx.append(id, &extra);
        let rebuilt = InvertedIndex::build(&s, 4);
        for q in 0..4u32 {
            assert_eq!(
                idx.postings(q),
                rebuilt.postings(q),
                "postings of {q} diverged"
            );
        }
        assert_eq!(idx.total_postings(), rebuilt.total_postings());
        assert_eq!(idx.span(id), (20.0, 22.0));
        // Temporal ordering can be re-enabled after an append.
        idx.enable_temporal_postings();
        assert!(idx.has_temporal_postings());
    }

    #[test]
    #[should_panic(expected = "ids must stay dense: expected 2, got 7")]
    fn append_rejects_gaps() {
        let s = store();
        let mut idx = InvertedIndex::build(&s, 4);
        idx.append(7, &Trajectory::untimed(vec![1]));
    }

    #[test]
    fn empty_store_builds_an_empty_index() {
        let s = TrajectoryStore::new();
        let mut idx = InvertedIndex::build(&s, 5);
        assert_eq!(idx.num_trajectories(), 0);
        assert_eq!(idx.total_postings(), 0);
        assert_eq!(idx.alphabet_size(), 5);
        for q in 0..5u32 {
            assert!(idx.postings(q).is_empty());
            assert_eq!(idx.freq(q), 0);
        }
        // Headers are still accounted for.
        assert_eq!(idx.size_bytes(), 5 * std::mem::size_of::<Vec<Posting>>());
        // Temporal ordering over nothing is fine.
        idx.enable_temporal_postings();
        assert!(idx.has_temporal_postings());
        assert!(idx.postings_departing_by(0, f64::INFINITY).is_empty());
    }

    #[test]
    fn symbol_with_no_postings_is_empty_everywhere() {
        let mut idx = InvertedIndex::build(&store(), 4);
        assert!(idx.postings(3).is_empty());
        assert_eq!(idx.freq(3), 0);
        idx.enable_temporal_postings();
        assert!(idx.postings_departing_by(3, f64::INFINITY).is_empty());
        // The trait view agrees with the inherent one.
        assert_eq!(PostingSource::postings(&idx, 3).count(), 0);
        assert_eq!(
            PostingSource::postings_departing_by(&idx, 3, 1e9).count(),
            0
        );
    }

    #[test]
    fn append_drops_temporal_postings_and_rebuild_sees_new_records() {
        // Regression: serving by-departure answers across an append would
        // silently omit the appended trajectory, so `append` must drop the
        // ordering and the next enable must rebuild it with the new records.
        let mut s = store();
        let mut idx = InvertedIndex::build(&s, 4);
        idx.enable_temporal_postings();
        assert_eq!(idx.postings_departing_by(1, 100.0).len(), 2);

        let extra = Trajectory::new(vec![1, 3], vec![1.0, 2.0]);
        let id = s.push(extra.clone());
        idx.append(id, &extra);
        assert!(
            !idx.has_temporal_postings(),
            "append must invalidate the by-departure ordering"
        );

        idx.enable_temporal_postings();
        let all = idx.postings_departing_by(1, 100.0);
        assert_eq!(all.len(), 3, "rebuild must include the appended record");
        // The appended trajectory departs earliest, so it sorts first and
        // is the only one departing by t=4.
        assert_eq!(all[0].1, (id, 0));
        let early = idx.postings_departing_by(1, 4.0);
        assert_eq!(early, &[(1.0, (id, 0))]);
    }

    #[test]
    #[should_panic(expected = "temporal postings not enabled")]
    fn departing_by_after_append_panics_until_reenabled() {
        let mut s = store();
        let mut idx = InvertedIndex::build(&s, 4);
        idx.enable_temporal_postings();
        let extra = Trajectory::untimed(vec![1]);
        let id = s.push(extra.clone());
        idx.append(id, &extra);
        idx.postings_departing_by(1, 100.0);
    }

    #[test]
    fn size_bytes_monotone_under_appends() {
        let mut s = store();
        let mut idx = InvertedIndex::build(&s, 4);
        let mut last = idx.size_bytes();
        for path in [vec![0], vec![1, 2, 3], vec![2, 2, 2, 2]] {
            let t = Trajectory::untimed(path);
            let id = s.push(t.clone());
            idx.append(id, &t);
            let now = idx.size_bytes();
            assert!(
                now > last,
                "size_bytes must grow strictly with every append ({now} <= {last})"
            );
            last = now;
        }
    }

    #[test]
    fn temporal_postings_binary_search_prefix() {
        let mut idx = InvertedIndex::build(&store(), 4);
        assert!(!idx.has_temporal_postings());
        idx.enable_temporal_postings();
        assert!(idx.has_temporal_postings());
        // Symbol 1 appears in trajectory 0 (departs 10) and 1 (departs 5).
        let all = idx.postings_departing_by(1, 100.0);
        assert_eq!(all.len(), 2);
        assert!(all[0].0 <= all[1].0, "must be departure-sorted");
        // Only the early trajectory departs by t=7.
        let early = idx.postings_departing_by(1, 7.0);
        assert_eq!(early.len(), 1);
        assert_eq!(early[0].1 .0, 1);
        // Nothing departs by t=1.
        assert!(idx.postings_departing_by(1, 1.0).is_empty());
        // Idempotent.
        idx.enable_temporal_postings();
    }

    #[test]
    #[should_panic(expected = "temporal postings not enabled")]
    fn temporal_postings_require_enabling() {
        let idx = InvertedIndex::build(&store(), 4);
        idx.postings_departing_by(1, 10.0);
    }

    #[test]
    fn size_breakdown_sums_to_size_bytes_and_attributes_temporal() {
        let mut idx = InvertedIndex::build(&store(), 4);
        let before = idx.size_breakdown();
        assert_eq!(before.total(), idx.size_bytes());
        assert_eq!(before.by_departure, 0);
        assert_eq!(
            before.postings,
            idx.total_postings() * std::mem::size_of::<Posting>()
        );
        idx.enable_temporal_postings();
        let after = idx.size_breakdown();
        assert_eq!(after.total(), idx.size_bytes());
        assert!(
            after.by_departure > 0,
            "the by-departure ordering must be attributed"
        );
        // Only the by_departure component moved.
        assert_eq!(after.postings, before.postings);
        assert_eq!(after.list_headers, before.list_headers);
        assert_eq!(after.spans, before.spans);
    }

    #[test]
    fn size_bytes_grows_with_postings() {
        let idx_small = InvertedIndex::build(&store(), 4);
        let mut s = store();
        s.push(Trajectory::untimed(vec![0, 1, 2, 3, 0, 1]));
        let idx_big = InvertedIndex::build(&s, 4);
        assert!(idx_big.size_bytes() > idx_small.size_bytes());
    }
}
