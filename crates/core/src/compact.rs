//! Compact postings: delta+varint encoded lists in one contiguous arena.
//!
//! [`CompactIndex`] is the third [`PostingSource`] layout, built for the
//! persistence path (the `trajsearch-persist` crate snapshots it to disk
//! and reopens it without a rebuild): every symbol's postings list is
//! canonicalized to ascending `(id, j)` order and encoded as
//! `varint(id - prev_id), varint(j)` records into **one arena** shared by
//! the whole alphabet. Per symbol the index keeps only a `u64` arena offset
//! and a `u32` frequency — no per-list `Vec` headers, no per-record
//! padding — so the footprint comes in well under
//! [`InvertedIndex::size_bytes`](crate::index::InvertedIndex::size_bytes)
//! (8 bytes per posting + 24 bytes per symbol there, typically 2–4 bytes
//! per posting + 12 per symbol here). Iteration decodes on the fly with no
//! allocation, and because consumers treat `L_q` as a multiset (the
//! [`PostingSource`] contract), search results over a `CompactIndex` are
//! byte-identical to the other layouts — enforced by
//! `tests/index_equivalence.rs` exactly like sharding was.
//!
//! The optional §4.3 by-departure ordering gets its own arena: per symbol
//! the qualifying records in ascending `(departure, id, j)` order, encoded
//! as `varint(zigzag(id - prev_id)), varint(j)` (ids are not monotone once
//! sorted by departure, hence the zigzag). Departure times are not stored
//! again — they are looked up in the span table while decoding, and the
//! iterator early-stops at the first record departing after `t_max`.
//!
//! The arena is immutable: there is no `append`. Compact an updatable
//! index with [`CompactIndex::from_source`] (or the
//! [`InvertedIndex::to_compact`](crate::index::InvertedIndex::to_compact) /
//! [`ShardedIndex::to_compact`](crate::sharded::ShardedIndex::to_compact)
//! hooks) after ingestion settles, or rebuild from a fresh snapshot.

use crate::index::{Posting, PostingSource, SizeBreakdown};
use traj::TrajId;
use wed::Sym;

// ---------------------------------------------------------------------------
// Varint primitives (shared with the snapshot format in trajsearch-persist)
// ---------------------------------------------------------------------------

/// Appends `v` as a LEB128 varint (7 bits per byte, high bit = continue).
pub fn write_varint(buf: &mut Vec<u8>, mut v: u64) {
    while v >= 0x80 {
        buf.push((v as u8 & 0x7f) | 0x80);
        v >>= 7;
    }
    buf.push(v as u8);
}

/// Decodes one LEB128 varint at `*pos`, advancing it. Returns `None` on
/// truncation or a value wider than 64 bits — never panics, so corrupt
/// bytes surface as typed errors upstream.
pub fn read_varint(buf: &[u8], pos: &mut usize) -> Option<u64> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let &b = buf.get(*pos)?;
        *pos += 1;
        if shift == 63 && b > 1 {
            return None;
        }
        v |= u64::from(b & 0x7f) << shift;
        if b & 0x80 == 0 {
            return Some(v);
        }
        shift += 7;
        if shift > 63 {
            return None;
        }
    }
}

/// Maps a signed delta onto the unsigned varint domain (0, -1, 1, -2, …).
pub fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverts [`zigzag`].
pub fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

// ---------------------------------------------------------------------------
// CompactIndex
// ---------------------------------------------------------------------------

/// The by-departure arena: same shape as the main one, zigzag id deltas.
#[derive(Debug, Clone)]
struct TemporalArena {
    /// `alphabet_size + 1` prefix offsets into `arena`.
    offsets: Vec<u64>,
    arena: Vec<u8>,
}

/// Delta+varint postings in one contiguous arena — the compact, immutable
/// [`PostingSource`] the snapshot format loads into. See the [module
/// docs](self) for the encoding.
#[derive(Debug, Clone)]
pub struct CompactIndex {
    /// Per-symbol `n(q)` (the MinCand frequency table).
    freqs: Vec<u32>,
    /// `alphabet_size + 1` prefix offsets into `arena`.
    offsets: Vec<u64>,
    /// All symbols' encoded postings, back to back.
    arena: Vec<u8>,
    departures: Vec<f64>,
    arrivals: Vec<f64>,
    temporal: Option<TemporalArena>,
    total_postings: usize,
}

impl CompactIndex {
    /// Compacts any [`PostingSource`]: collects each symbol's postings,
    /// sorts them into the canonical ascending `(id, j)` order and encodes
    /// the arena. If the source has temporal postings, the by-departure
    /// arena is built too (ascending `(departure, id, j)`), so the compact
    /// index answers the same temporal queries.
    ///
    /// Canonicalization makes the result **layout-independent**: the same
    /// logical index compacted from an `InvertedIndex` or any
    /// `ShardedIndex` produces identical bytes — which is what gives the
    /// snapshot format reproducible files.
    pub fn from_source<I: PostingSource>(source: &I) -> CompactIndex {
        let alphabet = source.alphabet_size();
        let n = source.num_trajectories();

        let mut freqs = Vec::with_capacity(alphabet);
        let mut offsets = Vec::with_capacity(alphabet + 1);
        let mut arena = Vec::new();
        let mut scratch: Vec<Posting> = Vec::new();
        let mut total = 0usize;
        offsets.push(0);
        for q in 0..alphabet as Sym {
            scratch.clear();
            scratch.extend(source.postings(q));
            scratch.sort_unstable();
            let mut prev = 0u64;
            for &(id, j) in &scratch {
                write_varint(&mut arena, u64::from(id) - prev);
                write_varint(&mut arena, u64::from(j));
                prev = u64::from(id);
            }
            freqs.push(scratch.len() as u32);
            offsets.push(arena.len() as u64);
            total += scratch.len();
        }

        let mut departures = Vec::with_capacity(n);
        let mut arrivals = Vec::with_capacity(n);
        for id in 0..n as TrajId {
            let (dep, arr) = source.span(id);
            departures.push(dep);
            arrivals.push(arr);
        }

        let temporal = source.has_temporal_postings().then(|| {
            let mut offsets = Vec::with_capacity(alphabet + 1);
            let mut arena = Vec::new();
            let mut scratch: Vec<(f64, Posting)> = Vec::new();
            offsets.push(0);
            for q in 0..alphabet as Sym {
                scratch.clear();
                scratch.extend(source.postings_departing_by(q, f64::INFINITY));
                scratch.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
                let mut prev = 0i64;
                for &(_, (id, j)) in &scratch {
                    write_varint(&mut arena, zigzag(i64::from(id) - prev));
                    write_varint(&mut arena, u64::from(j));
                    prev = i64::from(id);
                }
                offsets.push(arena.len() as u64);
            }
            TemporalArena { offsets, arena }
        });

        CompactIndex {
            freqs,
            offsets,
            arena,
            departures,
            arrivals,
            temporal,
            total_postings: total,
        }
    }

    /// Reassembles a `CompactIndex` from decoded snapshot sections,
    /// **validating every structural invariant** the iterators rely on:
    /// offset tables must be monotone prefix sums ending at the arena
    /// length, every list must decode to exactly `freqs[q]` records with
    /// in-range trajectory ids, and the temporal arena (when present) must
    /// be departure-sorted per symbol. Returns a human-readable description
    /// of the first violation — the persist layer wraps it into its typed
    /// `SnapshotError` — so CRC-valid-but-semantically-broken input can
    /// never panic or mis-answer at query time.
    #[allow(clippy::too_many_arguments)]
    pub fn from_parts(
        freqs: Vec<u32>,
        offsets: Vec<u64>,
        arena: Vec<u8>,
        departures: Vec<f64>,
        arrivals: Vec<f64>,
        temporal: Option<(Vec<u64>, Vec<u8>)>,
    ) -> Result<CompactIndex, String> {
        let alphabet = freqs.len();
        let n = departures.len();
        if arrivals.len() != n {
            return Err(format!(
                "span tables disagree: {} departures vs {} arrivals",
                n,
                arrivals.len()
            ));
        }
        validate_offsets("postings", &offsets, alphabet, arena.len())?;
        let mut total = 0usize;
        for q in 0..alphabet {
            let slice = &arena[offsets[q] as usize..offsets[q + 1] as usize];
            let mut pos = 0usize;
            let mut prev = 0u64;
            for k in 0..freqs[q] {
                let delta = read_varint(slice, &mut pos)
                    .ok_or_else(|| format!("postings of symbol {q} truncated at record {k}"))?;
                let j = read_varint(slice, &mut pos)
                    .ok_or_else(|| format!("postings of symbol {q} truncated at record {k}"))?;
                let id = prev + delta;
                if id >= n as u64 {
                    return Err(format!(
                        "postings of symbol {q}: trajectory id {id} out of range (n={n})"
                    ));
                }
                if j > u64::from(u32::MAX) {
                    return Err(format!(
                        "postings of symbol {q}: position {j} overflows u32"
                    ));
                }
                prev = id;
            }
            if pos != slice.len() {
                return Err(format!(
                    "postings of symbol {q}: {} trailing bytes after {} records",
                    slice.len() - pos,
                    freqs[q]
                ));
            }
            total += freqs[q] as usize;
        }
        let temporal = match temporal {
            None => None,
            Some((t_offsets, t_arena)) => {
                validate_offsets("temporal", &t_offsets, alphabet, t_arena.len())?;
                for q in 0..alphabet {
                    let slice = &t_arena[t_offsets[q] as usize..t_offsets[q + 1] as usize];
                    let mut pos = 0usize;
                    let mut prev = 0i64;
                    let mut last_dep = f64::NEG_INFINITY;
                    for k in 0..freqs[q] {
                        let delta = read_varint(slice, &mut pos).ok_or_else(|| {
                            format!("temporal list of symbol {q} truncated at record {k}")
                        })?;
                        let j = read_varint(slice, &mut pos).ok_or_else(|| {
                            format!("temporal list of symbol {q} truncated at record {k}")
                        })?;
                        let id = prev + unzigzag(delta);
                        if id < 0 || id >= n as i64 {
                            return Err(format!(
                                "temporal list of symbol {q}: trajectory id {id} out of range"
                            ));
                        }
                        if j > u64::from(u32::MAX) {
                            return Err(format!(
                                "temporal list of symbol {q}: position {j} overflows u32"
                            ));
                        }
                        let dep = departures[id as usize];
                        if dep < last_dep {
                            return Err(format!(
                                "temporal list of symbol {q} is not departure-sorted"
                            ));
                        }
                        last_dep = dep;
                        prev = id;
                    }
                    if pos != slice.len() {
                        return Err(format!(
                            "temporal list of symbol {q}: trailing bytes after {} records",
                            freqs[q]
                        ));
                    }
                }
                Some(TemporalArena {
                    offsets: t_offsets,
                    arena: t_arena,
                })
            }
        };
        Ok(CompactIndex {
            freqs,
            offsets,
            arena,
            departures,
            arrivals,
            temporal,
            total_postings: total,
        })
    }

    /// Per-symbol frequency table, dense over the alphabet.
    pub fn freqs(&self) -> &[u32] {
        &self.freqs
    }

    /// Prefix offsets into [`arena`](CompactIndex::arena)
    /// (`alphabet_size + 1` entries).
    pub fn offsets(&self) -> &[u64] {
        &self.offsets
    }

    /// The encoded postings arena (all symbols, back to back).
    pub fn arena(&self) -> &[u8] {
        &self.arena
    }

    /// Dense per-trajectory departure times.
    pub fn departures(&self) -> &[f64] {
        &self.departures
    }

    /// Dense per-trajectory arrival times.
    pub fn arrivals(&self) -> &[f64] {
        &self.arrivals
    }

    /// The by-departure arena as `(offsets, arena)`, if built.
    pub fn temporal_parts(&self) -> Option<(&[u64], &[u8])> {
        self.temporal
            .as_ref()
            .map(|t| (t.offsets.as_slice(), t.arena.as_slice()))
    }

    /// Footprint attribution, same component split as the other layouts:
    /// `postings` is the arena, `list_headers` the offset+frequency tables,
    /// `by_departure` the temporal arena plus its offsets.
    pub fn size_breakdown(&self) -> SizeBreakdown {
        SizeBreakdown {
            postings: self.arena.len(),
            list_headers: self.offsets.len() * std::mem::size_of::<u64>()
                + self.freqs.len() * std::mem::size_of::<u32>(),
            spans: (self.departures.len() + self.arrivals.len()) * std::mem::size_of::<f64>(),
            by_departure: self
                .temporal
                .as_ref()
                .map(|t| t.arena.len() + t.offsets.len() * std::mem::size_of::<u64>())
                .unwrap_or(0),
        }
    }
}

fn validate_offsets(
    what: &str,
    offsets: &[u64],
    alphabet: usize,
    arena_len: usize,
) -> Result<(), String> {
    if offsets.len() != alphabet + 1 {
        return Err(format!(
            "{what} offset table has {} entries, expected {}",
            offsets.len(),
            alphabet + 1
        ));
    }
    if offsets.first() != Some(&0) {
        return Err(format!("{what} offset table does not start at 0"));
    }
    if offsets.windows(2).any(|w| w[0] > w[1]) {
        return Err(format!("{what} offset table is not monotone"));
    }
    if offsets.last() != Some(&(arena_len as u64)) {
        return Err(format!(
            "{what} offset table ends at {:?}, arena is {arena_len} bytes",
            offsets.last()
        ));
    }
    Ok(())
}

/// Decode-on-iterate view of one symbol's arena slice.
struct PostingsIter<'a> {
    slice: &'a [u8],
    pos: usize,
    prev_id: u64,
}

impl Iterator for PostingsIter<'_> {
    type Item = Posting;

    fn next(&mut self) -> Option<Posting> {
        if self.pos >= self.slice.len() {
            return None;
        }
        // Construction validated the arena, so decode cannot fail here;
        // the guards keep even a logic bug from panicking in release.
        let delta = read_varint(self.slice, &mut self.pos)?;
        let j = read_varint(self.slice, &mut self.pos)?;
        self.prev_id += delta;
        Some((self.prev_id as TrajId, j as u32))
    }
}

/// Decode-on-iterate view of one symbol's temporal slice, early-stopping at
/// the first record departing after `t_max`.
struct DepartingIter<'a> {
    slice: &'a [u8],
    departures: &'a [f64],
    pos: usize,
    prev_id: i64,
    t_max: f64,
}

impl Iterator for DepartingIter<'_> {
    type Item = (f64, Posting);

    fn next(&mut self) -> Option<(f64, Posting)> {
        if self.pos >= self.slice.len() {
            return None;
        }
        let delta = read_varint(self.slice, &mut self.pos)?;
        let j = read_varint(self.slice, &mut self.pos)?;
        self.prev_id += unzigzag(delta);
        let dep = self.departures[self.prev_id as usize];
        if dep > self.t_max {
            // Departure-sorted: nothing later can qualify.
            self.pos = self.slice.len();
            return None;
        }
        Some((dep, (self.prev_id as TrajId, j as u32)))
    }
}

impl PostingSource for CompactIndex {
    /// Canonical ascending `(id, j)` order (the sort applied at build).
    fn postings(&self, q: Sym) -> impl Iterator<Item = Posting> + '_ {
        let (lo, hi) = (self.offsets[q as usize], self.offsets[q as usize + 1]);
        PostingsIter {
            slice: &self.arena[lo as usize..hi as usize],
            pos: 0,
            prev_id: 0,
        }
    }

    fn freq(&self, q: Sym) -> u32 {
        self.freqs[q as usize]
    }

    fn span(&self, id: TrajId) -> (f64, f64) {
        (self.departures[id as usize], self.arrivals[id as usize])
    }

    /// Ascending departure order; departures come from the span table, not
    /// the arena, so each record costs two varint decodes plus one lookup.
    fn postings_departing_by(
        &self,
        q: Sym,
        t_max: f64,
    ) -> impl Iterator<Item = (f64, Posting)> + '_ {
        let t = self
            .temporal
            .as_ref()
            .expect("temporal postings not enabled");
        let (lo, hi) = (t.offsets[q as usize], t.offsets[q as usize + 1]);
        DepartingIter {
            slice: &t.arena[lo as usize..hi as usize],
            departures: &self.departures,
            pos: 0,
            prev_id: 0,
            t_max,
        }
    }

    fn has_temporal_postings(&self) -> bool {
        self.temporal.is_some()
    }

    fn alphabet_size(&self) -> usize {
        self.freqs.len()
    }

    fn num_trajectories(&self) -> usize {
        self.departures.len()
    }

    fn total_postings(&self) -> usize {
        self.total_postings
    }

    fn size_bytes(&self) -> usize {
        self.size_breakdown().total()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::InvertedIndex;
    use crate::sharded::ShardedIndex;
    use traj::{Trajectory, TrajectoryStore};

    fn store() -> TrajectoryStore {
        let mut s = TrajectoryStore::new();
        s.push(Trajectory::new(vec![0, 1, 2], vec![10.0, 11.0, 12.0]));
        s.push(Trajectory::new(vec![2, 1, 2], vec![5.0, 6.0, 7.0]));
        s.push(Trajectory::new(vec![3, 0], vec![20.0, 21.0]));
        s.push(Trajectory::new(vec![1, 1, 1, 3], vec![1.0, 2.0, 3.0, 4.0]));
        s
    }

    #[test]
    fn varint_round_trips() {
        let mut buf = Vec::new();
        let values = [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX];
        for &v in &values {
            write_varint(&mut buf, v);
        }
        let mut pos = 0;
        for &v in &values {
            assert_eq!(read_varint(&buf, &mut pos), Some(v));
        }
        assert_eq!(pos, buf.len());
        assert_eq!(read_varint(&buf, &mut pos), None, "past the end");
        // Truncated continuation byte.
        assert_eq!(read_varint(&[0x80], &mut 0), None);
        // 11-byte over-wide encoding must be rejected, not wrap.
        let wide = [0xff; 10];
        assert_eq!(read_varint(&wide, &mut 0), None);
    }

    #[test]
    fn zigzag_round_trips() {
        for v in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
        assert_eq!(zigzag(0), 0);
        assert_eq!(zigzag(-1), 1);
        assert_eq!(zigzag(1), 2);
    }

    #[test]
    fn compact_matches_inverted_surface() {
        let s = store();
        let mut reference = InvertedIndex::build(&s, 5);
        reference.enable_temporal_postings();
        let compact = CompactIndex::from_source(&reference);

        assert_eq!(compact.alphabet_size(), 5);
        assert_eq!(compact.num_trajectories(), s.len());
        assert_eq!(
            PostingSource::total_postings(&compact),
            reference.total_postings()
        );
        assert!(compact.has_temporal_postings());
        for q in 0..5u32 {
            let got: Vec<Posting> = PostingSource::postings(&compact, q).collect();
            assert_eq!(got, reference.postings(q), "q={q}");
            assert_eq!(PostingSource::freq(&compact, q), reference.freq(q));
            for t_max in [0.0, 6.5, 15.0, 1e9] {
                let got: Vec<(f64, Posting)> =
                    PostingSource::postings_departing_by(&compact, q, t_max).collect();
                let want = reference.postings_departing_by(q, t_max).to_vec();
                assert_eq!(got, want, "q={q} t_max={t_max}");
            }
        }
        for id in 0..s.len() as TrajId {
            assert_eq!(PostingSource::span(&compact, id), reference.span(id));
        }
    }

    #[test]
    fn canonical_across_layouts() {
        let s = store();
        let mut inv = InvertedIndex::build(&s, 5);
        inv.enable_temporal_postings();
        let a = CompactIndex::from_source(&inv);
        for shards in [1, 2, 3] {
            let mut sh = ShardedIndex::build_parallel(&s, 5, shards);
            sh.enable_temporal_postings();
            let b = CompactIndex::from_source(&sh);
            assert_eq!(a.arena(), b.arena(), "shards={shards}");
            assert_eq!(a.offsets(), b.offsets());
            assert_eq!(a.freqs(), b.freqs());
            assert_eq!(a.temporal_parts().unwrap().1, b.temporal_parts().unwrap().1);
        }
    }

    #[test]
    fn compact_is_smaller_than_inverted() {
        let s = store();
        let reference = InvertedIndex::build(&s, 5);
        let compact = CompactIndex::from_source(&reference);
        assert!(
            PostingSource::size_bytes(&compact) < reference.size_bytes(),
            "{} !< {}",
            PostingSource::size_bytes(&compact),
            reference.size_bytes()
        );
        let b = compact.size_breakdown();
        assert_eq!(b.total(), PostingSource::size_bytes(&compact));
        assert_eq!(b.by_departure, 0);
    }

    #[test]
    fn from_parts_round_trips_and_rejects_garbage() {
        let s = store();
        let mut reference = InvertedIndex::build(&s, 5);
        reference.enable_temporal_postings();
        let c = CompactIndex::from_source(&reference);
        let rebuilt = CompactIndex::from_parts(
            c.freqs().to_vec(),
            c.offsets().to_vec(),
            c.arena().to_vec(),
            c.departures().to_vec(),
            c.arrivals().to_vec(),
            c.temporal_parts().map(|(o, a)| (o.to_vec(), a.to_vec())),
        )
        .expect("faithful parts must validate");
        assert_eq!(rebuilt.arena(), c.arena());
        assert_eq!(rebuilt.total_postings, c.total_postings);

        // Truncated arena.
        let mut arena = c.arena().to_vec();
        arena.pop();
        assert!(CompactIndex::from_parts(
            c.freqs().to_vec(),
            c.offsets().to_vec(),
            arena,
            c.departures().to_vec(),
            c.arrivals().to_vec(),
            None,
        )
        .is_err());
        // Non-monotone offsets.
        let mut offsets = c.offsets().to_vec();
        offsets[1] = offsets[2] + 1;
        assert!(CompactIndex::from_parts(
            c.freqs().to_vec(),
            offsets,
            c.arena().to_vec(),
            c.departures().to_vec(),
            c.arrivals().to_vec(),
            None,
        )
        .is_err());
        // Frequency table lying about a list's length.
        let mut freqs = c.freqs().to_vec();
        freqs[1] += 1;
        assert!(CompactIndex::from_parts(
            freqs,
            c.offsets().to_vec(),
            c.arena().to_vec(),
            c.departures().to_vec(),
            c.arrivals().to_vec(),
            None,
        )
        .is_err());
        // Span tables of different lengths.
        assert!(CompactIndex::from_parts(
            c.freqs().to_vec(),
            c.offsets().to_vec(),
            c.arena().to_vec(),
            c.departures().to_vec(),
            vec![0.0],
            None,
        )
        .is_err());
    }

    #[test]
    #[should_panic(expected = "temporal postings not enabled")]
    fn departing_by_requires_temporal() {
        let s = store();
        let c = CompactIndex::from_source(&InvertedIndex::build(&s, 5));
        let _ = c.postings_departing_by(1, 10.0).count();
    }

    #[test]
    fn empty_store_compacts() {
        let c = CompactIndex::from_source(&InvertedIndex::build(&TrajectoryStore::new(), 4));
        assert_eq!(c.num_trajectories(), 0);
        assert_eq!(PostingSource::total_postings(&c), 0);
        assert_eq!(PostingSource::postings(&c, 0).count(), 0);
        assert!(!c.has_temporal_postings());
    }
}
