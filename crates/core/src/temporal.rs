//! Temporal constraints (§2.3, §4.3).
//!
//! A temporal query asks that the *matched* subtrajectory's time span
//! `[T_i, T_j]` overlap (or be contained in) a query interval `I`. The
//! engine supports both semantics, with two evaluation strategies compared
//! in Figure 12:
//!
//! * **TF** (temporal filtering): prune candidates whose whole-trajectory
//!   span `I^(id) = [T_1, T_n]` is disjoint from `I` *before* verification —
//!   sound because the match span is contained in the trajectory span;
//! * **no-TF**: verify everything, filter match spans afterwards.
//!
//! Both finish with an exact per-match check on `[T_s, T_t]`. The §4.3
//! by-departure refinement reads
//! [`PostingSource::postings_departing_by`](crate::index::PostingSource::postings_departing_by)
//! and is sound for any postings layout (a sharded source binary-searches
//! each shard's own departure-sorted lists).

/// A closed time interval `[start, end]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimeInterval {
    pub start: f64,
    pub end: f64,
}

impl TimeInterval {
    pub fn new(start: f64, end: f64) -> Self {
        assert!(start <= end, "interval must be ordered");
        TimeInterval { start, end }
    }

    /// `[a, b] ∩ self ≠ ∅`.
    pub fn overlaps(&self, a: f64, b: f64) -> bool {
        a <= self.end && b >= self.start
    }

    /// `[a, b] ⊆ self`.
    pub fn contains(&self, a: f64, b: f64) -> bool {
        self.start <= a && b <= self.end
    }
}

/// Which relation the matched span must satisfy w.r.t. the query interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TemporalPredicate {
    /// `[T_i, T_j] ∩ I ≠ ∅` (the Figure 12 workload).
    Overlaps,
    /// `[T_i, T_j] ⊆ I`.
    Within,
}

/// A temporal constraint: interval + predicate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TemporalConstraint {
    pub interval: TimeInterval,
    pub predicate: TemporalPredicate,
}

impl TemporalConstraint {
    pub fn overlaps(interval: TimeInterval) -> Self {
        TemporalConstraint {
            interval,
            predicate: TemporalPredicate::Overlaps,
        }
    }

    pub fn within(interval: TimeInterval) -> Self {
        TemporalConstraint {
            interval,
            predicate: TemporalPredicate::Within,
        }
    }

    /// Exact check on a matched span `[a, b]`.
    pub fn accepts(&self, a: f64, b: f64) -> bool {
        match self.predicate {
            TemporalPredicate::Overlaps => self.interval.overlaps(a, b),
            TemporalPredicate::Within => self.interval.contains(a, b),
        }
    }

    /// Candidate-level pruning test on the whole-trajectory span (§4.3):
    /// if the trajectory span is disjoint from `I`, no subspan can overlap
    /// `I`, let alone be contained in it — safe for both predicates.
    pub fn may_contain_match(&self, traj_span: (f64, f64)) -> bool {
        self.interval.overlaps(traj_span.0, traj_span.1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overlap_semantics() {
        let i = TimeInterval::new(10.0, 20.0);
        assert!(i.overlaps(5.0, 10.0)); // touching counts
        assert!(i.overlaps(15.0, 25.0));
        assert!(i.overlaps(12.0, 13.0));
        assert!(!i.overlaps(0.0, 9.9));
        assert!(!i.overlaps(20.1, 30.0));
    }

    #[test]
    fn containment_semantics() {
        let i = TimeInterval::new(10.0, 20.0);
        assert!(i.contains(10.0, 20.0));
        assert!(i.contains(12.0, 13.0));
        assert!(!i.contains(9.0, 13.0));
        assert!(!i.contains(12.0, 21.0));
    }

    #[test]
    fn constraint_accepts_match_spans() {
        let c = TemporalConstraint::overlaps(TimeInterval::new(0.0, 10.0));
        assert!(c.accepts(9.0, 30.0));
        let w = TemporalConstraint::within(TimeInterval::new(0.0, 10.0));
        assert!(!w.accepts(9.0, 30.0));
        assert!(w.accepts(1.0, 9.0));
    }

    #[test]
    fn pruning_is_sound_for_both_predicates() {
        // If the trajectory span is pruned, no subspan may be accepted.
        let cases = [
            TemporalConstraint::overlaps(TimeInterval::new(10.0, 20.0)),
            TemporalConstraint::within(TimeInterval::new(10.0, 20.0)),
        ];
        for c in cases {
            let span = (30.0, 40.0);
            assert!(!c.may_contain_match(span));
            // every subspan of a pruned span must be rejected
            for (a, b) in [(30.0, 31.0), (35.0, 40.0), (30.0, 40.0)] {
                assert!(!c.accepts(a, b));
            }
        }
    }

    #[test]
    #[should_panic(expected = "ordered")]
    fn reversed_interval_rejected() {
        TimeInterval::new(5.0, 1.0);
    }
}
