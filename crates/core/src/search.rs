//! The search engine (Algorithm 2): index + filter + verify.
//!
//! [`SearchEngine`] owns an inverted index over a trajectory store and
//! answers subtrajectory similarity queries for *any* [`WedInstance`] — the
//! paper's headline property is that switching similarity functions requires
//! no algorithmic adaptation, only a different cost model.
//!
//! Construct engines with [`EngineBuilder`](crate::EngineBuilder) and query
//! them through the unified surface: [`SearchEngine::run`] answers one
//! [`Query`]; [`SearchEngine::run_batch`] answers a workload of
//! them.
//! The pre-redesign entry points (`search`, `search_opts`,
//! `par_search_opts`, plus the constructors) remain as `#[deprecated]`
//! wrappers over that surface and return byte-identical results.
//!
//! The default configuration is the paper's **OSF-BT**: optimized
//! subsequence filtering (MinCand) + bidirectional-trie verification.
//! [`SearchOptions`] (the legacy per-query option bag, now produced from a
//! [`Query`]) selects the verification strategy (for the
//! `OSF-SW` baseline and the `Local` ablation), temporal constraints, and
//! the TF strategy of §4.3.

use crate::deadline::Deadline;
use crate::filter::FilterPlan;
use crate::index::{InvertedIndex, PostingSource};
use crate::metric::{metric_scan_all, DtwVerifier, FrechetVerifier, LcssVerifier, Metric};
use crate::query::{Parallelism, Query, QueryError};
use crate::results::MatchResult;
use crate::sharded::ShardedIndex;
use crate::stats::SearchStats;
use crate::temporal::TemporalConstraint;
use crate::verify::{TrieCache, VerifyMode};
use std::time::{Duration, Instant};
use traj::TrajectoryStore;
use trajsearch_obs::Tracer;
use wed::{sw_scan_all, Sym, WedInstance};

/// Per-query options of the internal pipeline. [`Query`]
/// produces one of these; the legacy wrappers still accept them directly.
#[derive(Debug, Clone, Copy, Default)]
pub struct SearchOptions {
    pub verify: VerifyMode,
    /// Distance metric the threshold ranges over (default WED). Non-WED
    /// metrics keep the shared candidate front half where its bound is
    /// sound ([`crate::metric`]) and verify by exact per-trajectory scans.
    pub metric: Metric,
    /// Optional temporal constraint on matched spans.
    pub temporal: Option<TemporalConstraint>,
    /// Apply the TF candidate pre-filter (§4.3). Ignored without a
    /// temporal constraint.
    pub temporal_filter: bool,
    /// §4.3 extension: generate candidates by binary search on
    /// by-departure-sorted postings instead of scanning full lists. The
    /// unified surface validates availability up front
    /// ([`QueryError::TemporalPostingsUnavailable`]); the legacy wrappers
    /// keep their historical silent fallback.
    pub use_temporal_postings: bool,
}

/// A query answer: the exact Definition 3 result set plus instrumentation.
/// The unified surface returns the equivalent [`Response`](crate::Response)
/// envelope; this type remains for the legacy wrappers.
#[derive(Debug, Clone)]
pub struct SearchOutcome {
    pub matches: Vec<MatchResult>,
    pub stats: SearchStats,
}

/// Subtrajectory similarity search engine (OSF filtering + pluggable
/// verification), generic over the postings layout `I` — the single-list
/// [`InvertedIndex`] by default, [`ShardedIndex`], or the
/// [`AnyIndex`](crate::AnyIndex) produced by
/// [`EngineBuilder`](crate::EngineBuilder). All search paths are
/// monomorphized over `I`; results are byte-identical for every layout over
/// the same store.
pub struct SearchEngine<'a, M: WedInstance, I: PostingSource = InvertedIndex> {
    model: M,
    store: &'a TrajectoryStore,
    index: I,
    build_time: Duration,
}

impl<'a, M: WedInstance> SearchEngine<'a, M> {
    /// Builds the inverted index over `store`. `alphabet_size` is `|V|` or
    /// `|E|` depending on the representation the store uses.
    #[deprecated(note = "use `EngineBuilder::new(model, store, alphabet_size).build()`")]
    pub fn new(model: M, store: &'a TrajectoryStore, alphabet_size: usize) -> Self {
        let t0 = Instant::now();
        let index = InvertedIndex::build(store, alphabet_size);
        SearchEngine::from_parts(model, store, index, t0.elapsed())
    }

    /// Like `new`, additionally building the by-departure postings ordering
    /// for temporal-postings queries.
    #[deprecated(note = "use `EngineBuilder::new(..).temporal_postings(true).build()`")]
    pub fn with_temporal_postings(
        model: M,
        store: &'a TrajectoryStore,
        alphabet_size: usize,
    ) -> Self {
        let t0 = Instant::now();
        let mut index = InvertedIndex::build(store, alphabet_size);
        index.enable_temporal_postings();
        SearchEngine::from_parts(model, store, index, t0.elapsed())
    }
}

impl<'a, M: WedInstance> SearchEngine<'a, M, ShardedIndex> {
    /// Builds a [`ShardedIndex`] over `store` with `num_shards` shards
    /// constructed in parallel.
    #[deprecated(note = "use `EngineBuilder::new(..).layout(IndexLayout::Sharded(n)).build()`")]
    pub fn new_sharded(
        model: M,
        store: &'a TrajectoryStore,
        alphabet_size: usize,
        num_shards: usize,
    ) -> Self {
        let t0 = Instant::now();
        let index = ShardedIndex::build_parallel(store, alphabet_size, num_shards);
        SearchEngine::from_parts(model, store, index, t0.elapsed())
    }
}

impl<'a, M: WedInstance, I: PostingSource> SearchEngine<'a, M, I> {
    /// Wraps a pre-built posting source (built, appended to, or
    /// temporal-enabled by the caller).
    #[deprecated(note = "use `EngineBuilder::new(..).build_with(index)`")]
    pub fn with_index(model: M, store: &'a TrajectoryStore, index: I) -> Self {
        assert_eq!(
            index.num_trajectories(),
            store.len(),
            "index and store must cover the same trajectories"
        );
        SearchEngine::from_parts(model, store, index, Duration::ZERO)
    }

    /// The one real constructor, used by [`EngineBuilder`](crate::EngineBuilder)
    /// and the deprecated constructor wrappers.
    pub(crate) fn from_parts(
        model: M,
        store: &'a TrajectoryStore,
        index: I,
        build_time: Duration,
    ) -> Self {
        SearchEngine {
            model,
            store,
            index,
            build_time,
        }
    }

    pub fn index(&self) -> &I {
        &self.index
    }

    /// Mutable access to the posting source, for post-build wiring that
    /// does not change what is indexed (e.g. attaching a trace sink to a
    /// remote source).
    pub fn index_mut(&mut self) -> &mut I {
        &mut self.index
    }

    pub fn store(&self) -> &TrajectoryStore {
        self.store
    }

    pub fn model(&self) -> &M {
        &self.model
    }

    /// Index construction time (Table 6).
    pub fn build_time(&self) -> Duration {
        self.build_time
    }

    /// Phases 1–2, shared by the sequential and parallel paths: the MinCand
    /// τ-subsequence plan, then candidate lookup (binary-searched when the
    /// §4.3 temporal postings are available and requested). `None` means no
    /// τ-subsequence exists and the caller must fall back to an exact scan.
    fn filter_and_lookup(
        &self,
        q: &[Sym],
        tau: f64,
        opts: &SearchOptions,
        stats: &mut SearchStats,
        tracer: Tracer<'_>,
    ) -> Option<Vec<crate::verify::Candidate>> {
        assert!(tau > 0.0, "threshold must be positive");
        assert!(!q.is_empty(), "query must be non-empty");

        let t0 = Instant::now();
        let plan = FilterPlan::build(&self.model, &self.index, q, tau);
        stats.mincand_time = t0.elapsed();
        tracer.record_interval("filter", 0, t0, Instant::now());
        stats.tsubseq_len = plan.chosen.len();

        if !plan.feasible {
            return None;
        }

        let t1 = Instant::now();
        let candidates = match (
            &opts.temporal,
            opts.use_temporal_postings && self.index.has_temporal_postings(),
        ) {
            (Some(c), true) => plan.candidates_temporal(&self.index, c),
            _ => plan.candidates(&self.index),
        };
        stats.lookup_time = t1.elapsed();
        tracer.record_interval("lookup", candidates.len() as u64, t1, Instant::now());
        Some(candidates)
    }

    /// Metric variant of [`filter_and_lookup`](Self::filter_and_lookup):
    /// chooses the strongest candidate bound that is *sound* for the metric
    /// (see [`crate::metric`]) — the full MinCand plan for DTW, the
    /// single-symbol plan for Fréchet, none for LCSS (always the exact
    /// fallback scan). The temporal lookup variants apply unchanged: they
    /// prune by trajectory time spans, which is metric-independent.
    fn metric_filter_and_lookup(
        &self,
        q: &[Sym],
        tau: f64,
        opts: &SearchOptions,
        stats: &mut SearchStats,
        tracer: Tracer<'_>,
    ) -> Option<Vec<crate::verify::Candidate>> {
        assert!(tau > 0.0, "threshold must be positive");
        assert!(!q.is_empty(), "query must be non-empty");

        let t0 = Instant::now();
        let plan = match opts.metric {
            Metric::Wed => unreachable!("WED goes through filter_and_lookup"),
            Metric::Dtw => FilterPlan::build(&self.model, &self.index, q, tau),
            Metric::Frechet => FilterPlan::build_single(&self.model, &self.index, q, tau),
            Metric::Lcss { .. } => return None,
        };
        stats.mincand_time = t0.elapsed();
        tracer.record_interval("filter", 0, t0, Instant::now());
        stats.tsubseq_len = plan.chosen.len();
        if !plan.feasible {
            return None;
        }
        let t1 = Instant::now();
        let candidates = match (
            &opts.temporal,
            opts.use_temporal_postings && self.index.has_temporal_postings(),
        ) {
            (Some(c), true) => plan.candidates_temporal(&self.index, c),
            _ => plan.candidates(&self.index),
        };
        stats.lookup_time = t1.elapsed();
        tracer.record_interval("lookup", candidates.len() as u64, t1, Instant::now());
        Some(candidates)
    }

    /// The sequential non-WED execution path: shared front half, one exact
    /// per-trajectory scan per candidate group in the back half.
    pub(crate) fn metric_search_impl(
        &self,
        q: &[Sym],
        tau: f64,
        opts: SearchOptions,
        deadline: Deadline,
        tracer: Tracer<'_>,
    ) -> Result<SearchOutcome, QueryError> {
        let mut stats = SearchStats::default();
        let Some(candidates) = self.metric_filter_and_lookup(q, tau, &opts, &mut stats, tracer)
        else {
            return self.metric_fallback_scan(q, tau, opts, stats, deadline, tracer);
        };
        deadline.check()?;

        let t2 = Instant::now();
        let matches = match opts.metric {
            Metric::Wed => unreachable!("WED goes through search_opts_impl"),
            Metric::Dtw => self.metric_verify(
                &candidates,
                DtwVerifier::new(&self.model, q, tau),
                &opts,
                deadline,
                &mut stats,
                tracer,
            ),
            Metric::Lcss { eps } => self.metric_verify(
                &candidates,
                LcssVerifier::new(&self.model, q, tau, eps),
                &opts,
                deadline,
                &mut stats,
                tracer,
            ),
            Metric::Frechet => self.metric_verify(
                &candidates,
                FrechetVerifier::new(&self.model, q, tau),
                &opts,
                deadline,
                &mut stats,
                tracer,
            ),
        }?;
        stats.verify_time = t2.elapsed();
        tracer.record_interval("verify", 0, t2, Instant::now());

        Ok(SearchOutcome { matches, stats })
    }

    fn metric_verify<V: crate::verify::Verifier>(
        &self,
        candidates: &[crate::verify::Candidate],
        mut verifier: V,
        opts: &SearchOptions,
        deadline: Deadline,
        stats: &mut SearchStats,
        tracer: Tracer<'_>,
    ) -> Result<Vec<MatchResult>, QueryError> {
        crate::verify::verify_candidates_with(
            self.store,
            |id| self.index.span(id),
            candidates,
            &mut verifier,
            opts.temporal.as_ref(),
            opts.temporal_filter,
            deadline,
            stats,
            tracer,
        )
    }

    /// Exact metric full scan used when no sound filter bound exists (LCSS,
    /// or an infeasible plan); the metric analogue of
    /// [`exact_fallback_scan`].
    fn metric_fallback_scan(
        &self,
        q: &[Sym],
        tau: f64,
        opts: SearchOptions,
        mut stats: SearchStats,
        deadline: Deadline,
        tracer: Tracer<'_>,
    ) -> Result<SearchOutcome, QueryError> {
        let span = tracer.span("fallback_scan");
        let matches = metric_fallback_scan_deadline(
            &self.model,
            self.store,
            q,
            tau,
            opts.metric,
            opts.temporal.as_ref(),
            opts.temporal_filter,
            deadline,
            &mut stats,
        )?;
        span.finish();
        Ok(SearchOutcome { matches, stats })
    }

    /// Algorithm 2 with configurable verification and temporal handling —
    /// the sequential execution path behind
    /// [`run`](SearchEngine::run).
    ///
    /// When no τ-subsequence exists (`c(Q) < τ`, possible for continuous
    /// cost models with small η), subsequence filtering would be unsound;
    /// the engine transparently falls back to an exact Smith–Waterman scan
    /// and sets `stats.fallback`.
    /// `cache` is the batch-level [`TrieCache`], if the workload opted in
    /// ([`crate::BatchOptions::share_tries`]); metric paths ignore it.
    pub(crate) fn search_opts_impl(
        &self,
        q: &[Sym],
        tau: f64,
        opts: SearchOptions,
        deadline: Deadline,
        cache: Option<&TrieCache>,
        tracer: Tracer<'_>,
    ) -> Result<SearchOutcome, QueryError> {
        if !opts.metric.is_wed() {
            return self.metric_search_impl(q, tau, opts, deadline, tracer);
        }
        let mut stats = SearchStats::default();
        let Some(candidates) = self.filter_and_lookup(q, tau, &opts, &mut stats, tracer) else {
            return self.fallback_scan(q, tau, opts, stats, deadline, tracer);
        };
        deadline.check()?;

        // Phase 3: verification.
        let t2 = Instant::now();
        let matches = crate::verify::verify_candidates_deadline(
            &self.model,
            self.store,
            |id| self.index.span(id),
            q,
            tau,
            &candidates,
            opts.verify,
            opts.temporal.as_ref(),
            opts.temporal_filter,
            deadline,
            cache,
            &mut stats,
            tracer,
        )?;
        stats.verify_time = t2.elapsed();
        tracer.record_interval("verify", 0, t2, Instant::now());

        Ok(SearchOutcome { matches, stats })
    }

    /// Exact full scan used when filtering is infeasible; see
    /// [`exact_fallback_scan`] for the stats contract.
    fn fallback_scan(
        &self,
        q: &[Sym],
        tau: f64,
        opts: SearchOptions,
        mut stats: SearchStats,
        deadline: Deadline,
        tracer: Tracer<'_>,
    ) -> Result<SearchOutcome, QueryError> {
        let span = tracer.span("fallback_scan");
        let matches = fallback_scan_deadline(
            &self.model,
            self.store,
            q,
            tau,
            opts.temporal.as_ref(),
            opts.temporal_filter,
            deadline,
            &mut stats,
        )?;
        span.finish();
        Ok(SearchOutcome { matches, stats })
    }
}

impl<'a, M: WedInstance + Sync, I: PostingSource + Sync> SearchEngine<'a, M, I> {
    /// The in-query parallel execution path behind
    /// [`run`](SearchEngine::run) with
    /// [`Parallelism::InQuery`](crate::Parallelism::InQuery): verification
    /// — the dominant cost in the paper's Table 4 breakdown — sharded
    /// across `threads` scoped workers, each verifying whole trajectories
    /// with its own [`Verifier`](crate::verify::Verifier); Trie-mode workers
    /// share DP columns through one [`TrieCache`] (the batch-level `cache`
    /// when provided, else a query-local one). The result set (distances
    /// included) is identical to the sequential path for any thread count;
    /// `threads <= 1` *is* the sequential path.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn par_search_opts_impl(
        &self,
        q: &[Sym],
        tau: f64,
        opts: SearchOptions,
        threads: usize,
        deadline: Deadline,
        cache: Option<&TrieCache>,
        tracer: Tracer<'_>,
    ) -> Result<SearchOutcome, QueryError> {
        if !opts.metric.is_wed() {
            return self.par_metric_search_impl(q, tau, opts, threads, deadline, tracer);
        }
        let mut stats = SearchStats::default();
        let Some(candidates) = self.filter_and_lookup(q, tau, &opts, &mut stats, tracer) else {
            return self.fallback_scan(q, tau, opts, stats, deadline, tracer);
        };
        deadline.check()?;

        let t2 = Instant::now();
        let matches = crate::verify::par_verify_candidates_deadline(
            &self.model,
            self.store,
            |id| self.index.span(id),
            q,
            tau,
            &candidates,
            opts.verify,
            opts.temporal.as_ref(),
            opts.temporal_filter,
            threads,
            deadline,
            cache,
            &mut stats,
            tracer,
        )?;
        stats.verify_time = t2.elapsed();
        tracer.record_interval("verify", 0, t2, Instant::now());

        Ok(SearchOutcome { matches, stats })
    }

    /// In-query parallel non-WED path: same front half as
    /// [`metric_search_impl`](Self::metric_search_impl), with the exact
    /// per-trajectory scans sharded across workers (one verifier per
    /// worker). Falls back to the sequential exact scan when no sound
    /// filter bound exists, exactly like the WED parallel path does.
    pub(crate) fn par_metric_search_impl(
        &self,
        q: &[Sym],
        tau: f64,
        opts: SearchOptions,
        threads: usize,
        deadline: Deadline,
        tracer: Tracer<'_>,
    ) -> Result<SearchOutcome, QueryError> {
        let mut stats = SearchStats::default();
        let Some(candidates) = self.metric_filter_and_lookup(q, tau, &opts, &mut stats, tracer)
        else {
            return self.metric_fallback_scan(q, tau, opts, stats, deadline, tracer);
        };
        deadline.check()?;

        let t2 = Instant::now();
        let matches = match opts.metric {
            Metric::Wed => unreachable!("WED goes through par_search_opts_impl"),
            Metric::Dtw => self.par_metric_verify(
                &candidates,
                || DtwVerifier::new(&self.model, q, tau),
                &opts,
                threads,
                deadline,
                &mut stats,
                tracer,
            ),
            Metric::Lcss { eps } => self.par_metric_verify(
                &candidates,
                || LcssVerifier::new(&self.model, q, tau, eps),
                &opts,
                threads,
                deadline,
                &mut stats,
                tracer,
            ),
            Metric::Frechet => self.par_metric_verify(
                &candidates,
                || FrechetVerifier::new(&self.model, q, tau),
                &opts,
                threads,
                deadline,
                &mut stats,
                tracer,
            ),
        }?;
        stats.verify_time = t2.elapsed();
        tracer.record_interval("verify", 0, t2, Instant::now());

        Ok(SearchOutcome { matches, stats })
    }

    #[allow(clippy::too_many_arguments)]
    fn par_metric_verify<V: crate::verify::Verifier, F: Fn() -> V + Sync>(
        &self,
        candidates: &[crate::verify::Candidate],
        make_verifier: F,
        opts: &SearchOptions,
        threads: usize,
        deadline: Deadline,
        stats: &mut SearchStats,
        tracer: Tracer<'_>,
    ) -> Result<Vec<MatchResult>, QueryError> {
        crate::verify::par_verify_candidates_with(
            self.store,
            |id| self.index.span(id),
            candidates,
            make_verifier,
            opts.temporal.as_ref(),
            opts.temporal_filter,
            threads,
            deadline,
            stats,
            tracer,
        )
    }

    /// Translates a legacy `(pattern, tau, options)` call into a [`Query`],
    /// preserving the historical contract exactly: panics (not errors) on
    /// the old assertion failures, the silent fallback to plain candidate
    /// generation when temporal postings are requested but unavailable or
    /// no temporal constraint is set, and acceptance of `tau = +∞` (which
    /// the old `assert!(tau > 0.0)` admitted) — mapped to [`f64::MAX`],
    /// behaviorally identical for the finite-cost WED models since every
    /// finite distance is below both.
    pub(crate) fn legacy_threshold_query(
        &self,
        q: &[Sym],
        tau: f64,
        opts: SearchOptions,
        parallelism: Parallelism,
    ) -> Query {
        let tau = legacy_tau(tau);
        let use_tp = opts.use_temporal_postings
            && opts.temporal.is_some()
            && self.index.has_temporal_postings();
        let mut builder = Query::threshold(q, tau)
            .verify(opts.verify)
            .temporal_filter(opts.temporal_filter)
            .temporal_postings(use_tp)
            .parallelism(parallelism);
        if let Some(c) = opts.temporal {
            builder = builder.temporal(c);
        }
        match builder.build() {
            Ok(query) => query,
            Err(QueryError::EmptyPattern) => panic!("query must be non-empty"),
            Err(QueryError::InvalidTau(_)) => panic!("threshold must be positive"),
            Err(e) => panic!("invalid legacy query: {e}"),
        }
    }

    /// OSF-BT search with defaults: trie verification, no temporal
    /// constraint.
    #[deprecated(note = "build a `Query::threshold(..)` and call `SearchEngine::run`")]
    pub fn search(&self, q: &[Sym], tau: f64) -> SearchOutcome {
        #[allow(deprecated)]
        self.search_opts(q, tau, SearchOptions::default())
    }

    /// Algorithm 2 with configurable verification and temporal handling.
    #[deprecated(note = "build a `Query::threshold(..)` and call `SearchEngine::run`")]
    pub fn search_opts(&self, q: &[Sym], tau: f64, opts: SearchOptions) -> SearchOutcome {
        let query = self.legacy_threshold_query(q, tau, opts, Parallelism::Sequential);
        let r = self
            .run(&query)
            .expect("legacy queries are admissible by construction");
        SearchOutcome {
            matches: r.matches,
            stats: r.stats,
        }
    }

    /// `search_opts` with verification sharded across `threads` workers.
    #[deprecated(
        note = "build a `Query::threshold(..).parallelism(Parallelism::InQuery(n))` and call `run`"
    )]
    pub fn par_search_opts(
        &self,
        q: &[Sym],
        tau: f64,
        opts: SearchOptions,
        threads: usize,
    ) -> SearchOutcome {
        let parallelism = if threads <= 1 {
            Parallelism::Sequential
        } else {
            Parallelism::InQuery(threads)
        };
        let query = self.legacy_threshold_query(q, tau, opts, parallelism);
        let r = self
            .run(&query)
            .expect("legacy queries are admissible by construction");
        SearchOutcome {
            matches: r.matches,
            stats: r.stats,
        }
    }
}

/// Legacy thresholds admitted `+∞` ("match everything"); the unified
/// surface requires finite τ (the wire format has no ∞ token). `f64::MAX`
/// is an exact stand-in: WED distances are finite sums of finite costs, so
/// `d < MAX` and `d < ∞` select the same matches.
pub(crate) fn legacy_tau(tau: f64) -> f64 {
    if tau == f64::INFINITY {
        f64::MAX
    } else {
        tau
    }
}

/// Exact Smith–Waterman scan of a whole store — the soundness fallback when
/// no τ-subsequence exists (`c(Q) < τ`). Shared by [`SearchEngine`] and the
/// filtering baselines so every method reports the same stats shape.
///
/// Sets `stats.fallback` and populates the counters coherently with the
/// indexed path so that merging a workload's stats never mixes incomparable
/// rows: every trajectory position counts as a candidate (that is what the
/// scan verifies), the TF pre-filter is charged to `lookup_time`, and
/// `sw_columns` counts each scanned trajectory once — hence
/// `sw_columns == candidates_after_temporal` on this path.
pub fn exact_fallback_scan<M: wed::CostModel>(
    model: &M,
    store: &TrajectoryStore,
    q: &[Sym],
    tau: f64,
    temporal: Option<&TemporalConstraint>,
    temporal_filter: bool,
    stats: &mut SearchStats,
) -> Vec<crate::results::MatchResult> {
    fallback_scan_deadline(
        model,
        store,
        q,
        tau,
        temporal,
        temporal_filter,
        Deadline::NONE,
        stats,
    )
    .expect("a scan without a deadline cannot expire")
}

/// [`exact_fallback_scan`] with a cooperative [`Deadline`] checked between
/// scanned trajectories — the fallback path's equivalent of the
/// between-group checkpoints in verification.
#[allow(clippy::too_many_arguments)]
pub(crate) fn fallback_scan_deadline<M: wed::CostModel>(
    model: &M,
    store: &TrajectoryStore,
    q: &[Sym],
    tau: f64,
    temporal: Option<&TemporalConstraint>,
    temporal_filter: bool,
    deadline: Deadline,
    stats: &mut SearchStats,
) -> Result<Vec<crate::results::MatchResult>, QueryError> {
    stats.fallback = true;
    let scan = fallback_selection(store, temporal, temporal_filter, stats);

    let t2 = Instant::now();
    let mut rs = crate::results::ResultSet::new();
    for id in scan {
        deadline.check()?;
        let traj = store.get(id);
        stats.sw_columns += traj.len() as u64;
        stats.verify_cost += traj.len() as u64;
        for m in sw_scan_all(model, traj.path(), q, tau) {
            rs.push(id, m.start, m.end, m.dist);
        }
    }
    finish_fallback(rs, store, temporal, t2, stats)
}

/// Exact full scan under a non-WED metric — used when the metric admits no
/// sound filter bound (LCSS always; DTW/Fréchet when their plan is
/// infeasible). Same stats contract as [`exact_fallback_scan`], except the
/// scan work lands in the metric-neutral `verify_cost` (the WED-specific
/// `sw_columns` stays zero).
#[allow(clippy::too_many_arguments)]
pub(crate) fn metric_fallback_scan_deadline<M: wed::CostModel>(
    model: &M,
    store: &TrajectoryStore,
    q: &[Sym],
    tau: f64,
    metric: Metric,
    temporal: Option<&TemporalConstraint>,
    temporal_filter: bool,
    deadline: Deadline,
    stats: &mut SearchStats,
) -> Result<Vec<crate::results::MatchResult>, QueryError> {
    stats.fallback = true;
    let scan = fallback_selection(store, temporal, temporal_filter, stats);

    let t2 = Instant::now();
    let mut rs = crate::results::ResultSet::new();
    for id in scan {
        deadline.check()?;
        let traj = store.get(id);
        let (found, rows) = metric_scan_all(model, metric, traj.path(), q, tau);
        stats.verify_cost += rows;
        for m in found {
            rs.push(id, m.start, m.end, m.dist);
        }
    }
    finish_fallback(rs, store, temporal, t2, stats)
}

/// The fallback paths' "lookup" phase: select the trajectories to scan
/// (TF pre-filter), mirroring candidate generation on the indexed path.
/// Span-based, hence sound for every metric.
///
/// Counter contract (pinned by `fallback_stats_are_coherent` and
/// `metric_fallback_stats_are_coherent`): the three candidate counters are
/// **pre-verification** quantities on every path, exactly as on the indexed
/// path. `candidates` counts every trajectory position, the TF pre-filter
/// (and only it) separates `candidates_after_temporal` from `candidates`,
/// and `candidates_deduped == candidates_after_temporal` because positions
/// of distinct trajectories are inherently distinct. Rows dropped by the
/// exact temporal *post*-check never touch these counters — they are
/// reflected in `results` alone, again matching the indexed path.
fn fallback_selection(
    store: &TrajectoryStore,
    temporal: Option<&TemporalConstraint>,
    temporal_filter: bool,
    stats: &mut SearchStats,
) -> Vec<traj::TrajId> {
    let t1 = Instant::now();
    let mut scan: Vec<traj::TrajId> = Vec::with_capacity(store.len());
    let mut total_positions = 0usize;
    let mut scanned_positions = 0usize;
    for (id, traj) in store.iter() {
        total_positions += traj.len();
        if let (Some(c), true) = (temporal, temporal_filter) {
            if !c.may_contain_match(traj.span()) {
                continue;
            }
        }
        scanned_positions += traj.len();
        scan.push(id);
    }
    stats.candidates = total_positions;
    stats.candidates_after_temporal = scanned_positions;
    stats.candidates_deduped = scanned_positions;
    stats.lookup_time = t1.elapsed();
    scan
}

/// Exact temporal post-check and deterministic ordering shared by the
/// fallback scans.
fn finish_fallback(
    mut rs: crate::results::ResultSet,
    store: &TrajectoryStore,
    temporal: Option<&TemporalConstraint>,
    t2: Instant,
    stats: &mut SearchStats,
) -> Result<Vec<crate::results::MatchResult>, QueryError> {
    if let Some(c) = temporal {
        rs.retain(|id, s, t| {
            let times = store.get(id).times();
            c.accepts(times[s], times[t])
        });
    }
    let matches = rs.into_sorted_vec();
    stats.results = matches.len();
    stats.verify_time = t2.elapsed();
    Ok(matches)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::Parallelism;
    use crate::{EngineBuilder, Query};
    use rnet::{CityParams, NetworkKind};
    use std::sync::Arc;
    use traj::Trajectory;
    use wed::models::{Erp, Lev};
    use wed::wed;

    fn toy_store() -> TrajectoryStore {
        let mut s = TrajectoryStore::new();
        s.push(Trajectory::untimed(vec![0, 1, 2, 3, 4]));
        s.push(Trajectory::untimed(vec![3, 1, 5, 1, 2]));
        s.push(Trajectory::untimed(vec![9, 8, 7, 6]));
        s.push(Trajectory::untimed(vec![1, 2, 1, 2, 1]));
        s
    }

    fn brute_lev(store: &TrajectoryStore, q: &[Sym], tau: f64) -> Vec<(u32, usize, usize)> {
        let mut out = Vec::new();
        for (id, t) in store.iter() {
            let p = t.path();
            for s in 0..p.len() {
                for e in s..p.len() {
                    if wed(&Lev, &p[s..=e], q) < tau {
                        out.push((id, s, e));
                    }
                }
            }
        }
        out.sort();
        out
    }

    #[test]
    fn engine_matches_brute_force_all_modes() {
        let store = toy_store();
        let engine = EngineBuilder::new(&Lev, &store, 10).build();
        let q: Vec<Sym> = vec![1, 5, 2];
        for tau in [1.0, 2.0, 3.0] {
            let want = brute_lev(&store, &q, tau);
            for mode in [VerifyMode::Trie, VerifyMode::Local, VerifyMode::Sw] {
                let query = Query::threshold(q.clone(), tau)
                    .verify(mode)
                    .build()
                    .unwrap();
                let got = engine.run(&query).unwrap();
                let keys: Vec<_> = got.matches.iter().map(|m| (m.id, m.start, m.end)).collect();
                assert_eq!(keys, want, "tau={tau} mode={mode:?}");
                assert!(!got.stats.fallback);
            }
        }
    }

    #[test]
    fn exact_distances_reported() {
        let store = toy_store();
        let engine = EngineBuilder::new(&Lev, &store, 10).build();
        let q: Vec<Sym> = vec![1, 5, 2];
        let got = engine
            .run(&Query::threshold(q.clone(), 2.5).build().unwrap())
            .unwrap();
        assert!(!got.matches.is_empty());
        for m in &got.matches {
            let p = store.get(m.id).path();
            let direct = wed(&Lev, &p[m.start..=m.end], &q);
            assert!(
                (m.dist - direct).abs() < 1e-9,
                "reported {} but wed is {direct} for {:?}",
                m.dist,
                (m.id, m.start, m.end)
            );
        }
    }

    #[test]
    fn timing_breakdown_is_populated() {
        let store = toy_store();
        let engine = EngineBuilder::new(&Lev, &store, 10).build();
        let out = engine
            .run(&Query::threshold(vec![1, 2], 1.0).build().unwrap())
            .unwrap();
        let s = &out.stats;
        assert!(s.candidates > 0);
        assert_eq!(s.tsubseq_len, 1);
        assert!(s.total_time() >= s.verify_time);
        assert_eq!(s.results, out.matches.len());
    }

    #[test]
    fn fallback_on_infeasible_filter_is_exact() {
        // ERP with a tiny network and a large tau relative to c(Q): force
        // infeasibility by using a tau bigger than the total lower costs.
        let net = Arc::new(CityParams::tiny(NetworkKind::Grid).generate());
        let erp = Erp::new(net.clone(), 5.0);
        let mut store = TrajectoryStore::new();
        store.push(Trajectory::untimed(vec![0, 1, 2]));
        store.push(Trajectory::untimed(vec![10, 11]));
        let engine = EngineBuilder::new(&erp, &store, net.num_vertices()).build();
        // total ins(q) is on the order of hundreds of meters; choose tau
        // larger than c(Q) (which is bounded by sum of dist-to-barycenter).
        let huge_tau = 1e9;
        let out = engine
            .run(&Query::threshold(vec![0, 1], huge_tau).build().unwrap())
            .unwrap();
        assert!(out.stats.fallback);
        // Every substring of every trajectory matches at that tau.
        let total: usize = store.iter().map(|(_, t)| t.len() * (t.len() + 1) / 2).sum();
        assert_eq!(out.matches.len(), total);
    }

    #[test]
    fn fallback_stats_are_coherent() {
        // Regression: the fallback path used to leave `candidates`,
        // `candidates_after_temporal` and `lookup_time` zeroed, so merged
        // workload stats silently mixed incomparable rows.
        use crate::temporal::{TemporalConstraint, TimeInterval};
        let net = Arc::new(CityParams::tiny(NetworkKind::Grid).generate());
        let erp = Erp::new(net.clone(), 5.0);
        let mut store = TrajectoryStore::new();
        store.push(Trajectory::new(vec![0, 1, 2], vec![0.0, 1.0, 2.0]));
        store.push(Trajectory::new(vec![10, 11], vec![100.0, 101.0]));
        let engine = EngineBuilder::new(&erp, &store, net.num_vertices()).build();
        let total_positions: usize = store.iter().map(|(_, t)| t.len()).sum();

        // No temporal constraint: every position is a candidate and gets
        // scanned.
        let out = engine
            .run(&Query::threshold(vec![0, 1], 1e9).build().unwrap())
            .unwrap();
        assert!(out.stats.fallback);
        assert_eq!(out.stats.candidates, total_positions);
        assert_eq!(out.stats.candidates_after_temporal, total_positions);
        assert_eq!(out.stats.candidates_deduped, total_positions);
        assert_eq!(out.stats.sw_columns, total_positions as u64);
        assert_eq!(out.stats.results, out.matches.len());

        // TF pre-filter prunes the late trajectory before scanning.
        let query = Query::threshold(vec![0, 1], 1e9)
            .temporal(TemporalConstraint::overlaps(TimeInterval::new(0.0, 50.0)))
            .temporal_filter(true)
            .build()
            .unwrap();
        let out_tf = engine.run(&query).unwrap();
        assert!(out_tf.stats.fallback);
        assert_eq!(out_tf.stats.candidates, total_positions);
        assert_eq!(out_tf.stats.candidates_after_temporal, 3);
        assert_eq!(out_tf.stats.candidates_deduped, 3);
        assert_eq!(out_tf.stats.sw_columns, 3);
        assert!(out_tf.stats.candidates_after_temporal < out_tf.stats.candidates);

        // Temporal constraint *without* the TF pre-filter: the candidate
        // counters stay pre-verification quantities (nothing pruned before
        // the scan), while the exact post-check shrinks `results` only.
        let query_post = Query::threshold(vec![0, 1], 1e9)
            .temporal(TemporalConstraint::overlaps(TimeInterval::new(0.0, 50.0)))
            .temporal_filter(false)
            .build()
            .unwrap();
        let out_post = engine.run(&query_post).unwrap();
        assert!(out_post.stats.fallback);
        assert_eq!(out_post.stats.candidates, total_positions);
        assert_eq!(out_post.stats.candidates_after_temporal, total_positions);
        assert_eq!(out_post.stats.candidates_deduped, total_positions);
        assert_eq!(out_post.stats.sw_columns, total_positions as u64);
        // Same surviving matches as the TF run (post-check is exact), but
        // counted against an unpruned scan.
        assert_eq!(out_post.matches, out_tf.matches);
        assert!(out_post.stats.results < out.stats.results);
        assert_eq!(out_post.stats.results, out_post.matches.len());
    }

    #[test]
    fn metric_fallback_stats_are_coherent() {
        // LCSS admits no sound filter bound, so `metric_fallback_scan` is
        // its *only* execution path; pin every counter of that contract.
        use crate::metric::Metric;
        use crate::temporal::{TemporalConstraint, TimeInterval};
        let mut store = TrajectoryStore::new();
        store.push(Trajectory::new(vec![0, 1, 2], vec![0.0, 1.0, 2.0]));
        store.push(Trajectory::new(vec![10, 11], vec![100.0, 101.0]));
        let engine = EngineBuilder::new(&Lev, &store, 16).build();
        let total_positions: usize = store.iter().map(|(_, t)| t.len()).sum();

        let lcss = |tf: bool, temporal: bool| {
            let mut b = Query::threshold(vec![0, 1], 1.5)
                .metric(Metric::Lcss { eps: 0.0 })
                .temporal_filter(tf);
            if temporal {
                b = b.temporal(TemporalConstraint::overlaps(TimeInterval::new(0.0, 50.0)));
            }
            engine.run(&b.build().unwrap()).unwrap()
        };

        // No temporal constraint: all positions counted, scan work lands in
        // the metric-neutral `verify_cost`, WED counters stay zero.
        let plain = lcss(false, false);
        assert!(plain.stats.fallback);
        assert_eq!(plain.stats.candidates, total_positions);
        assert_eq!(plain.stats.candidates_after_temporal, total_positions);
        assert_eq!(plain.stats.candidates_deduped, total_positions);
        assert_eq!(plain.stats.sw_columns, 0);
        assert_eq!(plain.stats.columns_passed, 0);
        assert_eq!(plain.stats.stepdp_calls, 0);
        assert_eq!(
            plain.stats.trie_cache_hits + plain.stats.trie_cache_misses,
            0
        );
        assert!(plain.stats.verify_cost > 0);
        assert_eq!(plain.stats.results, plain.matches.len());
        // LCSS never has a τ-subsequence plan.
        assert_eq!(plain.stats.tsubseq_len, 0);

        // TF pre-filter: prunes the late trajectory before the scan, so the
        // split happens between `candidates` and `candidates_after_temporal`.
        let tf = lcss(true, true);
        assert_eq!(tf.stats.candidates, total_positions);
        assert_eq!(tf.stats.candidates_after_temporal, 3);
        assert_eq!(tf.stats.candidates_deduped, 3);

        // Post-check only: counters stay at the unpruned scan, results match
        // the TF run exactly.
        let post = lcss(false, true);
        assert_eq!(post.stats.candidates_after_temporal, total_positions);
        assert_eq!(post.stats.candidates_deduped, total_positions);
        assert_eq!(post.matches, tf.matches);
        assert!(post.stats.verify_cost >= tf.stats.verify_cost);
    }

    #[test]
    fn in_query_parallelism_matches_sequential() {
        let store = toy_store();
        let engine = EngineBuilder::new(&Lev, &store, 10).build();
        let q: Vec<Sym> = vec![1, 5, 2];
        for tau in [1.0, 2.0, 3.0] {
            for mode in [VerifyMode::Trie, VerifyMode::Local, VerifyMode::Sw] {
                let want = engine
                    .run(
                        &Query::threshold(q.clone(), tau)
                            .verify(mode)
                            .build()
                            .unwrap(),
                    )
                    .unwrap();
                for threads in [1, 2, 4] {
                    let query = Query::threshold(q.clone(), tau)
                        .verify(mode)
                        .parallelism(Parallelism::InQuery(threads))
                        .build()
                        .unwrap();
                    let got = engine.run(&query).unwrap();
                    assert_eq!(
                        got.matches, want.matches,
                        "tau={tau} mode={mode:?} threads={threads}"
                    );
                }
            }
        }
    }

    #[test]
    #[allow(deprecated)]
    fn legacy_wrappers_match_run() {
        // The deprecated entry points are wrappers over `run`; spot-check
        // byte-identical matches and the preserved constructor behavior.
        let store = toy_store();
        let legacy = SearchEngine::new(&Lev, &store, 10);
        let unified = EngineBuilder::new(&Lev, &store, 10).build();
        let q: Vec<Sym> = vec![1, 5, 2];
        let want = unified
            .run(&Query::threshold(q.clone(), 2.0).build().unwrap())
            .unwrap();
        assert_eq!(legacy.search(&q, 2.0).matches, want.matches);
        assert_eq!(
            legacy
                .search_opts(&q, 2.0, SearchOptions::default())
                .matches,
            want.matches
        );
        assert_eq!(
            legacy
                .par_search_opts(&q, 2.0, SearchOptions::default(), 2)
                .matches,
            want.matches
        );
    }

    #[test]
    #[allow(deprecated)]
    fn legacy_silent_fallback_preserved() {
        // use_temporal_postings without index support silently degrades on
        // the legacy wrapper (the unified surface rejects it instead).
        use crate::temporal::{TemporalConstraint, TimeInterval};
        let mut store = TrajectoryStore::new();
        store.push(Trajectory::new(vec![1, 2, 3], vec![0.0, 1.0, 2.0]));
        let engine = SearchEngine::new(&Lev, &store, 8);
        let opts = SearchOptions {
            temporal: Some(TemporalConstraint::overlaps(TimeInterval::new(0.0, 5.0))),
            use_temporal_postings: true,
            ..Default::default()
        };
        let out = engine.search_opts(&[1, 2], 1.0, opts);
        assert_eq!(out.matches.len(), 1);
    }

    #[test]
    #[allow(deprecated)]
    fn legacy_infinite_tau_still_matches_everything() {
        // The old `assert!(tau > 0.0)` admitted +∞ ("match everything");
        // the wrappers must keep accepting it even though the unified
        // surface requires finite τ for the wire format.
        let mut store = TrajectoryStore::new();
        store.push(Trajectory::untimed(vec![1, 2, 3]));
        let engine = SearchEngine::new(&Lev, &store, 8);
        let out = engine.search(&[1, 2], f64::INFINITY);
        assert_eq!(out.matches.len(), 6, "every substring matches at tau=∞");
        let top = engine.search_top_k(&[1, 2], 1, 0.5, f64::INFINITY);
        assert_eq!(top.len(), 1);
    }

    #[test]
    #[should_panic(expected = "query must be non-empty")]
    #[allow(deprecated)]
    fn empty_query_rejected() {
        let store = toy_store();
        let engine = SearchEngine::new(&Lev, &store, 10);
        engine.search(&[], 1.0);
    }

    #[test]
    fn strict_threshold_semantics() {
        // Definition 2 uses strict '<': a subtrajectory at distance exactly
        // tau is not a match.
        let mut store = TrajectoryStore::new();
        store.push(Trajectory::untimed(vec![1, 2, 3]));
        let engine = EngineBuilder::new(&Lev, &store, 8).build();
        // Q = [1,4,3]: best substring [1,2,3] at distance 1.
        let out = engine
            .run(&Query::threshold(vec![1, 4, 3], 1.0).build().unwrap())
            .unwrap();
        assert!(out.matches.is_empty());
        let out2 = engine
            .run(&Query::threshold(vec![1, 4, 3], 1.0 + 1e-9).build().unwrap())
            .unwrap();
        assert_eq!(out2.matches.len(), 1);
    }
}
