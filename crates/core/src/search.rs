//! The search engine (Algorithm 2): index + filter + verify.
//!
//! [`SearchEngine`] owns an inverted index over a trajectory store and
//! answers subtrajectory similarity queries for *any* [`WedInstance`] — the
//! paper's headline property is that switching similarity functions requires
//! no algorithmic adaptation, only a different cost model.
//!
//! The default configuration is the paper's **OSF-BT**: optimized
//! subsequence filtering (MinCand) + bidirectional-trie verification.
//! [`SearchOptions`] selects the verification strategy (for the `OSF-SW`
//! baseline and the `Local` ablation), temporal constraints, and the TF
//! strategy of §4.3.

use crate::filter::FilterPlan;
use crate::index::InvertedIndex;
use crate::results::MatchResult;
use crate::stats::SearchStats;
use crate::temporal::TemporalConstraint;
use crate::verify::{verify_candidates, VerifyMode};
use std::time::{Duration, Instant};
use traj::TrajectoryStore;
use wed::{sw_scan_all, Sym, WedInstance};

/// Per-query options.
#[derive(Debug, Clone, Copy, Default)]
pub struct SearchOptions {
    pub verify: VerifyMode,
    /// Optional temporal constraint on matched spans.
    pub temporal: Option<TemporalConstraint>,
    /// Apply the TF candidate pre-filter (§4.3). Ignored without a
    /// temporal constraint.
    pub temporal_filter: bool,
    /// §4.3 extension: generate candidates by binary search on
    /// by-departure-sorted postings instead of scanning full lists. Needs
    /// [`SearchEngine::with_temporal_postings`] and a temporal constraint;
    /// silently falls back to plain generation otherwise.
    pub use_temporal_postings: bool,
}

/// A query answer: the exact Definition 3 result set plus instrumentation.
#[derive(Debug, Clone)]
pub struct SearchOutcome {
    pub matches: Vec<MatchResult>,
    pub stats: SearchStats,
}

/// Subtrajectory similarity search engine (OSF filtering + pluggable
/// verification).
pub struct SearchEngine<'a, M: WedInstance> {
    model: M,
    store: &'a TrajectoryStore,
    index: InvertedIndex,
    build_time: Duration,
}

impl<'a, M: WedInstance> SearchEngine<'a, M> {
    /// Builds the inverted index over `store`. `alphabet_size` is `|V|` or
    /// `|E|` depending on the representation the store uses.
    pub fn new(model: M, store: &'a TrajectoryStore, alphabet_size: usize) -> Self {
        let t0 = Instant::now();
        let index = InvertedIndex::build(store, alphabet_size);
        SearchEngine {
            model,
            store,
            index,
            build_time: t0.elapsed(),
        }
    }

    /// Like [`new`](SearchEngine::new), additionally building the
    /// by-departure postings ordering so that
    /// [`SearchOptions::use_temporal_postings`] can take effect.
    pub fn with_temporal_postings(
        model: M,
        store: &'a TrajectoryStore,
        alphabet_size: usize,
    ) -> Self {
        let t0 = Instant::now();
        let mut index = InvertedIndex::build(store, alphabet_size);
        index.enable_temporal_postings();
        SearchEngine {
            model,
            store,
            index,
            build_time: t0.elapsed(),
        }
    }

    pub fn index(&self) -> &InvertedIndex {
        &self.index
    }

    pub fn store(&self) -> &TrajectoryStore {
        self.store
    }

    pub fn model(&self) -> &M {
        &self.model
    }

    /// Index construction time (Table 6).
    pub fn build_time(&self) -> Duration {
        self.build_time
    }

    /// OSF-BT search with defaults: trie verification, no temporal
    /// constraint.
    pub fn search(&self, q: &[Sym], tau: f64) -> SearchOutcome {
        self.search_opts(q, tau, SearchOptions::default())
    }

    /// Algorithm 2 with configurable verification and temporal handling.
    ///
    /// When no τ-subsequence exists (`c(Q) < τ`, possible for continuous
    /// cost models with small η), subsequence filtering would be unsound;
    /// the engine transparently falls back to an exact Smith–Waterman scan
    /// and sets `stats.fallback`.
    pub fn search_opts(&self, q: &[Sym], tau: f64, opts: SearchOptions) -> SearchOutcome {
        assert!(tau > 0.0, "threshold must be positive");
        assert!(!q.is_empty(), "query must be non-empty");
        let mut stats = SearchStats::default();

        // Phase 1: τ-subsequence optimization (MinCand).
        let t0 = Instant::now();
        let plan = FilterPlan::build(&self.model, &self.index, q, tau);
        stats.mincand_time = t0.elapsed();
        stats.tsubseq_len = plan.chosen.len();

        if !plan.feasible {
            return self.fallback_scan(q, tau, opts, stats);
        }

        // Phase 2: index lookup (binary-searched when the §4.3 temporal
        // postings are available and requested).
        let t1 = Instant::now();
        let candidates = match (
            &opts.temporal,
            opts.use_temporal_postings && self.index.has_temporal_postings(),
        ) {
            (Some(c), true) => plan.candidates_temporal(&self.index, c),
            _ => plan.candidates(&self.index),
        };
        stats.lookup_time = t1.elapsed();

        // Phase 3: verification.
        let t2 = Instant::now();
        let matches = verify_candidates(
            &self.model,
            self.store,
            |id| self.index.span(id),
            q,
            tau,
            &candidates,
            opts.verify,
            opts.temporal.as_ref(),
            opts.temporal_filter,
            &mut stats,
        );
        stats.verify_time = t2.elapsed();

        SearchOutcome { matches, stats }
    }

    /// Exact full scan used when filtering is infeasible.
    fn fallback_scan(
        &self,
        q: &[Sym],
        tau: f64,
        opts: SearchOptions,
        mut stats: SearchStats,
    ) -> SearchOutcome {
        stats.fallback = true;
        let t = Instant::now();
        let mut rs = crate::results::ResultSet::new();
        for (id, traj) in self.store.iter() {
            if let (Some(c), true) = (opts.temporal.as_ref(), opts.temporal_filter) {
                if !c.may_contain_match(traj.span()) {
                    continue;
                }
            }
            stats.sw_columns += traj.len() as u64;
            for m in sw_scan_all(&self.model, traj.path(), q, tau) {
                rs.push(id, m.start, m.end, m.dist);
            }
        }
        if let Some(c) = opts.temporal.as_ref() {
            rs.retain(|id, s, t| {
                let times = self.store.get(id).times();
                c.accepts(times[s], times[t])
            });
        }
        let matches = rs.into_sorted_vec();
        stats.results = matches.len();
        stats.verify_time = t.elapsed();
        SearchOutcome { matches, stats }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rnet::{CityParams, NetworkKind};
    use std::sync::Arc;
    use traj::Trajectory;
    use wed::models::{Erp, Lev};
    use wed::wed;

    fn toy_store() -> TrajectoryStore {
        let mut s = TrajectoryStore::new();
        s.push(Trajectory::untimed(vec![0, 1, 2, 3, 4]));
        s.push(Trajectory::untimed(vec![3, 1, 5, 1, 2]));
        s.push(Trajectory::untimed(vec![9, 8, 7, 6]));
        s.push(Trajectory::untimed(vec![1, 2, 1, 2, 1]));
        s
    }

    fn brute_lev(store: &TrajectoryStore, q: &[Sym], tau: f64) -> Vec<(u32, usize, usize)> {
        let mut out = Vec::new();
        for (id, t) in store.iter() {
            let p = t.path();
            for s in 0..p.len() {
                for e in s..p.len() {
                    if wed(&Lev, &p[s..=e], q) < tau {
                        out.push((id, s, e));
                    }
                }
            }
        }
        out.sort();
        out
    }

    #[test]
    fn engine_matches_brute_force_all_modes() {
        let store = toy_store();
        let engine = SearchEngine::new(&Lev, &store, 10);
        let q: Vec<Sym> = vec![1, 5, 2];
        for tau in [1.0, 2.0, 3.0] {
            let want = brute_lev(&store, &q, tau);
            for mode in [VerifyMode::Trie, VerifyMode::Local, VerifyMode::Sw] {
                let got = engine.search_opts(
                    &q,
                    tau,
                    SearchOptions {
                        verify: mode,
                        ..Default::default()
                    },
                );
                let keys: Vec<_> = got.matches.iter().map(|m| (m.id, m.start, m.end)).collect();
                assert_eq!(keys, want, "tau={tau} mode={mode:?}");
                assert!(!got.stats.fallback);
            }
        }
    }

    #[test]
    fn exact_distances_reported() {
        let store = toy_store();
        let engine = SearchEngine::new(&Lev, &store, 10);
        let q: Vec<Sym> = vec![1, 5, 2];
        let got = engine.search(&q, 2.5);
        assert!(!got.matches.is_empty());
        for m in &got.matches {
            let p = store.get(m.id).path();
            let direct = wed(&Lev, &p[m.start..=m.end], &q);
            assert!(
                (m.dist - direct).abs() < 1e-9,
                "reported {} but wed is {direct} for {:?}",
                m.dist,
                (m.id, m.start, m.end)
            );
        }
    }

    #[test]
    fn timing_breakdown_is_populated() {
        let store = toy_store();
        let engine = SearchEngine::new(&Lev, &store, 10);
        let out = engine.search(&[1, 2], 1.0);
        let s = &out.stats;
        assert!(s.candidates > 0);
        assert_eq!(s.tsubseq_len, 1);
        assert!(s.total_time() >= s.verify_time);
        assert_eq!(s.results, out.matches.len());
    }

    #[test]
    fn fallback_on_infeasible_filter_is_exact() {
        // ERP with a tiny network and a large tau relative to c(Q): force
        // infeasibility by using a tau bigger than the total lower costs.
        let net = Arc::new(CityParams::tiny(NetworkKind::Grid).generate());
        let erp = Erp::new(net.clone(), 5.0);
        let mut store = TrajectoryStore::new();
        store.push(Trajectory::untimed(vec![0, 1, 2]));
        store.push(Trajectory::untimed(vec![10, 11]));
        let engine = SearchEngine::new(&erp, &store, net.num_vertices());
        let q: Vec<Sym> = vec![0, 1];
        // total ins(q) is on the order of hundreds of meters; choose tau
        // larger than c(Q) (which is bounded by sum of dist-to-barycenter).
        let huge_tau = 1e9;
        let out = engine.search(&q, huge_tau);
        assert!(out.stats.fallback);
        // Every substring of every trajectory matches at that tau.
        let total: usize = store.iter().map(|(_, t)| t.len() * (t.len() + 1) / 2).sum();
        assert_eq!(out.matches.len(), total);
    }

    #[test]
    #[should_panic(expected = "query must be non-empty")]
    fn empty_query_rejected() {
        let store = toy_store();
        let engine = SearchEngine::new(&Lev, &store, 10);
        engine.search(&[], 1.0);
    }

    #[test]
    fn strict_threshold_semantics() {
        // Definition 2 uses strict '<': a subtrajectory at distance exactly
        // tau is not a match.
        let mut store = TrajectoryStore::new();
        store.push(Trajectory::untimed(vec![1, 2, 3]));
        let engine = SearchEngine::new(&Lev, &store, 8);
        // Q = [1,4,3]: best substring [1,2,3] at distance 1.
        let out = engine.search(&[1, 4, 3], 1.0);
        assert!(out.matches.is_empty());
        let out2 = engine.search(&[1, 4, 3], 1.0 + 1e-9);
        assert_eq!(out2.matches.len(), 1);
    }
}
