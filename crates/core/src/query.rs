//! The unified, validated, serializable query type.
//!
//! Every search path of the engine — threshold and top-k objectives, all
//! three verification strategies, temporal constraints with the TF
//! pre-filter and the §4.3 by-departure postings, sequential and in-query
//! parallel execution — is described by one [`Query`] value, built through
//! [`QueryBuilder`] and answered by
//! [`SearchEngine::run`](crate::SearchEngine::run) /
//! [`run_batch`](crate::SearchEngine::run_batch). This mirrors the paper's
//! headline property (one filter-and-verify engine for every WED workload,
//! §1) at the API layer: adding a constraint is a builder call, not a new
//! entry point.
//!
//! A `Query` is **validated at construction** ([`QueryBuilder::build`]
//! returns a typed [`QueryError`] instead of panicking deep inside the
//! engine) and **wire-ready**: [`Query::to_json`] / [`Query::from_json`]
//! round-trip losslessly, so the exact same type serves as the request
//! format for a serving front-end or a remote shard protocol.

use crate::json::JsonValue;
use crate::metric::Metric;
use crate::search::SearchOptions;
use crate::temporal::{TemporalConstraint, TemporalPredicate, TimeInterval};
use crate::verify::VerifyMode;
use std::fmt;
use wed::Sym;

/// What the query asks for.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Objective {
    /// Every subtrajectory with `wed < tau` (Definition 3).
    Threshold { tau: f64 },
    /// The `k` trajectories whose best-matching subtrajectory is closest to
    /// the pattern (Table 3 setting), found by geometric threshold growth
    /// from `initial_tau` up to at most `max_tau`.
    TopK {
        k: usize,
        initial_tau: f64,
        max_tau: f64,
    },
}

/// How one query's work is scheduled.
///
/// For throughput over many queries prefer
/// [`run_batch`](crate::SearchEngine::run_batch) (whole-query fan-out) over
/// `InQuery`, which shards a single query's verification phase and exists
/// for tail latency on one heavy query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Parallelism {
    /// The paper's single-threaded pipeline.
    #[default]
    Sequential,
    /// Verification sharded across this many scoped worker threads
    /// (`>= 1`; `1` is equivalent to `Sequential`).
    InQuery(usize),
}

/// Why a query was rejected — at [`QueryBuilder::build`] for
/// shape errors, at [`SearchEngine::run`](crate::SearchEngine::run) for
/// engine-dependent ones, or at [`Query::from_json`] for wire errors.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryError {
    /// The pattern must be non-empty.
    EmptyPattern,
    /// `tau` must be finite and positive.
    InvalidTau(f64),
    /// Top-k needs `k >= 1`.
    InvalidK,
    /// Top-k needs `0 < initial_tau <= max_tau`, both finite.
    InvalidTauRange { initial_tau: f64, max_tau: f64 },
    /// Temporal interval bounds must be finite and ordered.
    InvalidTemporalInterval { start: f64, end: f64 },
    /// `temporal_postings(true)` without a temporal constraint to serve.
    TemporalPostingsWithoutConstraint,
    /// The engine's index has no by-departure orderings; build it with
    /// temporal postings enabled (this used to be a silent fallback).
    TemporalPostingsUnavailable,
    /// `Parallelism::InQuery(0)` is meaningless.
    ZeroThreads,
    /// `deadline_ms` must be at least 1 (a zero budget can never be met).
    InvalidDeadline,
    /// LCSS's ε must be finite and non-negative.
    InvalidEps(f64),
    /// The target (a remote shard server, typically) does not support the
    /// query's metric; re-aim at an upgraded server or use WED.
    UnsupportedMetric(String),
    /// The query's deadline passed before execution finished; the engine
    /// stopped at a cooperative checkpoint (see [`crate::deadline`]) and
    /// returned no partial results.
    DeadlineExceeded,
    /// The JSON document could not be decoded into a query/response.
    Parse(String),
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::EmptyPattern => write!(f, "query pattern must be non-empty"),
            QueryError::InvalidTau(tau) => {
                write!(f, "threshold must be finite and positive, got {tau}")
            }
            QueryError::InvalidK => write!(f, "top-k requires k >= 1"),
            QueryError::InvalidTauRange {
                initial_tau,
                max_tau,
            } => write!(
                f,
                "top-k requires 0 < initial_tau <= max_tau (both finite), \
                 got initial_tau={initial_tau}, max_tau={max_tau}"
            ),
            QueryError::InvalidTemporalInterval { start, end } => write!(
                f,
                "temporal interval must have finite ordered bounds, got [{start}, {end}]"
            ),
            QueryError::TemporalPostingsWithoutConstraint => write!(
                f,
                "temporal postings requested without a temporal constraint"
            ),
            QueryError::TemporalPostingsUnavailable => write!(
                f,
                "temporal postings requested but the index has no by-departure \
                 orderings (enable temporal postings when building the engine)"
            ),
            QueryError::ZeroThreads => write!(f, "in-query parallelism requires >= 1 thread"),
            QueryError::InvalidDeadline => write!(f, "deadline_ms must be at least 1"),
            QueryError::InvalidEps(eps) => {
                write!(f, "lcss eps must be finite and non-negative, got {eps}")
            }
            QueryError::UnsupportedMetric(name) => {
                write!(f, "metric {name:?} is not supported by the query target")
            }
            QueryError::DeadlineExceeded => write!(f, "query deadline exceeded"),
            QueryError::Parse(msg) => write!(f, "malformed query/response JSON: {msg}"),
        }
    }
}

impl std::error::Error for QueryError {}

/// A validated subtrajectory similarity query. Construct via
/// [`Query::threshold`] / [`Query::top_k`]; decode from the wire via
/// [`Query::from_json`]. Fields are private — a `Query` in hand is always
/// valid (engine-dependent checks excepted, which `run` performs).
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    pattern: Vec<Sym>,
    objective: Objective,
    verify: VerifyMode,
    metric: Metric,
    temporal: Option<TemporalConstraint>,
    temporal_filter: bool,
    temporal_postings: bool,
    parallelism: Parallelism,
    deadline_ms: Option<u64>,
}

impl Query {
    /// Starts a threshold query: all subtrajectories with `wed < tau`.
    pub fn threshold(pattern: impl Into<Vec<Sym>>, tau: f64) -> QueryBuilder {
        QueryBuilder::new(pattern.into(), Objective::Threshold { tau })
    }

    /// Starts a top-k query: the `k` trajectories with the best-matching
    /// subtrajectory, via threshold growth from `initial_tau` to `max_tau`
    /// (e.g. 10% and 100% of `Σ c(q)`).
    pub fn top_k(
        pattern: impl Into<Vec<Sym>>,
        k: usize,
        initial_tau: f64,
        max_tau: f64,
    ) -> QueryBuilder {
        QueryBuilder::new(
            pattern.into(),
            Objective::TopK {
                k,
                initial_tau,
                max_tau,
            },
        )
    }

    pub fn pattern(&self) -> &[Sym] {
        &self.pattern
    }

    pub fn objective(&self) -> Objective {
        self.objective
    }

    pub fn verify_mode(&self) -> VerifyMode {
        self.verify
    }

    /// The distance the threshold ranges over (default
    /// [`Metric::Wed`]).
    pub fn metric(&self) -> Metric {
        self.metric
    }

    pub fn temporal(&self) -> Option<TemporalConstraint> {
        self.temporal
    }

    pub fn temporal_filter(&self) -> bool {
        self.temporal_filter
    }

    pub fn temporal_postings(&self) -> bool {
        self.temporal_postings
    }

    pub fn parallelism(&self) -> Parallelism {
        self.parallelism
    }

    /// The query's latency budget in milliseconds, if any. The clock starts
    /// when execution begins — at [`run`](crate::SearchEngine::run) entry
    /// in-process, at *admission* in a serving layer (so queue time counts;
    /// see [`crate::deadline`]). Expiry is the typed
    /// [`QueryError::DeadlineExceeded`], never a late answer.
    pub fn deadline_ms(&self) -> Option<u64> {
        self.deadline_ms
    }

    /// Returns a copy with a different execution schedule — the one field a
    /// serving layer may want to override per deployment without rebuilding
    /// the query. Validity is preserved (`InQuery(0)` is still rejected).
    pub fn with_parallelism(mut self, parallelism: Parallelism) -> Result<Query, QueryError> {
        if parallelism == Parallelism::InQuery(0) {
            return Err(QueryError::ZeroThreads);
        }
        self.parallelism = parallelism;
        Ok(self)
    }

    /// The per-query options of the internal pipeline.
    pub(crate) fn search_options(&self) -> SearchOptions {
        SearchOptions {
            verify: self.verify,
            metric: self.metric,
            temporal: self.temporal,
            temporal_filter: self.temporal_filter,
            use_temporal_postings: self.temporal_postings,
        }
    }

    /// Encodes the query as its wire format. [`Query::from_json`] inverts
    /// this losslessly: `from_json(to_json()) == self`.
    pub fn to_json(&self) -> String {
        self.to_value().to_string()
    }

    /// The document-model form of [`Query::to_json`] — for embedding a
    /// query inside a larger envelope (as the serve protocol does) without
    /// a render-and-reparse round trip.
    pub fn to_value(&self) -> JsonValue {
        let objective = match self.objective {
            Objective::Threshold { tau } => JsonValue::Obj(vec![
                ("type".into(), JsonValue::Str("threshold".into())),
                ("tau".into(), JsonValue::num_f64(tau)),
            ]),
            Objective::TopK {
                k,
                initial_tau,
                max_tau,
            } => JsonValue::Obj(vec![
                ("type".into(), JsonValue::Str("top_k".into())),
                ("k".into(), JsonValue::num_usize(k)),
                ("initial_tau".into(), JsonValue::num_f64(initial_tau)),
                ("max_tau".into(), JsonValue::num_f64(max_tau)),
            ]),
        };
        let mut pairs = vec![
            (
                "pattern".into(),
                JsonValue::Arr(
                    self.pattern
                        .iter()
                        .map(|&s| JsonValue::num_u64(s as u64))
                        .collect(),
                ),
            ),
            ("objective".into(), objective),
            (
                "verify".into(),
                JsonValue::Str(verify_name(self.verify).into()),
            ),
        ];
        // Omitted for WED, so pre-metric query JSON is byte-identical.
        if let Some(metric) = self.metric.to_value() {
            pairs.push(("metric".into(), metric));
        }
        if let Some(c) = &self.temporal {
            pairs.push((
                "temporal".into(),
                JsonValue::Obj(vec![
                    (
                        "predicate".into(),
                        JsonValue::Str(
                            match c.predicate {
                                TemporalPredicate::Overlaps => "overlaps",
                                TemporalPredicate::Within => "within",
                            }
                            .into(),
                        ),
                    ),
                    ("start".into(), JsonValue::num_f64(c.interval.start)),
                    ("end".into(), JsonValue::num_f64(c.interval.end)),
                ]),
            ));
        }
        pairs.push((
            "temporal_filter".into(),
            JsonValue::Bool(self.temporal_filter),
        ));
        pairs.push((
            "temporal_postings".into(),
            JsonValue::Bool(self.temporal_postings),
        ));
        let parallelism = match self.parallelism {
            Parallelism::Sequential => {
                JsonValue::Obj(vec![("type".into(), JsonValue::Str("sequential".into()))])
            }
            Parallelism::InQuery(n) => JsonValue::Obj(vec![
                ("type".into(), JsonValue::Str("in_query".into())),
                ("threads".into(), JsonValue::num_usize(n)),
            ]),
        };
        pairs.push(("parallelism".into(), parallelism));
        if let Some(ms) = self.deadline_ms {
            pairs.push(("deadline_ms".into(), JsonValue::num_u64(ms)));
        }
        JsonValue::Obj(pairs)
    }

    /// Decodes and **validates** a wire query — the result went through the
    /// same [`QueryBuilder::build`] checks as a locally built one, so a
    /// deserialized `Query` is as trustworthy as any other.
    pub fn from_json(text: &str) -> Result<Query, QueryError> {
        let doc = JsonValue::parse(text).map_err(QueryError::Parse)?;
        Query::from_value(&doc)
    }

    /// The document-model form of [`Query::from_json`], validating the
    /// same way — for decoding a query already sitting inside a parsed
    /// envelope.
    pub fn from_value(doc: &JsonValue) -> Result<Query, QueryError> {
        let parse = |msg: &str| QueryError::Parse(msg.to_string());

        let pattern: Vec<Sym> = doc
            .get("pattern")
            .and_then(|v| v.as_arr())
            .ok_or_else(|| parse("missing \"pattern\" array"))?
            .iter()
            .map(|v| {
                v.as_u64()
                    .and_then(|x| u32::try_from(x).ok())
                    .ok_or_else(|| parse("pattern symbols must be u32"))
            })
            .collect::<Result<_, _>>()?;

        let obj = doc
            .get("objective")
            .ok_or_else(|| parse("missing \"objective\""))?;
        let objective = match obj.get("type").and_then(|v| v.as_str()) {
            Some("threshold") => Objective::Threshold {
                tau: obj
                    .get("tau")
                    .and_then(|v| v.as_f64())
                    .ok_or_else(|| parse("threshold objective needs a numeric \"tau\""))?,
            },
            Some("top_k") => Objective::TopK {
                k: obj
                    .get("k")
                    .and_then(|v| v.as_usize())
                    .ok_or_else(|| parse("top_k objective needs an integer \"k\""))?,
                initial_tau: obj
                    .get("initial_tau")
                    .and_then(|v| v.as_f64())
                    .ok_or_else(|| parse("top_k objective needs \"initial_tau\""))?,
                max_tau: obj
                    .get("max_tau")
                    .and_then(|v| v.as_f64())
                    .ok_or_else(|| parse("top_k objective needs \"max_tau\""))?,
            },
            other => return Err(parse(&format!("unknown objective type {other:?}"))),
        };

        let verify = match doc.get("verify").and_then(|v| v.as_str()) {
            None | Some("trie") => VerifyMode::Trie,
            Some("local") => VerifyMode::Local,
            Some("sw") => VerifyMode::Sw,
            Some(other) => return Err(parse(&format!("unknown verify mode {other:?}"))),
        };

        let metric = Metric::from_value(doc.get("metric"))?;

        let temporal = match doc.get("temporal") {
            None | Some(JsonValue::Null) => None,
            Some(t) => {
                let start = t
                    .get("start")
                    .and_then(|v| v.as_f64())
                    .ok_or_else(|| parse("temporal constraint needs numeric \"start\""))?;
                let end = t
                    .get("end")
                    .and_then(|v| v.as_f64())
                    .ok_or_else(|| parse("temporal constraint needs numeric \"end\""))?;
                if !(start.is_finite() && end.is_finite() && start <= end) {
                    return Err(QueryError::InvalidTemporalInterval { start, end });
                }
                let interval = TimeInterval::new(start, end);
                Some(match t.get("predicate").and_then(|v| v.as_str()) {
                    None | Some("overlaps") => TemporalConstraint::overlaps(interval),
                    Some("within") => TemporalConstraint::within(interval),
                    Some(other) => {
                        return Err(parse(&format!("unknown temporal predicate {other:?}")))
                    }
                })
            }
        };

        let flag = |key: &str| -> Result<bool, QueryError> {
            match doc.get(key) {
                None => Ok(false),
                Some(v) => v
                    .as_bool()
                    .ok_or_else(|| parse(&format!("\"{key}\" must be a boolean"))),
            }
        };

        let parallelism = match doc.get("parallelism") {
            None => Parallelism::Sequential,
            Some(p) => match p.get("type").and_then(|v| v.as_str()) {
                None | Some("sequential") => Parallelism::Sequential,
                Some("in_query") => Parallelism::InQuery(
                    p.get("threads")
                        .and_then(|v| v.as_usize())
                        .ok_or_else(|| parse("in_query parallelism needs \"threads\""))?,
                ),
                Some(other) => return Err(parse(&format!("unknown parallelism {other:?}"))),
            },
        };

        let deadline_ms = match doc.get("deadline_ms") {
            None | Some(JsonValue::Null) => None,
            Some(v) => Some(
                v.as_u64()
                    .ok_or_else(|| parse("\"deadline_ms\" must be a u64 millisecond count"))?,
            ),
        };

        let mut builder = QueryBuilder::new(pattern, objective)
            .verify(verify)
            .metric(metric)
            .temporal_filter(flag("temporal_filter")?)
            .temporal_postings(flag("temporal_postings")?)
            .parallelism(parallelism);
        if let Some(c) = temporal {
            builder = builder.temporal(c);
        }
        if let Some(ms) = deadline_ms {
            builder = builder.deadline_ms(ms);
        }
        builder.build()
    }
}

/// Builder for [`Query`]; see [`Query::threshold`] / [`Query::top_k`].
#[derive(Debug, Clone)]
pub struct QueryBuilder {
    pattern: Vec<Sym>,
    objective: Objective,
    verify: VerifyMode,
    metric: Metric,
    temporal: Option<TemporalConstraint>,
    temporal_filter: bool,
    temporal_postings: bool,
    parallelism: Parallelism,
    deadline_ms: Option<u64>,
}

impl QueryBuilder {
    fn new(pattern: Vec<Sym>, objective: Objective) -> Self {
        QueryBuilder {
            pattern,
            objective,
            verify: VerifyMode::default(),
            metric: Metric::default(),
            temporal: None,
            temporal_filter: false,
            temporal_postings: false,
            parallelism: Parallelism::default(),
            deadline_ms: None,
        }
    }

    /// Verification strategy (default: the paper's bidirectional tries).
    /// Only WED distinguishes strategies; non-WED metrics verify by one
    /// exact scan per candidate trajectory regardless of this setting.
    pub fn verify(mut self, mode: VerifyMode) -> Self {
        self.verify = mode;
        self
    }

    /// Distance metric the threshold ranges over (default
    /// [`Metric::Wed`]; see [`crate::metric`] for the alternatives and
    /// their filter bounds).
    pub fn metric(mut self, metric: Metric) -> Self {
        self.metric = metric;
        self
    }

    /// Restricts matched spans to a temporal constraint (§2.3).
    pub fn temporal(mut self, constraint: TemporalConstraint) -> Self {
        self.temporal = Some(constraint);
        self
    }

    /// Applies the TF candidate pre-filter (§4.3) when a temporal
    /// constraint is set.
    pub fn temporal_filter(mut self, on: bool) -> Self {
        self.temporal_filter = on;
        self
    }

    /// Generates candidates by binary search on by-departure-sorted
    /// postings (§4.3). Requires a temporal constraint *and* an engine
    /// whose index was built with temporal postings —
    /// [`run`](crate::SearchEngine::run) rejects it otherwise instead of
    /// silently falling back.
    pub fn temporal_postings(mut self, on: bool) -> Self {
        self.temporal_postings = on;
        self
    }

    /// Execution schedule (default sequential).
    pub fn parallelism(mut self, parallelism: Parallelism) -> Self {
        self.parallelism = parallelism;
        self
    }

    /// Latency budget in milliseconds (default: none). Must be at least 1;
    /// see [`Query::deadline_ms`] for when the clock starts and
    /// [`crate::deadline`] for the enforcement points.
    pub fn deadline_ms(mut self, ms: u64) -> Self {
        self.deadline_ms = Some(ms);
        self
    }

    /// Validates and freezes the query.
    pub fn build(self) -> Result<Query, QueryError> {
        if self.pattern.is_empty() {
            return Err(QueryError::EmptyPattern);
        }
        match self.objective {
            Objective::Threshold { tau } => {
                if !(tau.is_finite() && tau > 0.0) {
                    return Err(QueryError::InvalidTau(tau));
                }
            }
            Objective::TopK {
                k,
                initial_tau,
                max_tau,
            } => {
                if k == 0 {
                    return Err(QueryError::InvalidK);
                }
                if !(initial_tau.is_finite()
                    && max_tau.is_finite()
                    && initial_tau > 0.0
                    && initial_tau <= max_tau)
                {
                    return Err(QueryError::InvalidTauRange {
                        initial_tau,
                        max_tau,
                    });
                }
            }
        }
        self.metric.validate()?;
        if let Some(c) = &self.temporal {
            // `TimeInterval`'s fields are public, so an unordered interval
            // can be constructed without `TimeInterval::new`; validate the
            // same `start <= end` invariant `from_json` enforces, keeping
            // the to_json/from_json round-trip total over built queries.
            let (start, end) = (c.interval.start, c.interval.end);
            if !(start.is_finite() && end.is_finite() && start <= end) {
                return Err(QueryError::InvalidTemporalInterval { start, end });
            }
        }
        if self.temporal_postings && self.temporal.is_none() {
            return Err(QueryError::TemporalPostingsWithoutConstraint);
        }
        if self.parallelism == Parallelism::InQuery(0) {
            return Err(QueryError::ZeroThreads);
        }
        if self.deadline_ms == Some(0) {
            return Err(QueryError::InvalidDeadline);
        }
        Ok(Query {
            pattern: self.pattern,
            objective: self.objective,
            verify: self.verify,
            metric: self.metric,
            temporal: self.temporal,
            temporal_filter: self.temporal_filter,
            temporal_postings: self.temporal_postings,
            parallelism: self.parallelism,
            deadline_ms: self.deadline_ms,
        })
    }
}

pub(crate) fn verify_name(mode: VerifyMode) -> &'static str {
    match mode {
        VerifyMode::Trie => "trie",
        VerifyMode::Local => "local",
        VerifyMode::Sw => "sw",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_rejects_empty_pattern() {
        assert_eq!(
            Query::threshold(Vec::new(), 1.0).build().unwrap_err(),
            QueryError::EmptyPattern
        );
    }

    #[test]
    fn build_rejects_bad_tau() {
        for tau in [0.0, -1.0, f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let err = Query::threshold(vec![1, 2], tau).build().unwrap_err();
            assert!(matches!(err, QueryError::InvalidTau(_)), "tau={tau}: {err}");
        }
    }

    #[test]
    fn build_rejects_zero_k_and_bad_ranges() {
        assert_eq!(
            Query::top_k(vec![1], 0, 0.5, 2.0).build().unwrap_err(),
            QueryError::InvalidK
        );
        for (lo, hi) in [(0.0, 1.0), (2.0, 1.0), (f64::NAN, 1.0), (0.5, f64::NAN)] {
            let err = Query::top_k(vec![1], 3, lo, hi).build().unwrap_err();
            assert!(
                matches!(err, QueryError::InvalidTauRange { .. }),
                "({lo},{hi}): {err}"
            );
        }
    }

    #[test]
    fn build_rejects_postings_without_constraint() {
        assert_eq!(
            Query::threshold(vec![1], 1.0)
                .temporal_postings(true)
                .build()
                .unwrap_err(),
            QueryError::TemporalPostingsWithoutConstraint
        );
    }

    #[test]
    fn build_rejects_zero_in_query_threads() {
        assert_eq!(
            Query::threshold(vec![1], 1.0)
                .parallelism(Parallelism::InQuery(0))
                .build()
                .unwrap_err(),
            QueryError::ZeroThreads
        );
    }

    #[test]
    fn build_rejects_non_finite_interval() {
        let c = TemporalConstraint::overlaps(TimeInterval::new(0.0, f64::INFINITY));
        assert!(matches!(
            Query::threshold(vec![1], 1.0).temporal(c).build(),
            Err(QueryError::InvalidTemporalInterval { .. })
        ));
    }

    #[test]
    fn build_rejects_unordered_interval() {
        // `TimeInterval`'s fields are pub, so `new`'s ordering assert can
        // be bypassed; `build()` must enforce the same `start <= end`
        // invariant `from_json` does, or round-trips would not be total.
        let c = TemporalConstraint::overlaps(TimeInterval {
            start: 5.0,
            end: 1.0,
        });
        assert_eq!(
            Query::threshold(vec![1], 1.0)
                .temporal(c)
                .build()
                .unwrap_err(),
            QueryError::InvalidTemporalInterval {
                start: 5.0,
                end: 1.0
            }
        );
    }

    #[test]
    fn build_rejects_zero_deadline() {
        assert_eq!(
            Query::threshold(vec![1], 1.0)
                .deadline_ms(0)
                .build()
                .unwrap_err(),
            QueryError::InvalidDeadline
        );
        let q = Query::threshold(vec![1], 1.0)
            .deadline_ms(250)
            .build()
            .unwrap();
        assert_eq!(q.deadline_ms(), Some(250));
    }

    #[test]
    fn deadline_round_trips_and_revalidates() {
        let q = Query::threshold(vec![1, 2], 1.0)
            .deadline_ms(1500)
            .build()
            .unwrap();
        let text = q.to_json();
        assert!(text.contains("\"deadline_ms\":1500"));
        assert_eq!(Query::from_json(&text).unwrap(), q);
        // Absent on the wire means no deadline.
        let q = Query::threshold(vec![1, 2], 1.0).build().unwrap();
        assert!(!q.to_json().contains("deadline_ms"));
        assert_eq!(Query::from_json(&q.to_json()).unwrap().deadline_ms(), None);
        // A zero wire deadline is re-validated, not silently accepted.
        let err = Query::from_json(
            r#"{"pattern":[1],"objective":{"type":"threshold","tau":1},"deadline_ms":0}"#,
        )
        .unwrap_err();
        assert_eq!(err, QueryError::InvalidDeadline);
        // Non-integer deadlines are a parse error.
        let err = Query::from_json(
            r#"{"pattern":[1],"objective":{"type":"threshold","tau":1},"deadline_ms":"soon"}"#,
        )
        .unwrap_err();
        assert!(matches!(err, QueryError::Parse(_)));
    }

    #[test]
    fn json_round_trip_exact() {
        let q = Query::top_k(vec![3, 1, 4, 1, 5], 7, 0.1, 1.0 / 3.0)
            .verify(VerifyMode::Local)
            .temporal(TemporalConstraint::within(TimeInterval::new(-1.5, 9e9)))
            .temporal_filter(true)
            .temporal_postings(true)
            .parallelism(Parallelism::InQuery(4))
            .deadline_ms(2000)
            .build()
            .unwrap();
        let text = q.to_json();
        assert_eq!(Query::from_json(&text).unwrap(), q);
        // Defaults round-trip too (temporal omitted entirely).
        let q = Query::threshold(vec![0], 2.5).build().unwrap();
        let text = q.to_json();
        assert!(!text.contains("temporal\":{"));
        assert_eq!(Query::from_json(&text).unwrap(), q);
    }

    #[test]
    fn from_json_revalidates() {
        // Structurally valid JSON, semantically invalid query.
        let err = Query::from_json(r#"{"pattern":[],"objective":{"type":"threshold","tau":1}}"#)
            .unwrap_err();
        assert_eq!(err, QueryError::EmptyPattern);
        let err = Query::from_json(
            r#"{"pattern":[1],"objective":{"type":"top_k","k":0,"initial_tau":1,"max_tau":2}}"#,
        )
        .unwrap_err();
        assert_eq!(err, QueryError::InvalidK);
    }

    #[test]
    fn from_json_rejects_malformed() {
        for bad in [
            "",
            "{}",
            r#"{"pattern":[1]}"#,
            r#"{"pattern":[1],"objective":{"type":"nope"}}"#,
            r#"{"pattern":["x"],"objective":{"type":"threshold","tau":1}}"#,
            r#"{"pattern":[1],"objective":{"type":"threshold","tau":1},"verify":"fast"}"#,
        ] {
            assert!(
                matches!(Query::from_json(bad), Err(QueryError::Parse(_))),
                "accepted {bad:?}"
            );
        }
    }

    #[test]
    fn metric_round_trips_and_wed_stays_byte_identical() {
        // WED queries never carry a "metric" key — pre-metric peers keep
        // decoding them, and pre-metric wire bytes keep decoding here.
        let q = Query::threshold(vec![1, 2], 1.5).build().unwrap();
        assert!(!q.to_json().contains("metric"));
        assert_eq!(
            Query::from_json(&q.to_json()).unwrap().metric(),
            Metric::Wed
        );

        for metric in [Metric::Dtw, Metric::Frechet, Metric::Lcss { eps: 0.25 }] {
            let q = Query::threshold(vec![1, 2], 1.5)
                .metric(metric)
                .build()
                .unwrap();
            let text = q.to_json();
            assert!(text.contains("\"metric\":{\"name\":"), "{text}");
            assert_eq!(Query::from_json(&text).unwrap(), q);
        }
    }

    #[test]
    fn metric_wire_errors_are_typed() {
        let base = r#""objective":{"type":"threshold","tau":1}"#;
        let err = Query::from_json(&format!(
            r#"{{"pattern":[1],{base},"metric":{{"name":"hausdorff"}}}}"#
        ))
        .unwrap_err();
        assert!(matches!(err, QueryError::Parse(_)));
        // A wire eps is re-validated like a builder eps.
        let err = Query::from_json(&format!(
            r#"{{"pattern":[1],{base},"metric":{{"name":"lcss","eps":-1}}}}"#
        ))
        .unwrap_err();
        assert_eq!(err, QueryError::InvalidEps(-1.0));
        let err = Query::threshold(vec![1], 1.0)
            .metric(Metric::Lcss { eps: f64::NAN })
            .build()
            .unwrap_err();
        assert!(matches!(err, QueryError::InvalidEps(eps) if eps.is_nan()));
    }

    #[test]
    fn error_messages_are_informative() {
        let e = QueryError::InvalidTau(f64::NAN);
        assert!(e.to_string().contains("finite and positive"));
        let e = QueryError::TemporalPostingsUnavailable;
        assert!(e.to_string().contains("by-departure"));
    }
}
