//! # trajsearch-core — fast subtrajectory similarity search under WED
//!
//! From-scratch implementation of the paper *"Fast Subtrajectory Similarity
//! Search in Road Networks under Weighted Edit Distance Constraints"*
//! (Koide, Xiao & Ishikawa, VLDB 2020): given a query path `Q`, a weighted
//! edit distance `wed` and a threshold `τ`, find **every** subtrajectory
//! `P^(id)[s..=t]` in a trajectory database with `wed(P[s..=t], Q) < τ`
//! (Definition 3) — exactly, for *any* cost model in the WED class.
//!
//! The engine follows the paper's filter-and-verify design:
//!
//! * [`filter`] — **subsequence filtering** (Theorem 1): a τ-subsequence
//!   `Q' ⊆ Q` with `Σ c(q) ≥ τ` certifies that matches must touch the
//!   substitution neighborhood `B(Q')`; the choice of `Q'` minimizing the
//!   candidate count is NP-hard and solved by the 2-approximate
//!   [`mincand`] greedy (Algorithm 1).
//! * [`index`] — inverted index with per-symbol postings `(id, j)` (§4.1),
//!   behind the [`PostingSource`] abstraction so the storage layout is
//!   swappable without touching query semantics.
//! * [`sharded`] — postings partitioned by `traj_id % num_shards`: parallel
//!   construction on scoped threads, appends touching one shard, identical
//!   search results at any shard count.
//! * [`verify`] — **local verification** growing bidirectionally from
//!   candidate anchors with the Eq. (11) early-termination bound, and
//!   **bidirectional tries** caching DP columns across candidates (§5).
//! * [`temporal`] — temporal constraints and the TF pre-filter (§4.3).
//! * [`stats`] — the instrumentation behind Tables 4 and 5.
//! * [`batch`] — parallel batched query execution over scoped threads
//!   (per-query fan-out, thread-local tries), plus the in-query
//!   per-trajectory sharding of
//!   [`SearchEngine::par_search_opts`](search::SearchEngine::par_search_opts).
//!
//! ## Quick example
//!
//! ```
//! use trajsearch_core::SearchEngine;
//! use traj::{Trajectory, TrajectoryStore};
//! use wed::models::Lev;
//!
//! let mut store = TrajectoryStore::new();
//! store.push(Trajectory::untimed(vec![0, 1, 2, 3, 4]));
//! store.push(Trajectory::untimed(vec![7, 1, 9, 3, 7]));
//!
//! let engine = SearchEngine::new(&Lev, &store, 10);
//! let hits = engine.search(&[1, 2, 3], 2.0);
//! // Trajectory 0 contains [1,2,3] exactly; trajectory 1 within distance 1.
//! assert!(hits.matches.iter().any(|m| m.id == 0 && m.dist == 0.0));
//! assert!(hits.matches.iter().any(|m| m.id == 1 && m.dist == 1.0));
//! ```

pub mod batch;
pub mod filter;
pub mod index;
pub mod mincand;
pub mod results;
pub mod search;
pub mod sharded;
pub mod stats;
pub mod temporal;
pub mod topk;
pub mod verify;

pub use batch::{BatchOptions, BatchOutcome, BatchStats};
pub use filter::FilterPlan;
pub use index::{InvertedIndex, Posting, PostingSource};
pub use results::{MatchResult, ResultSet};
pub use search::{exact_fallback_scan, SearchEngine, SearchOptions, SearchOutcome};
pub use sharded::ShardedIndex;
pub use stats::SearchStats;
pub use temporal::{TemporalConstraint, TemporalPredicate, TimeInterval};
pub use topk::{per_trajectory_best, TopKEntry};
pub use verify::{Candidate, VerifyMode};
