//! # trajsearch-core — fast subtrajectory similarity search under WED
//!
//! From-scratch implementation of the paper *"Fast Subtrajectory Similarity
//! Search in Road Networks under Weighted Edit Distance Constraints"*
//! (Koide, Xiao & Ishikawa, VLDB 2020): given a query path `Q`, a weighted
//! edit distance `wed` and a threshold `τ`, find **every** subtrajectory
//! `P^(id)[s..=t]` in a trajectory database with `wed(P[s..=t], Q) < τ`
//! (Definition 3) — exactly, for *any* cost model in the WED class.
//!
//! The engine follows the paper's filter-and-verify design:
//!
//! * [`filter`] — **subsequence filtering** (Theorem 1): a τ-subsequence
//!   `Q' ⊆ Q` with `Σ c(q) ≥ τ` certifies that matches must touch the
//!   substitution neighborhood `B(Q')`; the choice of `Q'` minimizing the
//!   candidate count is NP-hard and solved by the 2-approximate
//!   [`mincand`] greedy (Algorithm 1).
//! * [`index`] — inverted index with per-symbol postings `(id, j)` (§4.1),
//!   behind the [`PostingSource`] abstraction so the storage layout is
//!   swappable without touching query semantics.
//! * [`sharded`] — postings partitioned by `traj_id % num_shards`: parallel
//!   construction on scoped threads, appends touching one shard, identical
//!   search results at any shard count.
//! * [`compact`] — delta+varint postings in one contiguous arena
//!   ([`CompactIndex`]): the immutable, memory-compact layout the
//!   `trajsearch-persist` snapshot format writes to disk and reopens
//!   without a rebuild, again with identical search results.
//! * [`verify`] — **local verification** growing bidirectionally from
//!   candidate anchors with the Eq. (11) early-termination bound, and
//!   **bidirectional tries** caching DP columns across candidates (§5).
//!   Verification is metric-pluggable through the [`Verifier`] trait.
//! * [`metric`] — optional non-WED distances (DTW, LCSS(ε), discrete
//!   Fréchet) selected per query via [`Metric`], verified against the
//!   `baselines` crate and reusing the filter front half where its bound
//!   is sound for the metric.
//! * [`temporal`] — temporal constraints and the TF pre-filter (§4.3).
//! * [`stats`] — the instrumentation behind Tables 4 and 5. Alongside the
//!   aggregate counters, every execution path is threaded with a
//!   [`Tracer`]: [`SearchEngine::run_traced`](search::SearchEngine::run_traced)
//!   records per-phase spans (filter, lookup, dedup, per-shard
//!   verification, top-k growth rounds, fallback scans) into a
//!   [`TraceSink`], at zero cost when untraced.
//! * [`batch`] — workload-level execution types; one batch may mix
//!   thresholds, top-k and temporal queries.
//! * [`deadline`] — per-query latency budgets with cooperative
//!   cancellation checkpoints, the engine-side half of a serving layer's
//!   typed-timeout contract.
//! * [`query`] / [`api`] — the unified request/response surface:
//!   a validated, JSON-serializable [`Query`] answered by
//!   [`SearchEngine::run`](search::SearchEngine::run) /
//!   [`run_batch`](search::SearchEngine::run_batch), with engines built by
//!   [`EngineBuilder`]. These two methods are the only non-deprecated query
//!   entry points; the pre-redesign methods remain as `#[deprecated]`
//!   wrappers with byte-identical results.
//!
//! ## Quick example
//!
//! ```
//! use trajsearch_core::{EngineBuilder, IndexLayout, Query};
//! use traj::{Trajectory, TrajectoryStore};
//! use wed::models::Lev;
//!
//! let mut store = TrajectoryStore::new();
//! store.push(Trajectory::untimed(vec![0, 1, 2, 3, 4]));
//! store.push(Trajectory::untimed(vec![7, 1, 9, 3, 7]));
//!
//! let engine = EngineBuilder::new(&Lev, &store, 10)
//!     .layout(IndexLayout::Sharded(2)) // layouts never change results
//!     .build();
//! let query = Query::threshold(vec![1, 2, 3], 2.0).build()?;
//! let hits = engine.run(&query)?;
//! // Trajectory 0 contains [1,2,3] exactly; trajectory 1 within distance 1.
//! assert!(hits.matches.iter().any(|m| m.id == 0 && m.dist == 0.0));
//! assert!(hits.matches.iter().any(|m| m.id == 1 && m.dist == 1.0));
//!
//! // The same `Query`/`Response` types are the wire format.
//! let wire = query.to_json();
//! assert_eq!(Query::from_json(&wire)?, query);
//! # Ok::<(), trajsearch_core::QueryError>(())
//! ```

pub mod api;
pub mod batch;
pub mod compact;
pub mod deadline;
pub mod filter;
pub mod index;
pub mod json;
pub mod metric;
pub mod mincand;
pub mod query;
pub mod results;
pub mod search;
pub mod sharded;
pub mod stats;
pub mod temporal;
pub mod topk;
pub mod verify;

pub use api::{AnyIndex, BatchResponse, EngineBuilder, IndexLayout, RemoteSpec, Response};
pub use batch::{BatchOptions, BatchOutcome, BatchStats};
pub use compact::CompactIndex;
pub use deadline::Deadline;
pub use filter::FilterPlan;
pub use index::{InvertedIndex, Posting, PostingSource, SizeBreakdown};
pub use metric::{DtwVerifier, FrechetVerifier, LcssVerifier, Metric};
pub use query::{Objective, Parallelism, Query, QueryBuilder, QueryError};
pub use results::{MatchResult, ResultSet};
pub use search::{exact_fallback_scan, SearchEngine, SearchOptions, SearchOutcome};
pub use sharded::{IndexShard, ShardedIndex};
pub use stats::SearchStats;
pub use temporal::{TemporalConstraint, TemporalPredicate, TimeInterval};
pub use topk::{per_trajectory_best, TopKEntry};
pub use verify::{Candidate, TrieCache, Verifier, VerifyMode, WedVerifier};

// Observability primitives, re-exported so downstream crates (serve,
// distrib) name one tracing vocabulary without a direct obs dependency.
pub use trajsearch_obs::{SpanRecord, TraceSink, Tracer};
