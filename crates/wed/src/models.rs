//! The six WED instances evaluated in the paper (§2.2.2–§2.2.3).
//!
//! | Instance | alphabet | `sub(a,b)` | `ins(a)` | `B(q)` (η) | `c(q)` |
//! |----------|----------|------------|----------|------------|--------|
//! | [`Lev`]    | V or E | 0 / 1        | 1          | `{q}` (η=0)            | 1 |
//! | [`Edr`]    | V      | 0 if `d≤ε` else 1 | 1    | Euclid ball ε (η=0)    | 1 |
//! | [`Erp`]    | V      | `d(a,b)`     | `d(a,g)`   | Euclid ball η          | min(nearest beyond η, `d(q,g)`) |
//! | [`NetEdr`] | V      | 0 if `spd≤ε` else 1 | 1  | network ball ε (η=0)   | 1 |
//! | [`NetErp`] | V      | `spd(a,b)`   | `G_del`    | network ball η         | min(nearest beyond η, `G_del`) |
//! | [`Surs`]   | E      | `w(a)+w(b)` (0 if a=b) | `w(a)` | `{q}` (η=0)  | `w(q)` |
//!
//! `d` is Euclidean distance, `spd` the undirected shortest-path distance
//! (per §2.2.3 the network is symmetrized to keep WED symmetric), `g` the ERP
//! reference point (barycenter by default), and `w` the road length.

use crate::cost::{CostModel, Sym, WedInstance};
use rnet::dijkstra::{bounded, Mode};
use rnet::geo::barycenter;
use rnet::{HubLabels, KdTree, Point, RoadNetwork};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

// ---------------------------------------------------------------------------
// Levenshtein
// ---------------------------------------------------------------------------

/// Levenshtein distance (Eq. 1): unit costs. Works on either representation.
#[derive(Debug, Clone, Copy, Default)]
pub struct Lev;

impl CostModel for Lev {
    fn sub(&self, a: Sym, b: Sym) -> f64 {
        if a == b {
            0.0
        } else {
            1.0
        }
    }
    fn ins(&self, _a: Sym) -> f64 {
        1.0
    }
}

impl WedInstance for Lev {
    fn name(&self) -> &'static str {
        "Lev"
    }
    fn neighbors(&self, q: Sym) -> Vec<Sym> {
        vec![q]
    }
    fn lower_cost(&self, _q: Sym) -> f64 {
        1.0
    }
}

// ---------------------------------------------------------------------------
// EDR
// ---------------------------------------------------------------------------

/// Edit distance on real sequences (Eq. 2): substitution is free within a
/// Euclidean matching threshold `ε`, unit otherwise.
pub struct Edr {
    net: Arc<RoadNetwork>,
    tree: KdTree,
    eps: f64,
}

impl Edr {
    pub fn new(net: Arc<RoadNetwork>, eps: f64) -> Self {
        assert!(eps >= 0.0);
        let tree = KdTree::build(net.coords());
        Edr { net, tree, eps }
    }

    pub fn eps(&self) -> f64 {
        self.eps
    }
}

impl CostModel for Edr {
    fn sub(&self, a: Sym, b: Sym) -> f64 {
        if self.net.coord(a).dist(&self.net.coord(b)) <= self.eps {
            0.0
        } else {
            1.0
        }
    }
    fn ins(&self, _a: Sym) -> f64 {
        1.0
    }
}

impl WedInstance for Edr {
    fn name(&self) -> &'static str {
        "EDR"
    }
    /// η = 0 for unit-cost models (§6.1): `B(q)` is the set of vertices with
    /// zero substitution cost, i.e. the ε-ball.
    fn neighbors(&self, q: Sym) -> Vec<Sym> {
        self.tree.range(self.net.coord(q), self.eps)
    }
    fn lower_cost(&self, _q: Sym) -> f64 {
        1.0
    }
}

// ---------------------------------------------------------------------------
// ERP
// ---------------------------------------------------------------------------

/// Edit distance with real penalty (Eq. 3): substitution costs the Euclidean
/// distance, insertion/deletion the distance to a reference point `g`.
pub struct Erp {
    net: Arc<RoadNetwork>,
    tree: KdTree,
    g: Point,
    eta: f64,
}

impl Erp {
    /// `eta` is the neighborhood threshold of Definition 4; Appendix D
    /// recommends a small positive value (e.g. 1e-4 × the median
    /// nearest-neighbor distance).
    pub fn new(net: Arc<RoadNetwork>, eta: f64) -> Self {
        let g = barycenter(net.coords());
        Self::with_reference(net, eta, g)
    }

    pub fn with_reference(net: Arc<RoadNetwork>, eta: f64, g: Point) -> Self {
        assert!(eta >= 0.0);
        let tree = KdTree::build(net.coords());
        Erp { net, tree, g, eta }
    }

    pub fn reference(&self) -> Point {
        self.g
    }

    pub fn eta(&self) -> f64 {
        self.eta
    }

    /// Coordinate of a symbol (used by the ERP-index baseline, which indexes
    /// reference-centered coordinate sums).
    pub fn coord(&self, q: Sym) -> Point {
        self.net.coord(q)
    }
}

impl CostModel for Erp {
    fn sub(&self, a: Sym, b: Sym) -> f64 {
        self.net.coord(a).dist(&self.net.coord(b))
    }
    fn ins(&self, a: Sym) -> f64 {
        self.net.coord(a).dist(&self.g)
    }
}

impl WedInstance for Erp {
    fn name(&self) -> &'static str {
        "ERP"
    }
    fn neighbors(&self, q: Sym) -> Vec<Sym> {
        self.tree.range(self.net.coord(q), self.eta)
    }
    /// `c(q) = min(sub to nearest vertex beyond η, del(q))` — Eq. (7) with
    /// the deletion option `sub(q, ε) = d(q, g)` included.
    fn lower_cost(&self, q: Sym) -> f64 {
        let del = self.ins(q);
        match self.tree.nearest_outside(self.net.coord(q), self.eta) {
            Some((_, d)) => del.min(d),
            None => del,
        }
    }
}

// ---------------------------------------------------------------------------
// NetEDR
// ---------------------------------------------------------------------------

/// EDR with shortest-path distance in place of Euclidean distance (§2.2.3).
pub struct NetEdr {
    net: Arc<RoadNetwork>,
    hubs: Arc<HubLabels>,
    eps: f64,
}

impl NetEdr {
    pub fn new(net: Arc<RoadNetwork>, hubs: Arc<HubLabels>, eps: f64) -> Self {
        assert!(eps >= 0.0);
        NetEdr { net, hubs, eps }
    }
}

impl CostModel for NetEdr {
    fn sub(&self, a: Sym, b: Sym) -> f64 {
        if self.hubs.query(a, b) <= self.eps {
            0.0
        } else {
            1.0
        }
    }
    fn ins(&self, _a: Sym) -> f64 {
        1.0
    }
}

impl WedInstance for NetEdr {
    fn name(&self) -> &'static str {
        "NetEDR"
    }
    fn neighbors(&self, q: Sym) -> Vec<Sym> {
        bounded(&self.net, q, self.eps, Mode::UndirectedLength)
            .within
            .into_iter()
            .map(|(v, _)| v)
            .collect()
    }
    fn lower_cost(&self, _q: Sym) -> f64 {
        1.0
    }
}

// ---------------------------------------------------------------------------
// NetERP
// ---------------------------------------------------------------------------

/// ERP with shortest-path distance and a constant insertion/deletion cost
/// `G_del` (§2.2.3; the paper uses 2 km).
pub struct NetErp {
    net: Arc<RoadNetwork>,
    hubs: Arc<HubLabels>,
    g_del: f64,
    eta: f64,
}

impl NetErp {
    pub fn new(net: Arc<RoadNetwork>, hubs: Arc<HubLabels>, g_del: f64, eta: f64) -> Self {
        assert!(g_del > 0.0 && eta >= 0.0);
        NetErp {
            net,
            hubs,
            g_del,
            eta,
        }
    }
}

impl CostModel for NetErp {
    fn sub(&self, a: Sym, b: Sym) -> f64 {
        self.hubs.query(a, b)
    }
    fn ins(&self, _a: Sym) -> f64 {
        self.g_del
    }
}

impl WedInstance for NetErp {
    fn name(&self) -> &'static str {
        "NetERP"
    }
    fn neighbors(&self, q: Sym) -> Vec<Sym> {
        bounded(&self.net, q, self.eta, Mode::UndirectedLength)
            .within
            .into_iter()
            .map(|(v, _)| v)
            .collect()
    }
    fn lower_cost(&self, q: Sym) -> f64 {
        match bounded(&self.net, q, self.eta, Mode::UndirectedLength).next_beyond {
            Some(d) => self.g_del.min(d),
            None => self.g_del,
        }
    }
}

// ---------------------------------------------------------------------------
// SURS
// ---------------------------------------------------------------------------

/// Shortest unshared road segments (Eq. 4), on the edge alphabet:
/// `sub(a,b) = w(a) + w(b)` makes substitution equivalent to delete+insert,
/// so SURS totals the travel cost of edges not shared by the two paths.
pub struct Surs {
    net: Arc<RoadNetwork>,
}

impl Surs {
    pub fn new(net: Arc<RoadNetwork>) -> Self {
        Surs { net }
    }

    fn w(&self, e: Sym) -> f64 {
        self.net.edge(e).length
    }

    /// Total weight of an edge string (used by the LORS/LCRS relations of
    /// Appendix F).
    pub fn total_weight(&self, s: &[Sym]) -> f64 {
        s.iter().map(|&e| self.w(e)).sum()
    }
}

impl CostModel for Surs {
    fn sub(&self, a: Sym, b: Sym) -> f64 {
        if a == b {
            0.0
        } else {
            self.w(a) + self.w(b)
        }
    }
    fn ins(&self, a: Sym) -> f64 {
        self.w(a)
    }
}

impl WedInstance for Surs {
    fn name(&self) -> &'static str {
        "SURS"
    }
    /// η = 0 (Appendix D: a positive η would pull in spatially distant short
    /// edges, against SURS semantics).
    fn neighbors(&self, q: Sym) -> Vec<Sym> {
        vec![q]
    }
    /// Positive edge weights make deletion the cheapest way out: `c(q)=w(q)`.
    fn lower_cost(&self, q: Sym) -> f64 {
        self.w(q)
    }
}

// ---------------------------------------------------------------------------
// Memoizing wrapper
// ---------------------------------------------------------------------------

/// Shard count of the [`Memo`] cache; a power of two so the shard pick is a
/// mask. 16 keeps contention negligible at batch-worker thread counts while
/// the per-shard maps stay cache-friendly.
const MEMO_SHARDS: usize = 16;

/// Memoizes substitution costs of an inner model. NetEDR/NetERP evaluate
/// `spd(a, b)` in the innermost DP loop; queries repeat heavily across
/// verification candidates, so a memo pays off.
///
/// The cache is a **sharded-lock map** (16 mutex-guarded shards, picked by
/// a hash of the symmetric key), so `Memo<M>` is `Sync` whenever `M` is and
/// batch workers share one memoized model: parallel
/// [`run_batch`](../trajsearch_core) runs get cross-query memoization
/// instead of the unmemoized fallback the old `RefCell` cache forced.
/// Misses compute `inner.sub` *outside* any lock (hub-label queries are the
/// expensive part), so two threads may race to fill the same key — both
/// write the same deterministic value, and results are unaffected.
pub struct Memo<M> {
    inner: M,
    shards: Vec<Mutex<HashMap<(Sym, Sym), f64>>>,
}

impl<M> Memo<M> {
    pub fn new(inner: M) -> Self {
        Memo {
            inner,
            shards: (0..MEMO_SHARDS)
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
        }
    }

    pub fn into_inner(self) -> M {
        self.inner
    }

    fn shard(&self, key: (Sym, Sym)) -> &Mutex<HashMap<(Sym, Sym), f64>> {
        // Fibonacci-style mix of both halves; the top bits select the shard.
        let h = (key.0 as u64)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add((key.1 as u64).wrapping_mul(0x517C_C1B7_2722_0A95));
        &self.shards[(h >> 60) as usize & (MEMO_SHARDS - 1)]
    }
}

impl<M: CostModel> CostModel for Memo<M> {
    fn sub(&self, a: Sym, b: Sym) -> f64 {
        let key = if a <= b { (a, b) } else { (b, a) };
        let shard = self.shard(key);
        if let Some(&v) = shard.lock().expect("memo shard poisoned").get(&key) {
            return v;
        }
        let v = self.inner.sub(a, b);
        shard.lock().expect("memo shard poisoned").insert(key, v);
        v
    }
    fn ins(&self, a: Sym) -> f64 {
        self.inner.ins(a)
    }
}

impl<M: WedInstance> WedInstance for Memo<M> {
    fn name(&self) -> &'static str {
        self.inner.name()
    }
    fn neighbors(&self, q: Sym) -> Vec<Sym> {
        self.inner.neighbors(q)
    }
    fn lower_cost(&self, q: Sym) -> f64 {
        self.inner.lower_cost(q)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::check_axioms_on_sample;
    use rnet::{CityParams, NetworkKind};

    fn setup() -> (Arc<RoadNetwork>, Arc<HubLabels>) {
        let net = Arc::new(CityParams::tiny(NetworkKind::Grid).generate());
        let hubs = Arc::new(HubLabels::build(&net));
        (net, hubs)
    }

    #[test]
    fn all_models_satisfy_axioms() {
        let (net, hubs) = setup();
        let sample: Vec<Sym> = (0..12).collect();
        check_axioms_on_sample(&Lev, &sample);
        check_axioms_on_sample(&Edr::new(net.clone(), 130.0), &sample);
        check_axioms_on_sample(&Erp::new(net.clone(), 10.0), &sample);
        check_axioms_on_sample(&NetEdr::new(net.clone(), hubs.clone(), 130.0), &sample);
        check_axioms_on_sample(
            &NetErp::new(net.clone(), hubs.clone(), 2000.0, 130.0),
            &sample,
        );
        check_axioms_on_sample(&Surs::new(net.clone()), &sample);
    }

    #[test]
    fn neighborhoods_contain_self() {
        let (net, hubs) = setup();
        let models: Vec<Box<dyn WedInstance>> = vec![
            Box::new(Lev),
            Box::new(Edr::new(net.clone(), 130.0)),
            Box::new(Erp::new(net.clone(), 10.0)),
            Box::new(NetEdr::new(net.clone(), hubs.clone(), 130.0)),
            Box::new(NetErp::new(net.clone(), hubs.clone(), 2000.0, 130.0)),
        ];
        for m in &models {
            for q in [0u32, 5, 17] {
                assert!(
                    m.neighbors(q).contains(&q),
                    "{} B(q) must contain q",
                    m.name()
                );
            }
        }
    }

    #[test]
    fn neighborhood_members_have_sub_at_most_eta() {
        let (net, hubs) = setup();
        // EDR: η = 0, so every member must have sub = 0.
        let edr = Edr::new(net.clone(), 130.0);
        for b in edr.neighbors(9) {
            assert_eq!(edr.sub(9, b), 0.0);
        }
        // ERP: η = 150, members have sub ≤ 150.
        let erp = Erp::new(net.clone(), 150.0);
        for b in erp.neighbors(9) {
            assert!(erp.sub(9, b) <= 150.0);
        }
        // NetERP: η = 130 in network meters.
        let nerp = NetErp::new(net.clone(), hubs.clone(), 2000.0, 130.0);
        for b in nerp.neighbors(9) {
            assert!(nerp.sub(9, b) <= 130.0);
        }
    }

    #[test]
    fn lower_cost_is_sound() {
        // For every model and sample q: no symbol outside B(q) (sampled) may
        // have sub(q, ·) below c(q), and deletion cannot be cheaper either.
        let (net, hubs) = setup();
        let models: Vec<Box<dyn WedInstance>> = vec![
            Box::new(Lev),
            Box::new(Edr::new(net.clone(), 130.0)),
            Box::new(Erp::new(net.clone(), 150.0)),
            Box::new(NetEdr::new(net.clone(), hubs.clone(), 130.0)),
            Box::new(NetErp::new(net.clone(), hubs.clone(), 2000.0, 130.0)),
        ];
        for m in &models {
            for q in [0u32, 7, 23] {
                let c = m.lower_cost(q);
                let b: std::collections::HashSet<Sym> = m.neighbors(q).into_iter().collect();
                assert!(m.del(q) + 1e-12 >= c, "{}: del({q}) < c(q)", m.name());
                for cand in 0..net.num_vertices() as u32 {
                    if !b.contains(&cand) {
                        assert!(
                            m.sub(q, cand) + 1e-9 >= c,
                            "{}: sub({q},{cand})={} < c(q)={c}",
                            m.name(),
                            m.sub(q, cand)
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn surs_costs_are_edge_weights() {
        let (net, _) = setup();
        let surs = Surs::new(net.clone());
        let (e0, e1) = (0u32, 1u32);
        let (w0, w1) = (net.edge(e0).length, net.edge(e1).length);
        assert_eq!(surs.ins(e0), w0);
        assert_eq!(surs.sub(e0, e1), w0 + w1);
        assert_eq!(surs.sub(e0, e0), 0.0);
        assert_eq!(surs.lower_cost(e1), w1);
        assert_eq!(surs.neighbors(e1), vec![e1]);
    }

    #[test]
    fn erp_reference_defaults_to_barycenter() {
        let (net, _) = setup();
        let erp = Erp::new(net.clone(), 1.0);
        let g = rnet::geo::barycenter(net.coords());
        assert_eq!(erp.reference(), g);
        // ins(a) is the distance to g.
        assert!((erp.ins(0) - net.coord(0).dist(&g)).abs() < 1e-12);
    }

    #[test]
    fn netedr_matches_within_eps_only() {
        let (net, hubs) = setup();
        let m = NetEdr::new(net.clone(), hubs.clone(), 121.0);
        // Grid spacing 120: direct neighbors are within eps, diagonal is not.
        let v = 9u32; // interior vertex
        let nbrs = m.neighbors(v);
        for &b in &nbrs {
            assert_eq!(m.sub(v, b), 0.0);
        }
        assert!(nbrs.len() >= 3, "expected grid neighbors in network ball");
    }

    #[test]
    fn memo_is_sync_when_inner_is() {
        fn assert_sync<T: Sync>() {}
        assert_sync::<Memo<Lev>>();
        assert_sync::<Memo<NetErp>>();
        assert_sync::<Memo<NetEdr>>();
    }

    #[test]
    fn memo_shared_across_threads_matches_unmemoized() {
        // The sharded-lock cache must be transparent under concurrency:
        // many threads hammering overlapping keys observe exactly the
        // unmemoized values (racing fills write identical numbers).
        let (net, hubs) = setup();
        let raw = NetErp::new(net.clone(), hubs.clone(), 2000.0, 130.0);
        let memo = Memo::new(NetErp::new(net.clone(), hubs.clone(), 2000.0, 130.0));
        std::thread::scope(|scope| {
            for t in 0..4u32 {
                let memo = &memo;
                let raw = &raw;
                scope.spawn(move || {
                    for a in 0..12u32 {
                        for b in 0..12u32 {
                            // Overlapping key sets across threads.
                            let (a, b) = ((a + t) % 12, b);
                            assert_eq!(raw.sub(a, b), memo.sub(a, b));
                        }
                    }
                });
            }
        });
        // And the cache is actually warm afterwards.
        for a in 0..12u32 {
            assert_eq!(raw.sub(a, a + 1), memo.sub(a, a + 1));
        }
    }

    #[test]
    fn memo_returns_same_values() {
        let (net, hubs) = setup();
        let raw = NetErp::new(net.clone(), hubs.clone(), 2000.0, 130.0);
        let memo = Memo::new(NetErp::new(net.clone(), hubs.clone(), 2000.0, 130.0));
        for a in 0..10u32 {
            for b in 0..10u32 {
                assert_eq!(raw.sub(a, b), memo.sub(a, b));
                // Second lookup hits the cache.
                assert_eq!(raw.sub(a, b), memo.sub(a, b));
            }
        }
        assert_eq!(memo.name(), "NetERP");
        assert_eq!(raw.ins(3), memo.ins(3));
    }
}
