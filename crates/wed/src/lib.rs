//! Weighted edit distance (WED) — the similarity-function layer of the paper
//! (§2.2).
//!
//! WED is a *class* of edit distances whose insertion, deletion and
//! substitution costs are user-defined, subject to the assumptions of
//! Proposition 1 (non-negativity, symmetry, `sub(a,a) = 0`). The class
//! contains Levenshtein, EDR, ERP, their network-aware variants NetEDR and
//! NetERP, and SURS (shortest unshared road segments).
//!
//! * [`cost`] — the [`CostModel`] trait and the [`WedInstance`] extension that
//!   additionally exposes substitution neighborhoods `B(q)` (Definition 4)
//!   and lower costs `c(q)` (Eq. 7) to the filtering layer.
//! * [`models`] — the six concrete instances used in the paper's evaluation.
//! * [`dp`] — the quadratic DP for `wed(P, Q)` plus the column-at-a-time
//!   `step_dp` primitive shared with trie verification (Algorithm 6).
//! * [`sw`] — the Smith–Waterman adaptation for subtrajectory matching
//!   (Algorithm 7) and a threshold-scan variant that returns *all* matching
//!   substrings.
//! * [`nonwed`] — DTW, LCSS, LORS and LCRS, the non-WED comparators of the
//!   effectiveness experiments (§6.2).
//! * [`metric`] — engine-facing DTW/LCSS/discrete-Fréchet over symbols, with
//!   the cost model's `sub` as ground distance, plus their `*_scan_all`
//!   verification primitives.

pub mod cost;
pub mod dp;
pub mod metric;
pub mod models;
pub mod nonwed;
pub mod sw;

pub use cost::{CostModel, Sym, WedInstance};
pub use dp::{initial_column, step_dp, wed, wed_within};
pub use metric::{
    dtw_dist, dtw_scan_all, frechet_dist, frechet_scan_all, lcss_dist, lcss_scan_all,
};
pub use models::{Edr, Erp, Lev, NetEdr, NetErp, Surs};
pub use sw::{sw_best, sw_scan_all, SubMatch};
