//! Cost-model traits.
//!
//! [`CostModel`] captures the edit-operation costs of §2.2.1; every instance
//! must satisfy the paper's assumptions (checked by
//! [`check_axioms_on_sample`] and by property tests):
//!
//! * `sub(a, b) ≥ 0` for all `a, b` (non-negativity),
//! * `sub(a, b) = sub(b, a)` and hence `ins(a) = del(a)` (symmetry),
//! * `sub(a, a) = 0` (pseudo-positive definiteness).
//!
//! The triangle inequality is *not* required — the algorithms never use it.
//!
//! [`WedInstance`] extends the cost model with what subsequence filtering
//! needs: the substitution neighborhood `B(q)` (Definition 4) and the lower
//! cost `c(q) = min_{q' ∈ Σ⁺ \ B(q)} sub(q, q')` (Eq. 7, where deletion is
//! `sub(q, ε)`).

/// A symbol of the trajectory alphabet: a vertex id or an edge id.
pub type Sym = u32;

/// Edit-operation costs of a weighted edit distance (§2.2.1).
pub trait CostModel {
    /// Substitution cost `sub(a, b)`.
    fn sub(&self, a: Sym, b: Sym) -> f64;

    /// Insertion cost `ins(a)`; equals `sub(ε, a)`.
    fn ins(&self, a: Sym) -> f64;

    /// Deletion cost `del(a)`; equals `sub(a, ε)`. Symmetry forces
    /// `del = ins`, which the default honors.
    fn del(&self, a: Sym) -> f64 {
        self.ins(a)
    }

    /// Total insertion cost of a string, `Σ ins(qᵢ)` — the cost of matching
    /// against the empty string and the scale for the paper's
    /// `τ = τ_ratio · Σ c(q)`-style thresholds.
    fn total_ins(&self, s: &[Sym]) -> f64 {
        s.iter().map(|&q| self.ins(q)).sum()
    }
}

/// A WED instance that supports subsequence filtering: it can enumerate the
/// substitution neighborhood of a symbol and lower-bound the cost of editing
/// the symbol away.
pub trait WedInstance: CostModel {
    /// Human-readable name (used by the experiment harness).
    fn name(&self) -> &'static str;

    /// The substitution neighborhood `B(q) = {b ∈ Σ | sub(q, b) ≤ η}`
    /// (Definition 4). Always contains `q` itself. The neighborhood
    /// threshold η is fixed per instance at construction (Appendix D
    /// discusses the choice).
    fn neighbors(&self, q: Sym) -> Vec<Sym>;

    /// The filtering lower cost `c(q) = min_{q' ∈ Σ⁺ \ B(q)} sub(q, q')`
    /// (Eq. 7); the minimum includes deletion (`q' = ε`).
    fn lower_cost(&self, q: Sym) -> f64;
}

// Delegating impls so trait objects (`&dyn WedInstance`) can drive the
// generic engine; `del`/`total_ins` delegate explicitly to preserve
// overrides on the inner type.
impl<M: CostModel + ?Sized> CostModel for &M {
    fn sub(&self, a: Sym, b: Sym) -> f64 {
        (**self).sub(a, b)
    }
    fn ins(&self, a: Sym) -> f64 {
        (**self).ins(a)
    }
    fn del(&self, a: Sym) -> f64 {
        (**self).del(a)
    }
    fn total_ins(&self, s: &[Sym]) -> f64 {
        (**self).total_ins(s)
    }
}

impl<M: WedInstance + ?Sized> WedInstance for &M {
    fn name(&self) -> &'static str {
        (**self).name()
    }
    fn neighbors(&self, q: Sym) -> Vec<Sym> {
        (**self).neighbors(q)
    }
    fn lower_cost(&self, q: Sym) -> f64 {
        (**self).lower_cost(q)
    }
}

/// Verifies the Proposition 1 assumptions on a sample of symbols; used by
/// unit and property tests of every model.
pub fn check_axioms_on_sample<M: CostModel>(m: &M, sample: &[Sym]) {
    for &a in sample {
        assert!(m.sub(a, a).abs() < 1e-12, "sub({a},{a}) must be 0");
        assert!(m.ins(a) >= 0.0, "ins({a}) must be non-negative");
        assert!(
            (m.ins(a) - m.del(a)).abs() < 1e-12,
            "ins({a}) must equal del({a})"
        );
        for &b in sample {
            let (ab, ba) = (m.sub(a, b), m.sub(b, a));
            assert!(ab >= 0.0, "sub({a},{b}) must be non-negative");
            assert!(
                (ab - ba).abs() < 1e-9,
                "sub must be symmetric: {ab} vs {ba}"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimal hand-rolled cost model for exercising the trait defaults.
    struct Unit;
    impl CostModel for Unit {
        fn sub(&self, a: Sym, b: Sym) -> f64 {
            if a == b {
                0.0
            } else {
                1.0
            }
        }
        fn ins(&self, _a: Sym) -> f64 {
            1.0
        }
    }

    #[test]
    fn default_del_equals_ins() {
        let m = Unit;
        assert_eq!(m.del(3), 1.0);
    }

    #[test]
    fn total_ins_sums() {
        let m = Unit;
        assert_eq!(m.total_ins(&[1, 2, 3]), 3.0);
        assert_eq!(m.total_ins(&[]), 0.0);
    }

    #[test]
    fn axiom_checker_accepts_unit_costs() {
        check_axioms_on_sample(&Unit, &[0, 1, 2, 9]);
    }

    #[test]
    #[should_panic(expected = "must be 0")]
    fn axiom_checker_rejects_nonzero_diagonal() {
        struct Bad;
        impl CostModel for Bad {
            fn sub(&self, _a: Sym, _b: Sym) -> f64 {
                0.5
            }
            fn ins(&self, _a: Sym) -> f64 {
                1.0
            }
        }
        check_axioms_on_sample(&Bad, &[1]);
    }
}
