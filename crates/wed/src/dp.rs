//! Dynamic programming for weighted edit distance (§2.2.1).
//!
//! `wed(P, Q)` fills the classic (m+1)×(n+1) table column by column; the
//! column primitive [`step_dp`] is Algorithm 6 of the paper and is shared
//! verbatim with trie-based verification, so the engine and this reference
//! implementation cannot drift apart.

use crate::cost::{CostModel, Sym};

/// The DP column for the empty data prefix: entry `j` is
/// `wed(ε, Q[..j]) = Σ_{j' ≤ j} ins(Q_{j'})`.
pub fn initial_column<M: CostModel + ?Sized>(m: &M, q: &[Sym]) -> Vec<f64> {
    let mut col = Vec::new();
    initial_column_into(m, q, &mut col);
    col
}

/// [`initial_column`] into a caller-owned buffer (cleared first), returning
/// the column minimum. With non-negative insertion costs the minimum is the
/// first entry (0.0), but the fold stays exact for any cost model.
pub fn initial_column_into<M: CostModel + ?Sized>(m: &M, q: &[Sym], out: &mut Vec<f64>) -> f64 {
    out.clear();
    out.reserve(q.len() + 1);
    let mut acc = 0.0f64;
    let mut min = 0.0f64;
    out.push(0.0);
    for &s in q {
        acc += m.ins(s);
        min = min.min(acc);
        out.push(acc);
    }
    min
}

/// Algorithm 6 (StepDP): extends column `a` (for data prefix `P[..k]`) by
/// one data symbol `p`, producing the column for `P[..k+1]`.
///
/// `a[j] = wed(P[..k], Q[..j])`; the output `b` satisfies
/// `b[j] = wed(P[..k+1], Q[..j])`.
pub fn step_dp<M: CostModel + ?Sized>(m: &M, q: &[Sym], p: Sym, a: &[f64]) -> Vec<f64> {
    let mut b = vec![0.0; a.len()];
    step_dp_into(m, q, p, a, &mut b);
    b
}

/// [`step_dp`] into a caller-owned slice, returning the column minimum.
///
/// This is the engine's hot kernel: `del(p)` is hoisted out of the loop,
/// the `left` dependency is carried in a register instead of re-read from
/// `out`, and the three-way min plus the running column minimum compile to
/// branchless `minsd` chains. The returned minimum is the Eq. (11) lower
/// bound on every extension of the current data prefix, fused into the
/// sweep so callers do not re-scan the column.
pub fn step_dp_into<M: CostModel + ?Sized>(
    m: &M,
    q: &[Sym],
    p: Sym,
    a: &[f64],
    out: &mut [f64],
) -> f64 {
    debug_assert_eq!(a.len(), q.len() + 1);
    debug_assert_eq!(out.len(), a.len());
    let del_p = m.del(p);
    let mut left = a[0] + del_p;
    out[0] = left;
    let mut min = left;
    for (j, &qj) in q.iter().enumerate() {
        let diag = a[j] + m.sub(p, qj);
        let up = a[j + 1] + del_p;
        let v = diag.min(up).min(left + m.ins(qj));
        out[j + 1] = v;
        left = v;
        min = min.min(v);
    }
    min
}

/// Weighted edit distance `wed(P, Q)` (§2.2.1), O(|P|·|Q|) time,
/// O(|Q|) space (two ping-pong columns, no per-step allocation).
pub fn wed<M: CostModel + ?Sized>(m: &M, p: &[Sym], q: &[Sym]) -> f64 {
    let mut col = initial_column(m, q);
    let mut next = vec![0.0; col.len()];
    for &sym in p {
        step_dp_into(m, q, sym, &col, &mut next);
        std::mem::swap(&mut col, &mut next);
    }
    col[q.len()]
}

/// Threshold-bounded WED: returns `Some(wed(P, Q))` if it is `< tau`, and
/// `None` as soon as the Eq. (11) column-minimum lower bound certifies
/// `wed(P, Q) ≥ tau` — often after a small prefix of `P`.
///
/// Useful for verification-style workloads that only care about matches
/// below a threshold (DITA/ERP-index candidate checking uses it).
pub fn wed_within<M: CostModel + ?Sized>(m: &M, p: &[Sym], q: &[Sym], tau: f64) -> Option<f64> {
    let mut col = initial_column(m, q);
    let mut next = vec![0.0; col.len()];
    for &sym in p {
        let lb = step_dp_into(m, q, sym, &col, &mut next);
        std::mem::swap(&mut col, &mut next);
        if lb >= tau {
            return None;
        }
    }
    let d = col[q.len()];
    (d < tau).then_some(d)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::Lev;

    #[test]
    fn empty_vs_empty_is_zero() {
        assert_eq!(wed(&Lev, &[], &[]), 0.0);
    }

    #[test]
    fn empty_vs_string_is_total_ins() {
        assert_eq!(wed(&Lev, &[], &[1, 2, 3]), 3.0);
        assert_eq!(wed(&Lev, &[1, 2, 3], &[]), 3.0);
    }

    #[test]
    fn identical_strings_are_zero() {
        assert_eq!(wed(&Lev, &[5, 6, 7], &[5, 6, 7]), 0.0);
    }

    #[test]
    fn lev_matches_known_values() {
        // kitten -> sitting analogue with numeric symbols:
        // [1,2,3,3,4,5] vs [6,2,3,3,2,5,7] has Levenshtein distance 3.
        let p = [1, 2, 3, 3, 4, 5];
        let q = [6, 2, 3, 3, 2, 5, 7];
        assert_eq!(wed(&Lev, &p, &q), 3.0);
    }

    #[test]
    fn paper_example_2() {
        // Example 2: P = ABCDE, Q = BFD, wed(P[2..4], Q) = 1 under Lev.
        let (a, b, c, d, f) = (0, 1, 2, 3, 5);
        let p2_4 = [b, c, d];
        let q = [b, f, d];
        assert_eq!(wed(&Lev, &p2_4, &q), 1.0);
        let p = [a, b, c, d, 4];
        assert_eq!(wed(&Lev, &p, &q), 3.0); // whole string is farther
    }

    #[test]
    fn symmetry_of_wed() {
        let p = [1, 2, 3, 4];
        let q = [2, 3, 5];
        assert_eq!(wed(&Lev, &p, &q), wed(&Lev, &q, &p));
    }

    #[test]
    fn step_dp_equals_recomputation() {
        let q = [1, 2, 3];
        let p = [4, 2, 3, 1];
        let mut col = initial_column(&Lev, &q);
        for (k, &sym) in p.iter().enumerate() {
            col = step_dp(&Lev, &q, sym, &col);
            // col[j] must equal wed(P[..k+1], Q[..j]).
            for j in 0..=q.len() {
                assert_eq!(col[j], wed(&Lev, &p[..k + 1], &q[..j]), "k={k} j={j}");
            }
        }
    }

    #[test]
    fn initial_column_is_prefix_sums() {
        let col = initial_column(&Lev, &[7, 8]);
        assert_eq!(col, vec![0.0, 1.0, 2.0]);
    }

    #[test]
    fn wed_within_agrees_with_full_dp() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(31);
        for _ in 0..200 {
            let p: Vec<Sym> = (0..rng.gen_range(0..15))
                .map(|_| rng.gen_range(0..6))
                .collect();
            let q: Vec<Sym> = (0..rng.gen_range(0..8))
                .map(|_| rng.gen_range(0..6))
                .collect();
            let tau = rng.gen_range(0.5..6.0);
            let full = wed(&Lev, &p, &q);
            match wed_within(&Lev, &p, &q, tau) {
                Some(d) => {
                    assert!((d - full).abs() < 1e-12);
                    assert!(d < tau);
                }
                None => assert!(full >= tau, "early exit lied: wed {full} < tau {tau}"),
            }
        }
    }

    #[test]
    fn into_variants_return_exact_column_min() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(77);
        for _ in 0..100 {
            let q: Vec<Sym> = (0..rng.gen_range(0..8))
                .map(|_| rng.gen_range(0..6))
                .collect();
            let mut col = Vec::new();
            let min0 = initial_column_into(&Lev, &q, &mut col);
            assert_eq!(col, initial_column(&Lev, &q));
            assert_eq!(min0, col.iter().cloned().fold(f64::INFINITY, f64::min));
            let p: Sym = rng.gen_range(0..6);
            let mut next = vec![0.0; col.len()];
            let min = step_dp_into(&Lev, &q, p, &col, &mut next);
            assert_eq!(next, step_dp(&Lev, &q, p, &col));
            assert_eq!(min, next.iter().cloned().fold(f64::INFINITY, f64::min));
        }
    }

    #[test]
    fn wed_within_early_exits_on_long_mismatch() {
        // Long all-mismatching data string: the bound must trip quickly (no
        // way to observe the cutoff directly, but the result must be None).
        let p = vec![9u32; 500];
        let q = vec![1u32, 2, 3];
        assert_eq!(wed_within(&Lev, &p, &q, 2.0), None);
    }
}
