//! Non-edit subtrajectory metrics grounded in a [`CostModel`].
//!
//! The comparators in [`crate::nonwed`] operate on raw point sequences; this
//! module provides the engine-facing variants that reuse a cost model's
//! substitution cost `sub(a, b)` as the ground distance between symbols, so
//! every network-aware model (NetEDR's road distance, SURS's segment
//! lengths, …) transfers to DTW, LCSS and discrete Fréchet unchanged:
//!
//! * **DTW** — the minimum, over monotone couplings of `P` and `Q` matching
//!   both endpoints, of the *sum* of coupled `sub` costs (no gaps).
//! * **LCSS(ε)** — `|Q| − L`, where `L` is the longest common subsequence
//!   under the ε-match predicate `sub(a, b) ≤ ε`; distances are integral.
//! * **Discrete Fréchet** — the minimum over the same couplings of the
//!   *maximum* coupled `sub` cost (the bottleneck variant of DTW).
//!
//! Each metric ships a whole-sequence distance and a `*_scan_all`
//! verification primitive mirroring [`crate::sw::sw_scan_all`]: a per-start
//! DP over the data sequence that reports every substring within a strict
//! threshold, plus the number of DP rows it evaluated (each `O(|Q|)`) — the
//! metric-neutral `verify_cost` unit. DTW and Fréchet rows are monotone
//! non-decreasing in their minimum entry (costs are non-negative and `max`
//! only grows), so both scans early-terminate once a row's minimum reaches
//! `tau`; LCSS distances *shrink* as substrings grow, so its scan must run
//! each start to the end of the sequence.

use crate::cost::{CostModel, Sym};
use crate::sw::SubMatch;

/// DTW between whole sequences under `m.sub` ground costs. Empty inputs are
/// at distance `0` from each other and `+∞` from anything non-empty (no
/// coupling exists).
pub fn dtw_dist<M: CostModel + ?Sized>(m: &M, a: &[Sym], b: &[Sym]) -> f64 {
    if a.is_empty() || b.is_empty() {
        return if a.len() == b.len() {
            0.0
        } else {
            f64::INFINITY
        };
    }
    let n = b.len();
    let mut prev = vec![f64::INFINITY; n + 1];
    prev[0] = 0.0;
    for &x in a {
        let mut cur = vec![f64::INFINITY; n + 1];
        for j in 1..=n {
            let reach = prev[j].min(cur[j - 1]).min(prev[j - 1]);
            cur[j] = m.sub(x, b[j - 1]) + reach;
        }
        prev = cur;
    }
    prev[n]
}

/// Discrete Fréchet between whole sequences under `m.sub` ground costs;
/// empty-input convention as in [`dtw_dist`].
pub fn frechet_dist<M: CostModel + ?Sized>(m: &M, a: &[Sym], b: &[Sym]) -> f64 {
    if a.is_empty() || b.is_empty() {
        return if a.len() == b.len() {
            0.0
        } else {
            f64::INFINITY
        };
    }
    let n = b.len();
    let mut prev = vec![f64::INFINITY; n + 1];
    prev[0] = 0.0;
    for &x in a {
        let mut cur = vec![f64::INFINITY; n + 1];
        for j in 1..=n {
            let reach = prev[j].min(cur[j - 1]).min(prev[j - 1]);
            cur[j] = m.sub(x, b[j - 1]).max(reach);
        }
        prev = cur;
    }
    prev[n]
}

/// LCSS distance `|q| − L` where `L` is the longest common subsequence of
/// `p` and `q` under the ε-match `sub(a, b) ≤ eps`. Bounded by `|q|`; `0`
/// iff all of `q` matches into `p` in order.
pub fn lcss_dist<M: CostModel + ?Sized>(m: &M, p: &[Sym], q: &[Sym], eps: f64) -> f64 {
    let n = q.len();
    let mut prev = vec![0usize; n + 1];
    let mut cur = vec![0usize; n + 1];
    for &x in p {
        cur[0] = 0;
        for j in 0..n {
            cur[j + 1] = if m.sub(x, q[j]) <= eps {
                prev[j] + 1
            } else {
                prev[j + 1].max(cur[j])
            };
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    (n - prev[n]) as f64
}

/// All non-empty substrings `p[s..=t]` with `dtw(p[s..=t], q) < tau`, plus
/// the number of DP rows evaluated. Per-start DP with early termination:
/// the row minimum never decreases as the substring grows, so once it
/// reaches `tau` no extension of this start can match.
pub fn dtw_scan_all<M: CostModel + ?Sized>(
    m: &M,
    p: &[Sym],
    q: &[Sym],
    tau: f64,
) -> (Vec<SubMatch>, u64) {
    scan_all_sum_or_max(m, p, q, tau, false)
}

/// All non-empty substrings `p[s..=t]` with discrete Fréchet `< tau`, plus
/// the number of DP rows evaluated; early termination as in
/// [`dtw_scan_all`] (the bottleneck cost also never decreases).
pub fn frechet_scan_all<M: CostModel + ?Sized>(
    m: &M,
    p: &[Sym],
    q: &[Sym],
    tau: f64,
) -> (Vec<SubMatch>, u64) {
    scan_all_sum_or_max(m, p, q, tau, true)
}

/// Shared per-start DP for DTW (`bottleneck = false`: costs add) and
/// discrete Fréchet (`bottleneck = true`: costs max). Row `t` holds
/// `cur[j] = d(p[s..=t], q[..=j])`; the first row of each start couples the
/// single symbol `p[s]` against every query prefix.
fn scan_all_sum_or_max<M: CostModel + ?Sized>(
    m: &M,
    p: &[Sym],
    q: &[Sym],
    tau: f64,
    bottleneck: bool,
) -> (Vec<SubMatch>, u64) {
    assert!(!q.is_empty(), "query must be non-empty");
    let n = q.len();
    let mut out = Vec::new();
    let mut rows = 0u64;
    let mut prev = vec![0.0f64; n];
    let mut cur = vec![0.0f64; n];
    for s in 0..p.len() {
        for t in s..p.len() {
            rows += 1;
            let sym = p[t];
            if t == s {
                cur[0] = m.sub(sym, q[0]);
                for j in 1..n {
                    let c = m.sub(sym, q[j]);
                    cur[j] = if bottleneck {
                        c.max(cur[j - 1])
                    } else {
                        c + cur[j - 1]
                    };
                }
            } else {
                let c0 = m.sub(sym, q[0]);
                cur[0] = if bottleneck {
                    c0.max(prev[0])
                } else {
                    c0 + prev[0]
                };
                for j in 1..n {
                    let reach = prev[j].min(cur[j - 1]).min(prev[j - 1]);
                    let c = m.sub(sym, q[j]);
                    cur[j] = if bottleneck { c.max(reach) } else { c + reach };
                }
            }
            let d = cur[n - 1];
            if d < tau {
                out.push(SubMatch {
                    start: s,
                    end: t,
                    dist: d,
                });
            }
            let min = cur.iter().cloned().fold(f64::INFINITY, f64::min);
            if min >= tau {
                break;
            }
            std::mem::swap(&mut prev, &mut cur);
        }
    }
    (out, rows)
}

/// All non-empty substrings `p[s..=t]` with `lcss(p[s..=t], q, eps) < tau`,
/// plus the number of DP rows evaluated. No early termination is possible:
/// growing a substring can only match more of `q`, so the distance is
/// non-increasing in `t` and every start scans to the end of `p`.
pub fn lcss_scan_all<M: CostModel + ?Sized>(
    m: &M,
    p: &[Sym],
    q: &[Sym],
    tau: f64,
    eps: f64,
) -> (Vec<SubMatch>, u64) {
    assert!(!q.is_empty(), "query must be non-empty");
    let n = q.len();
    let mut out = Vec::new();
    let mut rows = 0u64;
    let mut prev = vec![0usize; n + 1];
    let mut cur = vec![0usize; n + 1];
    for s in 0..p.len() {
        prev.iter_mut().for_each(|v| *v = 0);
        for t in s..p.len() {
            rows += 1;
            cur[0] = 0;
            for j in 0..n {
                cur[j + 1] = if m.sub(p[t], q[j]) <= eps {
                    prev[j] + 1
                } else {
                    prev[j + 1].max(cur[j])
                };
            }
            let d = (n - cur[n]) as f64;
            if d < tau {
                out.push(SubMatch {
                    start: s,
                    end: t,
                    dist: d,
                });
            }
            std::mem::swap(&mut prev, &mut cur);
        }
    }
    (out, rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::Lev;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn random_seq(rng: &mut ChaCha8Rng, max_len: usize, alphabet: u32) -> Vec<Sym> {
        (0..rng.gen_range(1..max_len))
            .map(|_| rng.gen_range(0..alphabet))
            .collect()
    }

    #[test]
    fn dtw_of_identical_sequences_is_zero() {
        assert_eq!(dtw_dist(&Lev, &[1, 2, 3], &[1, 2, 3]), 0.0);
        // Repeats couple for free under DTW.
        assert_eq!(dtw_dist(&Lev, &[1, 1, 2, 3, 3], &[1, 2, 3]), 0.0);
    }

    #[test]
    fn frechet_is_a_bottleneck() {
        // Two mismatched couplings under Lev: DTW sums them, Fréchet takes
        // the worst single one.
        let p = [1, 9, 3, 9];
        let q = [1, 2, 3, 4];
        assert_eq!(dtw_dist(&Lev, &p, &q), 2.0);
        assert_eq!(frechet_dist(&Lev, &p, &q), 1.0);
    }

    #[test]
    fn empty_inputs_follow_the_convention() {
        assert_eq!(dtw_dist(&Lev, &[], &[]), 0.0);
        assert_eq!(dtw_dist(&Lev, &[1], &[]), f64::INFINITY);
        assert_eq!(frechet_dist(&Lev, &[], &[1]), f64::INFINITY);
        assert_eq!(lcss_dist(&Lev, &[], &[1, 2], 0.5), 2.0);
    }

    #[test]
    fn lcss_under_lev_is_classic_lcs() {
        // sub ∈ {0,1} under Lev, so eps = 0.5 means exact equality.
        let p = [1, 3, 2, 4, 3];
        let q = [1, 2, 3];
        // LCS(p, q) = [1, 2, 3] (positions 0, 2, 4) → distance 0.
        assert_eq!(lcss_dist(&Lev, &p, &q, 0.5), 0.0);
        assert_eq!(lcss_dist(&Lev, &[5, 6], &q, 0.5), 3.0);
        // eps = 1.5 matches everything: distance 0 whenever |p| >= |q|.
        assert_eq!(lcss_dist(&Lev, &[5, 6, 7], &q, 1.5), 0.0);
    }

    #[test]
    fn dtw_scan_all_equals_brute_force() {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        for _ in 0..40 {
            let p = random_seq(&mut rng, 16, 5);
            let q = random_seq(&mut rng, 7, 5);
            let tau = rng.gen_range(0.5..4.0);
            let (got, rows) = dtw_scan_all(&Lev, &p, &q, tau);
            assert!(rows >= 1);
            let mut brute = Vec::new();
            for s in 0..p.len() {
                for t in s..p.len() {
                    let d = dtw_dist(&Lev, &p[s..=t], &q);
                    if d < tau {
                        brute.push((s, t, d));
                    }
                }
            }
            assert_eq!(got.len(), brute.len(), "p={p:?} q={q:?} tau={tau}");
            for (a, &(s, t, d)) in got.iter().zip(&brute) {
                assert_eq!((a.start, a.end), (s, t));
                assert!((a.dist - d).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn frechet_scan_all_equals_brute_force() {
        let mut rng = ChaCha8Rng::seed_from_u64(13);
        for _ in 0..40 {
            let p = random_seq(&mut rng, 16, 5);
            let q = random_seq(&mut rng, 7, 5);
            let tau = rng.gen_range(0.3..1.6);
            let (got, _) = frechet_scan_all(&Lev, &p, &q, tau);
            let mut brute = Vec::new();
            for s in 0..p.len() {
                for t in s..p.len() {
                    let d = frechet_dist(&Lev, &p[s..=t], &q);
                    if d < tau {
                        brute.push((s, t, d));
                    }
                }
            }
            assert_eq!(got.len(), brute.len(), "p={p:?} q={q:?} tau={tau}");
            for (a, &(s, t, d)) in got.iter().zip(&brute) {
                assert_eq!((a.start, a.end), (s, t));
                assert!((a.dist - d).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn lcss_scan_all_equals_brute_force() {
        let mut rng = ChaCha8Rng::seed_from_u64(17);
        for _ in 0..40 {
            let p = random_seq(&mut rng, 14, 4);
            let q = random_seq(&mut rng, 6, 4);
            let tau = rng.gen_range(0.5..3.5);
            let (got, rows) = lcss_scan_all(&Lev, &p, &q, tau, 0.5);
            // No early termination: every (s, t) pair is one row.
            let expect_rows = (p.len() * (p.len() + 1) / 2) as u64;
            assert_eq!(rows, expect_rows);
            let mut brute = Vec::new();
            for s in 0..p.len() {
                for t in s..p.len() {
                    let d = lcss_dist(&Lev, &p[s..=t], &q, 0.5);
                    if d < tau {
                        brute.push((s, t, d));
                    }
                }
            }
            assert_eq!(got.len(), brute.len(), "p={p:?} q={q:?} tau={tau}");
            for (a, &(s, t, d)) in got.iter().zip(&brute) {
                assert_eq!((a.start, a.end), (s, t));
                assert_eq!(a.dist, d);
            }
        }
    }

    #[test]
    fn scan_all_early_termination_saves_rows() {
        // A long sequence sharing nothing with the query: each start should
        // stop after one row, not scan to the end.
        let p = vec![9u32; 50];
        let q = [1, 2];
        let (got, rows) = dtw_scan_all(&Lev, &p, &q, 1.0);
        assert!(got.is_empty());
        assert_eq!(rows, 50, "one row per start, then the bound fires");
        let (got_f, rows_f) = frechet_scan_all(&Lev, &p, &q, 0.5);
        assert!(got_f.is_empty());
        assert_eq!(rows_f, 50);
    }

    #[test]
    fn strict_threshold_semantics() {
        // Distance exactly tau is not a match, mirroring Definition 2.
        let p = [1, 9, 3];
        let q = [1, 2, 3];
        assert_eq!(dtw_dist(&Lev, &p, &q), 1.0);
        let (at, _) = dtw_scan_all(&Lev, &p, &q, 1.0);
        assert!(at.iter().all(|m| (m.start, m.end) != (0, 2)));
        let (above, _) = dtw_scan_all(&Lev, &p, &q, 1.0 + 1e-9);
        assert!(above.iter().any(|m| (m.start, m.end) == (0, 2)));
    }
}
