//! Smith–Waterman adaptation for subtrajectory matching (§3, Appendix A).
//!
//! [`sw_best`] is Algorithm 7: one O(|P|·|Q|) pass finding the substring of
//! `P` with the smallest WED to `Q`, memorizing start positions in a second
//! matrix. [`sw_scan_all`] returns *every* substring within a threshold —
//! the result-set semantics of Definition 3 — by running a per-start DP with
//! the Eq. (11) early-termination bound; this is the verification-grade
//! primitive used by the Plain-SW and `*-SW` baselines.

use crate::cost::{CostModel, Sym};
use crate::dp::{initial_column, step_dp};

/// A matching substring `P[start..=end]` (0-based, inclusive) with its WED.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SubMatch {
    pub start: usize,
    pub end: usize,
    pub dist: f64,
}

/// Algorithm 7: the best-matching non-empty substring of `P`, or `None` when
/// `P` is empty.
///
/// `D[i][j] = min_s wed(P[s..j], Q[..i])` with free substring start
/// (`D[0][j] = 0`); `K[i][j]` memorizes the start `s` attaining the minimum.
pub fn sw_best<M: CostModel + ?Sized>(m: &M, p: &[Sym], q: &[Sym]) -> Option<SubMatch> {
    if p.is_empty() {
        return None;
    }
    let n = q.len();
    // Column-rolling arrays over i = 0..=n; one column per data position j.
    let mut d: Vec<f64> = Vec::with_capacity(n + 1);
    let mut k: Vec<usize> = vec![0; n + 1];
    d.push(0.0);
    for &qi in q {
        let prev = *d.last().unwrap();
        d.push(prev + m.ins(qi));
    }
    let mut best: Option<SubMatch> = None;
    for (j, &pj) in p.iter().enumerate() {
        let mut nd = vec![0.0; n + 1];
        let mut nk = vec![0usize; n + 1];
        nd[0] = 0.0;
        nk[0] = j + 1; // empty substring starting after position j
        for i in 1..=n {
            let diag = d[i - 1] + m.sub(pj, q[i - 1]);
            let left = d[i] + m.del(pj);
            let up = nd[i - 1] + m.ins(q[i - 1]);
            // Tie-break preferring diag, then left, then up (any is correct).
            let (v, s) = if diag <= left && diag <= up {
                (diag, k[i - 1])
            } else if left <= up {
                (left, k[i])
            } else {
                (up, nk[i - 1])
            };
            nd[i] = v;
            nk[i] = s;
        }
        // A candidate ends at j (inclusive) iff its start is ≤ j.
        if nk[n] <= j {
            let cand = SubMatch {
                start: nk[n],
                end: j,
                dist: nd[n],
            };
            if best.is_none_or(|b| cand.dist < b.dist) {
                best = Some(cand);
            }
        }
        d = nd;
        k = nk;
    }
    best
}

/// All non-empty substrings `P[s..=t]` with `wed(P[s..=t], Q) < tau`
/// (Definition 3 result-set semantics), found by a per-start DP with
/// early termination once the Eq. (11) lower bound reaches `tau`.
pub fn sw_scan_all<M: CostModel + ?Sized>(m: &M, p: &[Sym], q: &[Sym], tau: f64) -> Vec<SubMatch> {
    let mut out = Vec::new();
    let init = initial_column(m, q);
    for s in 0..p.len() {
        let mut col = init.clone();
        for (t, &sym) in p.iter().enumerate().skip(s) {
            col = step_dp(m, q, sym, &col);
            let d = col[q.len()];
            if d < tau {
                out.push(SubMatch {
                    start: s,
                    end: t,
                    dist: d,
                });
            }
            // Eq. (11): the column minimum lower-bounds every extension.
            let lb = col.iter().cloned().fold(f64::INFINITY, f64::min);
            if lb >= tau {
                break;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dp::wed;
    use crate::models::Lev;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn best_finds_exact_substring() {
        // P = ABCDE, Q = BCD: exact substring at [1..=3].
        let p = [0, 1, 2, 3, 4];
        let q = [1, 2, 3];
        let b = sw_best(&Lev, &p, &q).unwrap();
        assert_eq!((b.start, b.end, b.dist), (1, 3, 0.0));
    }

    #[test]
    fn best_on_paper_example_2() {
        // P = ABCDE, Q = BFD: best substring BCD with distance 1.
        let p = [0, 1, 2, 3, 4];
        let q = [1, 5, 3];
        let b = sw_best(&Lev, &p, &q).unwrap();
        assert_eq!(b.dist, 1.0);
        assert_eq!((b.start, b.end), (1, 3));
    }

    #[test]
    fn best_of_empty_p_is_none() {
        assert_eq!(sw_best(&Lev, &[], &[1, 2]), None);
    }

    #[test]
    fn scan_all_matches_definition() {
        // Strict inequality: distance exactly tau is not a match.
        let p = [0, 1, 2, 3, 4];
        let q = [1, 5, 3];
        let got = sw_scan_all(&Lev, &p, &q, 1.0);
        assert!(got.is_empty(), "wed=1 must not match tau=1: {got:?}");
        let got = sw_scan_all(&Lev, &p, &q, 1.5);
        assert!(got.iter().any(|m| (m.start, m.end) == (1, 3)));
        for m in &got {
            assert!(m.dist < 1.5);
        }
    }

    #[test]
    fn scan_all_equals_brute_force_on_random_strings() {
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..30 {
            let p: Vec<Sym> = (0..rng.gen_range(1..18))
                .map(|_| rng.gen_range(0..6))
                .collect();
            let q: Vec<Sym> = (0..rng.gen_range(1..8))
                .map(|_| rng.gen_range(0..6))
                .collect();
            let tau = rng.gen_range(0.5..4.0);
            let mut got = sw_scan_all(&Lev, &p, &q, tau);
            got.sort_by_key(|m| (m.start, m.end));
            let mut brute = Vec::new();
            for s in 0..p.len() {
                for t in s..p.len() {
                    let d = wed(&Lev, &p[s..=t], &q);
                    if d < tau {
                        brute.push(SubMatch {
                            start: s,
                            end: t,
                            dist: d,
                        });
                    }
                }
            }
            assert_eq!(got.len(), brute.len(), "p={p:?} q={q:?} tau={tau}");
            for (a, b) in got.iter().zip(&brute) {
                assert_eq!((a.start, a.end), (b.start, b.end));
                assert!((a.dist - b.dist).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn best_is_minimum_of_scan() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        for _ in 0..20 {
            let p: Vec<Sym> = (0..rng.gen_range(2..15))
                .map(|_| rng.gen_range(0..5))
                .collect();
            let q: Vec<Sym> = (0..rng.gen_range(1..6))
                .map(|_| rng.gen_range(0..5))
                .collect();
            let best = sw_best(&Lev, &p, &q).unwrap();
            let all = sw_scan_all(&Lev, &p, &q, best.dist + 0.5);
            let min = all.iter().map(|m| m.dist).fold(f64::INFINITY, f64::min);
            assert!(
                (best.dist - min).abs() < 1e-9,
                "sw_best {} vs scan min {min} (p={p:?}, q={q:?})",
                best.dist
            );
        }
    }

    #[test]
    fn best_substring_distance_is_consistent() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        for _ in 0..20 {
            let p: Vec<Sym> = (0..rng.gen_range(2..15))
                .map(|_| rng.gen_range(0..5))
                .collect();
            let q: Vec<Sym> = (0..rng.gen_range(1..6))
                .map(|_| rng.gen_range(0..5))
                .collect();
            let best = sw_best(&Lev, &p, &q).unwrap();
            let direct = wed(&Lev, &p[best.start..=best.end], &q);
            assert!(
                (best.dist - direct).abs() < 1e-9,
                "reported {} but recomputed {direct}",
                best.dist
            );
        }
    }
}
