//! Non-WED similarity functions used as comparators in the effectiveness
//! experiments (§6.2): DTW, LCSS, LORS and LCRS.
//!
//! These do **not** belong to the WED class (§2.2.4) — the search engine
//! cannot index them — so the experiment harness evaluates them by direct
//! dynamic programming, exactly as the paper does for its effectiveness
//! studies (for LORS/LCRS the paper enumerates subtrajectories, see §6.2.1).

use crate::cost::Sym;
use rnet::Point;

/// Dynamic time warping over point sequences with squared Euclidean ground
/// distance (the normalization used in §6.2.1).
pub fn dtw(a: &[Point], b: &[Point]) -> f64 {
    if a.is_empty() || b.is_empty() {
        return if a.is_empty() && b.is_empty() {
            0.0
        } else {
            f64::INFINITY
        };
    }
    let n = b.len();
    let mut prev = vec![f64::INFINITY; n + 1];
    prev[0] = 0.0;
    let mut cur = vec![f64::INFINITY; n + 1];
    for &pa in a {
        cur[0] = f64::INFINITY;
        for (j, &pb) in b.iter().enumerate() {
            let c = pa.dist2(&pb);
            cur[j + 1] = c + prev[j].min(prev[j + 1]).min(cur[j]);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[n]
}

/// Longest common subsequence with an ε matching threshold (the trajectory
/// LCSS of Vlachos et al.): returns the number of matched pairs.
pub fn lcss(a: &[Point], b: &[Point], eps: f64) -> usize {
    let n = b.len();
    let mut prev = vec![0usize; n + 1];
    let mut cur = vec![0usize; n + 1];
    for &pa in a {
        for (j, &pb) in b.iter().enumerate() {
            cur[j + 1] = if pa.dist(&pb) <= eps {
                prev[j] + 1
            } else {
                prev[j + 1].max(cur[j])
            };
        }
        std::mem::swap(&mut prev, &mut cur);
        cur[0] = 0;
    }
    prev[n]
}

/// Longest overlapping road segments (Wang et al.): the maximum total weight
/// of a common subsequence of two edge strings — a weighted LCS.
pub fn lors(a: &[Sym], b: &[Sym], w: impl Fn(Sym) -> f64) -> f64 {
    let n = b.len();
    let mut prev = vec![0.0f64; n + 1];
    let mut cur = vec![0.0f64; n + 1];
    for &ea in a {
        for (j, &eb) in b.iter().enumerate() {
            cur[j + 1] = if ea == eb {
                prev[j] + w(ea)
            } else {
                prev[j + 1].max(cur[j])
            };
        }
        std::mem::swap(&mut prev, &mut cur);
        cur[0] = 0.0;
    }
    prev[n]
}

/// Longest common road segments ratio (Yuan & Li):
/// `LCRS = LORS / (w(a) + w(b) − LORS)` ∈ [0, 1] (Appendix F).
/// Returns 0 when both strings have zero weight.
pub fn lcrs(a: &[Sym], b: &[Sym], w: impl Fn(Sym) -> f64) -> f64 {
    let l = lors(a, b, &w);
    let wa: f64 = a.iter().map(|&e| w(e)).sum();
    let wb: f64 = b.iter().map(|&e| w(e)).sum();
    let denom = wa + wb - l;
    if denom <= 0.0 {
        0.0
    } else {
        l / denom
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dp::wed;
    use crate::models::Surs;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;
    use rnet::{CityParams, NetworkKind};
    use std::sync::Arc;

    fn pts(xs: &[f64]) -> Vec<Point> {
        xs.iter().map(|&x| Point::new(x, 0.0)).collect()
    }

    #[test]
    fn dtw_identical_is_zero() {
        let a = pts(&[0.0, 1.0, 2.0]);
        assert_eq!(dtw(&a, &a), 0.0);
    }

    #[test]
    fn dtw_handles_time_shift() {
        // DTW aligns repeated points without cost.
        let a = pts(&[0.0, 1.0, 1.0, 2.0]);
        let b = pts(&[0.0, 1.0, 2.0]);
        assert_eq!(dtw(&a, &b), 0.0);
    }

    #[test]
    fn dtw_empty_cases() {
        assert_eq!(dtw(&[], &[]), 0.0);
        assert!(dtw(&pts(&[1.0]), &[]).is_infinite());
    }

    #[test]
    fn dtw_simple_value() {
        let a = pts(&[0.0]);
        let b = pts(&[3.0]);
        assert_eq!(dtw(&a, &b), 9.0); // squared distance
    }

    #[test]
    fn lcss_counts_matches_within_eps() {
        let a = pts(&[0.0, 10.0, 20.0]);
        let b = pts(&[0.4, 10.4, 31.0]);
        assert_eq!(lcss(&a, &b, 0.5), 2);
        assert_eq!(lcss(&a, &b, 0.1), 0);
        assert_eq!(lcss(&a, &b, 100.0), 3);
    }

    #[test]
    fn lcss_respects_order() {
        let a = pts(&[0.0, 10.0]);
        let b = pts(&[10.0, 0.0]);
        assert_eq!(lcss(&a, &b, 0.5), 1); // order prevents matching both
    }

    #[test]
    fn lors_is_weighted_lcs() {
        let w = |e: Sym| (e + 1) as f64;
        // Common subsequence of [0,1,2,3] and [1,9,3]: {1,3} with weight 2+4.
        assert_eq!(lors(&[0, 1, 2, 3], &[1, 9, 3], w), 6.0);
        assert_eq!(lors(&[0, 1], &[2, 3], w), 0.0);
        assert_eq!(lors(&[], &[1], w), 0.0);
    }

    #[test]
    fn lcrs_is_normalized() {
        let w = |_e: Sym| 1.0;
        // identical strings: LORS = len, LCRS = len/(2len - len) = 1.
        assert_eq!(lcrs(&[1, 2, 3], &[1, 2, 3], w), 1.0);
        assert_eq!(lcrs(&[1], &[2], w), 0.0);
        assert_eq!(lcrs(&[], &[], w), 0.0);
    }

    /// Appendix F identity: SURS(x, y) = w(x) + w(y) − 2·LORS(x, y).
    #[test]
    fn surs_lors_identity_on_random_edge_strings() {
        let net = Arc::new(CityParams::tiny(NetworkKind::Grid).generate());
        let surs = Surs::new(net.clone());
        let ne = net.num_edges() as u32;
        let mut rng = ChaCha8Rng::seed_from_u64(13);
        for _ in 0..40 {
            let x: Vec<Sym> = (0..rng.gen_range(0..10))
                .map(|_| rng.gen_range(0..ne))
                .collect();
            let y: Vec<Sym> = (0..rng.gen_range(0..10))
                .map(|_| rng.gen_range(0..ne))
                .collect();
            let s = wed(&surs, &x, &y);
            let l = lors(&x, &y, |e| net.edge(e).length);
            let expect = surs.total_weight(&x) + surs.total_weight(&y) - 2.0 * l;
            assert!(
                (s - expect).abs() < 1e-6,
                "SURS {s} != w(x)+w(y)-2LORS {expect} for x={x:?} y={y:?}"
            );
        }
    }
}
