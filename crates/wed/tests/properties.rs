//! Property-based tests of the WED layer: Proposition 1 axioms for every
//! instance, DP identities, Smith–Waterman consistency, and the Appendix F
//! SURS/LORS relation, all over network-backed cost models.

use proptest::prelude::*;
use rnet::{CityParams, HubLabels, NetworkKind, RoadNetwork};
use std::sync::Arc;
use wed::models::{Edr, Erp, Lev, NetEdr, NetErp, Surs};
use wed::nonwed::lors;
use wed::{sw_best, sw_scan_all, wed, wed_within, Sym, WedInstance};

fn net() -> Arc<RoadNetwork> {
    Arc::new(CityParams::tiny(NetworkKind::Grid).generate())
}

fn boxed_models() -> Vec<Box<dyn WedInstance>> {
    let n = net();
    let hubs = Arc::new(HubLabels::build(&n));
    vec![
        Box::new(Lev),
        Box::new(Edr::new(n.clone(), 130.0)),
        Box::new(Erp::new(n.clone(), 150.0)),
        Box::new(NetEdr::new(n.clone(), hubs.clone(), 130.0)),
        Box::new(NetErp::new(n.clone(), hubs.clone(), 2000.0, 130.0)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Proposition 1 for every vertex-alphabet instance: non-negativity,
    /// symmetry, identity.
    #[test]
    fn proposition_1_holds(
        a in proptest::collection::vec(0u32..64, 0..10),
        b in proptest::collection::vec(0u32..64, 0..10),
    ) {
        for m in boxed_models() {
            let dab = wed(&*m, &a, &b);
            let dba = wed(&*m, &b, &a);
            prop_assert!(dab >= -1e-12, "{}: negative wed", m.name());
            prop_assert!((dab - dba).abs() < 1e-6, "{}: asymmetric {dab} vs {dba}", m.name());
            prop_assert!(wed(&*m, &a, &a).abs() < 1e-9, "{}: wed(a,a) != 0", m.name());
        }
    }

    /// Theorem 1 ingredient: c(q) never exceeds the cost of editing q into
    /// any symbol outside B(q) (sampled) nor the deletion cost.
    #[test]
    fn lower_cost_is_a_lower_bound(q in 0u32..64, probe in 0u32..64) {
        for m in boxed_models() {
            let c = m.lower_cost(q);
            prop_assert!(m.del(q) + 1e-9 >= c, "{}: del < c(q)", m.name());
            if !m.neighbors(q).contains(&probe) {
                prop_assert!(
                    m.sub(q, probe) + 1e-9 >= c,
                    "{}: sub({q},{probe}) = {} < c = {c}",
                    m.name(),
                    m.sub(q, probe)
                );
            }
        }
    }

    /// sw_scan_all equals brute force for a continuous-cost model (ERP).
    #[test]
    fn sw_scan_matches_brute_force_under_erp(
        p in proptest::collection::vec(0u32..64, 1..10),
        q in proptest::collection::vec(0u32..64, 1..5),
        tau in 50.0f64..2000.0,
    ) {
        let erp = Erp::new(net(), 10.0);
        let mut got = sw_scan_all(&erp, &p, &q, tau);
        got.sort_by_key(|m| (m.start, m.end));
        let mut want = Vec::new();
        for s in 0..p.len() {
            for t in s..p.len() {
                let d = wed(&erp, &p[s..=t], &q);
                if d < tau {
                    want.push((s, t, d));
                }
            }
        }
        prop_assert_eq!(got.len(), want.len());
        for (g, w) in got.iter().zip(&want) {
            prop_assert_eq!((g.start, g.end), (w.0, w.1));
            prop_assert!((g.dist - w.2).abs() < 1e-6);
        }
    }

    /// sw_best returns the global substring minimum under EDR.
    #[test]
    fn sw_best_is_global_minimum_under_edr(
        p in proptest::collection::vec(0u32..64, 1..10),
        q in proptest::collection::vec(0u32..64, 1..5),
    ) {
        let edr = Edr::new(net(), 130.0);
        let best = sw_best(&edr, &p, &q).unwrap();
        let mut min = f64::INFINITY;
        for s in 0..p.len() {
            for t in s..p.len() {
                min = min.min(wed(&edr, &p[s..=t], &q));
            }
        }
        prop_assert!((best.dist - min).abs() < 1e-9);
    }

    /// wed_within agrees with the full DP under SURS (edge alphabet,
    /// continuous costs).
    #[test]
    fn wed_within_agrees_under_surs(
        p in proptest::collection::vec(0u32..32, 0..10),
        q in proptest::collection::vec(0u32..32, 0..8),
        tau in 10.0f64..5000.0,
    ) {
        let surs = Surs::new(net());
        let full = wed(&surs, &p, &q);
        match wed_within(&surs, &p, &q, tau) {
            Some(d) => prop_assert!((d - full).abs() < 1e-9 && d < tau),
            None => prop_assert!(full >= tau - 1e-9),
        }
    }

    /// Appendix F: SURS = w(x) + w(y) − 2·LORS on arbitrary edge strings.
    #[test]
    fn surs_equals_weight_minus_twice_lors(
        x in proptest::collection::vec(0u32..32, 0..12),
        y in proptest::collection::vec(0u32..32, 0..12),
    ) {
        let n = net();
        let surs = Surs::new(n.clone());
        let s = wed(&surs, &x, &y);
        let l = lors(&x, &y, |e: Sym| n.edge(e).length);
        let expect = surs.total_weight(&x) + surs.total_weight(&y) - 2.0 * l;
        prop_assert!((s - expect).abs() < 1e-6);
    }

    /// Edit-script upper bound: wed(P, Q) <= del(P) + ins(Q).
    #[test]
    fn wed_bounded_by_rewrite_cost(
        p in proptest::collection::vec(0u32..64, 0..10),
        q in proptest::collection::vec(0u32..64, 0..10),
    ) {
        for m in boxed_models() {
            let d = wed(&*m, &p, &q);
            let ub: f64 = m.total_ins(&p) + m.total_ins(&q);
            prop_assert!(d <= ub + 1e-9, "{}: {d} > {ub}", m.name());
        }
    }

    /// Contiguity: appending one symbol changes wed by at most the larger of
    /// its deletion cost (new symbol deleted) — monotone growth bound.
    #[test]
    fn single_symbol_extension_is_lipschitz(
        p in proptest::collection::vec(0u32..64, 0..8),
        q in proptest::collection::vec(0u32..64, 0..8),
        extra in 0u32..64,
    ) {
        for m in boxed_models() {
            let base = wed(&*m, &p, &q);
            let mut p2 = p.clone();
            p2.push(extra);
            let ext = wed(&*m, &p2, &q);
            prop_assert!(
                ext <= base + m.del(extra) + 1e-9,
                "{}: extension jumped {base} -> {ext}",
                m.name()
            );
        }
    }
}
