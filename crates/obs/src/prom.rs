//! Prometheus text exposition rendering, hand-rolled: the workspace policy
//! is std-only, and the text format (version 0.0.4) is simple enough that a
//! few `String` pushes beat a client-library dependency. The output is what
//! a `metrics_text` wire request returns, so `curl` + any Prometheus-
//! compatible scraper work against a trajsearch server unchanged.

use crate::hist::{HistogramSnapshot, LogHistogram, BUCKETS};

/// Incremental builder for one exposition payload.
///
/// ```
/// use trajsearch_obs::{LogHistogram, PromText};
///
/// let h = LogHistogram::new();
/// h.record(900);
/// let mut p = PromText::new();
/// p.counter("queries_total", "Queries answered.", 1);
/// p.histogram("wall_ns", "Wall time per query.", &h.snapshot());
/// let text = p.render();
/// assert!(text.contains("queries_total 1"));
/// assert!(text.contains("wall_ns_bucket{le=\"1023\"} 1"));
/// assert!(text.contains("wall_ns_count 1"));
/// ```
#[derive(Debug, Default)]
pub struct PromText {
    buf: String,
}

impl PromText {
    pub fn new() -> PromText {
        PromText::default()
    }

    fn header(&mut self, name: &str, help: &str, kind: &str) {
        self.buf.push_str("# HELP ");
        self.buf.push_str(name);
        self.buf.push(' ');
        // The text format escapes backslash and newline in HELP text.
        for c in help.chars() {
            match c {
                '\\' => self.buf.push_str("\\\\"),
                '\n' => self.buf.push_str("\\n"),
                c => self.buf.push(c),
            }
        }
        self.buf.push_str("\n# TYPE ");
        self.buf.push_str(name);
        self.buf.push(' ');
        self.buf.push_str(kind);
        self.buf.push('\n');
    }

    /// A monotonically increasing counter.
    pub fn counter(&mut self, name: &str, help: &str, value: u64) {
        self.header(name, help, "counter");
        self.buf.push_str(name);
        self.buf.push(' ');
        self.buf.push_str(&value.to_string());
        self.buf.push('\n');
    }

    /// A point-in-time gauge.
    pub fn gauge(&mut self, name: &str, help: &str, value: f64) {
        self.header(name, help, "gauge");
        self.buf.push_str(name);
        self.buf.push(' ');
        self.buf.push_str(&value.to_string());
        self.buf.push('\n');
    }

    /// A [`LogHistogram`] snapshot as a Prometheus histogram: cumulative
    /// `_bucket{le=…}` series up to the highest occupied bucket, then
    /// `+Inf`, `_sum` and `_count`.
    pub fn histogram(&mut self, name: &str, help: &str, snap: &HistogramSnapshot) {
        self.header(name, help, "histogram");
        let highest = snap
            .buckets
            .iter()
            .rposition(|&c| c > 0)
            .map_or(0, |i| i.min(BUCKETS - 2));
        let mut cumulative = 0u64;
        for i in 0..=highest {
            cumulative += snap.buckets[i];
            self.buf.push_str(name);
            self.buf.push_str("_bucket{le=\"");
            self.buf.push_str(&LogHistogram::bucket_le(i).to_string());
            self.buf.push_str("\"} ");
            self.buf.push_str(&cumulative.to_string());
            self.buf.push('\n');
        }
        self.buf.push_str(name);
        self.buf.push_str("_bucket{le=\"+Inf\"} ");
        self.buf.push_str(&snap.count.to_string());
        self.buf.push('\n');
        self.buf.push_str(name);
        self.buf.push_str("_sum ");
        self.buf.push_str(&snap.sum.to_string());
        self.buf.push('\n');
        self.buf.push_str(name);
        self.buf.push_str("_count ");
        self.buf.push_str(&snap.count.to_string());
        self.buf.push('\n');
    }

    /// The accumulated exposition text.
    pub fn render(self) -> String {
        self.buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_render_with_headers() {
        let mut p = PromText::new();
        p.counter("trajsearch_admitted_total", "Admitted\nqueries.", 42);
        p.gauge("trajsearch_queue_depth", "Queue depth.", 3.0);
        let text = p.render();
        assert!(text.contains("# HELP trajsearch_admitted_total Admitted\\nqueries.\n"));
        assert!(text.contains("# TYPE trajsearch_admitted_total counter\n"));
        assert!(text.contains("trajsearch_admitted_total 42\n"));
        assert!(text.contains("# TYPE trajsearch_queue_depth gauge\n"));
        assert!(text.contains("trajsearch_queue_depth 3\n"));
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_capped_by_inf() {
        let h = LogHistogram::new();
        h.record(0); // bucket 0, le 0
        h.record(1); // bucket 1, le 1
        h.record(3); // bucket 2, le 3
        h.record(3);
        let mut p = PromText::new();
        p.histogram("t", "T.", &h.snapshot());
        let text = p.render();
        assert!(text.contains("t_bucket{le=\"0\"} 1\n"));
        assert!(text.contains("t_bucket{le=\"1\"} 2\n"));
        assert!(text.contains("t_bucket{le=\"3\"} 4\n"));
        assert!(text.contains("t_bucket{le=\"+Inf\"} 4\n"));
        assert!(text.contains("t_sum 7\n"));
        assert!(text.contains("t_count 4\n"));
        // No buckets past the highest occupied one.
        assert!(!text.contains("le=\"7\""));
    }

    #[test]
    fn empty_histogram_renders_only_inf() {
        let h = LogHistogram::new();
        let mut p = PromText::new();
        p.histogram("t", "T.", &h.snapshot());
        let text = p.render();
        assert!(text.contains("t_bucket{le=\"0\"} 0\n"));
        assert!(text.contains("t_bucket{le=\"+Inf\"} 0\n"));
        assert!(text.contains("t_count 0\n"));
    }
}
