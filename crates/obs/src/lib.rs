//! # trajsearch-obs — structured tracing and metrics exposition
//!
//! Std-only observability primitives for the trajsearch workspace, matching
//! the shim policy: no tokio, no `tracing`, no external crates. Three
//! pieces:
//!
//! * **Spans** — [`TraceSink`] collects [`SpanRecord`]s (monotonic start +
//!   duration relative to the sink's epoch, u64 trace and span ids, parent
//!   links) into a bounded, lock-sharded ring: memory stays fixed under
//!   unbounded traffic, and concurrent recorders contend only per shard.
//!   Code under instrumentation holds a [`Tracer`] — a `Copy` handle that
//!   is either bound to a sink + trace id or disabled; every operation on a
//!   disabled tracer is an inlined no-op, so untraced queries pay only an
//!   `Option` check per instrumentation point.
//! * **Histograms** — [`LogHistogram`], 64 fixed log2 buckets of lock-free
//!   atomic counters for per-phase latency distributions (the ring-based
//!   percentiles in `trajsearch-serve` are recency-weighted; histograms
//!   are complete and mergeable).
//! * **Exposition** — [`PromText`] renders counters, gauges and histogram
//!   snapshots in the Prometheus text exposition format, so a server can
//!   answer a scrape without pulling in an HTTP or metrics dependency.
//!
//! ## Span lifecycle
//!
//! ```
//! use trajsearch_obs::{TraceSink, Tracer};
//!
//! let sink = TraceSink::new(1024);
//! let trace_id = sink.next_trace_id();
//! let tracer = sink.tracer(trace_id);
//! {
//!     let root = tracer.span("query");
//!     let child = root.child(); // spans opened here are parented at `root`
//!     child.span("filter").finish();
//! } // `root` records itself on drop
//! let spans = sink.spans_for(trace_id);
//! assert_eq!(spans.len(), 2);
//! assert_eq!(spans[0].name, "query");
//! assert_eq!(spans[1].parent_id, spans[0].span_id);
//!
//! // Disabled tracers cost an Option check and record nothing.
//! let off = Tracer::disabled();
//! off.span("filter").finish();
//! ```

mod hist;
mod prom;

pub use hist::{HistogramSnapshot, LogHistogram};
pub use prom::PromText;

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// One finished span: a named interval on a trace's timeline.
///
/// Times are nanoseconds relative to the owning [`TraceSink`]'s epoch (its
/// construction instant), so spans from one process order totally;
/// cross-process stitching aligns per-process timelines by trace id and
/// reads each process's spans relative to its own epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanRecord {
    /// The trace this span belongs to (0 is never a valid trace id).
    pub trace_id: u64,
    /// Unique (per sink) span id; never 0.
    pub span_id: u64,
    /// The enclosing span's id, or 0 for a root span.
    pub parent_id: u64,
    /// Phase name from the span taxonomy (`"query"`, `"filter"`, …).
    pub name: &'static str,
    /// Phase-specific payload: shard id for `shard_rpc`/`verify_shard`,
    /// round index for `topk_round`, 0 where meaningless.
    pub detail: u64,
    /// Start, nanoseconds since the sink epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
}

impl SpanRecord {
    /// End of the span, nanoseconds since the sink epoch.
    pub fn end_ns(&self) -> u64 {
        self.start_ns.saturating_add(self.dur_ns)
    }
}

/// Number of independently locked ring shards; recording threads contend
/// only when they hash to the same shard.
const RING_SHARDS: usize = 8;

struct RingShard {
    records: Vec<SpanRecord>,
    next: usize,
}

/// Bounded collector of finished spans.
///
/// The sink owns the monotonic epoch every span start is measured against,
/// allocates span ids (and, for convenience, trace ids), and keeps the most
/// recent spans in `RING_SHARDS` independently locked rings — total
/// capacity is fixed at construction, old spans are overwritten, and a
/// recording thread takes exactly one uncontended-in-the-common-case lock.
pub struct TraceSink {
    epoch: Instant,
    next_span: AtomicU64,
    next_trace: AtomicU64,
    recorded: AtomicU64,
    evicted: AtomicU64,
    shards: Vec<Mutex<RingShard>>,
    shard_cap: usize,
}

impl fmt::Debug for TraceSink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TraceSink")
            .field("capacity", &self.capacity())
            .field("recorded", &self.recorded())
            .finish()
    }
}

impl TraceSink {
    /// A sink retaining at most (roughly) `capacity` spans; a zero capacity
    /// is raised to one span per shard so recording never panics.
    pub fn new(capacity: usize) -> TraceSink {
        let shard_cap = capacity.div_ceil(RING_SHARDS).max(1);
        TraceSink {
            epoch: Instant::now(),
            next_span: AtomicU64::new(1),
            next_trace: AtomicU64::new(1),
            recorded: AtomicU64::new(0),
            evicted: AtomicU64::new(0),
            shards: (0..RING_SHARDS)
                .map(|_| {
                    Mutex::new(RingShard {
                        records: Vec::new(),
                        next: 0,
                    })
                })
                .collect(),
            shard_cap,
        }
    }

    /// Total span capacity across all ring shards.
    pub fn capacity(&self) -> usize {
        self.shard_cap * RING_SHARDS
    }

    /// Spans recorded over the sink's lifetime (including evicted ones).
    pub fn recorded(&self) -> u64 {
        self.recorded.load(Ordering::Relaxed)
    }

    /// Spans overwritten because a ring shard was full.
    pub fn evicted(&self) -> u64 {
        self.evicted.load(Ordering::Relaxed)
    }

    /// The instant all span `start_ns` values are relative to.
    pub fn epoch(&self) -> Instant {
        self.epoch
    }

    /// Allocates a fresh trace id (never 0). Distributed setups allocate at
    /// the coordinator and ship the id to shards, so per-process uniqueness
    /// is enough.
    pub fn next_trace_id(&self) -> u64 {
        self.next_trace.fetch_add(1, Ordering::Relaxed)
    }

    /// A root tracer recording into this sink under `trace_id`. A zero
    /// `trace_id` yields a disabled tracer (0 marks "untraced" on the
    /// wire).
    pub fn tracer(&self, trace_id: u64) -> Tracer<'_> {
        if trace_id == 0 {
            return Tracer { inner: None };
        }
        Tracer {
            inner: Some(TracerInner {
                sink: self,
                trace_id,
                parent: 0,
            }),
        }
    }

    /// Records one finished span built from explicit instants — the hook
    /// for intervals whose start predates tracer creation (queue wait is
    /// measured from admission, but the tracer exists only at dequeue).
    /// Returns the span id.
    pub fn record_interval(
        &self,
        trace_id: u64,
        parent_id: u64,
        name: &'static str,
        detail: u64,
        start: Instant,
        end: Instant,
    ) -> u64 {
        let span_id = self.next_span.fetch_add(1, Ordering::Relaxed);
        self.push(SpanRecord {
            trace_id,
            span_id,
            parent_id,
            name,
            detail,
            start_ns: self.ns_since_epoch(start),
            dur_ns: saturating_ns(end.saturating_duration_since(start)),
        });
        span_id
    }

    /// All retained spans of `trace_id`, sorted by start time (span id
    /// breaks ties, so a trace's span order is deterministic).
    pub fn spans_for(&self, trace_id: u64) -> Vec<SpanRecord> {
        let mut out: Vec<SpanRecord> = Vec::new();
        for shard in &self.shards {
            let ring = shard.lock().expect("trace ring poisoned");
            out.extend(ring.records.iter().filter(|r| r.trace_id == trace_id));
        }
        out.sort_by_key(|r| (r.start_ns, r.span_id));
        out
    }

    fn ns_since_epoch(&self, at: Instant) -> u64 {
        saturating_ns(at.saturating_duration_since(self.epoch))
    }

    fn push(&self, record: SpanRecord) {
        self.recorded.fetch_add(1, Ordering::Relaxed);
        let shard = &self.shards[(record.span_id as usize) % RING_SHARDS];
        let mut ring = shard.lock().expect("trace ring poisoned");
        if ring.records.len() < self.shard_cap {
            ring.records.push(record);
        } else {
            let slot = ring.next;
            ring.records[slot] = record;
            self.evicted.fetch_add(1, Ordering::Relaxed);
        }
        ring.next = (ring.next + 1) % self.shard_cap;
    }
}

fn saturating_ns(d: std::time::Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

#[derive(Clone, Copy)]
struct TracerInner<'a> {
    sink: &'a TraceSink,
    trace_id: u64,
    parent: u64,
}

/// A `Copy` handle instrumentation points hold: either bound to a
/// [`TraceSink`] + trace id + parent span, or disabled.
///
/// Disabled is the common case (untraced queries), so every method is an
/// `#[inline]` `Option` check that the optimizer folds to nothing — the
/// query path can be instrumented unconditionally. `Tracer` is `Copy` and
/// `Send` (the sink is behind a shared reference and [`TraceSink`] is
/// `Sync`), so it crosses scoped-thread boundaries into verification
/// workers as a plain value.
#[derive(Clone, Copy)]
pub struct Tracer<'a> {
    inner: Option<TracerInner<'a>>,
}

impl<'a> Tracer<'a> {
    /// The no-op tracer; coerces to any lifetime.
    #[inline]
    pub const fn disabled() -> Tracer<'static> {
        Tracer { inner: None }
    }

    /// Whether spans recorded through this tracer go anywhere.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// The bound trace id, or `None` when disabled.
    #[inline]
    pub fn trace_id(&self) -> Option<u64> {
        self.inner.map(|i| i.trace_id)
    }

    /// Opens a span named `name`, parented at this tracer's parent span.
    /// The span records itself when the guard drops (or on
    /// [`SpanGuard::finish`]).
    #[inline]
    pub fn span(&self, name: &'static str) -> SpanGuard<'a> {
        self.span_with(name, 0)
    }

    /// [`Tracer::span`] with a `detail` payload (shard id, round index…).
    #[inline]
    pub fn span_with(&self, name: &'static str, detail: u64) -> SpanGuard<'a> {
        let inner = match self.inner {
            Some(inner) => inner,
            None => return SpanGuard { inner: None },
        };
        let span_id = inner.sink.next_span.fetch_add(1, Ordering::Relaxed);
        SpanGuard {
            inner: Some(GuardInner {
                sink: inner.sink,
                trace_id: inner.trace_id,
                span_id,
                parent_id: inner.parent,
                name,
                detail,
                start: Instant::now(),
            }),
        }
    }

    /// Records an already-measured interval as a finished span (no guard;
    /// useful where the code already brackets a phase with its own
    /// `Instant`s for stats accounting). Returns the span id, 0 when
    /// disabled.
    #[inline]
    pub fn record_interval(
        &self,
        name: &'static str,
        detail: u64,
        start: Instant,
        end: Instant,
    ) -> u64 {
        match self.inner {
            Some(inner) => {
                inner
                    .sink
                    .record_interval(inner.trace_id, inner.parent, name, detail, start, end)
            }
            None => 0,
        }
    }
}

struct GuardInner<'a> {
    sink: &'a TraceSink,
    trace_id: u64,
    span_id: u64,
    parent_id: u64,
    name: &'static str,
    detail: u64,
    start: Instant,
}

/// An open span; records a [`SpanRecord`] when dropped.
pub struct SpanGuard<'a> {
    inner: Option<GuardInner<'a>>,
}

impl<'a> SpanGuard<'a> {
    /// This span's id (0 when the tracer was disabled).
    #[inline]
    pub fn id(&self) -> u64 {
        self.inner.as_ref().map_or(0, |i| i.span_id)
    }

    /// A tracer whose spans are parented at this span — pass it down to
    /// instrument sub-phases.
    #[inline]
    pub fn child(&self) -> Tracer<'a> {
        Tracer {
            inner: self.inner.as_ref().map(|i| TracerInner {
                sink: i.sink,
                trace_id: i.trace_id,
                parent: i.span_id,
            }),
        }
    }

    /// Replaces the span's `detail` payload.
    #[inline]
    pub fn set_detail(&mut self, detail: u64) {
        if let Some(inner) = self.inner.as_mut() {
            inner.detail = detail;
        }
    }

    /// Ends the span now (equivalent to dropping the guard; named for
    /// call sites where an explicit end reads better).
    #[inline]
    pub fn finish(self) {}
}

impl Drop for SpanGuard<'_> {
    #[inline]
    fn drop(&mut self) {
        if let Some(inner) = self.inner.take() {
            let start_ns = inner.sink.ns_since_epoch(inner.start);
            inner.sink.push(SpanRecord {
                trace_id: inner.trace_id,
                span_id: inner.span_id,
                parent_id: inner.parent_id,
                name: inner.name,
                detail: inner.detail,
                start_ns,
                dur_ns: saturating_ns(inner.start.elapsed()),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn spans_nest_with_parent_links() {
        let sink = TraceSink::new(64);
        let trace = sink.next_trace_id();
        let tracer = sink.tracer(trace);
        {
            let root = tracer.span("query");
            let inner = root.child();
            inner.span_with("filter", 3).finish();
            inner.span("verify").finish();
        }
        let spans = sink.spans_for(trace);
        assert_eq!(spans.len(), 3);
        let root = spans.iter().find(|s| s.name == "query").unwrap();
        assert_eq!(root.parent_id, 0);
        for child in spans.iter().filter(|s| s.name != "query") {
            assert_eq!(child.parent_id, root.span_id);
            assert!(child.start_ns >= root.start_ns);
            assert!(child.end_ns() <= root.end_ns());
        }
        assert_eq!(spans.iter().find(|s| s.name == "filter").unwrap().detail, 3);
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let tracer = Tracer::disabled();
        assert!(!tracer.enabled());
        assert_eq!(tracer.trace_id(), None);
        let g = tracer.span("query");
        assert_eq!(g.id(), 0);
        g.child().span("filter").finish();
        let now = Instant::now();
        assert_eq!(tracer.record_interval("queue_wait", 0, now, now), 0);
    }

    #[test]
    fn zero_trace_id_means_untraced() {
        let sink = TraceSink::new(16);
        assert!(!sink.tracer(0).enabled());
        sink.tracer(0).span("query").finish();
        assert_eq!(sink.recorded(), 0);
    }

    #[test]
    fn ring_is_bounded_and_evicts_oldest() {
        let sink = TraceSink::new(16); // 2 per shard
        let tracer = sink.tracer(7);
        for _ in 0..100 {
            tracer.span("query").finish();
        }
        assert_eq!(sink.recorded(), 100);
        assert!(sink.evicted() > 0);
        let spans = sink.spans_for(7);
        assert!(spans.len() <= sink.capacity());
        // The retained spans are the most recent ones.
        let min_kept = spans.iter().map(|s| s.span_id).min().unwrap();
        assert!(min_kept > 100 - sink.capacity() as u64 - RING_SHARDS as u64);
    }

    #[test]
    fn record_interval_measures_the_given_window() {
        let sink = TraceSink::new(16);
        let start = Instant::now();
        let end = start + Duration::from_millis(5);
        let id = sink.record_interval(9, 0, "queue_wait", 0, start, end);
        assert!(id > 0);
        let spans = sink.spans_for(9);
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].dur_ns, 5_000_000);
        // A start before the sink epoch clamps to 0 instead of panicking.
        let early = sink.epoch() - Duration::from_secs(1);
        sink.record_interval(9, 0, "queue_wait", 0, early, early + Duration::from_secs(2));
        let spans = sink.spans_for(9);
        assert_eq!(spans[0].start_ns, 0);
        assert_eq!(spans[0].dur_ns, 2_000_000_000);
    }

    #[test]
    fn spans_for_is_sorted_and_trace_scoped() {
        let sink = TraceSink::new(64);
        let a = sink.next_trace_id();
        let b = sink.next_trace_id();
        sink.tracer(b).span("query").finish();
        sink.tracer(a).span("query").finish();
        sink.tracer(a).span("filter").finish();
        let spans = sink.spans_for(a);
        assert_eq!(spans.len(), 2);
        assert!(spans.iter().all(|s| s.trace_id == a));
        assert!(spans
            .windows(2)
            .all(|w| (w[0].start_ns, w[0].span_id) <= (w[1].start_ns, w[1].span_id)));
    }

    #[test]
    fn concurrent_recording_is_safe_and_complete() {
        let sink = TraceSink::new(100_000);
        std::thread::scope(|scope| {
            for t in 0..4 {
                let tracer = sink.tracer(t + 1);
                scope.spawn(move || {
                    for i in 0..1000 {
                        tracer.span_with("verify_shard", i).finish();
                    }
                });
            }
        });
        assert_eq!(sink.recorded(), 4000);
        assert_eq!(sink.evicted(), 0);
        for t in 1..=4 {
            assert_eq!(sink.spans_for(t).len(), 1000);
        }
    }
}
