//! Fixed log2-bucket latency histograms.
//!
//! 64 buckets, one per bit length: bucket 0 holds the value 0, bucket `i`
//! (1 ≤ i ≤ 62) holds values in `[2^(i−1), 2^i)`, bucket 63 holds
//! everything from `2^62` up. Recording is one lock-free atomic increment
//! plus an atomic add to the sum — cheap enough for the query hot path —
//! and the fixed geometry makes snapshots mergeable across servers and
//! renderable as a Prometheus histogram with stable bucket bounds.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of log2 buckets.
pub const BUCKETS: usize = 64;

/// A concurrent histogram over u64 samples (nanoseconds, by convention).
pub struct LogHistogram {
    buckets: [AtomicU64; BUCKETS],
    sum: AtomicU64,
}

impl Default for LogHistogram {
    fn default() -> LogHistogram {
        LogHistogram::new()
    }
}

impl LogHistogram {
    pub fn new() -> LogHistogram {
        LogHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
        }
    }

    /// Bucket index of `v`: its bit length, clamped to the last bucket.
    #[inline]
    pub fn bucket_of(v: u64) -> usize {
        ((64 - v.leading_zeros()) as usize).min(BUCKETS - 1)
    }

    /// Inclusive upper bound of bucket `i` (`u64::MAX` for the last —
    /// rendered as `+Inf` by the Prometheus exposition).
    pub fn bucket_le(i: usize) -> u64 {
        if i >= BUCKETS - 1 {
            u64::MAX
        } else {
            (1u64 << i) - 1
        }
    }

    /// Records one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[Self::bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// A point-in-time copy (counters are relaxed: the snapshot is
    /// consistent enough for dashboards, not a linearization point).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets: [u64; BUCKETS] =
            std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed));
        HistogramSnapshot {
            count: buckets.iter().sum(),
            sum: self.sum.load(Ordering::Relaxed),
            buckets,
        }
    }
}

/// An owned copy of a [`LogHistogram`]'s state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket sample counts (non-cumulative).
    pub buckets: [u64; BUCKETS],
    /// Total samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
}

impl HistogramSnapshot {
    /// Nearest-rank quantile estimate: the inclusive upper bound of the
    /// bucket containing the `ceil(q·count)`-th smallest sample. An upper
    /// bound (within 2× for log2 buckets), good for flame-style summaries;
    /// 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return LogHistogram::bucket_le(i);
            }
        }
        LogHistogram::bucket_le(BUCKETS - 1)
    }

    /// Mean sample value; 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_geometry() {
        assert_eq!(LogHistogram::bucket_of(0), 0);
        assert_eq!(LogHistogram::bucket_of(1), 1);
        assert_eq!(LogHistogram::bucket_of(2), 2);
        assert_eq!(LogHistogram::bucket_of(3), 2);
        assert_eq!(LogHistogram::bucket_of(4), 3);
        assert_eq!(LogHistogram::bucket_of(1023), 10);
        assert_eq!(LogHistogram::bucket_of(1024), 11);
        assert_eq!(LogHistogram::bucket_of(u64::MAX), 63);
        // Bounds are inclusive and consistent with bucket_of.
        for i in 0..BUCKETS - 1 {
            let le = LogHistogram::bucket_le(i);
            assert!(LogHistogram::bucket_of(le) <= i);
            assert_eq!(LogHistogram::bucket_of(le + 1), i + 1);
        }
        assert_eq!(LogHistogram::bucket_le(BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn record_and_snapshot() {
        let h = LogHistogram::new();
        for v in [0, 1, 1, 5, 1000, 1_000_000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 6);
        assert_eq!(s.sum, 1_001_007);
        assert_eq!(s.buckets[0], 1); // 0
        assert_eq!(s.buckets[1], 2); // 1, 1
        assert_eq!(s.buckets[3], 1); // 5
        assert_eq!(s.buckets[10], 1); // 1000
        assert_eq!(s.buckets[20], 1); // 1_000_000
        assert!((s.mean() - 1_001_007.0 / 6.0).abs() < 1e-9);
    }

    #[test]
    fn quantile_is_a_bucket_upper_bound() {
        let h = LogHistogram::new();
        for _ in 0..99 {
            h.record(100); // bucket 7, le 127
        }
        h.record(1_000_000); // bucket 20
        let s = h.snapshot();
        assert_eq!(s.quantile(0.5), 127);
        assert_eq!(s.quantile(0.99), 127);
        assert_eq!(s.quantile(1.0), LogHistogram::bucket_le(20));
        assert_eq!(HistogramSnapshot::default_empty().quantile(0.5), 0);
    }

    impl HistogramSnapshot {
        fn default_empty() -> HistogramSnapshot {
            HistogramSnapshot {
                buckets: [0; BUCKETS],
                count: 0,
                sum: 0,
            }
        }
    }

    #[test]
    fn concurrent_records_all_land() {
        let h = LogHistogram::new();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for i in 0..10_000u64 {
                        h.record(i);
                    }
                });
            }
        });
        assert_eq!(h.snapshot().count, 40_000);
    }
}
