//! Trajectory substrate: the data model of §2.1 of the paper plus everything
//! needed to materialize realistic datasets.
//!
//! * [`model`] — trajectories as paths on the road network with per-vertex
//!   timestamps (Definition 1).
//! * [`dataset`] — an in-memory trajectory store with the statistics reported
//!   in Table 2 and symbol-frequency accounting used by MinCand.
//! * [`edges`] — vertex ⇄ edge representation conversion (§2.1 supports both).
//! * [`generator`] — synthetic trip generation (waypoint-routed paths with
//!   detours and congestion-noised timestamps) and random walks, substituting
//!   for the taxi GPS corpora of the paper (`DESIGN.md` §4).
//! * [`mapmatch`] — HMM map matching (Newson–Krumm style), the preprocessing
//!   step the paper applies to raw GPS traces.

pub mod dataset;
pub mod edges;
pub mod generator;
pub mod io;
pub mod mapmatch;
pub mod model;

pub use dataset::{DatasetStats, TrajectoryStore};
pub use generator::{RandomWalkConfig, TripConfig};
pub use mapmatch::MapMatcher;
pub use model::{TrajId, Trajectory};
