//! Plain-text serialization of trajectory stores.
//!
//! One line per trajectory: whitespace-separated `symbol@time` tokens. The
//! symbol is a vertex or edge id depending on the store's representation.
//!
//! ```text
//! # comments and blank lines are ignored
//! 17@0 18@12.5 42@30
//! 3@100 4@108
//! ```

use crate::dataset::TrajectoryStore;
use crate::model::Trajectory;
use std::fmt::Write as _;

/// Errors from [`parse_store`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    Malformed(usize, String),
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::Malformed(line, msg) => write!(f, "line {line}: {msg}"),
        }
    }
}

impl std::error::Error for ParseError {}

/// Serializes a store, one trajectory per line.
pub fn format_store(store: &TrajectoryStore) -> String {
    let mut out = String::new();
    out.push_str("# trajsearch trajectories: symbol@time per element\n");
    for (_, t) in store.iter() {
        let mut first = true;
        for (&sym, &time) in t.path().iter().zip(t.times()) {
            if !first {
                out.push(' ');
            }
            let _ = write!(out, "{sym}@{time}");
            first = false;
        }
        out.push('\n');
    }
    out
}

/// Parses the line format back into a store.
pub fn parse_store(text: &str) -> Result<TrajectoryStore, ParseError> {
    let mut store = TrajectoryStore::new();
    for (i, raw) in text.lines().enumerate() {
        let lineno = i + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut path = Vec::new();
        let mut times = Vec::new();
        for tok in line.split_whitespace() {
            let (sym, time) = tok
                .split_once('@')
                .ok_or_else(|| ParseError::Malformed(lineno, format!("token {tok:?} lacks '@'")))?;
            let sym: u32 = sym
                .parse()
                .map_err(|_| ParseError::Malformed(lineno, format!("bad symbol in {tok:?}")))?;
            let time: f64 = time
                .parse()
                .map_err(|_| ParseError::Malformed(lineno, format!("bad time in {tok:?}")))?;
            path.push(sym);
            times.push(time);
        }
        if path.is_empty() {
            return Err(ParseError::Malformed(lineno, "empty trajectory".into()));
        }
        if times.windows(2).any(|w| w[0] > w[1]) {
            return Err(ParseError::Malformed(
                lineno,
                "timestamps must be non-decreasing".into(),
            ));
        }
        store.push(Trajectory::new(path, times));
    }
    Ok(store)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TrajectoryStore {
        let mut s = TrajectoryStore::new();
        s.push(Trajectory::new(vec![17, 18, 42], vec![0.0, 12.5, 30.0]));
        s.push(Trajectory::new(vec![3, 4], vec![100.0, 108.0]));
        s
    }

    #[test]
    fn roundtrip_preserves_store() {
        let s = sample();
        let text = format_store(&s);
        let back = parse_store(&text).unwrap();
        assert_eq!(back.len(), s.len());
        for ((_, a), (_, b)) in s.iter().zip(back.iter()) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn parses_hand_written_input() {
        let s = parse_store("# hi\n\n1@0 2@1.5 3@2\n").unwrap();
        assert_eq!(s.len(), 1);
        assert_eq!(s.get(0).path(), &[1, 2, 3]);
        assert_eq!(s.get(0).times()[1], 1.5);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(parse_store("1 2 3").is_err()); // no @
        assert!(parse_store("a@0").is_err()); // bad symbol
        assert!(parse_store("1@x").is_err()); // bad time
        assert!(parse_store("1@5 2@1").is_err()); // decreasing
        let err = parse_store("ok@").unwrap_err();
        assert!(err.to_string().contains("line 1"));
    }
}
