//! The trajectory data model (Definition 1 of the paper).
//!
//! A trajectory is a pair `(P, T)`: a path `P` on the road network and a
//! sequence `T` of timestamps, one per vertex. As in the paper, most of the
//! search machinery only looks at `P` (a string over the alphabet of vertex
//! or edge ids); timestamps come back into play for temporal constraints
//! (§2.3, §4.3).

/// Identifier of a trajectory within a [`crate::TrajectoryStore`].
pub type TrajId = u32;

/// A network-constrained trajectory: a symbol string plus timestamps.
///
/// `path` holds vertex ids in vertex representation or edge ids in edge
/// representation — the search algorithms are representation-agnostic.
#[derive(Debug, Clone, PartialEq)]
pub struct Trajectory {
    path: Vec<u32>,
    times: Vec<f64>,
}

impl Trajectory {
    /// Creates a trajectory, validating the model invariants:
    /// equal lengths, non-empty, non-decreasing timestamps.
    pub fn new(path: Vec<u32>, times: Vec<f64>) -> Self {
        assert!(!path.is_empty(), "trajectory must be non-empty");
        assert_eq!(path.len(), times.len(), "one timestamp per element");
        assert!(
            times.windows(2).all(|w| w[0] <= w[1]),
            "timestamps must be non-decreasing"
        );
        Trajectory { path, times }
    }

    /// Creates a trajectory with all-zero timestamps (for tests and purely
    /// spatial workloads).
    pub fn untimed(path: Vec<u32>) -> Self {
        let times = vec![0.0; path.len()];
        Trajectory::new(path, times)
    }

    /// The symbol string `P`.
    pub fn path(&self) -> &[u32] {
        &self.path
    }

    /// The timestamp sequence `T`.
    pub fn times(&self) -> &[f64] {
        &self.times
    }

    /// Number of symbols `|P|`.
    pub fn len(&self) -> usize {
        self.path.len()
    }

    pub fn is_empty(&self) -> bool {
        false // enforced non-empty at construction
    }

    /// Departure (first) timestamp.
    pub fn departure(&self) -> f64 {
        self.times[0]
    }

    /// Arrival (last) timestamp.
    pub fn arrival(&self) -> f64 {
        *self.times.last().unwrap()
    }

    /// Time span `[T_1, T_n]` of the whole trajectory; candidates are pruned
    /// against this interval by temporal filtering (§4.3).
    pub fn span(&self) -> (f64, f64) {
        (self.departure(), self.arrival())
    }

    /// Travel time of the subtrajectory from position `i` to `j`
    /// (inclusive, 0-based); this is the quantity averaged by the
    /// travel-time-estimation experiment (§6.2.1).
    pub fn travel_time(&self, i: usize, j: usize) -> f64 {
        assert!(i <= j && j < self.len());
        self.times[j] - self.times[i]
    }

    /// The substring `P[i..=j]` (0-based inclusive), as a slice.
    pub fn subpath(&self, i: usize, j: usize) -> &[u32] {
        &self.path[i..=j]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_trajectory_roundtrips() {
        let t = Trajectory::new(vec![1, 2, 3], vec![0.0, 5.0, 9.0]);
        assert_eq!(t.len(), 3);
        assert_eq!(t.path(), &[1, 2, 3]);
        assert_eq!(t.departure(), 0.0);
        assert_eq!(t.arrival(), 9.0);
        assert_eq!(t.span(), (0.0, 9.0));
        assert_eq!(t.travel_time(0, 2), 9.0);
        assert_eq!(t.travel_time(1, 2), 4.0);
        assert_eq!(t.subpath(1, 2), &[2, 3]);
        assert!(!t.is_empty());
    }

    #[test]
    fn untimed_has_zero_times() {
        let t = Trajectory::untimed(vec![4, 5]);
        assert_eq!(t.times(), &[0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_path_rejected() {
        Trajectory::new(vec![], vec![]);
    }

    #[test]
    #[should_panic(expected = "one timestamp per element")]
    fn mismatched_lengths_rejected() {
        Trajectory::new(vec![1, 2], vec![0.0]);
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn decreasing_times_rejected() {
        Trajectory::new(vec![1, 2], vec![5.0, 1.0]);
    }

    #[test]
    #[should_panic]
    fn travel_time_out_of_range_panics() {
        let t = Trajectory::untimed(vec![1, 2]);
        t.travel_time(1, 2);
    }
}
