//! Vertex ⇄ edge representation conversion (§2.1).
//!
//! A path `v1 v2 … vn` has the equivalent edge representation
//! `e1 e2 … e(n-1)` with `ei = (vi, vi+1)`. SURS (Eq. 4) is defined on edge
//! strings; the other WED instances here use vertex strings. The search
//! engine itself is representation-agnostic (symbols are opaque `u32`s), so
//! conversion happens once at dataset preparation time.

use crate::dataset::TrajectoryStore;
use crate::model::Trajectory;
use rnet::RoadNetwork;

/// Which alphabet a symbol string is drawn from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Representation {
    /// Symbols are vertex ids, alphabet `V`.
    Vertex,
    /// Symbols are edge ids, alphabet `E`.
    Edge,
}

/// Converts a vertex-path trajectory to edge representation.
///
/// The timestamp of edge `ei` is the departure time from `vi`. Returns
/// `None` for single-vertex trajectories (their edge string is empty, which
/// the model forbids) or sequences that are not paths on `net`.
pub fn to_edge_trajectory(net: &RoadNetwork, t: &Trajectory) -> Option<Trajectory> {
    if t.len() < 2 {
        return None;
    }
    let edges = net.path_to_edges(t.path())?;
    let times = t.times()[..t.len() - 1].to_vec();
    Some(Trajectory::new(edges, times))
}

/// Converts an edge-representation trajectory back to its vertex path. The
/// final vertex reuses the last edge's timestamp (arrival time is not
/// recoverable exactly; callers needing exact times should keep the vertex
/// representation).
pub fn to_vertex_trajectory(net: &RoadNetwork, t: &Trajectory) -> Option<Trajectory> {
    let path = net.edges_to_path(t.path())?;
    let mut times = t.times().to_vec();
    times.push(*t.times().last().unwrap());
    Some(Trajectory::new(path, times))
}

/// Converts a whole store to edge representation, dropping trajectories that
/// are too short to have an edge string. Returns the converted store.
pub fn store_to_edges(net: &RoadNetwork, store: &TrajectoryStore) -> TrajectoryStore {
    store
        .iter()
        .filter_map(|(_, t)| to_edge_trajectory(net, t))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rnet::{GraphBuilder, Point};

    fn path_graph() -> RoadNetwork {
        let mut b = GraphBuilder::new();
        for i in 0..4 {
            b.add_vertex(Point::new(i as f64, 0.0));
        }
        b.add_bidirectional(0, 1, 1.0, 1.0);
        b.add_bidirectional(1, 2, 1.0, 1.0);
        b.add_bidirectional(2, 3, 1.0, 1.0);
        b.build()
    }

    #[test]
    fn vertex_to_edge_and_back() {
        let g = path_graph();
        let t = Trajectory::new(vec![0, 1, 2, 3], vec![0.0, 1.0, 2.0, 3.0]);
        let e = to_edge_trajectory(&g, &t).unwrap();
        assert_eq!(e.len(), 3);
        assert_eq!(e.times(), &[0.0, 1.0, 2.0]);
        let v = to_vertex_trajectory(&g, &e).unwrap();
        assert_eq!(v.path(), t.path());
    }

    #[test]
    fn edge_ids_match_network() {
        let g = path_graph();
        let t = Trajectory::untimed(vec![2, 1, 0]);
        let e = to_edge_trajectory(&g, &t).unwrap();
        assert_eq!(e.path()[0], g.find_edge(2, 1).unwrap());
        assert_eq!(e.path()[1], g.find_edge(1, 0).unwrap());
    }

    #[test]
    fn singleton_and_nonpath_rejected() {
        let g = path_graph();
        assert!(to_edge_trajectory(&g, &Trajectory::untimed(vec![0])).is_none());
        assert!(to_edge_trajectory(&g, &Trajectory::untimed(vec![0, 2])).is_none());
    }

    #[test]
    fn store_conversion_drops_singletons() {
        let g = path_graph();
        let mut s = TrajectoryStore::new();
        s.push(Trajectory::untimed(vec![0, 1, 2]));
        s.push(Trajectory::untimed(vec![3]));
        s.push(Trajectory::untimed(vec![3, 2]));
        let es = store_to_edges(&g, &s);
        assert_eq!(es.len(), 2);
        assert_eq!(es.get(0).len(), 2);
        assert_eq!(es.get(1).len(), 1);
    }
}
