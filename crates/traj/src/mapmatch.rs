//! HMM map matching (Newson & Krumm style), the preprocessing step the paper
//! uses to convert raw GPS traces into network-constrained paths (§2.1).
//!
//! States are candidate vertices near each observation; emission likelihood
//! is Gaussian in the GPS error, transition likelihood is exponential in the
//! disagreement between network distance and straight-line displacement.
//! Decoding is Viterbi in log-space; the decoded vertex sequence is stitched
//! into a connected path with shortest-path interpolation.

use rand::Rng;
use rand_chacha::ChaCha8Rng;
use rnet::dijkstra::{bounded, shortest_path, Mode};
use rnet::{KdTree, Point, RoadNetwork, VertexId};
use std::collections::HashMap;

/// HMM map matcher over a road network.
pub struct MapMatcher<'a> {
    net: &'a RoadNetwork,
    tree: KdTree,
    /// GPS error standard deviation (meters).
    sigma: f64,
    /// Transition scale (meters); larger tolerates bigger detours.
    beta: f64,
    /// Maximum candidates per observation.
    max_candidates: usize,
}

impl<'a> MapMatcher<'a> {
    pub fn new(net: &'a RoadNetwork, sigma: f64, beta: f64) -> Self {
        assert!(sigma > 0.0 && beta > 0.0);
        MapMatcher {
            net,
            tree: KdTree::build(net.coords()),
            sigma,
            beta,
            max_candidates: 6,
        }
    }

    /// Candidate vertices for one observation: everything within `3σ`,
    /// nearest-first, capped; falls back to the single nearest vertex.
    fn candidates(&self, obs: Point) -> Vec<VertexId> {
        let mut cands = self.tree.range(obs, 3.0 * self.sigma);
        cands.sort_by(|&a, &b| {
            self.net
                .coord(a)
                .dist2(&obs)
                .total_cmp(&self.net.coord(b).dist2(&obs))
        });
        cands.truncate(self.max_candidates);
        if cands.is_empty() {
            if let Some((v, _)) = self.tree.nearest(obs) {
                cands.push(v);
            }
        }
        cands
    }

    /// Matches a GPS trace to a connected vertex path.
    ///
    /// Returns `None` for empty traces or when no connected decoding exists.
    pub fn match_trace(&self, trace: &[Point]) -> Option<Vec<VertexId>> {
        if trace.is_empty() {
            return None;
        }
        let states: Vec<Vec<VertexId>> = trace.iter().map(|&o| self.candidates(o)).collect();
        if states.iter().any(Vec::is_empty) {
            return None;
        }

        // Viterbi (log domain).
        let emit = |v: VertexId, o: Point| {
            let d = self.net.coord(v).dist(&o);
            -0.5 * (d / self.sigma).powi(2)
        };
        let mut score: Vec<f64> = states[0].iter().map(|&v| emit(v, trace[0])).collect();
        let mut back: Vec<Vec<usize>> = Vec::with_capacity(trace.len());
        back.push(vec![0; states[0].len()]);

        for i in 1..trace.len() {
            let hop = trace[i - 1].dist(&trace[i]);
            let radius = 3.0 * hop + 6.0 * self.sigma + 50.0;
            // Network distances from every previous candidate, one bounded
            // Dijkstra each (undirected: GPS traces do not encode direction
            // reliably at this resolution).
            let net_dists: Vec<HashMap<VertexId, f64>> = states[i - 1]
                .iter()
                .map(|&a| {
                    bounded(self.net, a, radius, Mode::UndirectedLength)
                        .within
                        .into_iter()
                        .collect()
                })
                .collect();
            let mut next = vec![f64::NEG_INFINITY; states[i].len()];
            let mut bp = vec![0usize; states[i].len()];
            for (bj, &b) in states[i].iter().enumerate() {
                let e = emit(b, trace[i]);
                for (aj, _a) in states[i - 1].iter().enumerate() {
                    let trans = match net_dists[aj].get(&b) {
                        Some(&dn) => -(dn - hop).abs() / self.beta,
                        None => -radius / self.beta - 20.0, // soft teleport penalty
                    };
                    let s = score[aj] + trans + e;
                    if s > next[bj] {
                        next[bj] = s;
                        bp[bj] = aj;
                    }
                }
            }
            score = next;
            back.push(bp);
        }

        // Backtrack.
        let mut best = (0usize, f64::NEG_INFINITY);
        for (j, &s) in score.iter().enumerate() {
            if s > best.1 {
                best = (j, s);
            }
        }
        let mut seq = vec![0usize; trace.len()];
        seq[trace.len() - 1] = best.0;
        for i in (1..trace.len()).rev() {
            seq[i - 1] = back[i][seq[i]];
        }
        let decoded: Vec<VertexId> = seq.iter().zip(&states).map(|(&j, s)| s[j]).collect();

        // Stitch into a connected path.
        let mut path = vec![decoded[0]];
        for &v in &decoded[1..] {
            let cur = *path.last().unwrap();
            if v == cur {
                continue;
            }
            let (leg, _) = shortest_path(self.net, cur, v, Mode::DirectedLength).or_else(|| {
                shortest_path(self.net, v, cur, Mode::DirectedLength).map(|(mut p, c)| {
                    p.reverse();
                    (p, c)
                })
            })?;
            path.extend_from_slice(&leg[1..]);
        }
        Some(path)
    }
}

/// Generates a noisy GPS trace from a ground-truth vertex path: one
/// observation every `every` vertices, with isotropic Gaussian noise of
/// standard deviation `sigma` meters. Test/demo helper.
pub fn noisy_trace(
    net: &RoadNetwork,
    path: &[VertexId],
    sigma: f64,
    every: usize,
    rng: &mut ChaCha8Rng,
) -> Vec<Point> {
    assert!(every >= 1);
    let mut gauss = || {
        let (u1, u2) = (rng.gen_range(f64::EPSILON..1.0f64), rng.gen::<f64>());
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    };
    let mut trace = Vec::new();
    let mut i = 0;
    while i < path.len() {
        let p = net.coord(path[i]);
        let (nx, ny) = (gauss() * sigma, gauss() * sigma);
        trace.push(Point::new(p.x + nx, p.y + ny));
        i += every;
    }
    trace
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::random_walk;
    use rand::SeedableRng;
    use rnet::{CityParams, NetworkKind};

    fn net() -> RoadNetwork {
        CityParams::tiny(NetworkKind::Grid).generate()
    }

    #[test]
    fn noiseless_dense_trace_recovers_path() {
        let g = net();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let truth = random_walk(&g, &mut rng, 0, 12);
        let trace: Vec<Point> = truth.iter().map(|&v| g.coord(v)).collect();
        let m = MapMatcher::new(&g, 5.0, 30.0);
        let matched = m.match_trace(&trace).unwrap();
        assert_eq!(matched, truth);
    }

    #[test]
    fn noisy_sparse_trace_recovers_most_of_path() {
        let g = net();
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let truth = random_walk(&g, &mut rng, 10, 16);
        let trace = noisy_trace(&g, &truth, 12.0, 2, &mut rng);
        let m = MapMatcher::new(&g, 15.0, 60.0);
        let matched = m.match_trace(&trace).unwrap();
        assert!(g.is_path(&matched), "matched output must be a path");
        // Recall: most ground-truth vertices are recovered.
        let matched_set: std::collections::HashSet<_> = matched.iter().collect();
        let hit = truth.iter().filter(|v| matched_set.contains(v)).count();
        assert!(
            hit as f64 >= 0.7 * truth.len() as f64,
            "only {hit}/{} ground-truth vertices recovered",
            truth.len()
        );
    }

    #[test]
    fn output_is_always_connected() {
        let g = CityParams::tiny(NetworkKind::City).seed(5).generate();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        for seed in 0..5u64 {
            let mut wrng = ChaCha8Rng::seed_from_u64(seed);
            let start = wrng.gen_range(0..g.num_vertices() as u32);
            let truth = random_walk(&g, &mut wrng, start, 10);
            let trace = noisy_trace(&g, &truth, 20.0, 3, &mut rng);
            let m = MapMatcher::new(&g, 20.0, 80.0);
            if let Some(matched) = m.match_trace(&trace) {
                assert!(g.is_path(&matched));
            }
        }
    }

    #[test]
    fn empty_trace_is_none() {
        let g = net();
        let m = MapMatcher::new(&g, 10.0, 30.0);
        assert_eq!(m.match_trace(&[]), None);
    }

    #[test]
    fn single_observation_maps_to_nearest_vertex() {
        let g = net();
        let m = MapMatcher::new(&g, 10.0, 30.0);
        let p = g.coord(5);
        let got = m.match_trace(&[Point::new(p.x + 3.0, p.y - 2.0)]).unwrap();
        assert_eq!(got, vec![5]);
    }
}
