//! In-memory trajectory dataset (the `T` of Definition 3).
//!
//! The store is append-only, mirroring the paper's index maintenance model
//! ("we can update the index by appending a new record", §4.1). It also
//! exposes the symbol-frequency table `n(q)` consumed by the MinCand
//! optimizer and the per-dataset statistics of Table 2.

use crate::model::{TrajId, Trajectory};

/// Dataset-level statistics (the columns of Table 2).
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetStats {
    pub num_trajectories: usize,
    pub avg_length: f64,
    pub min_length: usize,
    pub max_length: usize,
    pub total_symbols: usize,
}

/// An append-only collection of trajectories addressed by dense [`TrajId`]s.
#[derive(Debug, Clone, Default)]
pub struct TrajectoryStore {
    trajs: Vec<Trajectory>,
}

impl TrajectoryStore {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn with_capacity(n: usize) -> Self {
        TrajectoryStore {
            trajs: Vec::with_capacity(n),
        }
    }

    /// Appends a trajectory, returning its id.
    pub fn push(&mut self, t: Trajectory) -> TrajId {
        let id = self.trajs.len() as TrajId;
        self.trajs.push(t);
        id
    }

    pub fn len(&self) -> usize {
        self.trajs.len()
    }

    pub fn is_empty(&self) -> bool {
        self.trajs.is_empty()
    }

    pub fn get(&self, id: TrajId) -> &Trajectory {
        &self.trajs[id as usize]
    }

    pub fn iter(&self) -> impl Iterator<Item = (TrajId, &Trajectory)> {
        self.trajs.iter().enumerate().map(|(i, t)| (i as TrajId, t))
    }

    /// A store containing only the first `n` trajectories (used by the
    /// dataset-size sweeps of Figures 8 and 10).
    pub fn prefix(&self, n: usize) -> TrajectoryStore {
        TrajectoryStore {
            trajs: self.trajs[..n.min(self.trajs.len())].to_vec(),
        }
    }

    /// Symbol frequencies `n(q)` over the whole dataset, counting every
    /// occurrence (a symbol visited twice in one trajectory counts twice —
    /// see the remark under Definition 5: candidates carry positions, so
    /// multiplicity matters).
    pub fn symbol_frequencies(&self, alphabet_size: usize) -> Vec<u32> {
        let mut n = vec![0u32; alphabet_size];
        for t in &self.trajs {
            for &q in t.path() {
                n[q as usize] += 1;
            }
        }
        n
    }

    /// Statistics in the shape of Table 2.
    pub fn stats(&self) -> DatasetStats {
        let total: usize = self.trajs.iter().map(|t| t.len()).sum();
        let min = self.trajs.iter().map(|t| t.len()).min().unwrap_or(0);
        let max = self.trajs.iter().map(|t| t.len()).max().unwrap_or(0);
        DatasetStats {
            num_trajectories: self.trajs.len(),
            avg_length: if self.trajs.is_empty() {
                0.0
            } else {
                total as f64 / self.trajs.len() as f64
            },
            min_length: min,
            max_length: max,
            total_symbols: total,
        }
    }
}

impl FromIterator<Trajectory> for TrajectoryStore {
    fn from_iter<I: IntoIterator<Item = Trajectory>>(iter: I) -> Self {
        TrajectoryStore {
            trajs: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> TrajectoryStore {
        let mut s = TrajectoryStore::new();
        s.push(Trajectory::untimed(vec![0, 1, 2]));
        s.push(Trajectory::untimed(vec![2, 1]));
        s.push(Trajectory::untimed(vec![1, 1, 1, 1]));
        s
    }

    #[test]
    fn push_and_get() {
        let s = store();
        assert_eq!(s.len(), 3);
        assert_eq!(s.get(1).path(), &[2, 1]);
        assert_eq!(s.iter().count(), 3);
        assert!(!s.is_empty());
    }

    #[test]
    fn frequencies_count_multiplicity() {
        let s = store();
        let n = s.symbol_frequencies(3);
        assert_eq!(n, vec![1, 6, 2]);
    }

    #[test]
    fn stats_match_contents() {
        let s = store();
        let st = s.stats();
        assert_eq!(st.num_trajectories, 3);
        assert_eq!(st.total_symbols, 9);
        assert_eq!(st.min_length, 2);
        assert_eq!(st.max_length, 4);
        assert!((st.avg_length - 3.0).abs() < 1e-12);
    }

    #[test]
    fn prefix_takes_first_n() {
        let s = store();
        let p = s.prefix(2);
        assert_eq!(p.len(), 2);
        assert_eq!(p.get(0).path(), &[0, 1, 2]);
        assert_eq!(s.prefix(100).len(), 3);
        assert!(s.prefix(0).is_empty());
    }

    #[test]
    fn from_iterator_collects() {
        let s: TrajectoryStore = (0..5).map(|i| Trajectory::untimed(vec![i])).collect();
        assert_eq!(s.len(), 5);
        assert_eq!(s.get(4).path(), &[4]);
    }

    #[test]
    fn empty_stats_are_zero() {
        let st = TrajectoryStore::new().stats();
        assert_eq!(st.num_trajectories, 0);
        assert_eq!(st.avg_length, 0.0);
    }
}
