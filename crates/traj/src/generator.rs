//! Synthetic trajectory generation.
//!
//! Substitutes for the taxi corpora of the paper (see `DESIGN.md` §4). Two
//! generators are provided:
//!
//! * [`TripConfig`] — *purposeful* trips: a start vertex and a sequence of
//!   waypoints connected by shortest paths, with optional detour
//!   perturbations. Purposeful trips concentrate traffic on arterials and
//!   produce the shared prefixes/suffixes that bidirectional-trie caching
//!   (§5.2) exploits, like real taxi data.
//! * [`RandomWalkConfig`] — non-backtracking random walks; a harsher, less
//!   structured workload used to stress filtering.
//!
//! Timestamps follow Definition 1: each trajectory departs at a random time
//! within a horizon and accumulates per-edge travel times scaled by a
//! per-trip congestion factor and per-edge noise, so travel times for the
//! same path differ across trajectories (the premise of the travel-time
//! estimation task of §6.2.1).

use crate::dataset::TrajectoryStore;
use crate::model::Trajectory;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use rnet::dijkstra::{shortest_path, Mode};
use rnet::{RoadNetwork, VertexId};

/// Configuration for purposeful (waypoint-routed) trip generation.
#[derive(Debug, Clone)]
pub struct TripConfig {
    pub num_trajectories: usize,
    /// Target path length (vertices) is sampled uniformly from this range.
    pub min_len: usize,
    pub max_len: usize,
    /// Probability that, after reaching a waypoint, the trip takes a local
    /// detour (a short random excursion) before continuing — models drivers
    /// deviating from shortest paths.
    pub detour_prob: f64,
    /// Length of a detour excursion in hops.
    pub detour_hops: usize,
    /// Departure times are uniform in `[0, horizon)` seconds.
    pub horizon: f64,
    /// Standard deviation of the per-trip congestion factor (factor is
    /// `max(0.2, 1 + N(0, σ))`).
    pub congestion_std: f64,
    pub seed: u64,
}

impl Default for TripConfig {
    fn default() -> Self {
        TripConfig {
            num_trajectories: 100,
            min_len: 20,
            max_len: 120,
            detour_prob: 0.25,
            detour_hops: 4,
            horizon: 86_400.0,
            congestion_std: 0.25,
            seed: 0,
        }
    }
}

impl TripConfig {
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    pub fn count(mut self, n: usize) -> Self {
        self.num_trajectories = n;
        self
    }

    pub fn lengths(mut self, min: usize, max: usize) -> Self {
        assert!(2 <= min && min <= max);
        self.min_len = min;
        self.max_len = max;
        self
    }

    /// Generates the dataset. The network must be strongly connected (the
    /// generators in `rnet` guarantee this).
    pub fn generate(&self, net: &RoadNetwork) -> TrajectoryStore {
        assert!(net.num_vertices() >= 2, "network too small");
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed);
        let mut store = TrajectoryStore::with_capacity(self.num_trajectories);
        while store.len() < self.num_trajectories {
            let target = rng.gen_range(self.min_len..=self.max_len);
            let path = waypoint_path(net, &mut rng, target, self.detour_prob, self.detour_hops);
            if path.len() < self.min_len.max(2) {
                continue;
            }
            let times = synth_times(net, &path, &mut rng, self.horizon, self.congestion_std);
            store.push(Trajectory::new(path, times));
        }
        store
    }
}

/// Configuration for non-backtracking random walks.
#[derive(Debug, Clone)]
pub struct RandomWalkConfig {
    pub num_trajectories: usize,
    pub min_len: usize,
    pub max_len: usize,
    pub horizon: f64,
    pub congestion_std: f64,
    pub seed: u64,
}

impl Default for RandomWalkConfig {
    fn default() -> Self {
        RandomWalkConfig {
            num_trajectories: 100,
            min_len: 10,
            max_len: 80,
            horizon: 86_400.0,
            congestion_std: 0.25,
            seed: 0,
        }
    }
}

impl RandomWalkConfig {
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    pub fn count(mut self, n: usize) -> Self {
        self.num_trajectories = n;
        self
    }

    pub fn generate(&self, net: &RoadNetwork) -> TrajectoryStore {
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed);
        let mut store = TrajectoryStore::with_capacity(self.num_trajectories);
        while store.len() < self.num_trajectories {
            let target = rng.gen_range(self.min_len..=self.max_len);
            let start = rng.gen_range(0..net.num_vertices() as u32);
            let path = random_walk(net, &mut rng, start, target);
            if path.len() < 2 {
                continue;
            }
            let times = synth_times(net, &path, &mut rng, self.horizon, self.congestion_std);
            store.push(Trajectory::new(path, times));
        }
        store
    }
}

/// A non-backtracking random walk of `target` vertices starting at `start`.
pub fn random_walk(
    net: &RoadNetwork,
    rng: &mut ChaCha8Rng,
    start: VertexId,
    target: usize,
) -> Vec<VertexId> {
    let mut path = vec![start];
    let mut prev: Option<VertexId> = None;
    while path.len() < target {
        let cur = *path.last().unwrap();
        let nbrs = net.out_neighbors(cur);
        if nbrs.is_empty() {
            break;
        }
        // Avoid immediate reversal when another option exists.
        let choices: Vec<VertexId> = nbrs
            .iter()
            .map(|&(v, _)| v)
            .filter(|&v| Some(v) != prev)
            .collect();
        let next = if choices.is_empty() {
            nbrs[rng.gen_range(0..nbrs.len())].0
        } else {
            choices[rng.gen_range(0..choices.len())]
        };
        prev = Some(cur);
        path.push(next);
    }
    path
}

/// Builds a waypoint-routed path of roughly `target` vertices.
fn waypoint_path(
    net: &RoadNetwork,
    rng: &mut ChaCha8Rng,
    target: usize,
    detour_prob: f64,
    detour_hops: usize,
) -> Vec<VertexId> {
    let n = net.num_vertices() as u32;
    let mut path: Vec<VertexId> = vec![rng.gen_range(0..n)];
    let mut guard = 0;
    while path.len() < target && guard < 64 {
        guard += 1;
        let cur = *path.last().unwrap();
        let waypoint = rng.gen_range(0..n);
        if waypoint == cur {
            continue;
        }
        match shortest_path(net, cur, waypoint, Mode::DirectedLength) {
            Some((leg, _)) if leg.len() > 1 => {
                extend_path(&mut path, &leg);
                if rng.gen::<f64>() < detour_prob {
                    let cur = *path.last().unwrap();
                    let excursion = random_walk(net, rng, cur, detour_hops + 1);
                    extend_path(&mut path, &excursion);
                }
            }
            _ => continue,
        }
    }
    path.truncate(target.max(2));
    path
}

fn extend_path(path: &mut Vec<VertexId>, leg: &[VertexId]) {
    debug_assert_eq!(path.last(), leg.first());
    path.extend_from_slice(&leg[1..]);
}

/// Synthesizes timestamps along `path`: departure uniform in the horizon,
/// per-trip congestion factor, ±10% per-edge noise.
fn synth_times(
    net: &RoadNetwork,
    path: &[VertexId],
    rng: &mut ChaCha8Rng,
    horizon: f64,
    congestion_std: f64,
) -> Vec<f64> {
    let depart = rng.gen_range(0.0..horizon.max(f64::MIN_POSITIVE));
    // Box-Muller normal draw for the trip-level congestion factor.
    let (u1, u2) = (rng.gen_range(f64::EPSILON..1.0), rng.gen::<f64>());
    let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    let factor = (1.0 + congestion_std * z).max(0.2);
    let mut times = Vec::with_capacity(path.len());
    let mut t = depart;
    times.push(t);
    for w in path.windows(2) {
        let eid = net
            .find_edge(w[0], w[1])
            .expect("generated trajectory must be a path");
        let noise = rng.gen_range(0.9..1.1);
        t += net.edge(eid).travel_time * factor * noise;
        times.push(t);
    }
    times
}

#[cfg(test)]
mod tests {
    use super::*;
    use rnet::{CityParams, NetworkKind};

    fn net() -> RoadNetwork {
        CityParams::tiny(NetworkKind::City).seed(3).generate()
    }

    #[test]
    fn trips_are_paths_with_valid_times() {
        let g = net();
        let store = TripConfig::default()
            .count(20)
            .lengths(5, 30)
            .seed(1)
            .generate(&g);
        assert_eq!(store.len(), 20);
        for (_, t) in store.iter() {
            assert!(g.is_path(t.path()), "generated trajectory is not a path");
            assert!(t.len() >= 2);
            assert!(
                t.times().windows(2).all(|w| w[1] > w[0]),
                "times must increase"
            );
        }
    }

    #[test]
    fn trip_lengths_respect_bounds() {
        let g = net();
        let store = TripConfig::default()
            .count(30)
            .lengths(8, 15)
            .seed(2)
            .generate(&g);
        for (_, t) in store.iter() {
            assert!(t.len() <= 15, "length {} exceeds max", t.len());
            assert!(t.len() >= 8, "length {} below min", t.len());
        }
    }

    #[test]
    fn walks_are_paths() {
        let g = net();
        let store = RandomWalkConfig::default().count(15).seed(4).generate(&g);
        assert_eq!(store.len(), 15);
        for (_, t) in store.iter() {
            assert!(g.is_path(t.path()));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let g = net();
        let a = TripConfig::default().count(5).seed(9).generate(&g);
        let b = TripConfig::default().count(5).seed(9).generate(&g);
        for ((_, ta), (_, tb)) in a.iter().zip(b.iter()) {
            assert_eq!(ta, tb);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let g = net();
        let a = TripConfig::default().count(5).seed(1).generate(&g);
        let b = TripConfig::default().count(5).seed(2).generate(&g);
        let same = a.iter().zip(b.iter()).all(|((_, x), (_, y))| x == y);
        assert!(!same);
    }

    #[test]
    fn walk_avoids_immediate_backtrack_when_possible() {
        let g = net();
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        for _ in 0..10 {
            let start = rng.gen_range(0..g.num_vertices() as u32);
            let p = random_walk(&g, &mut rng, start, 20);
            for w in p.windows(3) {
                if w[0] == w[2] {
                    // Backtracking is only allowed at forced dead-ends (the
                    // only out-neighbor is the previous vertex).
                    let outs = g.out_neighbors(w[1]);
                    assert_eq!(outs.len(), 1, "unforced backtrack at {:?}", w);
                }
            }
        }
    }

    #[test]
    fn departures_fill_the_horizon() {
        let g = net();
        let store = TripConfig::default().count(50).seed(11).generate(&g);
        let departures: Vec<f64> = store.iter().map(|(_, t)| t.departure()).collect();
        let min = departures.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = departures.iter().cloned().fold(0.0, f64::max);
        assert!(min < 86_400.0 * 0.3);
        assert!(max > 86_400.0 * 0.7);
    }
}
