//! Property-based tests of the trajectory substrate: generator invariants,
//! representation round-trips, and map-matching well-formedness.

use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rnet::{CityParams, NetworkKind};
use traj::edges::{store_to_edges, to_edge_trajectory, to_vertex_trajectory};
use traj::generator::{random_walk, RandomWalkConfig, TripConfig};
use traj::mapmatch::{noisy_trace, MapMatcher};
use traj::Trajectory;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every generated trip is a path with strictly increasing timestamps
    /// within the configured length bounds.
    #[test]
    fn trips_satisfy_model_invariants(seed in 0u64..64, min in 3usize..8, extra in 0usize..20) {
        let net = CityParams::tiny(NetworkKind::City).seed(seed % 8).generate();
        let max = min + extra;
        let store = TripConfig::default().count(10).lengths(min, max).seed(seed).generate(&net);
        prop_assert_eq!(store.len(), 10);
        for (_, t) in store.iter() {
            prop_assert!(net.is_path(t.path()));
            prop_assert!(t.len() >= min && t.len() <= max);
            prop_assert!(t.times().windows(2).all(|w| w[1] > w[0]));
        }
    }

    /// Random walks never leave the network and respect the target length.
    #[test]
    fn walks_are_paths(seed in 0u64..64, start in 0u32..64, target in 2usize..30) {
        let net = CityParams::tiny(NetworkKind::City).seed(seed % 8).generate();
        let start = start % net.num_vertices() as u32;
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let w = random_walk(&net, &mut rng, start, target);
        prop_assert!(net.is_path(&w));
        prop_assert_eq!(w.len(), target); // SCC pruning guarantees continuation
        prop_assert_eq!(w[0], start);
    }

    /// Vertex -> edge -> vertex round-trips recover the original path.
    #[test]
    fn representation_roundtrip(seed in 0u64..64, target in 2usize..25) {
        let net = CityParams::tiny(NetworkKind::Grid).generate();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let path = random_walk(&net, &mut rng, (seed % 64) as u32, target);
        let times: Vec<f64> = (0..path.len()).map(|i| i as f64 * 3.0).collect();
        let t = Trajectory::new(path.clone(), times);
        let e = to_edge_trajectory(&net, &t).unwrap();
        prop_assert_eq!(e.len(), t.len() - 1);
        let back = to_vertex_trajectory(&net, &e).unwrap();
        prop_assert_eq!(back.path(), t.path());
    }

    /// Store conversion preserves cardinality for stores of length-≥2 paths.
    #[test]
    fn store_conversion_preserves_count(seed in 0u64..32) {
        let net = CityParams::tiny(NetworkKind::City).seed(seed % 4).generate();
        let store = RandomWalkConfig::default().count(8).seed(seed).generate(&net);
        let edges = store_to_edges(&net, &store);
        prop_assert_eq!(edges.len(), store.len());
        for ((_, v), (_, e)) in store.iter().zip(edges.iter()) {
            prop_assert_eq!(e.len(), v.len() - 1);
        }
    }

    /// Map matching of noiseless dense traces is the identity, and of noisy
    /// traces always yields a connected path.
    #[test]
    fn map_matching_yields_paths(seed in 0u64..24) {
        let net = CityParams::tiny(NetworkKind::Grid).generate();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let truth = random_walk(&net, &mut rng, (seed % 60) as u32, 12);
        let clean: Vec<rnet::Point> = truth.iter().map(|&v| net.coord(v)).collect();
        let matcher = MapMatcher::new(&net, 10.0, 40.0);
        let exact = matcher.match_trace(&clean).unwrap();
        prop_assert_eq!(exact, truth.clone());

        let noisy = noisy_trace(&net, &truth, 15.0, 2, &mut rng);
        if let Some(matched) = matcher.match_trace(&noisy) {
            prop_assert!(net.is_path(&matched));
        }
    }
}
