//! Dispatch overhead of the unified API: `run(&Query)` vs the legacy entry
//! points it replaced.
//!
//! The legacy methods are now thin `#[deprecated]` wrappers that build a
//! `Query` per call, so three variants bracket the redesign's cost on an
//! identical workload:
//!
//! * `legacy_search_opts` — the old call shape (wrapper: per-call `Query`
//!   build + `run`);
//! * `run_prebuilt` — `run` with queries built once outside the loop (what
//!   a serving layer holding decoded wire queries does);
//! * `run_with_build` — `Query` construction + validation + `run` per call.
//!
//! All three must land within noise of each other: validation is a handful
//! of float/len checks and the dispatch is a monomorphized match, so the
//! unified surface adds no measurable overhead over the legacy direct
//! calls. The `wire_decode` variant adds a full JSON `from_json` per call
//! to price the serving path itself.

#![allow(deprecated)] // comparing against the legacy entry points is the point

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use trajsearch_bench::data::{Dataset, FuncKind, Scale};
use trajsearch_core::{EngineBuilder, Query, SearchOptions};

fn bench(c: &mut Criterion) {
    let d = Dataset::load("beijing", Scale::tiny());
    let func = FuncKind::Edr;
    let model = d.model(func);
    let (store, alphabet) = d.store_for(func);
    let engine = EngineBuilder::new(&*model, store, alphabet).build();

    let workload: Vec<(Vec<wed::Sym>, f64)> = d
        .sample_queries(func, 30, 8, 3)
        .into_iter()
        .map(|q| {
            let tau = d.tau_for(&*model, &q, 0.1);
            (q, tau)
        })
        .collect();
    let prebuilt: Vec<Query> = workload
        .iter()
        .map(|(q, tau)| Query::threshold(q.clone(), *tau).build().expect("valid"))
        .collect();
    let wire: Vec<String> = prebuilt.iter().map(|q| q.to_json()).collect();

    let mut g = c.benchmark_group("api_dispatch");
    g.sample_size(10);
    g.bench_with_input(
        BenchmarkId::from("legacy_search_opts"),
        &workload,
        |b, wl| {
            b.iter(|| {
                for (q, tau) in wl {
                    std::hint::black_box(engine.search_opts(q, *tau, SearchOptions::default()));
                }
            })
        },
    );
    g.bench_with_input(BenchmarkId::from("run_prebuilt"), &prebuilt, |b, qs| {
        b.iter(|| {
            for q in qs {
                std::hint::black_box(engine.run(q).expect("run"));
            }
        })
    });
    g.bench_with_input(BenchmarkId::from("run_with_build"), &workload, |b, wl| {
        b.iter(|| {
            for (q, tau) in wl {
                let query = Query::threshold(q.clone(), *tau).build().expect("valid");
                std::hint::black_box(engine.run(&query).expect("run"));
            }
        })
    });
    g.bench_with_input(BenchmarkId::from("wire_decode"), &wire, |b, wire| {
        b.iter(|| {
            for text in wire {
                let query = Query::from_json(text).expect("wire");
                std::hint::black_box(engine.run(&query).expect("run"));
            }
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
