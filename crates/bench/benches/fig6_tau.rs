//! Figure 6 (criterion): query time vs τ-ratio for the indexed methods.
//!
//! Tiny scale so `cargo bench` stays fast; the full sweep with all four
//! datasets and Plain-SW is `repro fig6`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use trajsearch_bench::data::{Dataset, FuncKind, Scale};
use trajsearch_bench::methods::{MethodKind, MethodSet};

fn bench(c: &mut Criterion) {
    let d = Dataset::load("beijing", Scale::tiny());
    let func = FuncKind::Edr;
    let model = d.model(func);
    let (store, alphabet) = d.store_for(func);
    let set = MethodSet::new(&*model, store, alphabet);
    let queries = d.sample_queries(func, 30, 5, 1);

    let mut g = c.benchmark_group("fig6_tau");
    g.sample_size(10);
    for ratio in [0.1, 0.2, 0.3] {
        let wl: Vec<(Vec<wed::Sym>, f64)> = queries
            .iter()
            .map(|q| (q.clone(), d.tau_for(&*model, q, ratio)))
            .collect();
        for m in [
            MethodKind::OsfBt,
            MethodKind::OsfSw,
            MethodKind::DisonBt,
            MethodKind::TorchBt,
            MethodKind::QGram,
        ] {
            g.bench_with_input(
                BenchmarkId::new(m.name(), format!("r={ratio}")),
                &wl,
                |b, wl| {
                    b.iter(|| {
                        for (q, tau) in wl {
                            std::hint::black_box(set.run(m, q, *tau));
                        }
                    })
                },
            );
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
