//! Table 6 (criterion): index construction time — postings index vs q-gram
//! index vs the enumeration-based DITA / ERP-index.

use baselines::{DitaIndex, ErpIndex, QGramIndex};
use criterion::{criterion_group, criterion_main, Criterion};
use trajsearch_bench::data::{Dataset, FuncKind, Scale};
use trajsearch_core::EngineBuilder;
use wed::models::Erp;

fn bench(c: &mut Criterion) {
    let d = Dataset::load("beijing", Scale::tiny());
    let model = d.model(FuncKind::Edr);
    let (store, alphabet) = d.store_for(FuncKind::Edr);

    // Short-trajectory store for the enumeration-based indexes.
    let small: traj::TrajectoryStore = d
        .store
        .iter()
        .take(40)
        .map(|(_, t)| {
            let cut = t.len().min(20);
            traj::Trajectory::new(t.path()[..cut].to_vec(), t.times()[..cut].to_vec())
        })
        .collect();
    let erp = Erp::new(d.net.clone(), 1.0);

    let mut g = c.benchmark_group("table6_build");
    g.sample_size(10);
    g.bench_function("postings_index", |b| {
        b.iter(|| std::hint::black_box(EngineBuilder::new(&*model, store, alphabet).build()))
    });
    g.bench_function("qgram_index", |b| {
        b.iter(|| std::hint::black_box(QGramIndex::new(&*model, store, 3)))
    });
    g.bench_function("dita_enumeration", |b| {
        b.iter(|| std::hint::black_box(DitaIndex::new(&*model, &small, 6)))
    });
    g.bench_function("erp_index_enumeration", |b| {
        b.iter(|| std::hint::black_box(ErpIndex::new(&erp, &small)))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
