//! Figures 9–10 (criterion): OSF vs the enumeration-based baselines (DITA,
//! ERP-index) on a small dataset.

use baselines::{DitaIndex, ErpIndex};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use trajsearch_bench::data::{Dataset, FuncKind, Scale};
use trajsearch_core::{EngineBuilder, Query};
use wed::models::Erp;

fn bench(c: &mut Criterion) {
    let d = Dataset::load("beijing", Scale::tiny());
    // Small, short-trajectory store so subtrajectory enumeration is cheap.
    let store: traj::TrajectoryStore = d
        .store
        .iter()
        .take(60)
        .map(|(_, t)| {
            let cut = t.len().min(25);
            traj::Trajectory::new(t.path()[..cut].to_vec(), t.times()[..cut].to_vec())
        })
        .collect();

    let erp = Erp::new(d.net.clone(), 1e-4 * d.median_nn_distance());
    let engine = EngineBuilder::new(&erp, &store, d.net.num_vertices()).build();
    let dita = DitaIndex::new(&erp, &store, 6);
    let erpi = ErpIndex::new(&erp, &store);
    let queries = d.sample_queries(FuncKind::Erp, 12, 5, 4);

    let mut g = c.benchmark_group("fig9_enum");
    g.sample_size(10);
    for ratio in [0.1, 0.2] {
        let wl: Vec<(Vec<wed::Sym>, f64)> = queries
            .iter()
            .map(|q| (q.clone(), d.tau_for(&erp, q, ratio)))
            .collect();
        g.bench_with_input(
            BenchmarkId::new("OSF-BT", format!("r={ratio}")),
            &wl,
            |b, wl| {
                b.iter(|| {
                    for (q, tau) in wl {
                        let query = Query::threshold(q.clone(), *tau).build().expect("valid");
                        std::hint::black_box(engine.run(&query).expect("run"));
                    }
                })
            },
        );
        g.bench_with_input(
            BenchmarkId::new("DITA", format!("r={ratio}")),
            &wl,
            |b, wl| {
                b.iter(|| {
                    for (q, tau) in wl {
                        std::hint::black_box(dita.search(q, *tau));
                    }
                })
            },
        );
        g.bench_with_input(
            BenchmarkId::new("ERP-index", format!("r={ratio}")),
            &wl,
            |b, wl| {
                b.iter(|| {
                    for (q, tau) in wl {
                        std::hint::black_box(erpi.search(q, *tau));
                    }
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
