//! Figure 8 (criterion): query time vs dataset size (prefix fractions).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use trajsearch_bench::data::{Dataset, FuncKind, Scale};
use trajsearch_bench::methods::{MethodKind, MethodSet};

fn bench(c: &mut Criterion) {
    let d = Dataset::load("beijing", Scale::tiny());
    let func = FuncKind::Edr;
    let model = d.model(func);
    let (full_store, alphabet) = d.store_for(func);
    let queries = d.sample_queries(func, 30, 5, 3);

    let mut g = c.benchmark_group("fig8_dbsize");
    g.sample_size(10);
    for frac in [0.25, 0.5, 1.0] {
        let store = full_store.prefix((full_store.len() as f64 * frac).round() as usize);
        let set = MethodSet::new(&*model, &store, alphabet);
        let wl: Vec<(Vec<wed::Sym>, f64)> = queries
            .iter()
            .map(|q| (q.clone(), d.tau_for(&*model, q, 0.1)))
            .collect();
        for m in [MethodKind::OsfBt, MethodKind::TorchBt] {
            g.bench_with_input(
                BenchmarkId::new(m.name(), format!("{:.0}%", frac * 100.0)),
                &wl,
                |b, wl| {
                    b.iter(|| {
                        for (q, tau) in wl {
                            std::hint::black_box(set.run(m, q, *tau));
                        }
                    })
                },
            );
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
