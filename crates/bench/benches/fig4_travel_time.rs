//! Figure 4 (criterion): end-to-end travel-time-estimation experiment at a
//! tiny scale (ground-truth discovery + WED estimation + LOOCV scoring).

use criterion::{criterion_group, criterion_main, Criterion};
use trajsearch_bench::data::Scale;
use trajsearch_bench::exp::travel_time;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig4_travel_time");
    g.sample_size(10);
    g.bench_function("rmse_tiny", |b| {
        b.iter(|| std::hint::black_box(travel_time::run_fig4(8, 2, &[0.1], Scale(0.03))))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
