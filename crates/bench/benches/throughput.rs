//! Batch-engine throughput (criterion): one workload through
//! `SearchEngine::search_batch` at 1/2/4 worker threads.
//!
//! Tiny scale so `cargo bench` stays fast; the full sweep with the JSON dump
//! is `repro throughput`. On a single-core host the thread counts should
//! tie — the interesting signal is that the parallel path adds no
//! correctness or gross scheduling cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use trajsearch_bench::data::{Dataset, FuncKind, Scale};
use trajsearch_core::batch::BatchOptions;
use trajsearch_core::SearchEngine;

fn bench(c: &mut Criterion) {
    let d = Dataset::load("beijing", Scale::tiny());
    let func = FuncKind::Edr;
    let model = d.model_sync(func);
    let (store, alphabet) = d.store_for(func);
    let engine: SearchEngine<'_, &(dyn wed::WedInstance + Sync)> =
        SearchEngine::new(&*model, store, alphabet);
    let workload: Vec<(Vec<wed::Sym>, f64)> = d
        .sample_queries(func, 30, 8, 1)
        .into_iter()
        .map(|q| {
            let tau = d.tau_for(&*model, &q, 0.1);
            (q, tau)
        })
        .collect();

    let mut g = c.benchmark_group("throughput");
    g.sample_size(10);
    for threads in [1, 2, 4] {
        g.bench_with_input(
            BenchmarkId::new("search_batch", format!("t={threads}")),
            &workload,
            |b, wl| {
                b.iter(|| {
                    std::hint::black_box(
                        engine.search_batch(wl, BatchOptions::with_threads(threads)),
                    )
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
