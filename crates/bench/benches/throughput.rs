//! Batch-engine throughput (criterion): one workload through
//! `SearchEngine::run_batch` at 1/2/4 worker threads.
//!
//! Tiny scale so `cargo bench` stays fast; the full sweep with the JSON dump
//! is `repro throughput`. On a single-core host the thread counts should
//! tie — the interesting signal is that the parallel path adds no
//! correctness or gross scheduling cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use trajsearch_bench::data::{Dataset, FuncKind, Scale};
use trajsearch_core::batch::BatchOptions;
use trajsearch_core::{EngineBuilder, Query};

fn bench(c: &mut Criterion) {
    let d = Dataset::load("beijing", Scale::tiny());
    let func = FuncKind::Edr;
    let model = d.model(func);
    let (store, alphabet) = d.store_for(func);
    let engine = EngineBuilder::new(&*model, store, alphabet).build();
    let workload: Vec<Query> = d
        .sample_queries(func, 30, 8, 1)
        .into_iter()
        .map(|q| {
            let tau = d.tau_for(&*model, &q, 0.1);
            Query::threshold(q, tau).build().expect("valid")
        })
        .collect();

    let mut g = c.benchmark_group("throughput");
    g.sample_size(10);
    for threads in [1, 2, 4] {
        g.bench_with_input(
            BenchmarkId::new("run_batch", format!("t={threads}")),
            &workload,
            |b, wl| {
                b.iter(|| {
                    std::hint::black_box(
                        engine
                            .run_batch(wl, BatchOptions::with_threads(threads))
                            .expect("admitted"),
                    )
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
