//! Sharded-index construction (criterion): `ShardedIndex::build_parallel`
//! at 1/2/4 shards, plus the serial `InvertedIndex::build` baseline.
//!
//! Tiny scale so `cargo bench` stays fast; the full sweep with the JSON dump
//! is `repro index-build`. On a single-core host the shard counts should
//! tie — the interesting signal is that the parallel path adds no gross
//! spawning or partitioning cost over the single-list build.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use trajsearch_bench::data::{Dataset, Scale};
use trajsearch_core::{InvertedIndex, ShardedIndex};

fn bench(c: &mut Criterion) {
    let d = Dataset::load("beijing", Scale::tiny());
    let alphabet = d.net.num_vertices();

    let mut g = c.benchmark_group("index_build");
    g.sample_size(10);
    g.bench_function("inverted", |b| {
        b.iter(|| std::hint::black_box(InvertedIndex::build(&d.store, alphabet)))
    });
    for shards in [1, 2, 4] {
        g.bench_with_input(
            BenchmarkId::new("sharded", format!("s={shards}")),
            &shards,
            |b, &s| {
                b.iter(|| std::hint::black_box(ShardedIndex::build_parallel(&d.store, alphabet, s)))
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
