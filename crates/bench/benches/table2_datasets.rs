//! Table 2 (criterion): dataset materialization cost (network generation +
//! trip synthesis + edge conversion).

use criterion::{criterion_group, criterion_main, Criterion};
use trajsearch_bench::data::{Dataset, Scale};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("table2_datasets");
    g.sample_size(10);
    g.bench_function("load_beijing_tiny", |b| {
        b.iter(|| std::hint::black_box(Dataset::load("beijing", Scale(0.02))))
    });
    g.bench_function("load_singapore_tiny", |b| {
        b.iter(|| std::hint::black_box(Dataset::load("singapore", Scale(0.02))))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
