//! Figure 11 (criterion): candidate-generation cost of the filtering
//! strategies (MinCand + neighborhood materialization + postings scans).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use trajsearch_bench::data::{Dataset, FuncKind, Scale};
use trajsearch_core::{FilterPlan, InvertedIndex};

fn bench(c: &mut Criterion) {
    let d = Dataset::load("beijing", Scale::tiny());
    let func = FuncKind::Edr;
    let model = d.model(func);
    let (store, alphabet) = d.store_for(func);
    let index = InvertedIndex::build(store, alphabet);
    let queries = d.sample_queries(func, 30, 5, 5);

    let mut g = c.benchmark_group("fig11_filtering");
    g.sample_size(20);
    for ratio in [0.1, 0.3] {
        let wl: Vec<(Vec<wed::Sym>, f64)> = queries
            .iter()
            .map(|q| (q.clone(), d.tau_for(&*model, q, ratio)))
            .collect();
        g.bench_with_input(
            BenchmarkId::new("OSF-plan+lookup", format!("r={ratio}")),
            &wl,
            |b, wl| {
                b.iter(|| {
                    for (q, tau) in wl {
                        let plan = FilterPlan::build(&&*model, &index, q, *tau);
                        std::hint::black_box(plan.candidates(&index));
                    }
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
