//! Figure 12 (criterion): temporal filtering (TF) vs postprocessing
//! (no-TF) at low temporal selectivity.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use trajsearch_bench::data::{Dataset, FuncKind, Scale};
use trajsearch_bench::methods::MethodSet;
use trajsearch_core::{Query, TemporalConstraint, TimeInterval, VerifyMode};

fn bench(c: &mut Criterion) {
    let d = Dataset::load("beijing", Scale::tiny());
    let func = FuncKind::Edr;
    let model = d.model(func);
    let (store, alphabet) = d.store_for(func);
    let set = MethodSet::new(&*model, store, alphabet);

    let (mut tmin, mut tmax) = (f64::INFINITY, f64::NEG_INFINITY);
    for (_, t) in store.iter() {
        tmin = tmin.min(t.departure());
        tmax = tmax.max(t.arrival());
    }
    let interval = TimeInterval::new(tmin, tmin + 0.02 * (tmax - tmin));
    let constraint = TemporalConstraint::overlaps(interval);

    let wl: Vec<(Vec<wed::Sym>, f64)> = d
        .sample_queries(func, 30, 5, 6)
        .into_iter()
        .map(|q| {
            let tau = d.tau_for(&*model, &q, 0.1);
            (q, tau)
        })
        .collect();

    let mut g = c.benchmark_group("fig12_temporal");
    g.sample_size(10);
    for (name, tf) in [("TF", true), ("no-TF", false)] {
        g.bench_with_input(BenchmarkId::new(name, "ts=2%"), &wl, |b, wl| {
            b.iter(|| {
                for (q, tau) in wl {
                    let query = Query::threshold(q.clone(), *tau)
                        .verify(VerifyMode::Trie)
                        .temporal(constraint)
                        .temporal_filter(tf)
                        .build()
                        .expect("valid");
                    std::hint::black_box(set.engine().run(&query).expect("run"));
                }
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
