//! Figure 7 (criterion): query time vs query length at τ-ratio = 0.1.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use trajsearch_bench::data::{Dataset, FuncKind, Scale};
use trajsearch_bench::methods::{MethodKind, MethodSet};

fn bench(c: &mut Criterion) {
    let d = Dataset::load("beijing", Scale::tiny());
    let func = FuncKind::Edr;
    let model = d.model(func);
    let (store, alphabet) = d.store_for(func);
    let set = MethodSet::new(&*model, store, alphabet);

    let mut g = c.benchmark_group("fig7_qlen");
    g.sample_size(10);
    for qlen in [10usize, 20, 40] {
        let wl: Vec<(Vec<wed::Sym>, f64)> = d
            .sample_queries(func, qlen, 5, 2)
            .into_iter()
            .map(|q| {
                let tau = d.tau_for(&*model, &q, 0.1);
                (q, tau)
            })
            .collect();
        for m in [MethodKind::OsfBt, MethodKind::DisonBt, MethodKind::TorchBt] {
            g.bench_with_input(
                BenchmarkId::new(m.name(), format!("|Q|={qlen}")),
                &wl,
                |b, wl| {
                    b.iter(|| {
                        for (q, tau) in wl {
                            std::hint::black_box(set.run(m, q, *tau));
                        }
                    })
                },
            );
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
