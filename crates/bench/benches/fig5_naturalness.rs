//! Figure 5 (criterion): alternative-route search + naturalness scoring at
//! a tiny scale.

use criterion::{criterion_group, criterion_main, Criterion};
use trajsearch_bench::data::Scale;
use trajsearch_bench::exp::naturalness;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig5_naturalness");
    g.sample_size(10);
    g.bench_function("naturalness_tiny", |b| {
        b.iter(|| std::hint::black_box(naturalness::run(&[6], &[0.2], 2, Scale(0.02))))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
