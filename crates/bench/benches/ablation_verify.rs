//! Ablation: the three verification strategies on identical candidates —
//! SW (no locality), Local (bidirectional + early termination, no cache),
//! Trie (the paper's BT). Quantifies how much each §5 idea contributes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use trajsearch_bench::data::{Dataset, FuncKind, Scale};
use trajsearch_core::{EngineBuilder, Query, VerifyMode};

fn bench(c: &mut Criterion) {
    let d = Dataset::load("beijing", Scale::tiny());
    let func = FuncKind::Edr;
    let model = d.model(func);
    let (store, alphabet) = d.store_for(func);
    let engine = EngineBuilder::new(&*model, store, alphabet).build();
    let wl: Vec<(Vec<wed::Sym>, f64)> = d
        .sample_queries(func, 30, 5, 7)
        .into_iter()
        .map(|q| {
            let tau = d.tau_for(&*model, &q, 0.2);
            (q, tau)
        })
        .collect();

    let mut g = c.benchmark_group("ablation_verify");
    g.sample_size(10);
    for (name, mode) in [
        ("SW", VerifyMode::Sw),
        ("Local", VerifyMode::Local),
        ("Trie", VerifyMode::Trie),
    ] {
        g.bench_with_input(BenchmarkId::new(name, "r=0.2"), &wl, |b, wl| {
            b.iter(|| {
                for (q, tau) in wl {
                    let query = Query::threshold(q.clone(), *tau)
                        .verify(mode)
                        .build()
                        .expect("valid");
                    std::hint::black_box(engine.run(&query).expect("run"));
                }
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
