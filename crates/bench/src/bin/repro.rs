//! `repro` — regenerates every table and figure of the paper.
//!
//! ```text
//! repro <experiment> [--scale S] [--queries N]
//!
//! experiments:
//!   table2   dataset statistics
//!   fig4     travel-time estimation RMSE
//!   table3   subtrajectory vs whole matching RMSE
//!   fig5     alternative-route naturalness
//!   fig6     query time vs tau-ratio
//!   fig7     query time vs |Q|
//!   fig8     query time vs dataset size
//!   fig9     vs DITA / ERP-index, varying tau-ratio
//!   fig10    vs DITA / ERP-index, varying #trajectories
//!   table4   OSF-BT running-time breakdown
//!   table5   verification pruning rates (UPR/CMR/TUR)
//!   table6   index construction time / size
//!   fig11    candidate counts
//!   fig12    temporal filtering
//!   fig13    eta sweep (ERP / NetERP)
//!   throughput  batch-engine queries/sec at 1/2/4/8 threads
//!               (also writes BENCH_throughput.json)
//!   index-build sharded-index construction at 1/2/4/8 shards plus the
//!               snapshot-reopen cold-start row (also writes
//!               BENCH_index.json)
//!   snapshot    persistence loop (rebuild vs write/open, on-disk and
//!               reopened footprint) with a match- and counter-identical
//!               workload self-check (also writes BENCH_snapshot.json)
//!   api      mixed threshold/top-k/temporal workload through the unified
//!               Query/Response API at 1/2/4/8 threads, queries arriving
//!               over their JSON wire format (also writes BENCH_api.json)
//!   metrics  the same patterns under WED/DTW/LCSS/Fréchet through the
//!               metric-pluggable verifier, per-metric and mixed in one
//!               run_batch (also writes BENCH_metrics.json)
//!   serve    mixed threshold/top-k workload through the loopback TCP
//!               front-end (trajsearch-serve) at 1/2/4 workers vs
//!               in-process run_batch (also writes BENCH_serve.json)
//!   distrib  the same style of workload through a coordinator over 1/2/3
//!               loopback shard servers (trajsearch-distrib) vs in-process
//!               run_batch (also writes BENCH_distrib.json)
//!   verify-cache  repeated/overlapping Trie-mode workloads with private
//!               vs shared verification tries at 1/2/4 batch threads,
//!               shared runs self-checked match-identical (also writes
//!               BENCH_verify_cache.json)
//!   all      everything above
//! ```
//!
//! Defaults are laptop-scale; `--scale 1.0` roughly doubles the default
//! workload, `--scale 0.05` matches the criterion benches.
//! `--fail-on-regress PCT` arms the cross-run trend gate: deterministic
//! counter columns moving more than PCT percent in the worsening direction
//! against the previous `BENCH_history.jsonl` entry fail the run instead
//! of printing an advisory delta.

use trajsearch_bench::data::{FuncKind, Scale};
use trajsearch_bench::exp::*;
use trajsearch_bench::methods::MethodKind;

struct Args {
    experiment: String,
    scale: Scale,
    queries: usize,
    /// `throughput` only: panic when the best multi-thread speedup falls
    /// below this (skipped on hosts with < 4 cpus).
    min_speedup: Option<f64>,
    /// Cross-run trend gate: fail when a deterministic counter column of
    /// any written `BENCH_*.json` worsens by more than this percentage vs
    /// the previous `BENCH_history.jsonl` entry.
    fail_on_regress: Option<f64>,
}

fn parse_args() -> Args {
    let mut args = Args {
        experiment: String::new(),
        scale: Scale::default_repro(),
        queries: 20,
        min_speedup: None,
        fail_on_regress: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scale" => {
                let v = it.next().expect("--scale needs a value");
                args.scale = Scale(v.parse().expect("scale must be a number"));
            }
            "--queries" => {
                let v = it.next().expect("--queries needs a value");
                args.queries = v.parse().expect("queries must be an integer");
            }
            "--min-speedup" => {
                let v = it.next().expect("--min-speedup needs a value");
                args.min_speedup = Some(v.parse().expect("min-speedup must be a number"));
            }
            "--fail-on-regress" => {
                let v = it.next().expect("--fail-on-regress needs a value");
                args.fail_on_regress =
                    Some(v.parse().expect("fail-on-regress must be a percentage"));
            }
            "--help" | "-h" => {
                print_usage();
                std::process::exit(0);
            }
            other if args.experiment.is_empty() => args.experiment = other.to_string(),
            other => panic!("unexpected argument {other:?}"),
        }
    }
    if args.experiment.is_empty() {
        print_usage();
        std::process::exit(1);
    }
    args
}

fn print_usage() {
    eprintln!(
        "usage: repro <table2|fig4|table3|fig5|fig6|fig7|fig8|fig9|fig10|table4|table5|table6|fig11|fig12|fig13|throughput|index-build|snapshot|api|metrics|serve|distrib|verify-cache|obs|all> [--scale S] [--queries N] [--min-speedup X] [--fail-on-regress PCT]"
    );
}

// Core sweep parameters mirroring §6 (figures list the same axes).
const TAU_RATIOS: [f64; 3] = [0.1, 0.2, 0.3];
const QLENS: [usize; 4] = [20, 40, 60, 80];
const FRACTIONS: [f64; 4] = [0.25, 0.5, 0.75, 1.0];
const DATASETS: [&str; 4] = ["beijing", "porto", "singapore", "sanfran"];

fn main() {
    let args = parse_args();
    let scale = args.scale;
    let nq = args.queries;
    let exp = args.experiment.as_str();
    let all = exp == "all";
    if let Some(pct) = args.fail_on_regress {
        set_history_regression_threshold(pct);
    }

    // The Figure 6 method set (Plain-SW included; the paper restricts it to
    // fewer queries for the same cost reasons — use --queries to match).
    let methods = [
        MethodKind::OsfBt,
        MethodKind::OsfSw,
        MethodKind::DisonBt,
        MethodKind::DisonSw,
        MethodKind::TorchBt,
        MethodKind::TorchSw,
        MethodKind::QGram,
        MethodKind::PlainSw,
    ];

    if all || exp == "table2" {
        table2::print(&table2::run(scale));
    }
    if all || exp == "fig4" {
        let rows = travel_time::run_fig4(30, nq, &[0.02, 0.06, 0.1, 0.14, 0.2], scale);
        travel_time::print_fig4(&rows);
    }
    if all || exp == "table3" {
        let rows = travel_time::run_table3(30, nq, &[5, 10, 15, 20, 25], scale);
        travel_time::print_table3(&rows);
    }
    if all || exp == "fig5" {
        let mut rows = naturalness::run(&[40, 50, 60], &[0.05, 0.1, 0.2, 0.3], nq, scale);
        rows.extend(naturalness::run_nonwed(
            &[40, 50, 60],
            &[0.05, 0.1, 0.2, 0.3],
            nq,
            scale,
        ));
        naturalness::print(&rows);
    }
    if all || exp == "fig6" {
        let rows = query_time::run_fig6(
            &DATASETS,
            &FuncKind::ALL,
            &methods,
            &TAU_RATIOS,
            60,
            nq,
            scale,
        );
        query_time::print_rows(
            "Figure 6: query time vs tau-ratio (|Q|=60)",
            "tau-ratio",
            &rows,
        );
    }
    if all || exp == "fig7" {
        let rows = query_time::run_fig7(
            &DATASETS,
            &[FuncKind::Edr, FuncKind::Erp, FuncKind::Surs],
            &methods,
            &QLENS,
            nq,
            scale,
        );
        query_time::print_rows("Figure 7: query time vs |Q| (tau-ratio=0.1)", "|Q|", &rows);
    }
    if all || exp == "fig8" {
        let rows = query_time::run_fig8(
            &DATASETS,
            &[FuncKind::Edr, FuncKind::Erp, FuncKind::Surs],
            &methods,
            &FRACTIONS,
            60,
            nq,
            scale,
        );
        query_time::print_rows(
            "Figure 8: query time vs dataset size (tau-ratio=0.1)",
            "fraction",
            &rows,
        );
    }
    if all || exp == "fig9" {
        let ntraj = ((600.0 * scale.0).round() as usize).max(50);
        let rows = enum_baselines::run(&[0.05, 0.1, 0.15, 0.2], true, ntraj, 20, nq, scale);
        enum_baselines::print(&rows, "tau-ratio");
    }
    if all || exp == "fig10" {
        let base = ((600.0 * scale.0).round()).max(50.0);
        let counts = [(base * 0.33).round(), (base * 0.66).round(), base];
        let rows = enum_baselines::run(&counts, false, 0, 20, nq, scale);
        enum_baselines::print(&rows, "#traj");
    }
    if all || exp == "table4" {
        query_time::print_table4(&query_time::run_table4(scale));
    }
    if all || exp == "table5" {
        verification::print(&verification::run(scale));
    }
    if all || exp == "table6" {
        table6::print(&table6::run(scale));
    }
    if all || exp == "fig11" {
        let rows = candidates::run("beijing", &FuncKind::ALL, &TAU_RATIOS, true, 60, nq, scale);
        candidates::print(&rows, "tau-ratio");
        let rows = candidates::run(
            "beijing",
            &FuncKind::ALL,
            &[20.0, 40.0, 60.0],
            false,
            60,
            nq,
            scale,
        );
        candidates::print(&rows, "|Q|");
    }
    if all || exp == "fig12" {
        let rows = temporal::run(
            &["beijing", "porto", "sanfran"],
            &[0.01, 0.02, 0.05, 0.1],
            60,
            nq,
            scale,
        );
        temporal::print(&rows);
    }
    if all || exp == "fig13" {
        // The paper sweeps eta up to 1e2 x the natural scale; the largest
        // point makes B(q) cover whole districts and is only tractable on
        // tiny workloads, so the default sweep stops at 10x (the blow-up
        // trend is already visible from 1e-2 -> 1 -> 10).
        let rows = eta::run(
            &["beijing"],
            &[1e-4, 1e-2, 1.0, 10.0],
            &[(0.1, 40), (0.2, 40)],
            nq,
            scale,
        );
        eta::print(&rows);
    }
    if all || exp == "throughput" {
        let rows = throughput::run(
            "beijing",
            FuncKind::Edr,
            &[1, 2, 4, 8],
            60,
            nq.max(8),
            0.1,
            scale,
        );
        throughput::print(&rows);
        let path = "BENCH_throughput.json";
        throughput::write_json(&rows, path)
            .unwrap_or_else(|e| panic!("could not write {path}: {e}"));
        eprintln!("wrote {path}");
        if let Some(floor) = args.min_speedup {
            throughput::enforce_speedup_floor(&rows, floor);
        }
    }
    if all || exp == "index-build" {
        let rows = index_build::run("beijing", &[1, 2, 4, 8], scale);
        index_build::print(&rows);
        let path = "BENCH_index.json";
        index_build::write_json(&rows, path)
            .unwrap_or_else(|e| panic!("could not write {path}: {e}"));
        eprintln!("wrote {path}");
    }
    if all || exp == "snapshot" {
        let rows = snapshot::run("beijing", 40, nq.max(8), 0.1, scale);
        snapshot::print(&rows);
        let path = "BENCH_snapshot.json";
        snapshot::write_json(&rows, path).unwrap_or_else(|e| panic!("could not write {path}: {e}"));
        eprintln!("wrote {path}");
    }
    if all || exp == "api" {
        let rows = api_workload::run(
            "beijing",
            FuncKind::Edr,
            &[1, 2, 4, 8],
            60,
            nq.max(9),
            0.1,
            scale,
        );
        api_workload::print(&rows);
        let path = "BENCH_api.json";
        api_workload::write_json(&rows, path)
            .unwrap_or_else(|e| panic!("could not write {path}: {e}"));
        eprintln!("wrote {path}");
    }
    if all || exp == "metrics" {
        let rows = metrics_workload::run("beijing", FuncKind::Edr, 2, 60, nq.max(6), 0.1, scale);
        metrics_workload::print(&rows);
        let path = "BENCH_metrics.json";
        metrics_workload::write_json(&rows, path)
            .unwrap_or_else(|e| panic!("could not write {path}: {e}"));
        eprintln!("wrote {path}");
    }
    if all || exp == "serve" {
        let rows = serve_load::run(
            "beijing",
            FuncKind::Edr,
            &[1, 2, 4],
            60,
            nq.max(9),
            0.1,
            scale,
        );
        serve_load::print(&rows);
        let path = "BENCH_serve.json";
        serve_load::write_json(&rows, path)
            .unwrap_or_else(|e| panic!("could not write {path}: {e}"));
        eprintln!("wrote {path}");
    }
    if all || exp == "distrib" {
        let rows = distrib::run(
            "beijing",
            FuncKind::Edr,
            &[1, 2, 3],
            60,
            nq.max(9),
            0.1,
            scale,
        );
        distrib::print(&rows);
        let path = "BENCH_distrib.json";
        distrib::write_json(&rows, path).unwrap_or_else(|e| panic!("could not write {path}: {e}"));
        eprintln!("wrote {path}");
    }
    if all || exp == "verify-cache" {
        let rows = verify_cache::run(
            "beijing",
            FuncKind::Edr,
            &[1, 2, 4],
            60,
            nq.max(8),
            0.1,
            scale,
        );
        verify_cache::print(&rows);
        let path = "BENCH_verify_cache.json";
        verify_cache::write_json(&rows, path)
            .unwrap_or_else(|e| panic!("could not write {path}: {e}"));
        eprintln!("wrote {path}");
    }
    if all || exp == "obs" {
        let rows = obs::run("beijing", FuncKind::Edr, 60, nq.max(9), 0.1, scale);
        obs::print(&rows);
        let path = "BENCH_obs.json";
        obs::write_json(&rows, path).unwrap_or_else(|e| panic!("could not write {path}: {e}"));
        eprintln!("wrote {path}");
    }
    if !all
        && ![
            "table2",
            "fig4",
            "table3",
            "fig5",
            "fig6",
            "fig7",
            "fig8",
            "fig9",
            "fig10",
            "table4",
            "table5",
            "table6",
            "fig11",
            "fig12",
            "fig13",
            "throughput",
            "index-build",
            "snapshot",
            "api",
            "metrics",
            "serve",
            "distrib",
            "verify-cache",
            "obs",
        ]
        .contains(&exp)
    {
        print_usage();
        std::process::exit(1);
    }
}
