//! Experiment harness reproducing every table and figure of the paper's
//! evaluation (§6) on synthetic datasets (see `DESIGN.md` §4 for the
//! substitutions and §5 for the experiment index).
//!
//! * [`data`] — the four synthetic datasets standing in for Beijing, Porto,
//!   Singapore and San Francisco, plus query sampling and model defaults.
//! * [`methods`] — a uniform runner over OSF/DISON/Torch (×SW/BT), q-gram
//!   and Plain-SW.
//! * [`exp`] — one module per table/figure; each returns plain data rows and
//!   the `repro` binary prints them in the paper's layout.

pub mod data;
pub mod exp;
pub mod methods;
pub mod table;

pub use data::{Dataset, FuncKind, Scale};
pub use methods::MethodKind;
