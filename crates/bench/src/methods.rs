//! Uniform method runner for the §6.3 comparisons.
//!
//! Wraps the OSF engine and every index-based baseline behind one interface
//! so sweeps (Figures 6–8, 11) are a single loop over [`MethodKind`].

use baselines::{plain_sw_search, Dison, QGramIndex, Torch};
use std::time::{Duration, Instant};
use traj::TrajectoryStore;
use trajsearch_core::{
    AnyIndex, EngineBuilder, MatchResult, Query, SearchEngine, SearchStats, VerifyMode,
};
use wed::{Sym, WedInstance};

/// The eight methods of Figure 6.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MethodKind {
    OsfBt,
    OsfSw,
    DisonBt,
    DisonSw,
    TorchBt,
    TorchSw,
    QGram,
    PlainSw,
}

impl MethodKind {
    pub const ALL: [MethodKind; 8] = [
        MethodKind::OsfBt,
        MethodKind::OsfSw,
        MethodKind::DisonBt,
        MethodKind::DisonSw,
        MethodKind::TorchBt,
        MethodKind::TorchSw,
        MethodKind::QGram,
        MethodKind::PlainSw,
    ];

    /// The indexed methods typically compared (skipping the very slow scan).
    pub const INDEXED: [MethodKind; 7] = [
        MethodKind::OsfBt,
        MethodKind::OsfSw,
        MethodKind::DisonBt,
        MethodKind::DisonSw,
        MethodKind::TorchBt,
        MethodKind::TorchSw,
        MethodKind::QGram,
    ];

    pub fn name(&self) -> &'static str {
        match self {
            MethodKind::OsfBt => "OSF-BT",
            MethodKind::OsfSw => "OSF-SW",
            MethodKind::DisonBt => "DISON-BT",
            MethodKind::DisonSw => "DISON-SW",
            MethodKind::TorchBt => "Torch-BT",
            MethodKind::TorchSw => "Torch-SW",
            MethodKind::QGram => "q-gram",
            MethodKind::PlainSw => "Plain-SW",
        }
    }
}

/// Pre-built indexes for one `(model, store)` pair; query methods reuse them
/// (index construction is excluded from query-time measurements, §6.3).
pub struct MethodSet<'a, M: WedInstance + Copy + Sync> {
    model: M,
    store: &'a TrajectoryStore,
    engine: SearchEngine<'a, M, AnyIndex>,
    dison_bt: Dison<'a, M>,
    dison_sw: Dison<'a, M>,
    torch_bt: Torch<'a, M>,
    torch_sw: Torch<'a, M>,
    qgram: QGramIndex<'a, M>,
}

/// Outcome of running one method on one query.
#[derive(Debug, Clone)]
pub struct RunResult {
    pub elapsed: Duration,
    pub matches: Vec<MatchResult>,
    pub stats: SearchStats,
}

impl<'a, M: WedInstance + Copy + Sync> MethodSet<'a, M> {
    pub fn new(model: M, store: &'a TrajectoryStore, alphabet_size: usize) -> Self {
        MethodSet {
            model,
            store,
            engine: EngineBuilder::new(model, store, alphabet_size).build(),
            dison_bt: Dison::new(model, store, alphabet_size, VerifyMode::Trie),
            dison_sw: Dison::new(model, store, alphabet_size, VerifyMode::Sw),
            torch_bt: Torch::new(model, store, alphabet_size, VerifyMode::Trie),
            torch_sw: Torch::new(model, store, alphabet_size, VerifyMode::Sw),
            qgram: QGramIndex::new(model, store, 3),
        }
    }

    pub fn engine(&self) -> &SearchEngine<'a, M, AnyIndex> {
        &self.engine
    }

    /// Runs one method on one query, measuring wall-clock time.
    pub fn run(&self, kind: MethodKind, q: &[Sym], tau: f64) -> RunResult {
        let t0 = Instant::now();
        let osf = |mode: VerifyMode| {
            let query = Query::threshold(q, tau)
                .verify(mode)
                .build()
                .expect("workload queries are valid");
            let out = self.engine.run(&query).expect("run");
            (out.matches, out.stats)
        };
        let (matches, stats) = match kind {
            MethodKind::OsfBt => osf(VerifyMode::Trie),
            MethodKind::OsfSw => osf(VerifyMode::Sw),
            MethodKind::DisonBt => self.dison_bt.search(q, tau),
            MethodKind::DisonSw => self.dison_sw.search(q, tau),
            MethodKind::TorchBt => self.torch_bt.search(q, tau),
            MethodKind::TorchSw => self.torch_sw.search(q, tau),
            MethodKind::QGram => self.qgram.search(q, tau),
            MethodKind::PlainSw => plain_sw_search(&self.model, self.store, q, tau),
        };
        RunResult {
            elapsed: t0.elapsed(),
            matches,
            stats,
        }
    }

    /// Average per-query time (ms) and merged stats over a workload.
    pub fn run_workload(
        &self,
        kind: MethodKind,
        queries: &[(Vec<Sym>, f64)],
    ) -> (f64, SearchStats) {
        let mut total = Duration::ZERO;
        let mut stats = SearchStats::default();
        for (q, tau) in queries {
            let r = self.run(kind, q, *tau);
            total += r.elapsed;
            stats.merge(&r.stats);
        }
        let ms = total.as_secs_f64() * 1e3 / queries.len().max(1) as f64;
        (ms, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::{Dataset, FuncKind};

    #[test]
    fn all_methods_agree_on_results() {
        let d = Dataset::test_tiny();
        for kind in [FuncKind::Lev, FuncKind::Edr, FuncKind::Surs] {
            let model = d.model(kind);
            let (store, alphabet) = d.store_for(kind);
            let set = MethodSet::new(&*model, store, alphabet);
            for q in d.sample_queries(kind, 6, 3, 5) {
                let tau = d.tau_for(&*model, &q, 0.2);
                let reference = set.run(MethodKind::PlainSw, &q, tau);
                for m in MethodKind::ALL {
                    let r = set.run(m, &q, tau);
                    let got: Vec<_> = r.matches.iter().map(|x| (x.id, x.start, x.end)).collect();
                    let want: Vec<_> = reference
                        .matches
                        .iter()
                        .map(|x| (x.id, x.start, x.end))
                        .collect();
                    assert_eq!(
                        got,
                        want,
                        "{} vs Plain-SW ({}, tau={tau})",
                        m.name(),
                        kind.name()
                    );
                }
            }
        }
    }

    #[test]
    fn workload_runner_averages() {
        let d = Dataset::test_tiny();
        let model = d.model(FuncKind::Lev);
        let (store, alphabet) = d.store_for(FuncKind::Lev);
        let set = MethodSet::new(&*model, store, alphabet);
        let queries: Vec<(Vec<wed::Sym>, f64)> = d
            .sample_queries(FuncKind::Lev, 5, 4, 9)
            .into_iter()
            .map(|q| {
                let tau = d.tau_for(&*model, &q, 0.2);
                (q, tau)
            })
            .collect();
        let (ms, stats) = set.run_workload(MethodKind::OsfBt, &queries);
        assert!(ms >= 0.0);
        assert!(stats.candidates > 0);
    }
}
