//! Datasets, similarity-function instantiation and query sampling.
//!
//! Four synthetic "cities" mirror the relative shapes of Table 2 (different
//! network sizes, trajectory counts and average lengths) at laptop scale.
//! Everything is deterministic in the seed and scales with [`Scale`].

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use rnet::{CityParams, HubLabels, NetworkKind, RoadNetwork};
use std::sync::{Arc, OnceLock};
use traj::edges::store_to_edges;
use traj::{TrajectoryStore, TripConfig};
use wed::models::{Edr, Erp, Lev, Memo, NetEdr, NetErp, Surs};
use wed::{Sym, WedInstance};

/// Workload scale knob: every experiment accepts one so the same code runs
/// in seconds for CI benches and minutes for fuller sweeps.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Scale(pub f64);

impl Scale {
    /// Criterion-bench scale: sub-second setup.
    pub fn tiny() -> Self {
        Scale(0.05)
    }

    /// Default `repro` scale.
    pub fn default_repro() -> Self {
        Scale(0.5)
    }

    fn count(&self, base: usize) -> usize {
        ((base as f64 * self.0).round() as usize).max(20)
    }
}

/// The six WED instances of §2.2 (Figure 6 columns).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FuncKind {
    Lev,
    Edr,
    Erp,
    NetEdr,
    NetErp,
    Surs,
}

impl FuncKind {
    pub const ALL: [FuncKind; 6] = [
        FuncKind::Lev,
        FuncKind::Edr,
        FuncKind::Erp,
        FuncKind::NetEdr,
        FuncKind::NetErp,
        FuncKind::Surs,
    ];

    pub fn name(&self) -> &'static str {
        match self {
            FuncKind::Lev => "Lev",
            FuncKind::Edr => "EDR",
            FuncKind::Erp => "ERP",
            FuncKind::NetEdr => "NetEDR",
            FuncKind::NetErp => "NetERP",
            FuncKind::Surs => "SURS",
        }
    }

    /// True for edge-representation functions (SURS).
    pub fn uses_edges(&self) -> bool {
        matches!(self, FuncKind::Surs)
    }
}

/// A fully materialized dataset: network, vertex- and edge-representation
/// stores, and lazily built hub labels.
pub struct Dataset {
    pub name: &'static str,
    pub net: Arc<RoadNetwork>,
    /// Vertex-representation trajectories with timestamps.
    pub store: TrajectoryStore,
    /// Edge-representation twin (for SURS).
    pub edge_store: TrajectoryStore,
    hubs: OnceLock<Arc<HubLabels>>,
    seed: u64,
}

impl Dataset {
    /// The four Table 2 stand-ins. `which ∈ {"beijing", "porto",
    /// "singapore", "sanfran"}`.
    pub fn load(which: &str, scale: Scale) -> Dataset {
        let (name, params, base_count, len_range, seed): (
            _,
            CityParams,
            usize,
            (usize, usize),
            u64,
        ) = match which {
            "beijing" => (
                "Beijing",
                CityParams::medium(NetworkKind::City).seed(101),
                8_000,
                (60, 140),
                1,
            ),
            "porto" => (
                "Porto",
                CityParams::medium(NetworkKind::City).seed(202),
                12_000,
                (50, 110),
                2,
            ),
            "singapore" => (
                "Singapore",
                CityParams::small(NetworkKind::City).seed(303),
                3_000,
                (150, 260),
                3,
            ),
            "sanfran" => (
                "SanFran",
                CityParams::large(NetworkKind::City).seed(404),
                20_000,
                (60, 140),
                4,
            ),
            other => panic!("unknown dataset {other:?}"),
        };
        let net = Arc::new(params.generate());
        let trips = TripConfig::default()
            .count(scale.count(base_count))
            .lengths(len_range.0, len_range.1)
            .seed(seed * 7919);
        let store = trips.generate(&net);
        let edge_store = store_to_edges(&net, &store);
        Dataset {
            name,
            net,
            store,
            edge_store,
            hubs: OnceLock::new(),
            seed,
        }
    }

    /// A small synthetic dataset for unit tests and doc examples.
    pub fn test_tiny() -> Dataset {
        let net = Arc::new(CityParams::tiny(NetworkKind::City).seed(7).generate());
        let store = TripConfig::default()
            .count(60)
            .lengths(8, 25)
            .seed(99)
            .generate(&net);
        let edge_store = store_to_edges(&net, &store);
        Dataset {
            name: "tiny",
            net,
            store,
            edge_store,
            hubs: OnceLock::new(),
            seed: 7,
        }
    }

    /// Hub labels, built on first use (only Net* functions need them).
    pub fn hubs(&self) -> Arc<HubLabels> {
        self.hubs
            .get_or_init(|| Arc::new(HubLabels::build(&self.net)))
            .clone()
    }

    /// Median edge length (the paper's scale for NetEDR ε and NetERP η).
    pub fn median_edge_length(&self) -> f64 {
        let mut lens: Vec<f64> = self.net.edges().iter().map(|e| e.length).collect();
        lens.sort_by(f64::total_cmp);
        lens[lens.len() / 2]
    }

    /// Median nearest-neighbor distance between vertices (the paper's scale
    /// for ERP η).
    pub fn median_nn_distance(&self) -> f64 {
        let tree = rnet::KdTree::build(self.net.coords());
        let mut ds: Vec<f64> = (0..self.net.num_vertices() as u32)
            .map(|v| {
                tree.nearest_filtered(self.net.coord(v), |u| u != v)
                    .map(|(_, d)| d)
                    .unwrap_or(0.0)
            })
            .collect();
        ds.sort_by(f64::total_cmp);
        ds[ds.len() / 2]
    }

    // One constructor per parameterized model, so every entry point reads a
    // single source of truth for the §6.1 defaults.

    /// Paper: ε = 0.001 in lat/lon ≈ a city block; here 100 m.
    fn make_edr(&self) -> Edr {
        Edr::new(self.net.clone(), 100.0)
    }

    fn make_erp(&self, eta: Option<f64>) -> Erp {
        let eta = eta.unwrap_or(1e-4 * self.median_nn_distance());
        Erp::new(self.net.clone(), eta)
    }

    fn make_net_edr(&self) -> NetEdr {
        NetEdr::new(self.net.clone(), self.hubs(), self.median_edge_length())
    }

    /// G_del = 2 km as in §6.1.
    fn make_net_erp(&self, eta: Option<f64>) -> NetErp {
        let eta = eta.unwrap_or(self.median_edge_length());
        NetErp::new(self.net.clone(), self.hubs(), 2_000.0, eta)
    }

    /// Instantiates a similarity function with the paper's §6.1 defaults
    /// (scaled to meters). NetEDR/NetERP come memoized; since `Memo` grew a
    /// sharded-lock cache every instance is `Sync`, so one model serves the
    /// sequential pipeline and the parallel batch engine alike (the old
    /// unmemoized `model_sync` split is retired).
    pub fn model(&self, kind: FuncKind) -> Box<dyn WedInstance + Sync> {
        self.model_with_eta(kind, None)
    }

    /// Same, with an explicit η override (Figure 13 sweeps).
    pub fn model_with_eta(&self, kind: FuncKind, eta: Option<f64>) -> Box<dyn WedInstance + Sync> {
        match kind {
            FuncKind::Lev => Box::new(Lev),
            FuncKind::Edr => Box::new(self.make_edr()),
            FuncKind::Erp => Box::new(self.make_erp(eta)),
            FuncKind::NetEdr => Box::new(Memo::new(self.make_net_edr())),
            FuncKind::NetErp => Box::new(Memo::new(self.make_net_erp(eta))),
            FuncKind::Surs => Box::new(Surs::new(self.net.clone())),
        }
    }

    /// The store/alphabet pair for a function's representation.
    pub fn store_for(&self, kind: FuncKind) -> (&TrajectoryStore, usize) {
        if kind.uses_edges() {
            (&self.edge_store, self.net.num_edges())
        } else {
            (&self.store, self.net.num_vertices())
        }
    }

    /// Samples `count` queries of exactly `len` symbols by cutting random
    /// subtrajectories from the store (§6.3: "we randomly sampled
    /// subtrajectories from each dataset as queries").
    pub fn sample_queries(
        &self,
        kind: FuncKind,
        len: usize,
        count: usize,
        salt: u64,
    ) -> Vec<Vec<Sym>> {
        let (store, _) = self.store_for(kind);
        let mut rng =
            ChaCha8Rng::seed_from_u64(self.seed ^ (salt.wrapping_mul(0x9E3779B97F4A7C15)));
        let mut out = Vec::with_capacity(count);
        let mut guard = 0;
        while out.len() < count && guard < count * 1000 {
            guard += 1;
            let id = rng.gen_range(0..store.len() as u32);
            let t = store.get(id);
            if t.len() < len {
                continue;
            }
            let s = rng.gen_range(0..=t.len() - len);
            out.push(t.path()[s..s + len].to_vec());
        }
        assert!(!out.is_empty(), "could not sample queries of length {len}");
        out
    }

    /// Samples queries and perturbs them with the error sources motivating
    /// similarity search (§1): spatial noise (a vertex replaced by a nearby
    /// one), dropped samples, and duplicated samples. The result is usually
    /// *not* a path — exactly the kind of query exact path search cannot
    /// serve but WED search can.
    pub fn sample_noisy_queries(
        &self,
        len: usize,
        count: usize,
        noise_rate: f64,
        salt: u64,
    ) -> Vec<Vec<Sym>> {
        assert!((0.0..=1.0).contains(&noise_rate));
        let clean = self.sample_queries(FuncKind::Lev, len, count, salt);
        let tree = rnet::KdTree::build(self.net.coords());
        let mut rng = ChaCha8Rng::seed_from_u64(salt ^ 0xDEADBEEF);
        clean
            .into_iter()
            .map(|q| {
                let mut out = Vec::with_capacity(q.len());
                for &v in &q {
                    if rng.gen::<f64>() < noise_rate {
                        match rng.gen_range(0..3u8) {
                            // Spatial substitution: a vertex within ~150 m.
                            0 => {
                                let nearby = tree.range(self.net.coord(v), 150.0);
                                if nearby.is_empty() {
                                    out.push(v);
                                } else {
                                    out.push(nearby[rng.gen_range(0..nearby.len())]);
                                }
                            }
                            1 => {} // dropped sample
                            _ => {
                                out.push(v);
                                out.push(v); // duplicated sample
                            }
                        }
                    } else {
                        out.push(v);
                    }
                }
                if out.is_empty() {
                    out.push(q[0]);
                }
                out
            })
            .collect()
    }

    /// τ from a τ-ratio as in §6.1: `τ = τ_ratio · Σ_{q∈Q} c(q)`.
    pub fn tau_for(&self, model: &dyn WedInstance, q: &[Sym], tau_ratio: f64) -> f64 {
        let total: f64 = q.iter().map(|&s| model.lower_cost(s)).sum();
        (tau_ratio * total).max(f64::MIN_POSITIVE)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_dataset_is_consistent() {
        let d = Dataset::test_tiny();
        assert!(d.store.len() >= 20);
        assert!(d.edge_store.len() >= 20);
        for (_, t) in d.store.iter() {
            assert!(d.net.is_path(t.path()));
        }
    }

    #[test]
    fn queries_are_substrings_of_store() {
        let d = Dataset::test_tiny();
        let qs = d.sample_queries(FuncKind::Lev, 5, 10, 0);
        assert_eq!(qs.len(), 10);
        for q in &qs {
            assert_eq!(q.len(), 5);
            assert!(d.net.is_path(q));
        }
        // Edge-representation queries for SURS.
        let qe = d.sample_queries(FuncKind::Surs, 4, 5, 0);
        for q in &qe {
            assert_eq!(q.len(), 4);
        }
    }

    #[test]
    fn models_instantiate_for_all_kinds() {
        let d = Dataset::test_tiny();
        for kind in FuncKind::ALL {
            let m = d.model(kind);
            assert_eq!(m.name(), kind.name());
            let (_store, alphabet) = d.store_for(kind);
            assert!(alphabet > 0);
            // c(q) must be positive for filtering to be possible.
            let q = d.sample_queries(kind, 3, 1, 1).pop().unwrap();
            for &s in &q {
                assert!(m.lower_cost(s) > 0.0, "{} c(q) must be > 0", m.name());
            }
        }
    }

    #[test]
    fn tau_scales_with_ratio() {
        let d = Dataset::test_tiny();
        let m = d.model(FuncKind::Lev);
        let q = d.sample_queries(FuncKind::Lev, 6, 1, 2).pop().unwrap();
        let t1 = d.tau_for(&*m, &q, 0.1);
        let t3 = d.tau_for(&*m, &q, 0.3);
        assert!((t3 / t1 - 3.0).abs() < 1e-9);
        // Lev: c(q) = 1 per symbol.
        assert!((t1 - 0.6).abs() < 1e-9);
    }

    #[test]
    fn medians_are_city_scale() {
        let d = Dataset::test_tiny();
        let mel = d.median_edge_length();
        assert!((40.0..400.0).contains(&mel), "median edge length {mel}");
        let nn = d.median_nn_distance();
        assert!((40.0..400.0).contains(&nn), "median nn distance {nn}");
    }

    #[test]
    fn noisy_queries_recoverable_by_similarity_search() {
        use trajsearch_core::{EngineBuilder, Query};
        let d = Dataset::test_tiny();
        let model = d.model(FuncKind::Edr);
        let engine = EngineBuilder::new(&*model, &d.store, d.net.num_vertices()).build();
        let noisy = d.sample_noisy_queries(10, 10, 0.2, 3);
        let mut found = 0;
        for q in &noisy {
            // Budget: 40% of the query may differ.
            let tau = (0.4 * q.len() as f64).max(1.0);
            let query = Query::threshold(q.clone(), tau).build().unwrap();
            if !engine.run(&query).unwrap().matches.is_empty() {
                found += 1;
            }
        }
        assert!(
            found >= 7,
            "similarity search recovered only {found}/10 noisy queries"
        );
    }

    #[test]
    fn noisy_queries_respect_rate_zero() {
        let d = Dataset::test_tiny();
        let clean = d.sample_queries(FuncKind::Lev, 8, 4, 9);
        let zero = d.sample_noisy_queries(8, 4, 0.0, 9);
        assert_eq!(clean, zero, "rate 0 must be the identity");
    }

    #[test]
    fn sample_queries_deterministic_per_salt() {
        let d = Dataset::test_tiny();
        let a = d.sample_queries(FuncKind::Lev, 5, 3, 7);
        let b = d.sample_queries(FuncKind::Lev, 5, 3, 7);
        assert_eq!(a, b);
        let c = d.sample_queries(FuncKind::Lev, 5, 3, 8);
        assert_ne!(a, c);
    }
}
