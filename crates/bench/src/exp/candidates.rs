//! Figure 11: filtering power — candidate counts of OSF vs DISON vs Torch
//! vs q-gram.
//!
//! Candidates are `(id, j, iq)` triples for OSF/DISON/Torch; the q-gram
//! filter prunes whole trajectories, so its count is trajectory-level
//! (an advantage for q-gram in this comparison — it still loses).

use crate::data::{Dataset, FuncKind, Scale};
use crate::methods::{MethodKind, MethodSet};
use crate::table::print_table;

#[derive(Debug, Clone)]
pub struct CandRow {
    pub func: &'static str,
    pub method: &'static str,
    /// τ-ratio or |Q| depending on the sweep.
    pub x: f64,
    pub avg_candidates: f64,
}

const FILTER_METHODS: [MethodKind; 4] = [
    MethodKind::OsfBt,
    MethodKind::DisonBt,
    MethodKind::TorchBt,
    MethodKind::QGram,
];

/// Left panel: vary τ-ratio at |Q| = qlen; right panel: vary |Q| at
/// τ-ratio = 0.1. `sweep_tau` selects the panel.
pub fn run(
    dataset: &str,
    funcs: &[FuncKind],
    xs: &[f64],
    sweep_tau: bool,
    qlen: usize,
    nqueries: usize,
    scale: Scale,
) -> Vec<CandRow> {
    let d = Dataset::load(dataset, scale);
    let mut rows = Vec::new();
    for &func in funcs {
        let model = d.model(func);
        let (store, alphabet) = d.store_for(func);
        let set = MethodSet::new(&*model, store, alphabet);
        for &x in xs {
            let (len, ratio) = if sweep_tau {
                (qlen, x)
            } else {
                (x as usize, 0.1)
            };
            let wl: Vec<(Vec<wed::Sym>, f64)> = d
                .sample_queries(func, len, nqueries, 110)
                .into_iter()
                .map(|q| {
                    let tau = d.tau_for(&*model, &q, ratio);
                    (q, tau)
                })
                .collect();
            for m in FILTER_METHODS {
                let (_, stats) = set.run_workload(m, &wl);
                rows.push(CandRow {
                    func: func.name(),
                    method: m.name(),
                    x,
                    avg_candidates: stats.candidates as f64 / wl.len() as f64,
                });
            }
        }
    }
    rows
}

pub fn print(rows: &[CandRow], xlabel: &str) {
    println!("\nFigure 11: number of candidates (lower is better)");
    print_table(
        &["Func", xlabel, "Method", "avg #candidates"],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.func.to_string(),
                    format!("{}", r.x),
                    r.method.to_string(),
                    format!("{:.1}", r.avg_candidates),
                ]
            })
            .collect::<Vec<_>>(),
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn osf_never_generates_more_than_torch() {
        let rows = run(
            "beijing",
            &[FuncKind::Lev, FuncKind::Edr],
            &[0.1, 0.2],
            true,
            8,
            3,
            Scale(0.01),
        );
        for func in ["Lev", "EDR"] {
            for x in [0.1, 0.2] {
                let get = |m: &str| {
                    rows.iter()
                        .find(|r| r.func == func && r.method == m && r.x == x)
                        .unwrap()
                        .avg_candidates
                };
                assert!(
                    get("OSF-BT") <= get("Torch-BT") + 1e-9,
                    "OSF must filter at least as well as Torch ({func}, {x})"
                );
                assert!(get("OSF-BT") <= get("DISON-BT") + 1e-9);
            }
        }
    }
}
