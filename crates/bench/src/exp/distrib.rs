//! Distributed serving cost (`repro distrib`): the coordinator +
//! shard-server topology (`trajsearch-distrib`) vs in-process `run_batch`
//! on the same workload.
//!
//! The shard servers are real `serve_shard` instances on loopback TCP —
//! run as in-process threads so the bench needs no helper binaries — and
//! the coordinator is a [`Coordinator`] whose engine pulls every posting
//! over the shard-RPC surface. Every remote `Response` is checked
//! byte-identical (matches) against the in-process reference, so the
//! measurement doubles as the cluster-smoke correctness gate in CI. The
//! dump (`BENCH_distrib.json`) uses the shared envelope; `rpc_overhead`
//! (remote wall / in-process wall) is the price of moving the postings
//! fetches onto sockets. As always, `host_cpus` contextualizes numbers
//! from small CI runners.

use super::{host_cpus, write_bench_json};
use crate::data::{Dataset, FuncKind, Scale};
use crate::table::{fmt_ms, print_table};
use std::time::Instant;
use trajsearch_core::batch::BatchOptions;
use trajsearch_core::{EngineBuilder, IndexShard, PostingSource, Query, RemoteSpec};
use trajsearch_distrib::Coordinator;
use trajsearch_serve::{IndexShardSource, Server, ServerConfig};

/// One measured point: the workload through a coordinator over `shards`
/// shard servers, with the in-process run as the baseline.
#[derive(Debug, Clone)]
pub struct DistribRow {
    pub dataset: String,
    pub func: &'static str,
    pub shards: usize,
    pub queries: usize,
    pub inproc_wall_ms: f64,
    pub inproc_qps: f64,
    pub remote_wall_ms: f64,
    pub remote_qps: f64,
    /// Remote wall over in-process wall (shard-RPC + framing overhead
    /// factor; 1.0 would be free postings fetches).
    pub rpc_overhead: f64,
    pub results: usize,
    /// Postings bytes held per shard server, summed (the distributed
    /// memory footprint the topology buys).
    pub shard_bytes: usize,
}

/// Mixed threshold/top-k workload, each query round-tripped through its
/// wire form — the exact bytes a remote client would send the coordinator.
fn workload(
    d: &Dataset,
    func: FuncKind,
    qlen: usize,
    nqueries: usize,
    tau_ratio: f64,
) -> Vec<Query> {
    let model = d.model(func);
    d.sample_queries(func, qlen, nqueries, 47)
        .into_iter()
        .enumerate()
        .map(|(i, q)| {
            let tau = d.tau_for(&*model, &q, tau_ratio);
            let query = match i % 3 {
                0 | 1 => Query::threshold(q, tau).build(),
                _ => Query::top_k(q, 5, tau, 4.0 * tau).build(),
            }
            .expect("workload queries are valid");
            Query::from_json(&query.to_json()).expect("wire round-trip")
        })
        .collect()
}

/// Runs the workload in-process and through a loopback shard cluster at
/// each shard count. Every remote response must match the in-process
/// reference, and a healthy cluster must never degrade.
pub fn run(
    which: &str,
    func: FuncKind,
    shard_counts: &[usize],
    qlen: usize,
    nqueries: usize,
    tau_ratio: f64,
    scale: Scale,
) -> Vec<DistribRow> {
    const EPOCH: u64 = 1;

    let d = Dataset::load(which, scale);
    let model = d.model(func);
    let (store, alphabet) = d.store_for(func);
    let engine = EngineBuilder::new(&*model, store, alphabet).build();
    let workload = workload(&d, func, qlen, nqueries, tau_ratio);

    // Warm-up pass; doubles as the correctness reference.
    let reference = engine
        .run_batch(&workload, BatchOptions::with_threads(1))
        .expect("workload admitted");

    let mut rows = Vec::with_capacity(shard_counts.len());
    for &n in shard_counts {
        // In-process baseline, re-measured per row so the delta is taken
        // against the same machine state.
        let t0 = Instant::now();
        engine
            .run_batch(&workload, BatchOptions::with_threads(2))
            .expect("workload admitted");
        let inproc_wall = t0.elapsed();

        // One real shard server per shard, on loopback ephemeral ports.
        let shards: Vec<IndexShard> = (0..n)
            .map(|k| IndexShard::build(store, alphabet, k, n))
            .collect();
        let shard_bytes: usize = shards.iter().map(|s| s.size_bytes()).sum();
        let sources: Vec<IndexShardSource<'_>> = shards
            .iter()
            .map(|s| IndexShardSource::new(s, EPOCH))
            .collect();
        let servers: Vec<Server> = sources
            .iter()
            .map(|_| Server::bind(ServerConfig::default()).expect("bind shard server"))
            .collect();
        let handles: Vec<_> = servers.iter().map(Server::handle).collect();
        let endpoints: Vec<String> = servers.iter().map(|s| s.local_addr().to_string()).collect();

        let (remote_wall, results) = std::thread::scope(|scope| {
            let mut serving = Vec::new();
            for (server, source) in servers.into_iter().zip(&sources) {
                serving.push(scope.spawn(move || server.serve_shard(source)));
            }

            let coordinator = Coordinator::connect(
                &*model,
                store,
                alphabet,
                &RemoteSpec::new(endpoints.iter().cloned()),
            )
            .expect("connect loopback cluster");

            let t0 = Instant::now();
            let remote = coordinator
                .engine()
                .run_batch(&workload, BatchOptions::with_threads(2))
                .expect("workload admitted");
            let remote_wall = t0.elapsed();

            for (i, (got, want)) in remote
                .responses
                .iter()
                .zip(&reference.responses)
                .enumerate()
            {
                assert_eq!(
                    got.matches, want.matches,
                    "remote diverged on query {i} with {n} shards"
                );
            }
            assert_eq!(
                coordinator.remote().degraded_total(),
                0,
                "healthy loopback cluster must not degrade"
            );
            assert_eq!(coordinator.remote().num_trajectories(), store.len());

            for handle in &handles {
                handle.shutdown();
            }
            for join in serving {
                join.join().expect("shard thread").expect("serve ok");
            }
            (remote_wall, remote.stats.merged.results)
        });

        let inproc_ms = inproc_wall.as_secs_f64() * 1e3;
        let remote_ms = remote_wall.as_secs_f64() * 1e3;
        rows.push(DistribRow {
            dataset: d.name.to_string(),
            func: func.name(),
            shards: n,
            queries: workload.len(),
            inproc_wall_ms: inproc_ms,
            inproc_qps: workload.len() as f64 / inproc_wall.as_secs_f64().max(1e-9),
            remote_wall_ms: remote_ms,
            remote_qps: workload.len() as f64 / remote_wall.as_secs_f64().max(1e-9),
            rpc_overhead: remote_ms / inproc_ms.max(1e-9),
            results,
            shard_bytes,
        });
    }
    rows
}

pub fn print(rows: &[DistribRow]) {
    println!(
        "\nDistributed serving: coordinator over loopback shard servers vs \
         in-process run_batch ({} host cpus)",
        host_cpus()
    );
    print_table(
        &[
            "Dataset",
            "Func",
            "Shards",
            "Queries",
            "Inproc ms",
            "Remote ms",
            "Inproc q/s",
            "Remote q/s",
            "Overhead",
            "Shard MiB",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.dataset.clone(),
                    r.func.to_string(),
                    r.shards.to_string(),
                    r.queries.to_string(),
                    fmt_ms(r.inproc_wall_ms),
                    fmt_ms(r.remote_wall_ms),
                    format!("{:.1}", r.inproc_qps),
                    format!("{:.1}", r.remote_qps),
                    format!("{:.2}x", r.rpc_overhead),
                    format!("{:.2}", r.shard_bytes as f64 / (1024.0 * 1024.0)),
                ]
            })
            .collect::<Vec<_>>(),
    );
}

/// Writes the rows in the shared `BENCH_*.json` envelope.
pub fn write_json(rows: &[DistribRow], path: &str) -> std::io::Result<()> {
    let rendered: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "{{\"dataset\": \"{}\", \"func\": \"{}\", \"shards\": {}, \
                 \"queries\": {}, \"inproc_wall_ms\": {:.3}, \"remote_wall_ms\": {:.3}, \
                 \"inproc_qps\": {:.3}, \"remote_qps\": {:.3}, \"rpc_overhead\": {:.3}, \
                 \"results\": {}, \"shard_bytes\": {}}}",
                r.dataset,
                r.func,
                r.shards,
                r.queries,
                r.inproc_wall_ms,
                r.remote_wall_ms,
                r.inproc_qps,
                r.remote_qps,
                r.rpc_overhead,
                r.results,
                r.shard_bytes
            )
        })
        .collect();
    write_bench_json(path, "distrib", "queries_per_sec", &rendered)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn remote_rows_agree_with_in_process() {
        let rows = run("beijing", FuncKind::Lev, &[1, 3], 8, 6, 0.2, Scale(0.01));
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].shards, 1);
        assert!(rows.iter().all(|r| r.queries == 6));
        assert!(rows.iter().all(|r| r.remote_qps > 0.0));
        // Identical matches asserted inside run → identical result counts.
        assert_eq!(rows[0].results, rows[1].results);
    }

    #[test]
    fn json_dump_uses_shared_envelope() {
        let rows = run("beijing", FuncKind::Lev, &[2], 8, 3, 0.2, Scale(0.01));
        let path = std::env::temp_dir().join("trajsearch_distrib_test.json");
        let path = path.to_str().unwrap();
        write_json(&rows, path).unwrap();
        let text = std::fs::read_to_string(path).unwrap();
        std::fs::remove_file(path).ok();
        assert!(text.contains("\"experiment\": \"distrib\""));
        assert!(text.contains("\"host_cpus\""));
        assert!(text.contains("\"rpc_overhead\""));
        assert_eq!(text.matches('{').count(), text.matches('}').count());
    }
}
