//! Table 5: verification pruning rates (UPR / CMR / TUR) of OSF-BT.

use crate::data::{Dataset, FuncKind, Scale};
use crate::methods::{MethodKind, MethodSet};
use crate::table::{fmt_pct, print_table};

#[derive(Debug, Clone)]
pub struct VerifRow {
    pub setting: String,
    pub upr: f64,
    pub cmr: f64,
    pub tur: f64,
}

pub fn run(scale: Scale) -> Vec<VerifRow> {
    let d = Dataset::load("beijing", scale);
    let func = FuncKind::Edr;
    let model = d.model(func);
    let (store, alphabet) = d.store_for(func);

    let mut rows = Vec::new();
    let mut measure = |setting: String, store: &traj::TrajectoryStore, qlen: usize, ratio: f64| {
        let set = MethodSet::new(&*model, store, alphabet);
        let wl: Vec<(Vec<wed::Sym>, f64)> = d
            .sample_queries(func, qlen, 15, 120)
            .into_iter()
            .map(|q| {
                let tau = d.tau_for(&*model, &q, ratio);
                (q, tau)
            })
            .collect();
        let (_, stats) = set.run_workload(MethodKind::OsfBt, &wl);
        rows.push(VerifRow {
            setting,
            upr: stats.upr(),
            cmr: stats.cmr(),
            tur: stats.tur(),
        });
    };

    measure("default (r=0.1, |Q|=60, 100%)".into(), store, 60, 0.1);
    measure("r=0.2".into(), store, 60, 0.2);
    measure("r=0.3".into(), store, 60, 0.3);
    measure("|Q|=20".into(), store, 20, 0.1);
    measure("|Q|=40".into(), store, 40, 0.1);
    let quarter = store.prefix(store.len() / 4);
    measure("25% data".into(), &quarter, 60, 0.1);
    let half = store.prefix(store.len() / 2);
    measure("50% data".into(), &half, 60, 0.1);
    rows
}

pub fn print(rows: &[VerifRow]) {
    println!("\nTable 5: verification pruning of OSF-BT (Beijing / EDR)");
    println!("  UPR = unpruned position rate, CMR = cache miss rate, TUR = UPR x CMR");
    print_table(
        &["Setting", "UPR", "CMR", "TUR"],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.setting.clone(),
                    fmt_pct(r.upr),
                    fmt_pct(r.cmr),
                    fmt_pct(r.tur),
                ]
            })
            .collect::<Vec<_>>(),
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_are_valid_and_pruning_happens() {
        let rows = run(Scale(0.02));
        for r in &rows {
            assert!((0.0..=1.0).contains(&r.upr), "UPR out of range: {}", r.upr);
            assert!((0.0..=1.0).contains(&r.cmr), "CMR: {}", r.cmr);
            assert!((r.tur - r.upr * r.cmr).abs() < 1e-9);
        }
        // Early termination must prune at the default setting.
        assert!(rows[0].upr < 0.9, "no early-termination pruning observed");
        // Trie caching must hit at the default setting.
        assert!(rows[0].cmr < 0.9, "no cache sharing observed");
    }

    #[test]
    fn looser_threshold_increases_unpruned_rate() {
        let rows = run(Scale(0.02));
        let get = |s: &str| rows.iter().find(|r| r.setting.starts_with(s)).unwrap();
        assert!(
            get("r=0.3").upr >= get("default").upr,
            "UPR should grow with tau-ratio"
        );
    }
}
