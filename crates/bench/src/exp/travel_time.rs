//! Figure 4 and Table 3: on-the-fly travel-time estimation (§6.2.1).
//!
//! Ground truth: the travel times of subtrajectories *exactly* matching the
//! query (queries are chosen sparse: 2–10 exact matches). Estimation:
//! average travel time of the subtrajectories *similar* to the query under a
//! function and τ-ratio, scored with leave-one-out cross-validation
//! (Appendix E) and reported relative to exact-match LOOCV
//! (`RMSE < 100%` ⇒ similarity search beats exact matching).
//!
//! WED instances go through the search engine; the non-WED comparators
//! (DTW, LCSS, LORS, LCRS) are evaluated by sliding-window scans over the
//! trajectories sharing symbols with the query (the paper enumerates
//! subtrajectories; the window scan is the documented substitution — see
//! EXPERIMENTS.md).

use crate::data::{Dataset, FuncKind, Scale};
use crate::table::print_table;
use rnet::Point;
use std::collections::HashMap;
use traj::TrajId;
use trajsearch_core::{AnyIndex, EngineBuilder, InvertedIndex, Query, SearchEngine};
use wed::nonwed::{dtw, lcrs, lcss, lors};
use wed::{wed, Sym};

/// Functions compared in Figure 4.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EstFunc {
    Wed(FuncKind),
    Dtw,
    Lcss,
    Lors,
    Lcrs,
}

impl EstFunc {
    pub const ALL: [EstFunc; 10] = [
        EstFunc::Wed(FuncKind::Lev),
        EstFunc::Wed(FuncKind::Edr),
        EstFunc::Wed(FuncKind::Erp),
        EstFunc::Wed(FuncKind::NetEdr),
        EstFunc::Wed(FuncKind::NetErp),
        EstFunc::Wed(FuncKind::Surs),
        EstFunc::Dtw,
        EstFunc::Lcss,
        EstFunc::Lors,
        EstFunc::Lcrs,
    ];

    pub fn name(&self) -> &'static str {
        match self {
            EstFunc::Wed(k) => k.name(),
            EstFunc::Dtw => "DTW",
            EstFunc::Lcss => "LCSS",
            EstFunc::Lors => "LORS",
            EstFunc::Lcrs => "LCRS",
        }
    }
}

#[derive(Debug, Clone)]
pub struct Fig4Row {
    pub func: &'static str,
    pub tau_ratio: f64,
    /// `MSE(τ)/MSE(exact)` in percent, averaged over queries.
    pub rmse_rel_pct: f64,
    pub queries_used: usize,
}

/// A query with its sparse exact-match ground truth.
struct GroundTruth {
    q: Vec<Sym>,
    /// trajectory id -> exact-match travel time (per-id best).
    exact: HashMap<TrajId, f64>,
}

/// Leave-one-out MSE of predicting each ground-truth value from the average
/// of the remaining sample (Appendix E).
fn loocv_mse(truth: &HashMap<TrajId, f64>, sample: &HashMap<TrajId, f64>) -> Option<f64> {
    let mut total = 0.0;
    let mut n = 0usize;
    for (&id, &omega) in truth {
        let (mut sum, mut cnt) = (0.0, 0usize);
        for (&sid, &v) in sample {
            if sid != id {
                sum += v;
                cnt += 1;
            }
        }
        if cnt == 0 {
            continue;
        }
        let est = sum / cnt as f64;
        total += (est - omega) * (est - omega);
        n += 1;
    }
    if n == 0 {
        None
    } else {
        Some(total / n as f64)
    }
}

/// Finds sparse queries: subtrajectories whose exact-match count (distinct
/// trajectories) is in `[2, 10]`.
fn sparse_queries(d: &Dataset, qlen: usize, want: usize) -> Vec<GroundTruth> {
    let lev = d.model(FuncKind::Lev);
    let (store, alphabet) = d.store_for(FuncKind::Lev);
    let engine = EngineBuilder::new(&*lev, store, alphabet).build();
    let mut out = Vec::new();
    for salt in 0..200u64 {
        if out.len() >= want {
            break;
        }
        for q in d.sample_queries(FuncKind::Lev, qlen, 4, 1000 + salt) {
            // dist < 0.5 <=> exact under Lev
            let hits = engine
                .run(&Query::threshold(q.clone(), 0.5).build().expect("valid"))
                .expect("run");
            let mut exact: HashMap<TrajId, f64> = HashMap::new();
            for m in &hits.matches {
                let t = store.get(m.id);
                let tt = t.travel_time(m.start, m.end);
                // Per-id best: exact matches tie at dist 0; keep the first
                // (shortest spans come from identical strings anyway).
                exact.entry(m.id).or_insert(tt);
            }
            if (2..=10).contains(&exact.len()) {
                out.push(GroundTruth { q, exact });
                if out.len() >= want {
                    break;
                }
            }
        }
    }
    out
}

/// Best similar subtrajectory per trajectory under a WED instance.
fn wed_sample(
    d: &Dataset,
    func: FuncKind,
    engine: &SearchEngine<'_, &(dyn wed::WedInstance + Sync), AnyIndex>,
    q_vertex: &[Sym],
    tau_ratio: f64,
) -> HashMap<TrajId, f64> {
    // Edge-representation functions need the query converted.
    let q = if func.uses_edges() {
        d.net.path_to_edges(q_vertex).expect("query is a path")
    } else {
        q_vertex.to_vec()
    };
    let tau = d.tau_for(*engine.model(), &q, tau_ratio);
    let out = engine
        .run(&Query::threshold(q, tau).build().expect("valid"))
        .expect("run");
    let mut best: HashMap<TrajId, (f64, usize, usize)> = HashMap::new();
    for m in &out.matches {
        let len = m.end - m.start;
        let e = best
            .entry(m.id)
            .or_insert((f64::INFINITY, usize::MAX, usize::MAX));
        if m.dist < e.0 - 1e-12 || ((m.dist - e.0).abs() <= 1e-12 && len < e.1) {
            *e = (m.dist, len, m.start);
        }
    }
    let mut sample = HashMap::new();
    for (id, (_d, len, start)) in best {
        // Convert edge positions back to vertex positions for travel time.
        let (s, t) = if func.uses_edges() {
            (start, start + len + 1)
        } else {
            (start, start + len)
        };
        let traj = &d.store.get(id);
        let t = t.min(traj.len() - 1);
        sample.insert(id, traj.travel_time(s, t));
    }
    sample
}

/// Best similar window per trajectory under a non-WED comparator.
fn nonwed_sample(
    d: &Dataset,
    func: EstFunc,
    index: &InvertedIndex,
    q: &[Sym],
    tau_ratio: f64,
) -> HashMap<TrajId, f64> {
    // Candidate trajectories: share at least a quarter of query symbols.
    let mut hits: HashMap<TrajId, usize> = HashMap::new();
    for &sym in q {
        for &(id, _) in index.postings(sym) {
            *hits.entry(id).or_insert(0) += 1;
        }
    }
    let min_hits = (q.len() / 4).max(1);
    let q_pts: Vec<Point> = q.iter().map(|&v| d.net.coord(v)).collect();
    let q_edges = d.net.path_to_edges(q).expect("query is a path");
    let wq: f64 = q_edges.iter().map(|&e| d.net.edge(e).length).sum();
    let seg_sum: f64 = q_pts.windows(2).map(|w| w[0].dist2(&w[1])).sum();
    let ew = |e: Sym| d.net.edge(e).length;

    let mut sample = HashMap::new();
    for (&id, &h) in &hits {
        if h < min_hits {
            continue;
        }
        let traj = d.store.get(id);
        let p = traj.path();
        // Sliding windows around the query length.
        let mut best: Option<(f64, usize, usize)> = None; // (score, s, t)
        let lens = [
            q.len().saturating_sub(q.len() / 4).max(2),
            q.len(),
            q.len() + q.len() / 4,
        ];
        for &wl in &lens {
            if p.len() < wl {
                continue;
            }
            let stride = (q.len() / 8).max(1);
            let mut s = 0;
            while s + wl <= p.len() {
                let t = s + wl - 1;
                let window = &p[s..=t];
                // score = normalized distance in [0, ...]; accept if < ratio.
                let score = match func {
                    EstFunc::Dtw => {
                        let w_pts: Vec<Point> = window.iter().map(|&v| d.net.coord(v)).collect();
                        dtw(&w_pts, &q_pts) / seg_sum.max(1e-9)
                    }
                    EstFunc::Lcss => {
                        let w_pts: Vec<Point> = window.iter().map(|&v| d.net.coord(v)).collect();
                        1.0 - lcss(&w_pts, &q_pts, 100.0) as f64 / q.len() as f64
                    }
                    EstFunc::Lors => {
                        let we = d.net.path_to_edges(window).expect("window is a path");
                        1.0 - lors(&we, &q_edges, ew) / wq.max(1e-9)
                    }
                    EstFunc::Lcrs => {
                        let we = d.net.path_to_edges(window).expect("window is a path");
                        1.0 - lcrs(&we, &q_edges, ew)
                    }
                    EstFunc::Wed(_) => unreachable!(),
                };
                if score <= tau_ratio
                    && best.is_none_or(|(bs, bs_s, bs_t)| {
                        score < bs - 1e-12 || ((score - bs).abs() <= 1e-12 && t - s < bs_t - bs_s)
                    })
                {
                    best = Some((score, s, t));
                }
                s += stride;
            }
        }
        if let Some((_, s, t)) = best {
            sample.insert(id, traj.travel_time(s, t));
        }
    }
    sample
}

/// Figure 4: relative RMSE per function and τ-ratio.
pub fn run_fig4(qlen: usize, nqueries: usize, tau_ratios: &[f64], scale: Scale) -> Vec<Fig4Row> {
    let d = Dataset::load("beijing", scale);
    let truths = sparse_queries(&d, qlen, nqueries);
    assert!(
        !truths.is_empty(),
        "no sparse queries found; increase scale"
    );

    // Engines per WED function (built once).
    let models: Vec<(FuncKind, Box<dyn wed::WedInstance + Sync>)> =
        FuncKind::ALL.iter().map(|&k| (k, d.model(k))).collect();
    let engines: Vec<(
        FuncKind,
        SearchEngine<'_, &(dyn wed::WedInstance + Sync), AnyIndex>,
    )> = models
        .iter()
        .map(|(k, m)| {
            let (store, alphabet) = d.store_for(*k);
            (*k, EngineBuilder::new(&**m as _, store, alphabet).build())
        })
        .collect();
    let vertex_index = InvertedIndex::build(&d.store, d.net.num_vertices());

    let mut rows = Vec::new();
    for func in EstFunc::ALL {
        for &ratio in tau_ratios {
            let mut rel_sum = 0.0;
            let mut used = 0usize;
            for gt in &truths {
                let Some(mse_exact) = loocv_mse(&gt.exact, &gt.exact) else {
                    continue;
                };
                if mse_exact <= 0.0 {
                    continue;
                }
                let sample = match func {
                    EstFunc::Wed(k) => {
                        let engine = &engines.iter().find(|(ek, _)| *ek == k).unwrap().1;
                        wed_sample(&d, k, engine, &gt.q, ratio)
                    }
                    _ => nonwed_sample(&d, func, &vertex_index, &gt.q, ratio),
                };
                // Ground truths must be contained in the similar set for the
                // LOOCV protocol; merge to be safe (exact ⊆ similar holds for
                // WED by construction, and windows may miss them).
                let mut merged = sample;
                for (&id, &tt) in &gt.exact {
                    merged.entry(id).or_insert(tt);
                }
                if let Some(mse) = loocv_mse(&gt.exact, &merged) {
                    rel_sum += mse / mse_exact;
                    used += 1;
                }
            }
            if used > 0 {
                rows.push(Fig4Row {
                    func: func.name(),
                    tau_ratio: ratio,
                    rmse_rel_pct: 100.0 * rel_sum / used as f64,
                    queries_used: used,
                });
            }
        }
    }
    rows
}

pub fn print_fig4(rows: &[Fig4Row]) {
    println!("\nFigure 4: travel-time estimation, relative MSE (<100% beats exact match)");
    print_table(
        &["Func", "tau-ratio", "RMSE (%)", "#queries"],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.func.to_string(),
                    format!("{}", r.tau_ratio),
                    format!("{:.1}", r.rmse_rel_pct),
                    r.queries_used.to_string(),
                ]
            })
            .collect::<Vec<_>>(),
    );
}

/// Table 3: subtrajectory vs whole matching under SURS, top-k.
#[derive(Debug, Clone)]
pub struct Table3Row {
    pub k: usize,
    pub subtrajectory_pct: f64,
    pub whole_pct: f64,
}

pub fn run_table3(qlen: usize, nqueries: usize, ks: &[usize], scale: Scale) -> Vec<Table3Row> {
    let d = Dataset::load("beijing", scale);
    let truths = sparse_queries(&d, qlen, nqueries);
    assert!(!truths.is_empty());
    let surs = d.model(FuncKind::Surs);
    let (estore, alphabet) = d.store_for(FuncKind::Surs);
    let engine = EngineBuilder::new(&*surs, estore, alphabet).build();

    let mut rows = Vec::new();
    for &k in ks {
        let (mut sub_sum, mut whole_sum, mut used) = (0.0, 0.0, 0usize);
        for gt in &truths {
            let Some(mse_exact) = loocv_mse(&gt.exact, &gt.exact) else {
                continue;
            };
            if mse_exact <= 0.0 {
                continue;
            }
            let qe = d.net.path_to_edges(&gt.q).unwrap();

            // Subtrajectory: per-id best match under a generous threshold,
            // then top-k by distance.
            let tau = d.tau_for(&*surs, &qe, 0.5);
            let out = engine
                .run(&Query::threshold(qe.clone(), tau).build().expect("valid"))
                .expect("run");
            let mut best: HashMap<TrajId, (f64, usize, usize)> = HashMap::new();
            for m in &out.matches {
                let e = best.entry(m.id).or_insert((f64::INFINITY, 0, 0));
                if m.dist < e.0 {
                    *e = (m.dist, m.start, m.end);
                }
            }
            let mut ranked: Vec<(TrajId, f64, usize, usize)> = best
                .into_iter()
                .map(|(id, (dd, s, t))| (id, dd, s, t))
                .collect();
            ranked.sort_by(|a, b| a.1.total_cmp(&b.1));
            let sub_sample: HashMap<TrajId, f64> = ranked
                .iter()
                .take(k)
                .map(|&(id, _, s, t)| {
                    let traj = d.store.get(id);
                    let vt = (t + 1).min(traj.len() - 1);
                    (id, traj.travel_time(s, vt))
                })
                .collect();

            // Whole matching: rank trajectories by wed(P, Q), take top-k;
            // travel time is the whole trajectory duration.
            let mut whole: Vec<(TrajId, f64)> = estore
                .iter()
                .map(|(id, t)| (id, wed(&*surs, t.path(), &qe)))
                .collect();
            whole.sort_by(|a, b| b.1.total_cmp(&a.1).reverse());
            let whole_sample: HashMap<TrajId, f64> = whole
                .iter()
                .take(k)
                .map(|&(id, _)| {
                    let traj = d.store.get(id);
                    (id, traj.travel_time(0, traj.len() - 1))
                })
                .collect();

            if let (Some(ms), Some(mw)) = (
                loocv_mse(&gt.exact, &{
                    let mut m = sub_sample.clone();
                    for (&id, &tt) in &gt.exact {
                        m.entry(id).or_insert(tt);
                    }
                    m
                }),
                loocv_mse(&gt.exact, &whole_sample),
            ) {
                sub_sum += ms / mse_exact;
                whole_sum += mw / mse_exact;
                used += 1;
            }
        }
        if used > 0 {
            rows.push(Table3Row {
                k,
                subtrajectory_pct: 100.0 * sub_sum / used as f64,
                whole_pct: 100.0 * whole_sum / used as f64,
            });
        }
    }
    rows
}

pub fn print_table3(rows: &[Table3Row]) {
    println!("\nTable 3: RMSE of travel time, subtrajectory vs whole matching (SURS, top-k)");
    print_table(
        &["k", "Subtrajectory", "Whole"],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.k.to_string(),
                    format!("{:.0}%", r.subtrajectory_pct),
                    format!("{:.0}%", r.whole_pct),
                ]
            })
            .collect::<Vec<_>>(),
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loocv_basics() {
        let truth: HashMap<TrajId, f64> = [(1, 10.0), (2, 12.0)].into();
        // Perfect sample: predicting 10 from {12} gives error 2; from {10}: 2.
        let mse = loocv_mse(&truth, &truth).unwrap();
        assert!((mse - 4.0).abs() < 1e-9);
        // Singleton truth has no leave-one-out estimate.
        let single: HashMap<TrajId, f64> = [(1, 10.0)].into();
        assert_eq!(loocv_mse(&single, &single), None);
    }

    #[test]
    fn fig4_produces_rows_for_wed_functions() {
        let rows = run_fig4(8, 3, &[0.1], Scale(0.05));
        assert!(!rows.is_empty());
        let funcs: std::collections::HashSet<_> = rows.iter().map(|r| r.func).collect();
        assert!(funcs.contains("Lev"));
        assert!(funcs.contains("SURS"));
        for r in &rows {
            assert!(r.rmse_rel_pct.is_finite() && r.rmse_rel_pct >= 0.0);
        }
    }

    #[test]
    fn table3_subtrajectory_beats_whole() {
        let rows = run_table3(8, 3, &[5], Scale(0.05));
        if let Some(r) = rows.first() {
            assert!(
                r.subtrajectory_pct <= r.whole_pct,
                "whole matching should not beat subtrajectory: {} vs {}",
                r.subtrajectory_pct,
                r.whole_pct
            );
        }
    }
}
