//! End-to-end serving throughput (`repro serve`): the network front-end
//! (`trajsearch-serve`) vs in-process `run_batch` on the same workload.
//!
//! A real loopback TCP server is started on an ephemeral port with 1/2/4…
//! workers; a [`Client`] pipelines a mixed threshold/top-k workload through
//! one connection; every served `Response` is checked byte-identical
//! (matches) against the in-process reference, so the measurement doubles
//! as the serve-smoke correctness gate in CI. The dump (`BENCH_serve.json`)
//! uses the shared envelope; `net_overhead` (served wall / in-process wall
//! at the same worker count) is the cost of the socket + framing + queue
//! layer. As with every dump, `host_cpus` contextualizes flat speedups on
//! small CI runners.

use super::{host_cpus, write_bench_json};
use crate::data::{Dataset, FuncKind, Scale};
use crate::table::{fmt_ms, print_table};
use std::time::Instant;
use trajsearch_core::batch::BatchOptions;
use trajsearch_core::{EngineBuilder, Query};
use trajsearch_serve::{Client, Server, ServerConfig};

/// One measured point: the workload through the server at one worker count,
/// with the same-thread-count in-process run as the baseline.
#[derive(Debug, Clone)]
pub struct ServeRow {
    pub dataset: String,
    pub func: &'static str,
    pub workers: usize,
    pub queries: usize,
    pub inproc_wall_ms: f64,
    pub inproc_qps: f64,
    pub served_wall_ms: f64,
    pub served_qps: f64,
    /// Served wall time over in-process wall time (socket+framing+queue
    /// overhead factor; 1.0 would be a free network layer).
    pub net_overhead: f64,
    pub results: usize,
    /// p99 wall latency (ns) reported by the server's own metrics.
    pub p99_wall_ns: u64,
}

/// Mixed threshold/top-k workload, every query round-tripped through its
/// wire form (the exact bytes a remote client would send).
fn workload(
    d: &Dataset,
    func: FuncKind,
    qlen: usize,
    nqueries: usize,
    tau_ratio: f64,
) -> Vec<Query> {
    let model = d.model(func);
    d.sample_queries(func, qlen, nqueries, 31)
        .into_iter()
        .enumerate()
        .map(|(i, q)| {
            let tau = d.tau_for(&*model, &q, tau_ratio);
            let query = match i % 3 {
                0 | 1 => Query::threshold(q, tau).build(),
                _ => Query::top_k(q, 5, tau, 4.0 * tau).build(),
            }
            .expect("workload queries are valid");
            Query::from_json(&query.to_json()).expect("wire round-trip")
        })
        .collect()
}

/// Runs the workload in-process and through the loopback server at each
/// worker count. Every served response must match the in-process reference.
pub fn run(
    which: &str,
    func: FuncKind,
    workers: &[usize],
    qlen: usize,
    nqueries: usize,
    tau_ratio: f64,
    scale: Scale,
) -> Vec<ServeRow> {
    let d = Dataset::load(which, scale);
    let model = d.model(func);
    let (store, alphabet) = d.store_for(func);
    let engine = EngineBuilder::new(&*model, store, alphabet).build();
    let workload = workload(&d, func, qlen, nqueries, tau_ratio);

    // Warm-up pass; doubles as the correctness reference.
    let reference = engine
        .run_batch(&workload, BatchOptions::with_threads(1))
        .expect("workload admitted");

    let mut rows = Vec::with_capacity(workers.len());
    for &w in workers {
        // In-process baseline at the same parallelism.
        let t0 = Instant::now();
        let inproc = engine
            .run_batch(&workload, BatchOptions::with_threads(w))
            .expect("workload admitted");
        let inproc_wall = t0.elapsed();
        for (i, (got, want)) in inproc
            .responses
            .iter()
            .zip(&reference.responses)
            .enumerate()
        {
            assert_eq!(
                got.matches, want.matches,
                "in-process diverged on query {i}"
            );
        }

        // The same workload through a real socket. The queue is sized to
        // the workload: this experiment measures throughput, not admission
        // control, so a `--queries` above the default capacity must not
        // turn pipelined submissions into overload rejections.
        let server = Server::bind(ServerConfig {
            workers: w,
            queue_capacity: workload.len().max(1024),
            ..ServerConfig::default()
        })
        .expect("bind loopback server");
        let handle = server.handle();
        let (served_wall, p99_wall_ns) = std::thread::scope(|scope| {
            let serving = scope.spawn(|| server.serve(&engine));
            let mut client = Client::connect(handle.local_addr()).expect("connect");
            let t0 = Instant::now();
            let outcomes = client.query_batch(&workload).expect("pipelined batch");
            let served_wall = t0.elapsed();
            for (i, (got, want)) in outcomes.iter().zip(&reference.responses).enumerate() {
                let got = got
                    .response()
                    .unwrap_or_else(|| panic!("served workload rejected query {i}"));
                assert_eq!(got.matches, want.matches, "served diverged on query {i}");
            }
            handle.shutdown();
            let metrics = serving.join().expect("serve thread").expect("serve ok");
            assert_eq!(metrics.completed, workload.len() as u64);
            assert_eq!(metrics.rejected_overload, 0);
            assert_eq!(metrics.timed_out, 0);
            (served_wall, metrics.wall.p99_ns)
        });

        let inproc_ms = inproc_wall.as_secs_f64() * 1e3;
        let served_ms = served_wall.as_secs_f64() * 1e3;
        rows.push(ServeRow {
            dataset: d.name.to_string(),
            func: func.name(),
            workers: w,
            queries: workload.len(),
            inproc_wall_ms: inproc_ms,
            inproc_qps: workload.len() as f64 / inproc_wall.as_secs_f64().max(1e-9),
            served_wall_ms: served_ms,
            served_qps: workload.len() as f64 / served_wall.as_secs_f64().max(1e-9),
            net_overhead: served_ms / inproc_ms.max(1e-9),
            results: inproc.stats.merged.results,
            p99_wall_ns,
        });
    }
    rows
}

pub fn print(rows: &[ServeRow]) {
    println!(
        "\nServing throughput: loopback TCP front-end vs in-process run_batch \
         ({} host cpus)",
        host_cpus()
    );
    print_table(
        &[
            "Dataset",
            "Func",
            "Workers",
            "Queries",
            "Inproc ms",
            "Served ms",
            "Inproc q/s",
            "Served q/s",
            "Overhead",
            "p99 ms",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.dataset.clone(),
                    r.func.to_string(),
                    r.workers.to_string(),
                    r.queries.to_string(),
                    fmt_ms(r.inproc_wall_ms),
                    fmt_ms(r.served_wall_ms),
                    format!("{:.1}", r.inproc_qps),
                    format!("{:.1}", r.served_qps),
                    format!("{:.2}x", r.net_overhead),
                    fmt_ms(r.p99_wall_ns as f64 / 1e6),
                ]
            })
            .collect::<Vec<_>>(),
    );
}

/// Writes the rows in the shared `BENCH_*.json` envelope.
pub fn write_json(rows: &[ServeRow], path: &str) -> std::io::Result<()> {
    let rendered: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "{{\"dataset\": \"{}\", \"func\": \"{}\", \"workers\": {}, \
                 \"queries\": {}, \"inproc_wall_ms\": {:.3}, \"served_wall_ms\": {:.3}, \
                 \"inproc_qps\": {:.3}, \"served_qps\": {:.3}, \"net_overhead\": {:.3}, \
                 \"results\": {}, \"p99_wall_ns\": {}}}",
                r.dataset,
                r.func,
                r.workers,
                r.queries,
                r.inproc_wall_ms,
                r.served_wall_ms,
                r.inproc_qps,
                r.served_qps,
                r.net_overhead,
                r.results,
                r.p99_wall_ns
            )
        })
        .collect();
    write_bench_json(path, "serve", "queries_per_sec", &rendered)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn served_rows_agree_with_in_process() {
        let rows = run("beijing", FuncKind::Lev, &[1, 2], 8, 6, 0.2, Scale(0.01));
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].workers, 1);
        assert!(rows.iter().all(|r| r.queries == 6));
        assert!(rows.iter().all(|r| r.served_qps > 0.0));
        // Identical matches asserted inside run → identical result counts.
        assert_eq!(rows[0].results, rows[1].results);
    }

    #[test]
    fn json_dump_uses_shared_envelope() {
        let rows = run("beijing", FuncKind::Lev, &[1], 8, 3, 0.2, Scale(0.01));
        let path = std::env::temp_dir().join("trajsearch_serve_test.json");
        let path = path.to_str().unwrap();
        write_json(&rows, path).unwrap();
        let text = std::fs::read_to_string(path).unwrap();
        std::fs::remove_file(path).ok();
        assert!(text.contains("\"experiment\": \"serve\""));
        assert!(text.contains("\"host_cpus\""));
        assert!(text.contains("\"net_overhead\""));
        assert_eq!(text.matches('{').count(), text.matches('}').count());
    }
}
