//! Batch-engine throughput: queries/sec at 1/2/4/8 worker threads.
//!
//! Not a paper experiment — the paper measures single-query latency — but
//! the ROADMAP north-star is serving heavy traffic, so this measures what
//! the parallel batch engine (`SearchEngine::run_batch`) actually buys:
//! the same workload at several thread counts, with wall-clock vs summed
//! per-query CPU time, speedup over the 1-thread run, and a machine-readable
//! JSON dump (`BENCH_throughput.json`) for CI trend tracking.
//!
//! Since `wed::models::Memo` moved to a sharded-lock cache, batch runs use
//! the *same memoized models* as the sequential pipeline (`Dataset::model`;
//! the unmemoized `model_sync` split is retired). For NetEDR/NetERP this
//! removes a hub-label query from the innermost DP loop of every worker —
//! on a 1-core container the recorded effect is a lower `cpu_ms` at every
//! thread count rather than a speedup change.
//!
//! Speedup is hardware-bound: on an N-core host the curve flattens at ≈ N
//! (the JSON records `host_cpus` so a 1-core CI runner's flat curve is not
//! mistaken for a regression).

use super::{host_cpus, write_bench_json};
use crate::data::{Dataset, FuncKind, Scale};
use crate::table::{fmt_ms, print_table};
use trajsearch_core::batch::BatchOptions;
use trajsearch_core::{EngineBuilder, Query};

/// One measured point: a full workload at one thread count.
#[derive(Debug, Clone)]
pub struct ThroughputRow {
    pub dataset: String,
    pub func: &'static str,
    pub threads: usize,
    pub queries: usize,
    pub wall_ms: f64,
    pub cpu_ms: f64,
    pub qps: f64,
    /// Queries/sec relative to the 1-thread row of the same sweep.
    pub speedup: f64,
    pub results: usize,
}

/// Runs the same workload through `run_batch` at each thread count.
/// The 1-thread run doubles as the correctness reference: every other run
/// must return identical matches.
pub fn run(
    which: &str,
    func: FuncKind,
    threads: &[usize],
    qlen: usize,
    nqueries: usize,
    tau_ratio: f64,
    scale: Scale,
) -> Vec<ThroughputRow> {
    let d = Dataset::load(which, scale);
    let model = d.model(func);
    let (store, alphabet) = d.store_for(func);
    let engine = EngineBuilder::new(&*model, store, alphabet).build();
    let workload: Vec<Query> = d
        .sample_queries(func, qlen, nqueries, 11)
        .into_iter()
        .map(|q| {
            let tau = d.tau_for(&*model, &q, tau_ratio);
            Query::threshold(q, tau).build().expect("valid workload")
        })
        .collect();

    // Warm-up pass (index pages, allocator, memo cache) excluded from
    // measurement; its outcome is the correctness reference for every
    // thread count.
    let reference = engine
        .run_batch(&workload, BatchOptions::with_threads(1))
        .expect("admitted");

    let mut rows = Vec::with_capacity(threads.len());
    for &t in threads {
        let out = engine
            .run_batch(&workload, BatchOptions::with_threads(t))
            .expect("admitted");
        for (i, (got, want)) in out.responses.iter().zip(&reference.responses).enumerate() {
            assert_eq!(
                got.matches, want.matches,
                "batch at {t} threads diverged from sequential on query {i}"
            );
        }
        rows.push(ThroughputRow {
            dataset: d.name.to_string(),
            func: func.name(),
            threads: out.stats.threads,
            queries: out.stats.queries,
            wall_ms: out.stats.wall_time.as_secs_f64() * 1e3,
            cpu_ms: out.stats.cpu_time.as_secs_f64() * 1e3,
            qps: out.stats.queries_per_sec(),
            speedup: 1.0,
            results: out.stats.merged.results,
        });
    }
    // Normalize speedup against the 1-thread row (first row if none).
    let base = rows
        .iter()
        .find(|r| r.threads == 1)
        .or(rows.first())
        .map(|r| r.qps)
        .unwrap_or(1.0)
        .max(f64::MIN_POSITIVE);
    for r in &mut rows {
        r.speedup = r.qps / base;
    }
    rows
}

pub fn print(rows: &[ThroughputRow]) {
    println!(
        "\nBatch throughput: queries/sec vs worker threads ({} host cpus)",
        host_cpus()
    );
    print_table(
        &[
            "Dataset", "Func", "Threads", "Queries", "Wall ms", "CPU ms", "q/s", "Speedup",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.dataset.clone(),
                    r.func.to_string(),
                    r.threads.to_string(),
                    r.queries.to_string(),
                    fmt_ms(r.wall_ms),
                    fmt_ms(r.cpu_ms),
                    format!("{:.1}", r.qps),
                    format!("{:.2}x", r.speedup),
                ]
            })
            .collect::<Vec<_>>(),
    );
}

/// Machine-checks the scaling claim: panics when the best multi-threaded
/// row's speedup falls below `floor`. Skipped (with a notice) on hosts with
/// fewer than 4 cpus, where the parallel path cannot express a speedup —
/// there the correctness self-check inside [`run`] is the only meaningful
/// gate. Wired to `repro throughput --min-speedup X` for CI.
pub fn enforce_speedup_floor(rows: &[ThroughputRow], floor: f64) {
    let cpus = host_cpus();
    if cpus < 4 {
        eprintln!("speedup floor {floor}x not enforced: host has only {cpus} cpu(s)");
        return;
    }
    let best = rows
        .iter()
        .filter(|r| r.threads > 1)
        .map(|r| r.speedup)
        .fold(f64::NEG_INFINITY, f64::max);
    assert!(
        best >= floor,
        "parallel batch engine scaling regression: best multi-thread speedup \
         {best:.2}x is below the {floor:.2}x floor on a {cpus}-cpu host"
    );
    eprintln!("speedup floor {floor}x satisfied: best multi-thread speedup {best:.2}x");
}

/// Writes the rows as a machine-readable JSON document (shared envelope:
/// the crate's private `write_bench_json`). Every value is a number
/// or a plain string, so any JSON parser can consume it.
pub fn write_json(rows: &[ThroughputRow], path: &str) -> std::io::Result<()> {
    let rendered: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "{{\"dataset\": \"{}\", \"func\": \"{}\", \"threads\": {}, \
                 \"queries\": {}, \"wall_ms\": {:.3}, \"cpu_ms\": {:.3}, \
                 \"qps\": {:.3}, \"speedup\": {:.3}, \"results\": {}}}",
                r.dataset,
                r.func,
                r.threads,
                r.queries,
                r.wall_ms,
                r.cpu_ms,
                r.qps,
                r.speedup,
                r.results
            )
        })
        .collect();
    write_bench_json(path, "throughput", "queries_per_sec", &rendered)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Regression for the sharded-lock `Memo` (ROADMAP "memo under
    /// parallelism"): a memoized network model shared across batch workers
    /// must return exactly the results of the unmemoized model — and of a
    /// sequential run — at every thread count. Before `Memo` became `Sync`
    /// this path was forced through the unmemoized `model_sync` fallback.
    #[test]
    fn memoized_net_model_batch_results_unchanged() {
        use trajsearch_core::{EngineBuilder, Query};
        use wed::models::{Memo, NetEdr};

        let d = Dataset::test_tiny();
        let eps = d.median_edge_length();
        let memo = Memo::new(NetEdr::new(d.net.clone(), d.hubs(), eps));
        let raw = NetEdr::new(d.net.clone(), d.hubs(), eps);
        let alphabet = d.net.num_vertices();

        let workload: Vec<Query> = d
            .sample_queries(FuncKind::NetEdr, 8, 6, 21)
            .into_iter()
            .map(|q| {
                let tau = d.tau_for(&raw, &q, 0.2);
                Query::threshold(q, tau).build().expect("valid")
            })
            .collect();

        let memo_engine = EngineBuilder::new(&memo, &d.store, alphabet).build();
        let raw_engine = EngineBuilder::new(&raw, &d.store, alphabet).build();
        let want = raw_engine
            .run_batch(&workload, BatchOptions::with_threads(1))
            .expect("admitted");
        for threads in [1, 2, 4] {
            let got = memo_engine
                .run_batch(&workload, BatchOptions::with_threads(threads))
                .expect("admitted");
            for (i, (g, w)) in got.responses.iter().zip(&want.responses).enumerate() {
                assert_eq!(
                    g.matches, w.matches,
                    "memoized batch diverged on query {i} at {threads} threads"
                );
            }
        }
    }

    #[test]
    fn throughput_rows_cover_thread_counts_and_agree() {
        let rows = run("beijing", FuncKind::Lev, &[1, 2], 8, 3, 0.2, Scale(0.01));
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].threads, 1);
        assert!(rows.iter().all(|r| r.qps > 0.0));
        assert!(rows.iter().all(|r| r.queries == 3));
        // Same workload, identical (asserted inside run) → same result count.
        assert_eq!(rows[0].results, rows[1].results);
        assert!((rows[0].speedup - 1.0).abs() < 1e-9);
    }

    #[test]
    fn json_dump_is_parsable_shape() {
        let rows = run("beijing", FuncKind::Lev, &[1], 8, 2, 0.2, Scale(0.01));
        let path = std::env::temp_dir().join("trajsearch_throughput_test.json");
        let path = path.to_str().unwrap();
        write_json(&rows, path).unwrap();
        let text = std::fs::read_to_string(path).unwrap();
        std::fs::remove_file(path).ok();
        assert!(text.starts_with('{') && text.trim_end().ends_with('}'));
        assert!(text.contains("\"experiment\": \"throughput\""));
        assert!(text.contains("\"threads\": 1"));
        assert!(text.contains("\"host_cpus\""));
        // Balanced braces/brackets — cheap well-formedness proxy.
        assert_eq!(text.matches('{').count(), text.matches('}').count(),);
        assert_eq!(text.matches('[').count(), text.matches(']').count());
    }
}
