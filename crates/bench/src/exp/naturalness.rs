//! Figure 5: alternative-route suggestion quality (§6.2.2).
//!
//! A driver plans to travel from `u` to `v` along `Q`; alternative routes
//! are subtrajectories from `u` to `v` similar to `Q`. Route quality is the
//! *naturalness* of ref.\[66\] (Zheng & Zhou): the fraction of hops that get strictly closer (in
//! network distance) to the destination than ever before. Detour-heavy
//! suggestions score low.

use crate::data::{Dataset, FuncKind, Scale};
use crate::table::print_table;
use std::collections::HashMap;
use traj::TrajId;
use trajsearch_core::{EngineBuilder, Query};
use wed::Sym;

#[derive(Debug, Clone)]
pub struct NaturalnessRow {
    pub func: &'static str,
    pub qlen: usize,
    pub tau_ratio: f64,
    /// Average number of suggested routes per query.
    pub cardinality: f64,
    /// Average naturalness of suggested routes.
    pub naturalness: f64,
}

/// Naturalness of a route ending at `v`: `|C| / (|P|-1)` where `C` is the
/// set of hops whose endpoint is strictly closer to `v` than any earlier
/// vertex (road-network distance via hub labels).
pub fn naturalness(d: &Dataset, route: &[Sym], v: Sym) -> f64 {
    if route.len() < 2 {
        return 1.0;
    }
    let hubs = d.hubs();
    let mut closest = f64::INFINITY;
    let mut closer_hops = 0usize;
    for (i, &p) in route.iter().enumerate() {
        let dist = hubs.query(p, v);
        if i > 0 && dist < closest {
            closer_hops += 1;
        }
        closest = closest.min(dist);
    }
    closer_hops as f64 / (route.len() - 1) as f64
}

pub fn run(
    qlens: &[usize],
    tau_ratios: &[f64],
    nqueries: usize,
    scale: Scale,
) -> Vec<NaturalnessRow> {
    let d = Dataset::load("beijing", scale);
    let mut rows = Vec::new();

    for &func in &FuncKind::ALL {
        let model = d.model(func);
        let (store, alphabet) = d.store_for(func);
        let engine = EngineBuilder::new(&*model, store, alphabet).build();
        for &qlen in qlens {
            // Vertex-length alignment: edge queries have qlen-1 symbols so
            // the route covers the same number of vertices.
            let sym_len = if func.uses_edges() { qlen - 1 } else { qlen };
            let queries = d.sample_queries(func, sym_len, nqueries, 160 + qlen as u64);
            for &ratio in tau_ratios {
                let (mut card_sum, mut nat_sum, mut nat_cnt) = (0.0, 0.0, 0usize);
                for q in &queries {
                    // Origin/destination in vertex terms.
                    let (u, v) = if func.uses_edges() {
                        (d.net.edge(q[0]).from, d.net.edge(*q.last().unwrap()).to)
                    } else {
                        (q[0], *q.last().unwrap())
                    };
                    let tau = d.tau_for(&*model, q, ratio.max(1e-9));
                    let out = engine
                        .run(&Query::threshold(q.clone(), tau).build().expect("valid"))
                        .expect("run");
                    // Routes: per-trajectory best match that starts at u and
                    // ends at v.
                    let mut routes: HashMap<TrajId, (f64, Vec<Sym>)> = HashMap::new();
                    for m in &out.matches {
                        let t = store.get(m.id);
                        let span = &t.path()[m.start..=m.end];
                        let (rs, rt) = if func.uses_edges() {
                            (
                                d.net.edge(span[0]).from,
                                d.net.edge(*span.last().unwrap()).to,
                            )
                        } else {
                            (span[0], *span.last().unwrap())
                        };
                        if rs != u || rt != v {
                            continue;
                        }
                        // Vertex route for the naturalness metric.
                        let route: Vec<Sym> = if func.uses_edges() {
                            let mut r: Vec<Sym> =
                                span.iter().map(|&e| d.net.edge(e).from).collect();
                            r.push(v);
                            r
                        } else {
                            span.to_vec()
                        };
                        let e = routes.entry(m.id).or_insert((f64::INFINITY, Vec::new()));
                        if m.dist < e.0 {
                            *e = (m.dist, route);
                        }
                    }
                    card_sum += routes.len() as f64;
                    for (_, (_, route)) in routes {
                        nat_sum += naturalness(&d, &route, v);
                        nat_cnt += 1;
                    }
                }
                rows.push(NaturalnessRow {
                    func: func.name(),
                    qlen,
                    tau_ratio: ratio,
                    cardinality: card_sum / queries.len() as f64,
                    naturalness: if nat_cnt == 0 {
                        f64::NAN
                    } else {
                        nat_sum / nat_cnt as f64
                    },
                });
            }
        }
    }
    rows
}

/// Figure 5 also plots the non-WED comparators. They cannot go through the
/// engine, so candidate u→v spans are enumerated from the inverted index
/// (trajectories containing both endpoints) and scored directly, with the
/// paper's normalizations: DTW ≤ r·Σd(Qᵢ,Qᵢ₊₁)², LCSS ≥ (1−r)·|Q|,
/// LORS ≥ (1−r)·w(Q), LCRS ≥ 1−r.
pub fn run_nonwed(
    qlens: &[usize],
    tau_ratios: &[f64],
    nqueries: usize,
    scale: Scale,
) -> Vec<NaturalnessRow> {
    use rnet::Point;
    use trajsearch_core::InvertedIndex;
    use wed::nonwed::{dtw, lcrs, lcss, lors};

    let d = Dataset::load("beijing", scale);
    let index = InvertedIndex::build(&d.store, d.net.num_vertices());
    let funcs: [&'static str; 4] = ["DTW", "LCSS", "LORS", "LCRS"];
    let mut rows = Vec::new();

    for func in funcs {
        for &qlen in qlens {
            let queries = d.sample_queries(FuncKind::Lev, qlen, nqueries, 160 + qlen as u64);
            for &ratio in tau_ratios {
                let (mut card_sum, mut nat_sum, mut nat_cnt) = (0.0, 0.0, 0usize);
                for q in &queries {
                    let (u, v) = (q[0], *q.last().unwrap());
                    let q_pts: Vec<Point> = q.iter().map(|&x| d.net.coord(x)).collect();
                    let q_edges = d.net.path_to_edges(q).expect("query is a path");
                    let wq: f64 = q_edges.iter().map(|&e| d.net.edge(e).length).sum();
                    let seg: f64 = q_pts.windows(2).map(|w| w[0].dist2(&w[1])).sum();

                    // Trajectories containing both endpoints.
                    let with_u: std::collections::HashSet<u32> =
                        index.postings(u).iter().map(|&(id, _)| id).collect();
                    let mut accepted = 0usize;
                    for &(id, _) in index.postings(v) {
                        if !with_u.contains(&id) {
                            continue;
                        }
                        let t = d.store.get(id);
                        let p = t.path();
                        // Best u→v span within a length budget.
                        let mut best: Option<(f64, usize, usize)> = None;
                        for (i, &pv) in p.iter().enumerate() {
                            if pv != u {
                                continue;
                            }
                            for (joff, &pw) in p[i + 1..].iter().enumerate() {
                                let j = i + 1 + joff;
                                if pw != v || j - i + 1 > q.len() * 5 / 2 {
                                    continue;
                                }
                                let span = &p[i..=j];
                                let score = match func {
                                    "DTW" => {
                                        let pts: Vec<Point> =
                                            span.iter().map(|&x| d.net.coord(x)).collect();
                                        dtw(&pts, &q_pts) / seg.max(1e-9)
                                    }
                                    "LCSS" => {
                                        let pts: Vec<Point> =
                                            span.iter().map(|&x| d.net.coord(x)).collect();
                                        1.0 - lcss(&pts, &q_pts, 100.0) as f64 / q.len() as f64
                                    }
                                    "LORS" => {
                                        let se = d.net.path_to_edges(span).expect("span is a path");
                                        1.0 - lors(&se, &q_edges, |e| d.net.edge(e).length)
                                            / wq.max(1e-9)
                                    }
                                    _ => {
                                        let se = d.net.path_to_edges(span).expect("span is a path");
                                        1.0 - lcrs(&se, &q_edges, |e| d.net.edge(e).length)
                                    }
                                };
                                if score <= ratio && best.is_none_or(|(bs, _, _)| score < bs) {
                                    best = Some((score, i, j));
                                }
                            }
                        }
                        if let Some((_, i, j)) = best {
                            accepted += 1;
                            nat_sum += naturalness(&d, &p[i..=j], v);
                            nat_cnt += 1;
                        }
                    }
                    card_sum += accepted as f64;
                }
                rows.push(NaturalnessRow {
                    func,
                    qlen,
                    tau_ratio: ratio,
                    cardinality: card_sum / queries.len() as f64,
                    naturalness: if nat_cnt == 0 {
                        f64::NAN
                    } else {
                        nat_sum / nat_cnt as f64
                    },
                });
            }
        }
    }
    rows
}

pub fn print(rows: &[NaturalnessRow]) {
    println!("\nFigure 5: naturalness of suggested alternative routes (Beijing)");
    print_table(
        &[
            "Func",
            "|Q|",
            "tau-ratio",
            "avg cardinality",
            "avg naturalness",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.func.to_string(),
                    r.qlen.to_string(),
                    format!("{}", r.tau_ratio),
                    format!("{:.2}", r.cardinality),
                    if r.naturalness.is_nan() {
                        "-".into()
                    } else {
                        format!("{:.4}", r.naturalness)
                    },
                ]
            })
            .collect::<Vec<_>>(),
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn naturalness_of_direct_path_is_high() {
        let d = Dataset::test_tiny();
        // Take an actual trajectory prefix: a purposeful trip should have
        // mostly-decreasing distance to its destination.
        let t = d.store.get(0);
        let route = &t.path()[..t.len().min(8)];
        let v = *route.last().unwrap();
        let n = naturalness(&d, route, v);
        assert!((0.0..=1.0).contains(&n));
        // Last hop always reaches v (distance 0 < everything).
        assert!(n > 0.0);
    }

    #[test]
    fn naturalness_penalizes_backtracking() {
        let d = Dataset::test_tiny();
        let t = d.store.get(0);
        let fwd: Vec<Sym> = t.path()[..6].to_vec();
        let v = *fwd.last().unwrap();
        // A route that goes out and comes back before heading to v.
        let mut detour: Vec<Sym> = fwd[..5].to_vec();
        let mut back: Vec<Sym> = fwd[1..5].iter().rev().cloned().collect();
        detour.append(&mut back);
        detour.extend_from_slice(&fwd[1..]);
        let n_direct = naturalness(&d, &fwd, v);
        let n_detour = naturalness(&d, &detour, v);
        assert!(
            n_detour < n_direct,
            "detour {n_detour} should score below direct {n_direct}"
        );
    }

    #[test]
    fn run_produces_rows_for_every_function() {
        let rows = run(&[6], &[0.2], 3, Scale(0.02));
        let funcs: std::collections::HashSet<_> = rows.iter().map(|r| r.func).collect();
        assert_eq!(funcs.len(), 6);
        for r in &rows {
            assert!(r.cardinality >= 0.0);
        }
    }

    #[test]
    fn nonwed_rows_cover_all_comparators() {
        let rows = run_nonwed(&[6], &[0.3], 3, Scale(0.02));
        let funcs: std::collections::HashSet<_> = rows.iter().map(|r| r.func).collect();
        assert_eq!(funcs, ["DTW", "LCSS", "LORS", "LCRS"].into_iter().collect());
        for r in &rows {
            assert!(r.cardinality >= 0.0);
            if !r.naturalness.is_nan() {
                assert!((0.0..=1.0).contains(&r.naturalness));
            }
        }
    }
}
