//! Mixed-workload experiment for the unified `Query`/`Response` API
//! (`repro api`).
//!
//! Exercises what the API redesign made possible: **one** `run_batch` call
//! answering a workload that mixes threshold queries, top-k queries and
//! temporal queries (TF pre-filter + §4.3 by-departure postings) — shapes
//! the retired `(Vec<Sym>, f64)` tuple workload could not express together.
//! Every query is additionally round-tripped through its JSON wire format
//! before execution, so the measured path is exactly what a serving
//! front-end would drive. The 1-thread run is the correctness reference for
//! every other thread count, and the dump (`BENCH_api.json`) uses the
//! shared `BENCH_*.json` envelope for CI trend tracking.

use super::{host_cpus, write_bench_json};
use crate::data::{Dataset, FuncKind, Scale};
use crate::table::{fmt_ms, print_table};
use trajsearch_core::batch::BatchOptions;
use trajsearch_core::{EngineBuilder, Query, TemporalConstraint, TimeInterval};

/// One measured point: the mixed workload at one thread count.
#[derive(Debug, Clone)]
pub struct ApiRow {
    pub dataset: String,
    pub func: &'static str,
    pub threads: usize,
    pub queries: usize,
    pub threshold_queries: usize,
    pub topk_queries: usize,
    pub temporal_queries: usize,
    pub wall_ms: f64,
    pub cpu_ms: f64,
    pub qps: f64,
    /// Queries/sec relative to the 1-thread row of the same sweep.
    pub speedup: f64,
    pub results: usize,
    /// Total wire size of the workload (`Σ |query.to_json()|`).
    pub wire_bytes: usize,
}

/// Builds the mixed workload and runs it through `run_batch` at each thread
/// count. Every query goes over the wire (`to_json` → `from_json`) first;
/// the 1-thread outcome is the reference every other run must equal.
pub fn run(
    which: &str,
    func: FuncKind,
    threads: &[usize],
    qlen: usize,
    nqueries: usize,
    tau_ratio: f64,
    scale: Scale,
) -> Vec<ApiRow> {
    let d = Dataset::load(which, scale);
    let model = d.model(func);
    let (store, alphabet) = d.store_for(func);
    let engine = EngineBuilder::new(&*model, store, alphabet)
        .temporal_postings(true)
        .build();

    // Window covering the first half of the store's time span, for the
    // temporal third of the workload.
    let (mut tmin, mut tmax) = (f64::INFINITY, f64::NEG_INFINITY);
    for (_, t) in store.iter() {
        tmin = tmin.min(t.departure());
        tmax = tmax.max(t.arrival());
    }
    let window = TemporalConstraint::overlaps(TimeInterval::new(tmin, tmin + 0.5 * (tmax - tmin)));

    let (mut n_threshold, mut n_topk, mut n_temporal) = (0usize, 0usize, 0usize);
    let mut wire_bytes = 0usize;
    let workload: Vec<Query> = d
        .sample_queries(func, qlen, nqueries, 23)
        .into_iter()
        .enumerate()
        .map(|(i, q)| {
            let tau = d.tau_for(&*model, &q, tau_ratio);
            let query = match i % 3 {
                0 => {
                    n_threshold += 1;
                    Query::threshold(q, tau).build()
                }
                1 => {
                    n_topk += 1;
                    Query::top_k(q, 5, tau, 4.0 * tau).build()
                }
                _ => {
                    n_temporal += 1;
                    Query::threshold(q, tau)
                        .temporal(window)
                        .temporal_filter(true)
                        .temporal_postings(true)
                        .build()
                }
            }
            .expect("workload queries are valid");
            // The serving path: queries arrive as JSON.
            let wire = query.to_json();
            wire_bytes += wire.len();
            let decoded = Query::from_json(&wire).expect("wire round-trip");
            assert_eq!(decoded, query, "query {i} mangled by the wire format");
            decoded
        })
        .collect();

    // Warm-up + correctness reference.
    let reference = engine
        .run_batch(&workload, BatchOptions::with_threads(1))
        .expect("workload admitted");

    let mut rows = Vec::with_capacity(threads.len());
    for &t in threads {
        let out = engine
            .run_batch(&workload, BatchOptions::with_threads(t))
            .expect("workload admitted");
        for (i, (got, want)) in out.responses.iter().zip(&reference.responses).enumerate() {
            assert_eq!(
                got.matches, want.matches,
                "mixed batch at {t} threads diverged from sequential on query {i}"
            );
        }
        rows.push(ApiRow {
            dataset: d.name.to_string(),
            func: func.name(),
            threads: out.stats.threads,
            queries: out.stats.queries,
            threshold_queries: n_threshold,
            topk_queries: n_topk,
            temporal_queries: n_temporal,
            wall_ms: out.stats.wall_time.as_secs_f64() * 1e3,
            cpu_ms: out.stats.cpu_time.as_secs_f64() * 1e3,
            qps: out.stats.queries_per_sec(),
            speedup: 1.0,
            results: out.stats.merged.results,
            wire_bytes,
        });
    }
    let base = rows
        .iter()
        .find(|r| r.threads == 1)
        .or(rows.first())
        .map(|r| r.qps)
        .unwrap_or(1.0)
        .max(f64::MIN_POSITIVE);
    for r in &mut rows {
        r.speedup = r.qps / base;
    }
    rows
}

pub fn print(rows: &[ApiRow]) {
    if let Some(r) = rows.first() {
        println!(
            "\nUnified-API mixed workload: {} threshold + {} top-k + {} temporal \
             queries in one run_batch ({} wire bytes, {} host cpus)",
            r.threshold_queries,
            r.topk_queries,
            r.temporal_queries,
            r.wire_bytes,
            host_cpus()
        );
    }
    print_table(
        &[
            "Dataset", "Func", "Threads", "Queries", "Wall ms", "CPU ms", "q/s", "Speedup",
            "Results",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.dataset.clone(),
                    r.func.to_string(),
                    r.threads.to_string(),
                    r.queries.to_string(),
                    fmt_ms(r.wall_ms),
                    fmt_ms(r.cpu_ms),
                    format!("{:.1}", r.qps),
                    format!("{:.2}x", r.speedup),
                    r.results.to_string(),
                ]
            })
            .collect::<Vec<_>>(),
    );
}

/// Writes the rows in the shared `BENCH_*.json` envelope (the crate's
/// private `write_bench_json`).
pub fn write_json(rows: &[ApiRow], path: &str) -> std::io::Result<()> {
    let rendered: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "{{\"dataset\": \"{}\", \"func\": \"{}\", \"threads\": {}, \
                 \"queries\": {}, \"threshold_queries\": {}, \"topk_queries\": {}, \
                 \"temporal_queries\": {}, \"wall_ms\": {:.3}, \"cpu_ms\": {:.3}, \
                 \"qps\": {:.3}, \"speedup\": {:.3}, \"results\": {}, \"wire_bytes\": {}}}",
                r.dataset,
                r.func,
                r.threads,
                r.queries,
                r.threshold_queries,
                r.topk_queries,
                r.temporal_queries,
                r.wall_ms,
                r.cpu_ms,
                r.qps,
                r.speedup,
                r.results,
                r.wire_bytes
            )
        })
        .collect();
    write_bench_json(path, "api", "queries_per_sec", &rendered)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mixed_workload_rows_are_coherent() {
        let rows = run("beijing", FuncKind::Lev, &[1, 2], 8, 6, 0.2, Scale(0.01));
        assert_eq!(rows.len(), 2);
        let r = &rows[0];
        assert_eq!(r.threads, 1);
        assert_eq!(r.queries, 6);
        assert_eq!(r.threshold_queries + r.topk_queries + r.temporal_queries, 6);
        assert!(
            r.topk_queries > 0 && r.temporal_queries > 0,
            "workload must mix"
        );
        assert!(r.wire_bytes > 0);
        assert!((r.speedup - 1.0).abs() < 1e-9);
        // Same workload at both thread counts → same result count.
        assert_eq!(rows[0].results, rows[1].results);
    }

    #[test]
    fn json_dump_uses_shared_envelope() {
        let rows = run("beijing", FuncKind::Lev, &[1], 8, 3, 0.2, Scale(0.01));
        let path = std::env::temp_dir().join("trajsearch_api_test.json");
        let path = path.to_str().unwrap();
        write_json(&rows, path).unwrap();
        let text = std::fs::read_to_string(path).unwrap();
        std::fs::remove_file(path).ok();
        assert!(text.contains("\"experiment\": \"api\""));
        assert!(text.contains("\"host_cpus\""));
        assert!(text.contains("\"topk_queries\""));
        assert_eq!(text.matches('{').count(), text.matches('}').count());
    }
}
