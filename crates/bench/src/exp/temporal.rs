//! Figure 12: temporal constraints — TF (candidate pre-filtering) vs no-TF
//! (post-processing), varying temporal selectivity.

use crate::data::{Dataset, FuncKind, Scale};
use crate::methods::MethodSet;
use crate::table::{fmt_ms, print_table};
use std::time::Instant;
use trajsearch_core::{Query, TemporalConstraint, TimeInterval, VerifyMode};
use wed::Sym;

#[derive(Debug, Clone)]
pub struct TemporalRow {
    pub dataset: String,
    pub selectivity: f64,
    pub tf_ms: f64,
    pub no_tf_ms: f64,
    pub results: usize,
}

pub fn run(
    datasets: &[&str],
    selectivities: &[f64],
    qlen: usize,
    nq: usize,
    scale: Scale,
) -> Vec<TemporalRow> {
    let mut rows = Vec::new();
    for which in datasets {
        let d = Dataset::load(which, scale);
        let func = FuncKind::Edr;
        let model = d.model(func);
        let (store, alphabet) = d.store_for(func);
        let set = MethodSet::new(&*model, store, alphabet);

        // Dataset time range.
        let (mut tmin, mut tmax) = (f64::INFINITY, f64::NEG_INFINITY);
        for (_, t) in store.iter() {
            tmin = tmin.min(t.departure());
            tmax = tmax.max(t.arrival());
        }

        let queries: Vec<(Vec<Sym>, f64)> = d
            .sample_queries(func, qlen, nq, 140)
            .into_iter()
            .map(|q| {
                let tau = d.tau_for(&*model, &q, 0.1);
                (q, tau)
            })
            .collect();

        for &ts in selectivities {
            let interval = TimeInterval::new(tmin, tmin + ts * (tmax - tmin));
            let constraint = TemporalConstraint::overlaps(interval);
            let run_mode = |tf: bool| {
                let t0 = Instant::now();
                let mut results = 0usize;
                for (q, tau) in &queries {
                    let query = Query::threshold(q.clone(), *tau)
                        .verify(VerifyMode::Trie)
                        .temporal(constraint)
                        .temporal_filter(tf)
                        .build()
                        .expect("valid");
                    let out = set.engine().run(&query).expect("run");
                    results += out.matches.len();
                }
                (
                    t0.elapsed().as_secs_f64() * 1e3 / queries.len() as f64,
                    results,
                )
            };
            let (tf_ms, tf_results) = run_mode(true);
            let (no_tf_ms, no_tf_results) = run_mode(false);
            assert_eq!(tf_results, no_tf_results, "TF must not change results");
            rows.push(TemporalRow {
                dataset: d.name.to_string(),
                selectivity: ts,
                tf_ms,
                no_tf_ms,
                results: tf_results,
            });
        }
    }
    rows
}

pub fn print(rows: &[TemporalRow]) {
    println!("\nFigure 12: temporal filtering (TF) vs postprocessing (no-TF), EDR, r=0.1");
    print_table(
        &["Dataset", "TS (%)", "TF ms/q", "no-TF ms/q", "#results"],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.dataset.clone(),
                    format!("{:.0}", r.selectivity * 100.0),
                    fmt_ms(r.tf_ms),
                    fmt_ms(r.no_tf_ms),
                    r.results.to_string(),
                ]
            })
            .collect::<Vec<_>>(),
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tf_and_no_tf_agree_and_tf_is_not_slower_at_low_selectivity() {
        let rows = run(&["beijing"], &[0.02, 0.5], 8, 3, Scale(0.01));
        assert_eq!(rows.len(), 2);
        // At very low selectivity TF prunes almost everything; it should not
        // be substantially slower than no-TF (usually much faster).
        let low = &rows[0];
        assert!(
            low.tf_ms <= low.no_tf_ms * 1.5 + 0.5,
            "TF {} vs no-TF {}",
            low.tf_ms,
            low.no_tf_ms
        );
    }
}
