//! Mixed-metric workload through the metric-pluggable verifier (`repro
//! metrics`).
//!
//! Exercises what the `Verifier` refactor made possible: **one**
//! `run_batch` call answering the same patterns under WED, DTW, LCSS(ε)
//! and discrete Fréchet at once — per-query metric dispatch, no per-metric
//! engine. Each metric is also run as its own batch, which gives the
//! per-metric timing rows *and* the correctness reference the mixed batch
//! must match response-for-response. `verify_cost` (the metric-neutral
//! work counter) and the fallback-scan count are recorded per metric, so
//! the dump shows where each metric's candidate front half is MinCand
//! (DTW), single-symbol (Fréchet) or an exact scan (LCSS). The dump
//! (`BENCH_metrics.json`) uses the shared `BENCH_*.json` envelope for CI
//! trend tracking.

use super::{host_cpus, write_bench_json};
use crate::data::{Dataset, FuncKind, Scale};
use crate::table::{fmt_ms, print_table};
use trajsearch_core::batch::BatchOptions;
use trajsearch_core::{EngineBuilder, Metric, Query};

/// One measured point: one metric's slice of the workload (plus a final
/// `mixed` row for the all-metrics batch).
#[derive(Debug, Clone)]
pub struct MetricsRow {
    pub dataset: String,
    pub func: &'static str,
    /// `"wed"`, `"dtw"`, `"lcss"`, `"frechet"` — or `"mixed"` for the
    /// combined batch.
    pub metric: &'static str,
    pub threads: usize,
    pub queries: usize,
    pub wall_ms: f64,
    pub cpu_ms: f64,
    pub qps: f64,
    pub results: usize,
    /// Metric-neutral verification work (DP columns/rows evaluated),
    /// summed over the slice's queries.
    pub verify_cost: u64,
    /// Queries answered by the exact fallback scan (always all of them
    /// for LCSS, whose ε-matching voids the filter bound).
    pub fallbacks: usize,
}

const METRICS: [(&str, Metric); 4] = [
    ("wed", Metric::Wed),
    ("dtw", Metric::Dtw),
    ("lcss", Metric::Lcss { eps: 0.0 }),
    ("frechet", Metric::Frechet),
];

/// Runs the same patterns under every metric — one batch per metric for
/// the timing rows, then one mixed batch whose responses must equal the
/// per-metric ones match-for-match.
pub fn run(
    which: &str,
    func: FuncKind,
    threads: usize,
    qlen: usize,
    nqueries: usize,
    tau_ratio: f64,
    scale: Scale,
) -> Vec<MetricsRow> {
    let d = Dataset::load(which, scale);
    let model = d.model(func);
    let (store, alphabet) = d.store_for(func);
    let engine = EngineBuilder::new(&*model, store, alphabet).build();

    let patterns = d.sample_queries(func, qlen, nqueries, 31);
    let per_metric: Vec<(&'static str, Vec<Query>)> = METRICS
        .iter()
        .map(|&(name, metric)| {
            let queries = patterns
                .iter()
                .map(|q| {
                    let tau = d.tau_for(&*model, q, tau_ratio);
                    // Bottleneck distances do not add over the pattern: for
                    // Fréchet, any τ at or above one substitution cost
                    // matches every window of every trajectory. Hand it the
                    // per-step share of the same budget instead — which
                    // also keeps its single-symbol filter engaged.
                    let tau = match metric {
                        Metric::Frechet => tau / q.len() as f64,
                        _ => tau,
                    };
                    Query::threshold(q.clone(), tau)
                        .metric(metric)
                        .build()
                        .expect("workload queries are valid")
                })
                .collect();
            (name, queries)
        })
        .collect();

    let mut rows = Vec::with_capacity(METRICS.len() + 1);
    let mut reference = Vec::new();
    for (name, queries) in &per_metric {
        let out = engine
            .run_batch(queries, BatchOptions::with_threads(threads))
            .expect("workload admitted");
        rows.push(MetricsRow {
            dataset: d.name.to_string(),
            func: func.name(),
            metric: name,
            threads: out.stats.threads,
            queries: out.stats.queries,
            wall_ms: out.stats.wall_time.as_secs_f64() * 1e3,
            cpu_ms: out.stats.cpu_time.as_secs_f64() * 1e3,
            qps: out.stats.queries_per_sec(),
            results: out.stats.merged.results,
            verify_cost: out.responses.iter().map(|r| r.stats.verify_cost).sum(),
            fallbacks: out.responses.iter().filter(|r| r.stats.fallback).count(),
        });
        reference.extend(out.responses);
    }

    // The headline capability: all four metrics through one run_batch,
    // response-identical to the per-metric batches.
    let mixed: Vec<Query> = per_metric
        .iter()
        .flat_map(|(_, queries)| queries.iter().cloned())
        .collect();
    let out = engine
        .run_batch(&mixed, BatchOptions::with_threads(threads))
        .expect("mixed workload admitted");
    for (i, (got, want)) in out.responses.iter().zip(&reference).enumerate() {
        assert_eq!(
            got.matches, want.matches,
            "mixed-metric batch diverged from its per-metric batch on query {i}"
        );
    }
    rows.push(MetricsRow {
        dataset: d.name.to_string(),
        func: func.name(),
        metric: "mixed",
        threads: out.stats.threads,
        queries: out.stats.queries,
        wall_ms: out.stats.wall_time.as_secs_f64() * 1e3,
        cpu_ms: out.stats.cpu_time.as_secs_f64() * 1e3,
        qps: out.stats.queries_per_sec(),
        results: out.stats.merged.results,
        verify_cost: out.stats.merged.verify_cost,
        fallbacks: out.responses.iter().filter(|r| r.stats.fallback).count(),
    });
    rows
}

pub fn print(rows: &[MetricsRow]) {
    if let Some(r) = rows.first() {
        println!(
            "\nMixed-metric workload: {} patterns per metric through one engine \
             ({} threads, {} host cpus); the `mixed` row runs all metrics in one run_batch",
            r.queries,
            r.threads,
            host_cpus()
        );
    }
    print_table(
        &[
            "Dataset",
            "Func",
            "Metric",
            "Queries",
            "Wall ms",
            "CPU ms",
            "q/s",
            "Results",
            "VerifyCost",
            "Fallbacks",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.dataset.clone(),
                    r.func.to_string(),
                    r.metric.to_string(),
                    r.queries.to_string(),
                    fmt_ms(r.wall_ms),
                    fmt_ms(r.cpu_ms),
                    format!("{:.1}", r.qps),
                    r.results.to_string(),
                    r.verify_cost.to_string(),
                    r.fallbacks.to_string(),
                ]
            })
            .collect::<Vec<_>>(),
    );
}

/// Writes the rows in the shared `BENCH_*.json` envelope (the crate's
/// private `write_bench_json`).
pub fn write_json(rows: &[MetricsRow], path: &str) -> std::io::Result<()> {
    let rendered: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "{{\"dataset\": \"{}\", \"func\": \"{}\", \"metric\": \"{}\", \
                 \"threads\": {}, \"queries\": {}, \"wall_ms\": {:.3}, \"cpu_ms\": {:.3}, \
                 \"qps\": {:.3}, \"results\": {}, \"verify_cost\": {}, \"fallbacks\": {}}}",
                r.dataset,
                r.func,
                r.metric,
                r.threads,
                r.queries,
                r.wall_ms,
                r.cpu_ms,
                r.qps,
                r.results,
                r.verify_cost,
                r.fallbacks
            )
        })
        .collect();
    write_bench_json(path, "metrics", "queries_per_sec", &rendered)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metric_rows_are_coherent() {
        let rows = run("beijing", FuncKind::Lev, 2, 8, 4, 0.2, Scale(0.01));
        assert_eq!(rows.len(), METRICS.len() + 1);
        for (row, (name, _)) in rows.iter().zip(METRICS.iter()) {
            assert_eq!(row.metric, *name);
            assert_eq!(row.queries, 4);
        }
        let mixed = rows.last().unwrap();
        assert_eq!(mixed.metric, "mixed");
        assert_eq!(mixed.queries, 4 * METRICS.len());
        // The mixed batch does the same work as the per-metric batches.
        let split: usize = rows[..METRICS.len()].iter().map(|r| r.results).sum();
        assert_eq!(mixed.results, split);
        let lcss = &rows[2];
        assert_eq!(
            lcss.fallbacks, lcss.queries,
            "LCSS always takes the exact fallback scan"
        );
    }

    #[test]
    fn json_dump_uses_shared_envelope() {
        let rows = run("beijing", FuncKind::Lev, 1, 8, 2, 0.2, Scale(0.01));
        let path = std::env::temp_dir().join("trajsearch_metrics_test.json");
        let path = path.to_str().unwrap();
        write_json(&rows, path).unwrap();
        let text = std::fs::read_to_string(path).unwrap();
        std::fs::remove_file(path).ok();
        assert!(text.contains("\"experiment\": \"metrics\""));
        assert!(text.contains("\"verify_cost\""));
        assert!(text.contains("\"metric\": \"frechet\""));
        assert_eq!(text.matches('{').count(), text.matches('}').count());
    }
}
