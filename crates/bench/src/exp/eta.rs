//! Figure 13 (Appendix D): the effect of the neighborhood threshold η on
//! ERP and NetERP query time.
//!
//! η trades filter tightness for neighborhood size: growing η raises
//! `c(q)` (fewer, cheaper τ-subsequence elements) but inflates `B(q)` (more
//! postings scanned). The paper finds small η best overall; very large η
//! explodes candidate generation.

use crate::data::{Dataset, FuncKind, Scale};
use crate::methods::{MethodKind, MethodSet};
use crate::table::{fmt_ms, print_table};
use wed::Sym;

#[derive(Debug, Clone)]
pub struct EtaRow {
    pub dataset: String,
    pub func: &'static str,
    /// η divided by its natural scale (median NN distance for ERP, median
    /// edge length for NetERP).
    pub eta_rel: f64,
    pub tau_ratio: f64,
    pub qlen: usize,
    pub ms_per_query: f64,
    pub fallback_rate: f64,
}

pub fn run(
    datasets: &[&str],
    eta_rels: &[f64],
    settings: &[(f64, usize)],
    nq: usize,
    scale: Scale,
) -> Vec<EtaRow> {
    let mut rows = Vec::new();
    for which in datasets {
        let d = Dataset::load(which, scale);
        for &func in &[FuncKind::Erp, FuncKind::NetErp] {
            let unit = match func {
                FuncKind::Erp => d.median_nn_distance(),
                FuncKind::NetErp => d.median_edge_length(),
                _ => unreachable!(),
            };
            for &eta_rel in eta_rels {
                let model = d.model_with_eta(func, Some(eta_rel * unit));
                let (store, alphabet) = d.store_for(func);
                let set = MethodSet::new(&*model, store, alphabet);
                for &(ratio, qlen) in settings {
                    let wl: Vec<(Vec<Sym>, f64)> = d
                        .sample_queries(func, qlen, nq, 150)
                        .into_iter()
                        .map(|q| {
                            let tau = d.tau_for(&*model, &q, ratio);
                            (q, tau)
                        })
                        .collect();
                    let (ms, stats) = set.run_workload(MethodKind::OsfBt, &wl);
                    rows.push(EtaRow {
                        dataset: d.name.to_string(),
                        func: func.name(),
                        eta_rel,
                        tau_ratio: ratio,
                        qlen,
                        ms_per_query: ms,
                        fallback_rate: if stats.fallback { 1.0 } else { 0.0 },
                    });
                }
            }
        }
    }
    rows
}

pub fn print(rows: &[EtaRow]) {
    println!("\nFigure 13 (Appendix D): eta sweep for ERP / NetERP (OSF-BT)");
    print_table(
        &[
            "Dataset",
            "Func",
            "eta/median",
            "tau-ratio",
            "|Q|",
            "ms/query",
            "fallback",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.dataset.clone(),
                    r.func.to_string(),
                    format!("{:.0e}", r.eta_rel),
                    format!("{}", r.tau_ratio),
                    r.qlen.to_string(),
                    fmt_ms(r.ms_per_query),
                    if r.fallback_rate > 0.0 {
                        "yes".into()
                    } else {
                        "no".into()
                    },
                ]
            })
            .collect::<Vec<_>>(),
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eta_sweep_runs_for_both_functions() {
        let rows = run(&["beijing"], &[1e-4, 1.0], &[(0.1, 8)], 2, Scale(0.01));
        assert_eq!(rows.len(), 4);
        let funcs: std::collections::HashSet<_> = rows.iter().map(|r| r.func).collect();
        assert!(funcs.contains("ERP") && funcs.contains("NetERP"));
    }
}
