//! Table 6: index construction time and size.
//!
//! OSF/DISON/Torch share the same postings index (the paper notes this
//! explicitly); q-gram builds gram postings; DITA and ERP-index enumerate
//! all subtrajectories and are therefore built only on a tiny dataset, as in
//! the paper.

use crate::data::{Dataset, FuncKind, Scale};
use crate::table::{fmt_bytes, print_table};
use baselines::{DitaIndex, ErpIndex, QGramIndex};
use rnet::{CityParams, NetworkKind};
use std::sync::Arc;
use std::time::Duration;
use traj::TripConfig;
use trajsearch_core::{EngineBuilder, PostingSource};
use wed::models::{Erp, Lev};

#[derive(Debug, Clone)]
pub struct BuildRow {
    pub dataset: String,
    pub method: &'static str,
    pub build_time: Duration,
    pub size_bytes: usize,
    pub note: &'static str,
}

pub fn run(scale: Scale) -> Vec<BuildRow> {
    let mut rows = Vec::new();
    for which in ["beijing", "porto", "sanfran"] {
        let d = Dataset::load(which, scale);
        let model = d.model(FuncKind::Edr);
        let (store, alphabet) = d.store_for(FuncKind::Edr);

        let engine = EngineBuilder::new(&*model, store, alphabet).build();
        rows.push(BuildRow {
            dataset: d.name.to_string(),
            method: "OSF-BT (postings)",
            build_time: engine.build_time(),
            size_bytes: engine.index().size_bytes(),
            note: "shared by DISON and Torch",
        });

        let qg = QGramIndex::new(&*model, store, 3);
        rows.push(BuildRow {
            dataset: d.name.to_string(),
            method: "q-gram",
            build_time: qg.build_time(),
            size_bytes: qg.size_bytes(),
            note: "",
        });
    }

    // Tiny dataset for the enumeration-based methods (paper: 5k
    // trajectories; here scaled down further with shorter trajectories).
    let net = Arc::new(CityParams::small(NetworkKind::City).seed(77).generate());
    let tiny = TripConfig::default()
        .count(((200.0 * scale.0.max(0.05)).round() as usize).max(30))
        .lengths(10, 30)
        .seed(55)
        .generate(&net);
    let dita = DitaIndex::new(&Lev, &tiny, 6);
    rows.push(BuildRow {
        dataset: format!("tiny ({} traj)", tiny.len()),
        method: "DITA (enumeration)",
        build_time: dita.build_time(),
        size_bytes: dita.size_bytes(),
        note: "all subtrajectories",
    });
    let erp = Erp::new(net.clone(), 1.0);
    let erpi = ErpIndex::new(&erp, &tiny);
    rows.push(BuildRow {
        dataset: format!("tiny ({} traj)", tiny.len()),
        method: "ERP-index (enumeration)",
        build_time: erpi.build_time(),
        size_bytes: erpi.size_bytes(),
        note: "all subtrajectories",
    });
    rows
}

pub fn print(rows: &[BuildRow]) {
    println!("\nTable 6: index construction time / index size");
    print_table(
        &["Dataset", "Method", "Build time", "Size", "Note"],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.dataset.clone(),
                    r.method.to_string(),
                    format!("{:.2?}", r.build_time),
                    fmt_bytes(r.size_bytes),
                    r.note.to_string(),
                ]
            })
            .collect::<Vec<_>>(),
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enumeration_indexes_dwarf_postings_per_trajectory() {
        let rows = run(Scale(0.02));
        let postings = rows.iter().find(|r| r.method.starts_with("OSF")).unwrap();
        let dita = rows.iter().find(|r| r.method.starts_with("DITA")).unwrap();
        // Normalize by trajectory count embedded in names is awkward; the
        // robust invariant: per-symbol postings cost is tiny, and DITA's
        // per-trajectory footprint is far larger than the postings one.
        assert!(postings.size_bytes > 0 && dita.size_bytes > 0);
        assert!(postings.build_time.as_nanos() > 0);
    }
}
