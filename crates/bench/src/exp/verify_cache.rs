//! Shared-trie verification cache on repeated and overlapping workloads
//! (`repro verify-cache`).
//!
//! Measures the cache hierarchy the verifier's [`TrieCache`] added: the
//! same Trie-mode WED workload runs through `run_batch` with private
//! per-query tries and again with [`BatchOptions::share_tries`] on, at
//! several worker counts. Two workload shapes are swept: **repeated**
//! (identical patterns, the serving hot-key case) and **overlapping**
//! (same patterns at different thresholds, so queries share anchor
//! suffixes without being identical). Every shared run is self-checked
//! match-for-match against its private twin before a row is recorded —
//! the speedup is only worth reporting if the results are byte-identical.
//!
//! The headline column is `stepdp_calls` (fresh DP columns, the CMR
//! numerator): sharing must cut it on repeated patterns while
//! `trie_cache_hits` absorbs the difference. The dump
//! (`BENCH_verify_cache.json`) uses the shared `BENCH_*.json` envelope,
//! and its counter columns are deterministic — exactly what the history
//! trend gate (`repro --fail-on-regress`) can hold across runs.
//!
//! [`TrieCache`]: trajsearch_core::TrieCache
//! [`BatchOptions::share_tries`]: trajsearch_core::BatchOptions::share_tries

use super::{host_cpus, write_bench_json};
use crate::data::{Dataset, FuncKind, Scale};
use crate::table::{fmt_ms, print_table};
use trajsearch_core::batch::BatchOptions;
use trajsearch_core::{BatchResponse, EngineBuilder, Query, VerifyMode};

/// One measured point: one workload shape × sharing setting × thread count.
#[derive(Debug, Clone)]
pub struct VerifyCacheRow {
    pub dataset: String,
    pub func: &'static str,
    /// `"repeated"` or `"overlapping"`.
    pub workload: &'static str,
    /// `"private"` or `"shared"`.
    pub sharing: &'static str,
    pub threads: usize,
    pub queries: usize,
    pub wall_ms: f64,
    pub qps: f64,
    /// Fresh DP columns over the whole batch (CMR numerator).
    pub stepdp_calls: u64,
    /// Trie columns visited over the whole batch (CMR denominator).
    pub columns_passed: u64,
    /// Shared-trie acquisitions answered by a warm cache entry.
    pub cache_hits: u64,
    /// Shared-trie acquisitions that had to build the entry.
    pub cache_misses: u64,
    /// Batch-level cache miss rate `stepdp_calls / columns_passed`.
    pub cmr: f64,
    pub results: usize,
}

/// Runs both workload shapes with sharing off and on at each thread count,
/// asserting the shared runs are match-identical to the private ones.
pub fn run(
    which: &str,
    func: FuncKind,
    threads_sweep: &[usize],
    qlen: usize,
    nqueries: usize,
    tau_ratio: f64,
    scale: Scale,
) -> Vec<VerifyCacheRow> {
    let d = Dataset::load(which, scale);
    let model = d.model(func);
    let (store, alphabet) = d.store_for(func);
    let engine = EngineBuilder::new(&*model, store, alphabet).build();

    // A handful of distinct patterns; the workloads below stretch them to
    // ~nqueries queries each.
    let distinct = (nqueries / 4).max(2);
    let patterns = d.sample_queries(func, qlen, distinct, 31);
    let query = |q: &Vec<u32>, tau: f64| {
        Query::threshold(q.clone(), tau)
            .verify(VerifyMode::Trie)
            .build()
            .expect("workload queries are valid")
    };

    // Repeated: each pattern issued 4 times at its own tau — the serving
    // hot-key case where the batch cache pays off maximally.
    let repeated: Vec<Query> = patterns
        .iter()
        .flat_map(|q| {
            let tau = d.tau_for(&*model, q, tau_ratio);
            (0..4).map(move |_| (q, tau))
        })
        .map(|(q, tau)| query(q, tau))
        .collect();
    // Overlapping: the same pattern at three thresholds — distinct queries
    // whose anchor suffixes (the cache key) still coincide.
    let overlapping: Vec<Query> = patterns
        .iter()
        .flat_map(|q| {
            let tau = d.tau_for(&*model, q, tau_ratio);
            [0.8, 1.0, 1.2].map(move |f| (q, tau * f))
        })
        .map(|(q, tau)| query(q, tau))
        .collect();

    let mut rows = Vec::new();
    for (workload, queries) in [("repeated", &repeated), ("overlapping", &overlapping)] {
        for &threads in threads_sweep {
            let private = engine
                .run_batch(queries, BatchOptions::with_threads(threads))
                .expect("workload admitted");
            let shared = engine
                .run_batch(
                    queries,
                    BatchOptions::with_threads(threads).share_tries(true),
                )
                .expect("workload admitted");
            for (i, (s, p)) in shared.responses.iter().zip(&private.responses).enumerate() {
                assert_eq!(
                    s.matches, p.matches,
                    "shared-cache batch diverged from private tries on query {i} \
                     ({workload}, {threads} threads)"
                );
            }
            for (sharing, out) in [("private", &private), ("shared", &shared)] {
                rows.push(row(&d, func, workload, sharing, out));
            }
        }
    }
    rows
}

fn row(
    d: &Dataset,
    func: FuncKind,
    workload: &'static str,
    sharing: &'static str,
    out: &BatchResponse,
) -> VerifyCacheRow {
    let m = &out.stats.merged;
    VerifyCacheRow {
        dataset: d.name.to_string(),
        func: func.name(),
        workload,
        sharing,
        threads: out.stats.threads,
        queries: out.stats.queries,
        wall_ms: out.stats.wall_time.as_secs_f64() * 1e3,
        qps: out.stats.queries_per_sec(),
        stepdp_calls: m.stepdp_calls,
        columns_passed: m.columns_passed,
        cache_hits: m.trie_cache_hits,
        cache_misses: m.trie_cache_misses,
        cmr: m.cmr(),
        results: m.results,
    }
}

pub fn print(rows: &[VerifyCacheRow]) {
    if let Some(r) = rows.first() {
        println!(
            "\nShared-trie verification cache: {} ({}, {} host cpus); each shared \
             run is asserted match-identical to its private twin",
            r.dataset,
            r.func,
            host_cpus()
        );
    }
    print_table(
        &[
            "Workload", "Sharing", "Threads", "Queries", "Wall ms", "q/s", "StepDP", "Columns",
            "Hits", "Misses", "CMR", "Results",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.workload.to_string(),
                    r.sharing.to_string(),
                    r.threads.to_string(),
                    r.queries.to_string(),
                    fmt_ms(r.wall_ms),
                    format!("{:.1}", r.qps),
                    r.stepdp_calls.to_string(),
                    r.columns_passed.to_string(),
                    r.cache_hits.to_string(),
                    r.cache_misses.to_string(),
                    format!("{:.3}", r.cmr),
                    r.results.to_string(),
                ]
            })
            .collect::<Vec<_>>(),
    );
}

/// Writes the rows in the shared `BENCH_*.json` envelope.
pub fn write_json(rows: &[VerifyCacheRow], path: &str) -> std::io::Result<()> {
    let rendered: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "{{\"dataset\": \"{}\", \"func\": \"{}\", \"workload\": \"{}\", \
                 \"sharing\": \"{}\", \"threads\": {}, \"queries\": {}, \
                 \"wall_ms\": {:.3}, \"qps\": {:.3}, \"stepdp_calls\": {}, \
                 \"columns_passed\": {}, \"trie_cache_hits\": {}, \
                 \"trie_cache_misses\": {}, \"cmr\": {:.4}, \"results\": {}}}",
                r.dataset,
                r.func,
                r.workload,
                r.sharing,
                r.threads,
                r.queries,
                r.wall_ms,
                r.qps,
                r.stepdp_calls,
                r.columns_passed,
                r.cache_hits,
                r.cache_misses,
                r.cmr,
                r.results
            )
        })
        .collect();
    write_bench_json(path, "verify_cache", "stepdp_calls", &rendered)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sharing_cuts_fresh_columns_on_repeated_patterns() {
        let rows = run("beijing", FuncKind::Lev, &[1, 2], 8, 8, 0.2, Scale(0.01));
        // 2 workloads × 2 thread counts × {private, shared}.
        assert_eq!(rows.len(), 8);
        for pair in rows.chunks(2) {
            let (private, shared) = (&pair[0], &pair[1]);
            assert_eq!(private.sharing, "private");
            assert_eq!(shared.sharing, "shared");
            assert_eq!(private.results, shared.results, "self-check must hold");
            assert_eq!(private.cache_hits, 0);
            assert_eq!(private.cache_misses, 0);
            if private.stepdp_calls > 0 {
                assert!(
                    shared.stepdp_calls < private.stepdp_calls,
                    "{} at {} threads: {} !< {}",
                    shared.workload,
                    shared.threads,
                    shared.stepdp_calls,
                    private.stepdp_calls
                );
                assert!(shared.cache_hits > 0);
            }
        }
    }

    #[test]
    fn json_dump_uses_shared_envelope() {
        let rows = run("beijing", FuncKind::Lev, &[1], 8, 4, 0.2, Scale(0.01));
        let path = std::env::temp_dir().join("trajsearch_verify_cache_test.json");
        let path = path.to_str().unwrap();
        write_json(&rows, path).unwrap();
        let text = std::fs::read_to_string(path).unwrap();
        std::fs::remove_file(path).ok();
        assert!(text.contains("\"experiment\": \"verify_cache\""));
        assert!(text.contains("\"sharing\": \"shared\""));
        assert!(text.contains("\"trie_cache_hits\""));
        assert_eq!(text.matches('{').count(), text.matches('}').count());
    }
}
