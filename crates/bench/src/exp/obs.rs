//! Observability overhead (`repro obs`): what query tracing costs.
//!
//! Three legs over one workload, identical queries throughout:
//!
//! * **disabled** — `run`: the plain engine path, no tracer anywhere.
//! * **enabled** — `run_traced` with a *disabled* tracer from a live
//!   [`TraceSink`]: the instrumented path with every span site compiled in
//!   but recording off — the cost a server pays for untraced queries.
//! * **traced** — `run_traced` with a real per-query trace id: full span
//!   recording into the bounded sink.
//!
//! Every leg's responses are checked byte-identical (matches and
//! deterministic counters) against the disabled leg, so the dump doubles
//! as the tracing-neutrality gate in CI: instrumentation must never change
//! an answer. Wall times are the min over `PASSES` passes to damp host
//! jitter; `enabled_overhead`/`traced_overhead` are ratios against the
//! disabled leg (1.0 = free).

use super::{host_cpus, write_bench_json};
use crate::data::{Dataset, FuncKind, Scale};
use crate::table::{fmt_ms, print_table};
use std::time::{Duration, Instant};
use trajsearch_core::{EngineBuilder, Query, Response, TraceSink};

/// Timing passes per leg; the min is reported.
const PASSES: usize = 3;

/// One measured point: the three legs over one workload.
#[derive(Debug, Clone)]
pub struct ObsRow {
    pub dataset: String,
    pub func: &'static str,
    pub queries: usize,
    pub disabled_wall_ms: f64,
    pub enabled_wall_ms: f64,
    pub traced_wall_ms: f64,
    /// Instrumented-but-off over plain (1.0 = free).
    pub enabled_overhead: f64,
    /// Full span recording over plain.
    pub traced_overhead: f64,
    /// Spans recorded by the traced leg's final pass.
    pub spans_recorded: u64,
    /// Spans per traced query (the span taxonomy's fan-out on this
    /// workload).
    pub spans_per_query: f64,
    pub results: usize,
}

fn workload(
    d: &Dataset,
    func: FuncKind,
    qlen: usize,
    nqueries: usize,
    tau_ratio: f64,
) -> Vec<Query> {
    let model = d.model(func);
    d.sample_queries(func, qlen, nqueries, 47)
        .into_iter()
        .enumerate()
        .map(|(i, q)| {
            let tau = d.tau_for(&*model, &q, tau_ratio);
            match i % 3 {
                0 | 1 => Query::threshold(q, tau).build(),
                _ => Query::top_k(q, 5, tau, 4.0 * tau).build(),
            }
            .expect("workload queries are valid")
        })
        .collect()
}

fn assert_identical(leg: &str, got: &[Response], want: &[Response]) {
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        assert_eq!(g.matches, w.matches, "{leg} leg diverged on query {i}");
        assert_eq!(
            g.stats.candidates, w.stats.candidates,
            "{leg} leg: candidates, query {i}"
        );
        assert_eq!(
            g.stats.verify_cost, w.stats.verify_cost,
            "{leg} leg: verify_cost, query {i}"
        );
        assert_eq!(
            g.stats.results, w.stats.results,
            "{leg} leg: results, query {i}"
        );
    }
}

/// Runs the three legs and enforces result identity between them.
pub fn run(
    which: &str,
    func: FuncKind,
    qlen: usize,
    nqueries: usize,
    tau_ratio: f64,
    scale: Scale,
) -> Vec<ObsRow> {
    let d = Dataset::load(which, scale);
    let model = d.model(func);
    let (store, alphabet) = d.store_for(func);
    let engine = EngineBuilder::new(&*model, store, alphabet).build();
    let workload = workload(&d, func, qlen, nqueries, tau_ratio);

    let time_leg = |run_pass: &mut dyn FnMut() -> Vec<Response>| -> (Duration, Vec<Response>) {
        let mut best = Duration::MAX;
        let mut responses = Vec::new();
        for _ in 0..PASSES {
            let t0 = Instant::now();
            responses = run_pass();
            best = best.min(t0.elapsed());
        }
        (best, responses)
    };

    // Leg 1: the plain path — also the correctness reference.
    let (disabled_wall, reference) = time_leg(&mut || {
        workload
            .iter()
            .map(|q| engine.run(q).expect("query admitted"))
            .collect()
    });

    // Leg 2: instrumented path, recording off (trace id 0).
    let sink = TraceSink::new(1 << 16);
    let (enabled_wall, enabled) = time_leg(&mut || {
        workload
            .iter()
            .map(|q| {
                engine
                    .run_traced(q, sink.tracer(0))
                    .expect("query admitted")
            })
            .collect()
    });
    assert_identical("enabled", &enabled, &reference);
    assert_eq!(sink.recorded(), 0, "a disabled tracer must record nothing");

    // Leg 3: full span recording, a fresh trace per query.
    let before = sink.recorded();
    let (traced_wall, traced) = time_leg(&mut || {
        workload
            .iter()
            .map(|q| {
                engine
                    .run_traced(q, sink.tracer(sink.next_trace_id()))
                    .expect("query admitted")
            })
            .collect()
    });
    assert_identical("traced", &traced, &reference);
    let spans_recorded = (sink.recorded() - before) / PASSES as u64;
    assert!(spans_recorded > 0, "traced queries must record spans");

    let dis_ms = disabled_wall.as_secs_f64() * 1e3;
    let en_ms = enabled_wall.as_secs_f64() * 1e3;
    let tr_ms = traced_wall.as_secs_f64() * 1e3;
    vec![ObsRow {
        dataset: d.name.to_string(),
        func: func.name(),
        queries: workload.len(),
        disabled_wall_ms: dis_ms,
        enabled_wall_ms: en_ms,
        traced_wall_ms: tr_ms,
        enabled_overhead: en_ms / dis_ms.max(1e-9),
        traced_overhead: tr_ms / dis_ms.max(1e-9),
        spans_recorded,
        spans_per_query: spans_recorded as f64 / workload.len().max(1) as f64,
        results: reference.iter().map(|r| r.stats.results).sum(),
    }]
}

pub fn print(rows: &[ObsRow]) {
    println!(
        "\nTracing overhead: plain vs instrumented-off vs full span recording \
         (min of {PASSES} passes, {} host cpus)",
        host_cpus()
    );
    print_table(
        &[
            "Dataset",
            "Func",
            "Queries",
            "Disabled ms",
            "Enabled ms",
            "Traced ms",
            "Enabled ovh",
            "Traced ovh",
            "Spans",
            "Spans/query",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.dataset.clone(),
                    r.func.to_string(),
                    r.queries.to_string(),
                    fmt_ms(r.disabled_wall_ms),
                    fmt_ms(r.enabled_wall_ms),
                    fmt_ms(r.traced_wall_ms),
                    format!("{:.3}x", r.enabled_overhead),
                    format!("{:.3}x", r.traced_overhead),
                    r.spans_recorded.to_string(),
                    format!("{:.1}", r.spans_per_query),
                ]
            })
            .collect::<Vec<_>>(),
    );
}

/// Writes the rows in the shared `BENCH_*.json` envelope.
pub fn write_json(rows: &[ObsRow], path: &str) -> std::io::Result<()> {
    let rendered: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "{{\"dataset\": \"{}\", \"func\": \"{}\", \"queries\": {}, \
                 \"disabled_wall_ms\": {:.3}, \"enabled_wall_ms\": {:.3}, \
                 \"traced_wall_ms\": {:.3}, \"enabled_overhead\": {:.3}, \
                 \"traced_overhead\": {:.3}, \"spans_recorded\": {}, \
                 \"spans_per_query\": {:.2}, \"results\": {}}}",
                r.dataset,
                r.func,
                r.queries,
                r.disabled_wall_ms,
                r.enabled_wall_ms,
                r.traced_wall_ms,
                r.enabled_overhead,
                r.traced_overhead,
                r.spans_recorded,
                r.spans_per_query,
                r.results
            )
        })
        .collect();
    write_bench_json(path, "obs", "traced_overhead", &rendered)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn legs_agree_and_spans_flow() {
        let rows = run("beijing", FuncKind::Lev, 8, 5, 0.2, Scale(0.01));
        assert_eq!(rows.len(), 1);
        let r = &rows[0];
        assert_eq!(r.queries, 5);
        assert!(r.spans_recorded > 0, "traced leg records spans");
        assert!(r.spans_per_query >= 4.0, "root + phases per query");
        assert!(r.enabled_overhead > 0.0 && r.traced_overhead > 0.0);
    }

    #[test]
    fn json_dump_uses_shared_envelope() {
        let rows = run("beijing", FuncKind::Lev, 8, 3, 0.2, Scale(0.01));
        let path = std::env::temp_dir().join("trajsearch_obs_test.json");
        let path = path.to_str().unwrap();
        write_json(&rows, path).unwrap();
        let text = std::fs::read_to_string(path).unwrap();
        std::fs::remove_file(path).ok();
        assert!(text.contains("\"experiment\": \"obs\""));
        assert!(text.contains("\"traced_overhead\""));
        assert_eq!(text.matches('{').count(), text.matches('}').count());
    }
}
