//! Table 2: dataset statistics.

use crate::data::{Dataset, Scale};
use crate::table::print_table;

#[derive(Debug, Clone)]
pub struct Table2Row {
    pub dataset: String,
    pub num_trajectories: usize,
    pub avg_length: f64,
    pub num_vertices: usize,
    pub num_edges: usize,
}

pub fn run(scale: Scale) -> Vec<Table2Row> {
    ["beijing", "porto", "singapore", "sanfran"]
        .iter()
        .map(|which| {
            let d = Dataset::load(which, scale);
            let stats = d.store.stats();
            Table2Row {
                dataset: d.name.to_string(),
                num_trajectories: stats.num_trajectories,
                avg_length: stats.avg_length,
                num_vertices: d.net.num_vertices(),
                num_edges: d.net.num_edges(),
            }
        })
        .collect()
}

pub fn print(rows: &[Table2Row]) {
    println!("\nTable 2: dataset statistics (synthetic stand-ins, see DESIGN.md §4)");
    print_table(
        &["Dataset", "#Trajectories", "Avg. Length", "|V|", "|E|"],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.dataset.clone(),
                    r.num_trajectories.to_string(),
                    format!("{:.0}", r.avg_length),
                    r.num_vertices.to_string(),
                    r.num_edges.to_string(),
                ]
            })
            .collect::<Vec<_>>(),
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_have_expected_relative_shape() {
        let rows = run(Scale(0.02));
        assert_eq!(rows.len(), 4);
        let by_name = |n: &str| rows.iter().find(|r| r.dataset == n).unwrap();
        // Relative shapes of Table 2: Porto has the most trajectories of the
        // first three, Singapore the longest average and smallest network,
        // SanFran the largest network and count.
        assert!(by_name("Porto").num_trajectories > by_name("Beijing").num_trajectories);
        assert!(by_name("SanFran").num_trajectories >= by_name("Porto").num_trajectories);
        assert!(by_name("Singapore").avg_length > by_name("Beijing").avg_length);
        assert!(by_name("Singapore").num_vertices < by_name("Beijing").num_vertices);
        assert!(by_name("SanFran").num_vertices > by_name("Beijing").num_vertices);
    }
}
