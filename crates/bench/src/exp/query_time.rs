//! Figures 6–8 (query time vs τ-ratio / |Q| / dataset size) and Table 4
//! (running-time breakdown).

use crate::data::{Dataset, FuncKind, Scale};
use crate::methods::{MethodKind, MethodSet};
use crate::table::{fmt_ms, print_table};
use trajsearch_core::SearchStats;
use wed::Sym;

/// One measured point of a query-time sweep.
#[derive(Debug, Clone)]
pub struct TimeRow {
    pub dataset: String,
    pub func: &'static str,
    pub method: &'static str,
    /// Sweep coordinate: τ-ratio (fig 6), |Q| (fig 7) or data fraction
    /// (fig 8).
    pub x: f64,
    pub ms_per_query: f64,
    pub stats: SearchStats,
}

fn workload(
    d: &Dataset,
    model: &dyn wed::WedInstance,
    kind: FuncKind,
    qlen: usize,
    n: usize,
    ratio: f64,
    salt: u64,
) -> Vec<(Vec<Sym>, f64)> {
    d.sample_queries(kind, qlen, n, salt)
        .into_iter()
        .map(|q| {
            let tau = d.tau_for(model, &q, ratio);
            (q, tau)
        })
        .collect()
}

/// Figure 6: vary τ-ratio.
pub fn run_fig6(
    datasets: &[&str],
    funcs: &[FuncKind],
    methods: &[MethodKind],
    tau_ratios: &[f64],
    qlen: usize,
    nqueries: usize,
    scale: Scale,
) -> Vec<TimeRow> {
    let mut rows = Vec::new();
    for which in datasets {
        let d = Dataset::load(which, scale);
        for &func in funcs {
            let model = d.model(func);
            let (store, alphabet) = d.store_for(func);
            let set = MethodSet::new(&*model, store, alphabet);
            for &ratio in tau_ratios {
                let wl = workload(&d, &*model, func, qlen, nqueries, ratio, 60);
                for &m in methods {
                    let (ms, stats) = set.run_workload(m, &wl);
                    rows.push(TimeRow {
                        dataset: d.name.to_string(),
                        func: func.name(),
                        method: m.name(),
                        x: ratio,
                        ms_per_query: ms,
                        stats,
                    });
                }
            }
        }
    }
    rows
}

/// Figure 7: vary query length at fixed τ-ratio = 0.1.
pub fn run_fig7(
    datasets: &[&str],
    funcs: &[FuncKind],
    methods: &[MethodKind],
    qlens: &[usize],
    nqueries: usize,
    scale: Scale,
) -> Vec<TimeRow> {
    let mut rows = Vec::new();
    for which in datasets {
        let d = Dataset::load(which, scale);
        for &func in funcs {
            let model = d.model(func);
            let (store, alphabet) = d.store_for(func);
            let set = MethodSet::new(&*model, store, alphabet);
            for &qlen in qlens {
                let wl = workload(&d, &*model, func, qlen, nqueries, 0.1, 70);
                for &m in methods {
                    let (ms, stats) = set.run_workload(m, &wl);
                    rows.push(TimeRow {
                        dataset: d.name.to_string(),
                        func: func.name(),
                        method: m.name(),
                        x: qlen as f64,
                        ms_per_query: ms,
                        stats,
                    });
                }
            }
        }
    }
    rows
}

/// Figure 8: vary dataset size (prefix fractions) at τ-ratio = 0.1.
pub fn run_fig8(
    datasets: &[&str],
    funcs: &[FuncKind],
    methods: &[MethodKind],
    fractions: &[f64],
    qlen: usize,
    nqueries: usize,
    scale: Scale,
) -> Vec<TimeRow> {
    let mut rows = Vec::new();
    for which in datasets {
        let d = Dataset::load(which, scale);
        for &func in funcs {
            let model = d.model(func);
            let (full_store, alphabet) = d.store_for(func);
            // Sample queries from the smallest prefix so every fraction can
            // contain the query's source trajectory.
            let wl_queries = d.sample_queries(func, qlen, nqueries, 80);
            for &frac in fractions {
                let store = full_store.prefix((full_store.len() as f64 * frac).round() as usize);
                let set = MethodSet::new(&*model, &store, alphabet);
                let wl: Vec<(Vec<Sym>, f64)> = wl_queries
                    .iter()
                    .map(|q| (q.clone(), d.tau_for(&*model, q, 0.1)))
                    .collect();
                for &m in methods {
                    let (ms, stats) = set.run_workload(m, &wl);
                    rows.push(TimeRow {
                        dataset: d.name.to_string(),
                        func: func.name(),
                        method: m.name(),
                        x: frac,
                        ms_per_query: ms,
                        stats,
                    });
                }
            }
        }
    }
    rows
}

pub fn print_rows(title: &str, xlabel: &str, rows: &[TimeRow]) {
    println!("\n{title}");
    print_table(
        &[
            "Dataset", "Func", xlabel, "Method", "ms/query", "#cand", "#results",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.dataset.clone(),
                    r.func.to_string(),
                    format!("{}", r.x),
                    r.method.to_string(),
                    fmt_ms(r.ms_per_query),
                    r.stats.candidates.to_string(),
                    r.stats.results.to_string(),
                ]
            })
            .collect::<Vec<_>>(),
    );
}

/// Table 4: running-time breakdown of OSF-BT (MinCand / lookup / verify).
#[derive(Debug, Clone)]
pub struct BreakdownRow {
    pub setting: String,
    pub mincand_ms: f64,
    pub lookup_ms: f64,
    pub verify_ms: f64,
}

pub fn run_table4(scale: Scale) -> Vec<BreakdownRow> {
    let d = Dataset::load("beijing", scale);
    let func = FuncKind::Edr;
    let model = d.model(func);
    let (store, alphabet) = d.store_for(func);
    let set = MethodSet::new(&*model, store, alphabet);
    let settings: Vec<(String, usize, f64)> = vec![
        ("default (r=0.1, |Q|=60)".into(), 60, 0.1),
        ("r=0.2".into(), 60, 0.2),
        ("r=0.3".into(), 60, 0.3),
        ("|Q|=20".into(), 20, 0.1),
        ("|Q|=40".into(), 40, 0.1),
    ];
    settings
        .into_iter()
        .map(|(setting, qlen, ratio)| {
            let wl = workload(&d, &*model, func, qlen, 20, ratio, 90);
            let (_, stats) = set.run_workload(MethodKind::OsfBt, &wl);
            let n = wl.len() as f64;
            BreakdownRow {
                setting,
                mincand_ms: stats.mincand_time.as_secs_f64() * 1e3 / n,
                lookup_ms: stats.lookup_time.as_secs_f64() * 1e3 / n,
                verify_ms: stats.verify_time.as_secs_f64() * 1e3 / n,
            }
        })
        .collect()
}

pub fn print_table4(rows: &[BreakdownRow]) {
    println!("\nTable 4: running time breakdown of OSF-BT (Beijing / EDR, ms per query)");
    print_table(
        &["Setting", "MinCand", "Index lookup", "Verify"],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.setting.clone(),
                    fmt_ms(r.mincand_ms),
                    fmt_ms(r.lookup_ms),
                    fmt_ms(r.verify_ms),
                ]
            })
            .collect::<Vec<_>>(),
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig6_rows_cover_the_grid() {
        let rows = run_fig6(
            &["beijing"],
            &[FuncKind::Lev],
            &[MethodKind::OsfBt, MethodKind::TorchBt],
            &[0.1, 0.2],
            8,
            2,
            Scale(0.01),
        );
        assert_eq!(rows.len(), 4);
        assert!(rows.iter().all(|r| r.ms_per_query >= 0.0));
    }

    #[test]
    fn table4_breakdown_sums_to_positive_verify() {
        let rows = run_table4(Scale(0.01));
        assert_eq!(rows.len(), 5);
        for r in &rows {
            assert!(r.verify_ms >= 0.0);
            assert!(r.mincand_ms >= 0.0);
        }
    }
}
