//! Sharded-index construction scaling: build wall-time at 1/2/4/8 shards.
//!
//! Not a paper experiment — the paper builds its index once, serially
//! (Table 6) — but the ROADMAP's scaling direction needs index
//! *construction* and appends to parallelize, which is what
//! `ShardedIndex::build_parallel` provides. This measures the same store
//! indexed at several shard counts, self-checks every build against the
//! single-list `InvertedIndex`, and emits a machine-readable JSON dump
//! (`BENCH_index.json`) for CI trend tracking.
//!
//! Speedup is hardware-bound exactly like `BENCH_throughput.json`: the
//! curve flattens at the host's core count (recorded as `host_cpus`), and a
//! 1-core runner legitimately reports ≈ 1.0x.

use super::{host_cpus, write_bench_json};
use crate::data::{Dataset, Scale};
use crate::table::{fmt_bytes, fmt_ms, print_table};
use std::time::Instant;
use trajsearch_core::{InvertedIndex, PostingSource, ShardedIndex};

/// One measured point: a full parallel build at one shard count.
#[derive(Debug, Clone)]
pub struct IndexBuildRow {
    pub dataset: String,
    pub shards: usize,
    pub trajectories: usize,
    pub postings: usize,
    pub build_ms: f64,
    /// Build-time speedup relative to the 1-shard row of the same sweep.
    pub speedup: f64,
    pub size_bytes: usize,
}

/// Builds the index at each shard count and self-checks equivalence: every
/// sharded build must report the same trajectory count, postings total and
/// per-symbol frequencies as the `InvertedIndex` reference (full postings
/// equivalence is proptested in `core/tests/index_equivalence.rs`; here the
/// cheap invariants run at experiment scale on every CI run).
pub fn run(which: &str, shard_counts: &[usize], scale: Scale) -> Vec<IndexBuildRow> {
    let d = Dataset::load(which, scale);
    let alphabet = d.net.num_vertices();
    let reference = InvertedIndex::build(&d.store, alphabet);

    let mut rows = Vec::with_capacity(shard_counts.len());
    for &shards in shard_counts {
        let t0 = Instant::now();
        let idx = ShardedIndex::build_parallel(&d.store, alphabet, shards);
        let wall = t0.elapsed();

        assert_eq!(idx.num_trajectories(), reference.num_trajectories());
        assert_eq!(idx.total_postings(), reference.total_postings());
        for q in 0..alphabet as u32 {
            assert_eq!(
                PostingSource::freq(&idx, q),
                reference.freq(q),
                "freq({q}) diverged at {shards} shards"
            );
        }

        rows.push(IndexBuildRow {
            dataset: d.name.to_string(),
            shards: idx.num_shards(),
            trajectories: idx.num_trajectories(),
            postings: idx.total_postings(),
            build_ms: wall.as_secs_f64() * 1e3,
            speedup: 1.0,
            size_bytes: idx.size_bytes(),
        });
    }
    // Normalize speedup against the 1-shard row (first row if none).
    let base = rows
        .iter()
        .find(|r| r.shards == 1)
        .or(rows.first())
        .map(|r| r.build_ms)
        .unwrap_or(1.0)
        .max(f64::MIN_POSITIVE);
    for r in &mut rows {
        r.speedup = base / r.build_ms.max(f64::MIN_POSITIVE);
    }
    rows
}

pub fn print(rows: &[IndexBuildRow]) {
    println!(
        "\nSharded index construction: build time vs shard count ({} host cpus)",
        host_cpus()
    );
    print_table(
        &[
            "Dataset", "Shards", "Traj", "Postings", "Build ms", "Speedup", "Size",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.dataset.clone(),
                    r.shards.to_string(),
                    r.trajectories.to_string(),
                    r.postings.to_string(),
                    fmt_ms(r.build_ms),
                    format!("{:.2}x", r.speedup),
                    fmt_bytes(r.size_bytes),
                ]
            })
            .collect::<Vec<_>>(),
    );
}

/// Writes the rows as a machine-readable JSON document mirroring
/// `BENCH_throughput.json` (shared envelope:
/// the crate's private `write_bench_json`).
pub fn write_json(rows: &[IndexBuildRow], path: &str) -> std::io::Result<()> {
    let rendered: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "{{\"dataset\": \"{}\", \"shards\": {}, \"trajectories\": {}, \
                 \"postings\": {}, \"build_ms\": {:.3}, \"speedup\": {:.3}, \
                 \"size_bytes\": {}}}",
                r.dataset,
                r.shards,
                r.trajectories,
                r.postings,
                r.build_ms,
                r.speedup,
                r.size_bytes
            )
        })
        .collect();
    write_bench_json(path, "index_build", "build_ms", &rendered)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_cover_shard_counts_and_agree_on_totals() {
        let rows = run("beijing", &[1, 2, 4], Scale(0.01));
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].shards, 1);
        assert!(rows.iter().all(|r| r.build_ms > 0.0));
        // Same store at every shard count → identical totals.
        assert!(rows
            .windows(2)
            .all(|w| w[0].postings == w[1].postings && w[0].trajectories == w[1].trajectories));
        assert!((rows[0].speedup - 1.0).abs() < 1e-9);
    }

    #[test]
    fn json_dump_is_parsable_shape() {
        let rows = run("beijing", &[1, 2], Scale(0.01));
        let path = std::env::temp_dir().join("trajsearch_index_build_test.json");
        let path = path.to_str().unwrap();
        write_json(&rows, path).unwrap();
        let text = std::fs::read_to_string(path).unwrap();
        std::fs::remove_file(path).ok();
        assert!(text.starts_with('{') && text.trim_end().ends_with('}'));
        assert!(text.contains("\"experiment\": \"index_build\""));
        assert!(text.contains("\"shards\": 1"));
        assert!(text.contains("\"host_cpus\""));
        assert_eq!(text.matches('{').count(), text.matches('}').count());
        assert_eq!(text.matches('[').count(), text.matches(']').count());
    }
}
