//! Index construction scaling and cold start: build wall-time at 1/2/4/8
//! shards, plus the snapshot path from `trajsearch-persist`.
//!
//! Not a paper experiment — the paper builds its index once, serially
//! (Table 6) — but the ROADMAP's scaling direction needs index
//! *construction* and appends to parallelize, which is what
//! `ShardedIndex::build_parallel` provides. This measures the same store
//! indexed at several shard counts, self-checks every build against the
//! single-list `InvertedIndex`, and emits a machine-readable JSON dump
//! (`BENCH_index.json`) for CI trend tracking.
//!
//! Two columns cover persistence (PR 9):
//!
//! * `cold_start_ms` — time from nothing to the first answered query:
//!   rebuild-from-store plus one query for the in-memory layouts, snapshot
//!   `open` (checksum + validated decode) plus one query for the
//!   `snapshot` row;
//! * the final `snapshot` row's `size_bytes` is the reopened
//!   `CompactIndex` footprint, self-checked strictly below the in-memory
//!   `InvertedIndex` of the same postings.
//!
//! Speedup is hardware-bound exactly like `BENCH_throughput.json`: the
//! curve flattens at the host's core count (recorded as `host_cpus`), and a
//! 1-core runner legitimately reports ≈ 1.0x.

use super::{host_cpus, write_bench_json};
use crate::data::{Dataset, FuncKind, Scale};
use crate::table::{fmt_bytes, fmt_ms, print_table};
use std::time::Instant;
use trajsearch_core::{EngineBuilder, InvertedIndex, PostingSource, Query, ShardedIndex};
use trajsearch_persist::Snapshot;

/// One measured point: a full parallel build (or snapshot reopen) at one
/// layout.
#[derive(Debug, Clone)]
pub struct IndexBuildRow {
    pub dataset: String,
    /// `sharded` rows rebuild from the store; the `snapshot` row reopens
    /// the persisted file.
    pub layout: &'static str,
    pub shards: usize,
    pub trajectories: usize,
    pub postings: usize,
    /// Build wall-time for `sharded` rows; `Snapshot::open` wall-time
    /// (read + checksum + validated decode) for the `snapshot` row.
    pub build_ms: f64,
    /// Build-time speedup relative to the 1-shard row of the same sweep.
    pub speedup: f64,
    /// Time from nothing to the first answered query: build (or open) plus
    /// one threshold query through a fresh engine.
    pub cold_start_ms: f64,
    pub size_bytes: usize,
}

/// Builds the index at each shard count and self-checks equivalence: every
/// sharded build must report the same trajectory count, postings total and
/// per-symbol frequencies as the `InvertedIndex` reference (full postings
/// equivalence is proptested in `core/tests/index_equivalence.rs` and
/// `persist/tests/equivalence.rs`; here the cheap invariants run at
/// experiment scale on every CI run). A final row snapshots the reference
/// to disk and measures the reopen path.
pub fn run(which: &str, shard_counts: &[usize], scale: Scale) -> Vec<IndexBuildRow> {
    let d = Dataset::load(which, scale);
    let model = d.model(FuncKind::Edr);
    let alphabet = d.net.num_vertices();
    let reference = InvertedIndex::build(&d.store, alphabet);

    // The cold-start probe: one sampled threshold query, the same for
    // every row so `cold_start_ms` differences are pure build-vs-open.
    let probe = d
        .sample_queries(FuncKind::Edr, 20, 1, 11)
        .pop()
        .expect("dataset yields at least one query");
    let tau = d.tau_for(&*model, &probe, 0.1);
    let probe_query = Query::threshold(probe, tau).build().expect("valid probe");
    let probe_results = {
        let engine = EngineBuilder::new(&*model, &d.store, alphabet).build();
        engine.run(&probe_query).expect("probe runs").matches.len()
    };

    let mut rows = Vec::with_capacity(shard_counts.len() + 1);
    for &shards in shard_counts {
        let t0 = Instant::now();
        let idx = ShardedIndex::build_parallel(&d.store, alphabet, shards);
        let build = t0.elapsed().as_secs_f64() * 1e3;

        assert_eq!(idx.num_trajectories(), reference.num_trajectories());
        assert_eq!(idx.total_postings(), reference.total_postings());
        for q in 0..alphabet as u32 {
            assert_eq!(
                PostingSource::freq(&idx, q),
                reference.freq(q),
                "freq({q}) diverged at {shards} shards"
            );
        }
        let size_bytes = idx.size_bytes();

        // Cold start = rebuild + first query, measured end to end on a
        // fresh build so allocator warm-up is not hidden.
        let t0 = Instant::now();
        let cold_idx = ShardedIndex::build_parallel(&d.store, alphabet, shards);
        let engine = EngineBuilder::new(&*model, &d.store, alphabet).build_with(cold_idx);
        let got = engine.run(&probe_query).expect("probe runs");
        let cold_start_ms = t0.elapsed().as_secs_f64() * 1e3;
        assert_eq!(
            got.matches.len(),
            probe_results,
            "cold-start probe diverged"
        );

        rows.push(IndexBuildRow {
            dataset: d.name.to_string(),
            layout: "sharded",
            shards: idx.num_shards(),
            trajectories: idx.num_trajectories(),
            postings: idx.total_postings(),
            build_ms: build,
            speedup: 1.0,
            cold_start_ms,
            size_bytes,
        });
    }

    // Snapshot leg: persist the reference once, then measure reopen-to-
    // first-query against rebuild-to-first-query.
    let snap_path = std::env::temp_dir().join(format!(
        "trajsearch_index_build_{}_{}.snap",
        std::process::id(),
        d.name
    ));
    Snapshot::write(&snap_path, &d.store, &reference).expect("snapshot writes");
    let t0 = Instant::now();
    let snap = Snapshot::open(&snap_path).expect("snapshot reopens");
    let open_ms = t0.elapsed().as_secs_f64() * 1e3;
    let t0 = Instant::now();
    let snap_cold = Snapshot::open(&snap_path).expect("snapshot reopens");
    let (snap_store, compact) = snap_cold.into_parts();
    let engine = EngineBuilder::new(&*model, &snap_store, alphabet).build_with(compact);
    let got = engine.run(&probe_query).expect("probe runs");
    let cold_start_ms = t0.elapsed().as_secs_f64() * 1e3;
    assert_eq!(
        got.matches.len(),
        probe_results,
        "cold-start probe diverged"
    );
    std::fs::remove_file(&snap_path).ok();

    let compact = snap.into_parts().1;
    assert_eq!(compact.total_postings(), reference.total_postings());
    assert!(
        compact.size_bytes() < reference.size_bytes(),
        "reopened CompactIndex ({}) must undercut the in-memory InvertedIndex ({})",
        compact.size_bytes(),
        reference.size_bytes()
    );
    rows.push(IndexBuildRow {
        dataset: d.name.to_string(),
        layout: "snapshot",
        shards: 1,
        trajectories: compact.num_trajectories(),
        postings: compact.total_postings(),
        build_ms: open_ms,
        speedup: 1.0,
        cold_start_ms,
        size_bytes: compact.size_bytes(),
    });

    // Normalize speedup against the 1-shard row (first row if none).
    let base = rows
        .iter()
        .find(|r| r.layout == "sharded" && r.shards == 1)
        .or(rows.first())
        .map(|r| r.build_ms)
        .unwrap_or(1.0)
        .max(f64::MIN_POSITIVE);
    for r in &mut rows {
        r.speedup = base / r.build_ms.max(f64::MIN_POSITIVE);
    }
    rows
}

pub fn print(rows: &[IndexBuildRow]) {
    println!(
        "\nIndex construction and cold start: build/open time vs layout ({} host cpus)",
        host_cpus()
    );
    print_table(
        &[
            "Dataset",
            "Layout",
            "Shards",
            "Traj",
            "Postings",
            "Build/Open ms",
            "Speedup",
            "Cold start ms",
            "Size",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.dataset.clone(),
                    r.layout.to_string(),
                    r.shards.to_string(),
                    r.trajectories.to_string(),
                    r.postings.to_string(),
                    fmt_ms(r.build_ms),
                    format!("{:.2}x", r.speedup),
                    fmt_ms(r.cold_start_ms),
                    fmt_bytes(r.size_bytes),
                ]
            })
            .collect::<Vec<_>>(),
    );
}

/// Writes the rows as a machine-readable JSON document mirroring
/// `BENCH_throughput.json` (shared envelope:
/// the crate's private `write_bench_json`).
pub fn write_json(rows: &[IndexBuildRow], path: &str) -> std::io::Result<()> {
    let rendered: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "{{\"dataset\": \"{}\", \"layout\": \"{}\", \"shards\": {}, \
                 \"trajectories\": {}, \"postings\": {}, \"build_ms\": {:.3}, \
                 \"speedup\": {:.3}, \"cold_start_ms\": {:.3}, \"size_bytes\": {}}}",
                r.dataset,
                r.layout,
                r.shards,
                r.trajectories,
                r.postings,
                r.build_ms,
                r.speedup,
                r.cold_start_ms,
                r.size_bytes
            )
        })
        .collect();
    write_bench_json(path, "index_build", "build_ms", &rendered)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_cover_shard_counts_and_agree_on_totals() {
        let rows = run("beijing", &[1, 2, 4], Scale(0.01));
        assert_eq!(rows.len(), 4);
        assert_eq!(rows[0].shards, 1);
        assert!(rows.iter().all(|r| r.build_ms > 0.0));
        assert!(rows.iter().all(|r| r.cold_start_ms > 0.0));
        // Same store at every layout → identical totals.
        assert!(rows
            .windows(2)
            .all(|w| w[0].postings == w[1].postings && w[0].trajectories == w[1].trajectories));
        assert!((rows[0].speedup - 1.0).abs() < 1e-9);
        // The persisted layout is listed last and is the smallest.
        let snap = rows.last().unwrap();
        assert_eq!(snap.layout, "snapshot");
        assert!(rows[..3].iter().all(|r| snap.size_bytes < r.size_bytes));
    }

    #[test]
    fn json_dump_is_parsable_shape() {
        let rows = run("beijing", &[1, 2], Scale(0.01));
        let path = std::env::temp_dir().join("trajsearch_index_build_test.json");
        let path = path.to_str().unwrap();
        write_json(&rows, path).unwrap();
        let text = std::fs::read_to_string(path).unwrap();
        std::fs::remove_file(path).ok();
        assert!(text.starts_with('{') && text.trim_end().ends_with('}'));
        assert!(text.contains("\"experiment\": \"index_build\""));
        assert!(text.contains("\"shards\": 1"));
        assert!(text.contains("\"layout\": \"snapshot\""));
        assert!(text.contains("\"cold_start_ms\""));
        assert!(text.contains("\"host_cpus\""));
        assert_eq!(text.matches('{').count(), text.matches('}').count());
        assert_eq!(text.matches('[').count(), text.matches(']').count());
    }
}
