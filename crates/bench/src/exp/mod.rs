//! One module per table/figure of the paper's evaluation (§6), plus
//! engineering experiments beyond the paper ([`throughput`]: the parallel
//! batch engine's queries/sec scaling; [`index_build`]: sharded index
//! construction time vs shard count; [`api_workload`]: a mixed
//! threshold/top-k/temporal workload through the unified `run_batch`,
//! queries arriving over their JSON wire format).
//!
//! Each module exposes a `run_*` function returning plain rows plus a
//! `print_*` helper; the `repro` binary wires them to subcommands. The
//! mapping to the paper is tabulated in `DESIGN.md` §5 and the measured
//! shapes are recorded in `EXPERIMENTS.md`.

use std::io::Write as _;

/// Host core count, recorded in every `BENCH_*.json` dump so a 1-core CI
/// runner's flat speedup curve is not mistaken for a regression.
pub(crate) fn host_cpus() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Writes the shared `BENCH_*.json` envelope (hand-rolled — the build
/// environment is offline, no serde): experiment name, unit, `host_cpus`,
/// and a `rows` array of pre-rendered JSON objects. Keeping one writer
/// guarantees every dump stays consumable by the same CI trend tooling.
pub(crate) fn write_bench_json(
    path: &str,
    experiment: &str,
    unit: &str,
    rows: &[String],
) -> std::io::Result<()> {
    let mut f = std::fs::File::create(path)?;
    writeln!(f, "{{")?;
    writeln!(f, "  \"experiment\": \"{experiment}\",")?;
    writeln!(f, "  \"unit\": \"{unit}\",")?;
    writeln!(f, "  \"host_cpus\": {},", host_cpus())?;
    writeln!(f, "  \"rows\": [")?;
    for (i, row) in rows.iter().enumerate() {
        let sep = if i + 1 == rows.len() { "" } else { "," };
        writeln!(f, "    {row}{sep}")?;
    }
    writeln!(f, "  ]")?;
    writeln!(f, "}}")?;
    Ok(())
}

pub mod api_workload;
pub mod candidates;
pub mod enum_baselines;
pub mod eta;
pub mod index_build;
pub mod naturalness;
pub mod query_time;
pub mod table2;
pub mod table6;
pub mod temporal;
pub mod throughput;
pub mod travel_time;
pub mod verification;
