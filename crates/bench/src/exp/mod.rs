//! One module per table/figure of the paper's evaluation (§6), plus
//! engineering experiments beyond the paper ([`throughput`]: the parallel
//! batch engine's queries/sec scaling; [`index_build`]: sharded index
//! construction time vs shard count; [`api_workload`]: a mixed
//! threshold/top-k/temporal workload through the unified `run_batch`,
//! queries arriving over their JSON wire format; [`metrics_workload`]: the
//! same patterns under WED/DTW/LCSS/Fréchet through the metric-pluggable
//! verifier, mixed in one `run_batch`; [`serve_load`]: the same
//! style of workload through the `trajsearch-serve` TCP front-end vs
//! in-process execution; [`distrib`]: the workload through a coordinator
//! over loopback shard servers, postings arriving over the shard-RPC
//! surface; [`obs`]: what query tracing costs — plain vs instrumented-off
//! vs full span recording, with a result-identity self-check).
//!
//! Each module exposes a `run_*` function returning plain rows plus a
//! `print_*` helper; the `repro` binary wires them to subcommands. The
//! mapping to the paper is tabulated in `DESIGN.md` §5 and the measured
//! shapes are recorded in `EXPERIMENTS.md`.

use std::io::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};

/// `repro --fail-on-regress PCT` threshold, stored as f64 bits
/// (`u64::MAX` = unset). See [`set_history_regression_threshold`].
static REGRESS_THRESHOLD_BITS: AtomicU64 = AtomicU64::new(u64::MAX);

/// Arms the cross-run trend gate: after this call, any experiment whose
/// **deterministic counter** columns move by more than `pct` percent in the
/// worsening direction against the previous `BENCH_history.jsonl` entry
/// panics instead of merely printing a delta. Timing columns (`*_ms`,
/// `qps`, ...) stay advisory — they jitter with the host — so the gate is
/// only as strong as the experiment's counter columns, which is exactly
/// what `verify_cache` and the pruning-rate dumps emit.
pub fn set_history_regression_threshold(pct: f64) {
    REGRESS_THRESHOLD_BITS.store(pct.to_bits(), Ordering::Relaxed);
}

fn history_regression_threshold() -> Option<f64> {
    match REGRESS_THRESHOLD_BITS.load(Ordering::Relaxed) {
        u64::MAX => None,
        bits => Some(f64::from_bits(bits)),
    }
}

/// Counter columns the trend gate may fail on: deterministic engine
/// counters, never wall-clock quantities.
fn gated_counter(key: &str) -> bool {
    matches!(
        key,
        "stepdp_calls"
            | "columns_passed"
            | "sw_columns"
            | "trie_cache_hits"
            | "trie_cache_misses"
            | "verify_cost"
            | "candidates"
            | "results"
            | "cmr"
            | "upr"
            | "tur"
            | "fallbacks"
    )
}

/// Is a `pct` move on `key` a change for the worse? Hit counts shrink,
/// cost counters grow; exact result/candidate counts should not move at
/// all, so either direction gates.
fn is_worsening(key: &str, pct: f64) -> bool {
    match key {
        "trie_cache_hits" => pct < 0.0,
        "candidates" | "results" => true,
        _ => pct > 0.0,
    }
}

/// Host core count, recorded in every `BENCH_*.json` dump so a 1-core CI
/// runner's flat speedup curve is not mistaken for a regression.
pub(crate) fn host_cpus() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Writes the shared `BENCH_*.json` envelope (hand-rolled — the build
/// environment is offline, no serde): experiment name, unit, `host_cpus`,
/// and a `rows` array of pre-rendered JSON objects. Keeping one writer
/// guarantees every dump stays consumable by the same CI trend tooling.
///
/// Every write also appends a timestamped single-line copy to
/// `BENCH_history.jsonl` next to `path` and prints a delta against the
/// previous entry of the same experiment when one exists, so regressions
/// are visible *across* runs, not just within one (ROADMAP "throughput
/// trend tracking"). History I/O failures are warnings, never errors —
/// trend tracking must not fail a benchmark run. Counter *regressions*
/// are a different matter: when `repro --fail-on-regress` arms the gate
/// (see [`set_history_regression_threshold`]), a worsening move beyond the
/// threshold on a deterministic counter column fails the run.
pub(crate) fn write_bench_json(
    path: &str,
    experiment: &str,
    unit: &str,
    rows: &[String],
) -> std::io::Result<()> {
    let mut f = std::fs::File::create(path)?;
    writeln!(f, "{{")?;
    writeln!(f, "  \"experiment\": \"{experiment}\",")?;
    writeln!(f, "  \"unit\": \"{unit}\",")?;
    writeln!(f, "  \"host_cpus\": {},", host_cpus())?;
    writeln!(f, "  \"rows\": [")?;
    for (i, row) in rows.iter().enumerate() {
        let sep = if i + 1 == rows.len() { "" } else { "," };
        writeln!(f, "    {row}{sep}")?;
    }
    writeln!(f, "  ]")?;
    writeln!(f, "}}")?;
    if let Err(e) = track_history(path, experiment, unit, rows) {
        eprintln!(
            "warning: could not update {}: {e}",
            history_path(path).display()
        );
    }
    Ok(())
}

/// The history file lives next to the dump it tracks (so tests writing to
/// temp directories never touch the repo's history).
fn history_path(bench_path: &str) -> std::path::PathBuf {
    std::path::Path::new(bench_path).with_file_name("BENCH_history.jsonl")
}

/// Appends this run to the history and prints a delta vs the previous
/// entry for the same experiment, when present.
fn track_history(
    bench_path: &str,
    experiment: &str,
    unit: &str,
    rows: &[String],
) -> std::io::Result<()> {
    use trajsearch_core::json::JsonValue;

    let path = history_path(bench_path);
    // Previous entry: the last well-formed line for this experiment.
    let previous: Option<JsonValue> = std::fs::read_to_string(&path).ok().and_then(|text| {
        text.lines()
            .rev()
            .filter_map(|line| JsonValue::parse(line).ok())
            .find(|v| v.get("experiment").and_then(|e| e.as_str()) == Some(experiment))
    });

    let ts = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let line = format!(
        "{{\"ts\": {ts}, \"experiment\": \"{experiment}\", \"unit\": \"{unit}\", \
         \"host_cpus\": {}, \"rows\": [{}]}}",
        host_cpus(),
        rows.join(", ")
    );
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)?;
    writeln!(f, "{line}")?;

    if let Some(previous) = previous {
        print_history_delta(experiment, &previous, rows);
        gate_history_regressions(experiment, &previous, rows);
    }
    Ok(())
}

/// The armed half of the trend tracker: with a threshold set (see
/// [`set_history_regression_threshold`]), a worsening move beyond it on any
/// gated counter column fails the run. Mixed-host comparisons are skipped —
/// a different `host_cpus` changes thread-sweep rows legitimately.
fn gate_history_regressions(
    experiment: &str,
    previous: &trajsearch_core::json::JsonValue,
    rows: &[String],
) {
    use trajsearch_core::json::JsonValue;

    let Some(threshold) = history_regression_threshold() else {
        return;
    };
    if previous.get("host_cpus").and_then(|v| v.as_u64()) != Some(host_cpus() as u64) {
        eprintln!(
            "trend gate {experiment}: previous entry is from a different host shape; skipping"
        );
        return;
    }
    let empty = Vec::new();
    let prev_rows = previous
        .get("rows")
        .and_then(|v| v.as_arr())
        .unwrap_or(&empty);
    let mut violations: Vec<String> = Vec::new();
    for (i, row) in rows.iter().enumerate() {
        let (Ok(JsonValue::Obj(pairs)), Some(prev_row)) = (JsonValue::parse(row), prev_rows.get(i))
        else {
            continue;
        };
        for (key, value) in &pairs {
            if !gated_counter(key) {
                continue;
            }
            let (Some(new), Some(old)) =
                (value.as_f64(), prev_row.get(key).and_then(|v| v.as_f64()))
            else {
                continue;
            };
            if old == 0.0 || new == old {
                continue;
            }
            let pct = (new - old) / old * 100.0;
            if pct.abs() >= threshold && is_worsening(key, pct) {
                violations.push(format!("row {i} {key}: {old:.3} -> {new:.3} ({pct:+.1}%)"));
            }
        }
    }
    if !violations.is_empty() {
        panic!(
            "trend gate {experiment}: counter regression beyond {threshold}% vs previous run:\n  {}",
            violations.join("\n  ")
        );
    }
}

/// Prints the per-row numeric deltas (≥ 1% change) against the previous
/// history entry. Row order is positional: every experiment emits its rows
/// in a fixed sweep order, so index `i` compares like with like.
fn print_history_delta(
    experiment: &str,
    previous: &trajsearch_core::json::JsonValue,
    rows: &[String],
) {
    use trajsearch_core::json::JsonValue;

    let prev_ts = previous.get("ts").and_then(|v| v.as_u64()).unwrap_or(0);
    let prev_cpus = previous.get("host_cpus").and_then(|v| v.as_u64());
    let empty = Vec::new();
    let prev_rows = previous
        .get("rows")
        .and_then(|v| v.as_arr())
        .unwrap_or(&empty);
    let mut lines: Vec<String> = Vec::new();
    for (i, row) in rows.iter().enumerate() {
        let (Ok(JsonValue::Obj(pairs)), Some(prev_row)) = (JsonValue::parse(row), prev_rows.get(i))
        else {
            continue;
        };
        for (key, value) in &pairs {
            let (Some(new), Some(old)) =
                (value.as_f64(), prev_row.get(key).and_then(|v| v.as_f64()))
            else {
                continue;
            };
            if old == 0.0 || new == old {
                continue;
            }
            let pct = (new - old) / old * 100.0;
            if pct.abs() >= 1.0 {
                lines.push(format!(
                    "  row {i} {key}: {old:.3} -> {new:.3} ({pct:+.1}%)"
                ));
            }
        }
    }
    if let Some(prev_cpus) = prev_cpus {
        if prev_cpus != host_cpus() as u64 {
            lines.push(format!(
                "  (host_cpus changed: {prev_cpus} -> {}; timing deltas are not comparable)",
                host_cpus()
            ));
        }
    }
    if lines.is_empty() {
        eprintln!("trend {experiment}: no numeric change >= 1% vs previous run (ts {prev_ts})");
    } else {
        eprintln!("trend {experiment}: delta vs previous run (ts {prev_ts}):");
        for line in lines.iter().take(40) {
            eprintln!("{line}");
        }
    }
}

pub mod api_workload;
pub mod candidates;
pub mod distrib;
pub mod enum_baselines;
pub mod eta;
pub mod index_build;
pub mod metrics_workload;
pub mod naturalness;
pub mod obs;
pub mod query_time;
pub mod serve_load;
pub mod snapshot;
pub mod table2;
pub mod table6;
pub mod temporal;
pub mod throughput;
pub mod travel_time;
pub mod verification;
pub mod verify_cache;
