//! One module per table/figure of the paper's evaluation (§6), plus
//! engineering experiments beyond the paper ([`throughput`]: the parallel
//! batch engine's queries/sec scaling).
//!
//! Each module exposes a `run_*` function returning plain rows plus a
//! `print_*` helper; the `repro` binary wires them to subcommands. The
//! mapping to the paper is tabulated in `DESIGN.md` §5 and the measured
//! shapes are recorded in `EXPERIMENTS.md`.

pub mod candidates;
pub mod enum_baselines;
pub mod eta;
pub mod naturalness;
pub mod query_time;
pub mod table2;
pub mod table6;
pub mod temporal;
pub mod throughput;
pub mod travel_time;
pub mod verification;
