//! Figures 9–10: comparison against the enumeration-based whole-matching
//! baselines (DITA, ERP-index) on a small dataset.
//!
//! These baselines index every subtrajectory, so — exactly as in the paper —
//! they only run on a dataset fraction that fits in memory.

use crate::data::{Dataset, FuncKind, Scale};
use crate::table::{fmt_ms, print_table};
use baselines::{DitaIndex, ErpIndex};
use std::time::Instant;
use traj::TrajectoryStore;
use trajsearch_core::{EngineBuilder, Query, VerifyMode};
use wed::models::Erp;
use wed::Sym;

#[derive(Debug, Clone)]
pub struct EnumRow {
    pub func: &'static str,
    pub method: &'static str,
    /// τ-ratio (fig 9) or #trajectories indexed (fig 10).
    pub x: f64,
    pub ms_per_query: f64,
    pub avg_candidates: f64,
}

/// Builds the small store used by both figures: a prefix of the Beijing
/// stand-in with shortened trajectories so subtrajectory enumeration stays
/// in memory.
fn small_store(d: &Dataset, n: usize) -> TrajectoryStore {
    d.store
        .iter()
        .take(n)
        .map(|(_, t)| {
            let cut = t.len().min(30);
            traj::Trajectory::new(t.path()[..cut].to_vec(), t.times()[..cut].to_vec())
        })
        .collect()
}

fn time_queries<F: FnMut(&[Sym], f64) -> usize>(
    queries: &[(Vec<Sym>, f64)],
    mut f: F,
) -> (f64, f64) {
    let t0 = Instant::now();
    let mut cands = 0usize;
    for (q, tau) in queries {
        cands += f(q, *tau);
    }
    let ms = t0.elapsed().as_secs_f64() * 1e3 / queries.len().max(1) as f64;
    (ms, cands as f64 / queries.len().max(1) as f64)
}

/// Runs OSF-BT / OSF-SW / DITA (EDR and ERP) / ERP-index (ERP only) on
/// `ntraj` indexed trajectories across τ-ratios (Figure 9) or across
/// trajectory counts at fixed ratio 0.1 (Figure 10).
pub fn run(
    xs: &[f64],
    sweep_tau: bool,
    base_traj: usize,
    qlen: usize,
    nq: usize,
    scale: Scale,
) -> Vec<EnumRow> {
    let d = Dataset::load("beijing", scale);
    let mut rows = Vec::new();

    for &func in &[FuncKind::Edr, FuncKind::Erp] {
        let model = d.model(func);
        for &x in xs {
            let (ratio, ntraj) = if sweep_tau {
                (x, base_traj)
            } else {
                (0.1, x as usize)
            };
            let store = small_store(&d, ntraj.min(d.store.len()));
            let queries: Vec<(Vec<Sym>, f64)> = d
                .sample_queries(func, qlen, nq, 130)
                .into_iter()
                .map(|q| {
                    let tau = d.tau_for(&*model, &q, ratio);
                    (q, tau)
                })
                .collect();

            // OSF engine (both verifications).
            let engine = EngineBuilder::new(&*model, &store, d.net.num_vertices()).build();
            for (name, mode) in [("OSF-BT", VerifyMode::Trie), ("OSF-SW", VerifyMode::Sw)] {
                let (ms, cands) = time_queries(&queries, |q, tau| {
                    let query = Query::threshold(q.to_vec(), tau)
                        .verify(mode)
                        .build()
                        .expect("valid");
                    engine.run(&query).expect("run").stats.candidates
                });
                rows.push(EnumRow {
                    func: func.name(),
                    method: name,
                    x,
                    ms_per_query: ms,
                    avg_candidates: cands,
                });
            }

            // DITA on the same model.
            let dita = DitaIndex::new(&*model, &store, 6);
            let (ms, cands) = time_queries(&queries, |q, tau| dita.search(q, tau).1.candidates);
            rows.push(EnumRow {
                func: func.name(),
                method: "DITA",
                x,
                ms_per_query: ms,
                avg_candidates: cands,
            });

            // ERP-index only applies to ERP.
            if func == FuncKind::Erp {
                let erp = Erp::new(d.net.clone(), 1e-4 * d.median_nn_distance());
                let erpi = ErpIndex::new(&erp, &store);
                let (ms, cands) = time_queries(&queries, |q, tau| erpi.search(q, tau).1.candidates);
                rows.push(EnumRow {
                    func: func.name(),
                    method: "ERP-index",
                    x,
                    ms_per_query: ms,
                    avg_candidates: cands,
                });
            }
        }
    }
    rows
}

pub fn print(rows: &[EnumRow], xlabel: &str) {
    println!("\nFigures 9-10: vs enumeration-based baselines (small dataset)");
    print_table(
        &["Func", xlabel, "Method", "ms/query", "avg #cand"],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.func.to_string(),
                    format!("{}", r.x),
                    r.method.to_string(),
                    fmt_ms(r.ms_per_query),
                    format!("{:.1}", r.avg_candidates),
                ]
            })
            .collect::<Vec<_>>(),
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enumeration_baselines_run_and_report() {
        let rows = run(&[0.1], true, 30, 6, 2, Scale(0.01));
        let methods: Vec<_> = rows.iter().map(|r| r.method).collect();
        assert!(methods.contains(&"OSF-BT"));
        assert!(methods.contains(&"DITA"));
        assert!(methods.contains(&"ERP-index"));
        for r in &rows {
            assert!(r.ms_per_query >= 0.0);
        }
    }
}
