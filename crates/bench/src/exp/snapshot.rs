//! Snapshot persistence: cold start and footprint of the on-disk index
//! (`trajsearch-persist`), plain and with temporal postings.
//!
//! Not a paper experiment — the paper rebuilds its index per run — but the
//! ROADMAP's serving direction needs restarts that do not pay the rebuild:
//! this measures the full persistence loop (`rebuild` → `write` → `open`)
//! on the same dataset and then proves the reopened engine is worth
//! trusting by running a mixed threshold workload against the in-memory
//! reference, match-identical and counter-identical.
//!
//! Columns split into wall-clock (advisory: `rebuild_ms`, `write_ms`,
//! `open_ms`) and deterministic counters (`candidates`, `results`,
//! `file_bytes`, `compact_bytes`, `inverted_bytes`) — the latter are what
//! `repro --fail-on-regress` gates across runs: the snapshot format
//! growing, or the reopened index answering differently, fails CI even
//! when timings jitter.

use super::{host_cpus, write_bench_json};
use crate::data::{Dataset, FuncKind, Scale};
use crate::table::{fmt_bytes, fmt_ms, print_table};
use std::time::Instant;
use trajsearch_core::{
    EngineBuilder, InvertedIndex, PostingSource, Query, TemporalConstraint, TimeInterval,
};
use trajsearch_persist::Snapshot;
use wed::Sym;

/// One measured point: the persistence loop with or without the temporal
/// (by-departure) section.
#[derive(Debug, Clone)]
pub struct SnapshotRow {
    pub dataset: String,
    /// `plain` or `temporal` (by-departure orderings persisted too).
    pub variant: &'static str,
    pub trajectories: usize,
    pub postings: usize,
    /// In-memory rebuild from the store (the cost a snapshot avoids).
    pub rebuild_ms: f64,
    pub write_ms: f64,
    /// `Snapshot::open`: read + checksum + validated decode.
    pub open_ms: f64,
    pub file_bytes: usize,
    /// Footprint of the reopened `CompactIndex`.
    pub compact_bytes: usize,
    /// Footprint of the `InvertedIndex` it replaces.
    pub inverted_bytes: usize,
    pub queries: usize,
    /// Summed deterministic counters from the reopened engine's workload,
    /// self-checked equal to the in-memory reference.
    pub candidates: usize,
    pub results: usize,
}

/// Runs the persistence loop per variant and self-checks the reopened
/// engine match- and counter-identical to the in-memory one on a mixed
/// threshold workload (full option-grid equivalence is proptested in
/// `persist/tests/equivalence.rs`; this runs at experiment scale on every
/// CI pass).
pub fn run(which: &str, qlen: usize, nq: usize, tau_ratio: f64, scale: Scale) -> Vec<SnapshotRow> {
    let d = Dataset::load(which, scale);
    let func = FuncKind::Edr;
    let model = d.model(func);
    let (store, alphabet) = d.store_for(func);

    // Dataset time range, for the temporal variant's constraint window.
    let (mut tmin, mut tmax) = (f64::INFINITY, f64::NEG_INFINITY);
    for (_, t) in store.iter() {
        tmin = tmin.min(t.departure());
        tmax = tmax.max(t.arrival());
    }
    let constraint =
        TemporalConstraint::overlaps(TimeInterval::new(tmin, tmin + 0.5 * (tmax - tmin)));

    let base_queries: Vec<(Vec<Sym>, f64)> = d
        .sample_queries(func, qlen, nq, 97)
        .into_iter()
        .map(|q| {
            let tau = d.tau_for(&*model, &q, tau_ratio);
            (q, tau)
        })
        .collect();

    let mut rows = Vec::with_capacity(2);
    for variant in ["plain", "temporal"] {
        let temporal = variant == "temporal";
        let t0 = Instant::now();
        let mut inverted = InvertedIndex::build(store, alphabet);
        if temporal {
            inverted.enable_temporal_postings();
        }
        let rebuild_ms = t0.elapsed().as_secs_f64() * 1e3;

        let path = std::env::temp_dir().join(format!(
            "trajsearch_snapshot_exp_{}_{variant}.snap",
            std::process::id()
        ));
        let t0 = Instant::now();
        let info = Snapshot::write(&path, store, &inverted).expect("snapshot writes");
        let write_ms = t0.elapsed().as_secs_f64() * 1e3;
        let t0 = Instant::now();
        let snap = Snapshot::open(&path).expect("snapshot reopens");
        let open_ms = t0.elapsed().as_secs_f64() * 1e3;
        std::fs::remove_file(&path).ok();

        let queries: Vec<Query> = base_queries
            .iter()
            .map(|(q, tau)| {
                let mut b = Query::threshold(q.clone(), *tau);
                if temporal {
                    b = b
                        .temporal(constraint)
                        .temporal_filter(true)
                        .temporal_postings(true);
                }
                b.build().expect("valid workload")
            })
            .collect();

        let inverted_bytes = inverted.size_bytes();
        let compact_bytes = snap.index().size_bytes();
        assert!(
            compact_bytes < inverted_bytes,
            "{variant}: reopened CompactIndex ({compact_bytes}) must undercut \
             the in-memory InvertedIndex ({inverted_bytes})"
        );

        let reference = EngineBuilder::new(&*model, store, alphabet).build_with(inverted);
        let (snap_store, compact) = snap.into_parts();
        let engine = EngineBuilder::new(&*model, &snap_store, alphabet).build_with(compact);
        let (mut candidates, mut results) = (0usize, 0usize);
        for query in &queries {
            let want = reference.run(query).expect("reference runs");
            let got = engine.run(query).expect("reopened engine runs");
            assert_eq!(got.matches, want.matches, "{variant}: matches diverged");
            assert_eq!(
                got.stats.candidates, want.stats.candidates,
                "{variant}: candidate counts diverged"
            );
            candidates += got.stats.candidates;
            results += got.matches.len();
        }

        rows.push(SnapshotRow {
            dataset: d.name.to_string(),
            variant,
            trajectories: engine.index().num_trajectories(),
            postings: engine.index().total_postings(),
            rebuild_ms,
            write_ms,
            open_ms,
            file_bytes: info.file_bytes,
            compact_bytes,
            inverted_bytes,
            queries: queries.len(),
            candidates,
            results,
        });
    }
    rows
}

pub fn print(rows: &[SnapshotRow]) {
    println!(
        "\nSnapshot persistence: rebuild vs write/open, footprint, workload self-check ({} host cpus)",
        host_cpus()
    );
    print_table(
        &[
            "Dataset",
            "Variant",
            "Postings",
            "Rebuild ms",
            "Write ms",
            "Open ms",
            "File",
            "Compact",
            "Inverted",
            "Queries",
            "Results",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.dataset.clone(),
                    r.variant.to_string(),
                    r.postings.to_string(),
                    fmt_ms(r.rebuild_ms),
                    fmt_ms(r.write_ms),
                    fmt_ms(r.open_ms),
                    fmt_bytes(r.file_bytes),
                    fmt_bytes(r.compact_bytes),
                    fmt_bytes(r.inverted_bytes),
                    r.queries.to_string(),
                    r.results.to_string(),
                ]
            })
            .collect::<Vec<_>>(),
    );
}

/// Writes the rows as a machine-readable JSON document (shared envelope:
/// the crate's private `write_bench_json`). `candidates` and `results` are
/// deterministic counters the `--fail-on-regress` trend gate can fail on.
pub fn write_json(rows: &[SnapshotRow], path: &str) -> std::io::Result<()> {
    let rendered: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "{{\"dataset\": \"{}\", \"variant\": \"{}\", \"trajectories\": {}, \
                 \"postings\": {}, \"rebuild_ms\": {:.3}, \"write_ms\": {:.3}, \
                 \"open_ms\": {:.3}, \"file_bytes\": {}, \"compact_bytes\": {}, \
                 \"inverted_bytes\": {}, \"queries\": {}, \"candidates\": {}, \
                 \"results\": {}}}",
                r.dataset,
                r.variant,
                r.trajectories,
                r.postings,
                r.rebuild_ms,
                r.write_ms,
                r.open_ms,
                r.file_bytes,
                r.compact_bytes,
                r.inverted_bytes,
                r.queries,
                r.candidates,
                r.results
            )
        })
        .collect();
    write_bench_json(path, "snapshot", "open_ms", &rendered)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_cover_both_variants_and_shrink_the_index() {
        let rows = run("beijing", 20, 4, 0.1, Scale(0.01));
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].variant, "plain");
        assert_eq!(rows[1].variant, "temporal");
        for r in &rows {
            assert!(r.open_ms > 0.0 && r.write_ms > 0.0 && r.rebuild_ms > 0.0);
            assert!(r.compact_bytes < r.inverted_bytes);
            assert!(r.file_bytes > 0);
            assert_eq!(r.queries, 4);
        }
        // Same postings either way; the temporal file carries an extra
        // section, so it is strictly bigger.
        assert_eq!(rows[0].postings, rows[1].postings);
        assert!(rows[1].file_bytes > rows[0].file_bytes);
    }

    #[test]
    fn json_dump_is_parsable_shape() {
        let rows = run("beijing", 20, 3, 0.1, Scale(0.01));
        let path = std::env::temp_dir().join("trajsearch_snapshot_exp_test.json");
        let path = path.to_str().unwrap();
        write_json(&rows, path).unwrap();
        let text = std::fs::read_to_string(path).unwrap();
        std::fs::remove_file(path).ok();
        assert!(text.contains("\"experiment\": \"snapshot\""));
        assert!(text.contains("\"variant\": \"plain\""));
        assert!(text.contains("\"variant\": \"temporal\""));
        assert!(text.contains("\"candidates\""));
        assert_eq!(text.matches('{').count(), text.matches('}').count());
    }
}
