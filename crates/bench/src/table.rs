//! Minimal fixed-width table printer for the `repro` binary's output.

/// Prints a header row followed by data rows, each column padded to its
/// widest cell.
pub fn print_table(header: &[&str], rows: &[Vec<String>]) {
    let cols = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), cols, "row arity mismatch");
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let line = |cells: Vec<String>| {
        let parts: Vec<String> = cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:<width$}", c, width = widths[i]))
            .collect();
        println!("  {}", parts.join("  "));
    };
    line(header.iter().map(|s| s.to_string()).collect());
    line(widths.iter().map(|w| "-".repeat(*w)).collect());
    for row in rows {
        line(row.clone());
    }
}

/// Formats milliseconds with adaptive precision.
pub fn fmt_ms(ms: f64) -> String {
    if ms >= 100.0 {
        format!("{ms:.0}")
    } else if ms >= 1.0 {
        format!("{ms:.2}")
    } else {
        format!("{ms:.4}")
    }
}

/// Formats a ratio as a percentage.
pub fn fmt_pct(x: f64) -> String {
    format!("{:.2}%", x * 100.0)
}

/// Formats byte counts human-readably.
pub fn fmt_bytes(b: usize) -> String {
    const KB: f64 = 1024.0;
    let b = b as f64;
    if b >= KB * KB * KB {
        format!("{:.2} GB", b / (KB * KB * KB))
    } else if b >= KB * KB {
        format!("{:.2} MB", b / (KB * KB))
    } else if b >= KB {
        format!("{:.1} KB", b / KB)
    } else {
        format!("{b:.0} B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_ms(250.4), "250");
        assert_eq!(fmt_ms(2.504), "2.50");
        assert_eq!(fmt_ms(0.1234), "0.1234");
        assert_eq!(fmt_pct(0.2189), "21.89%");
        assert_eq!(fmt_bytes(512), "512 B");
        assert_eq!(fmt_bytes(2048), "2.0 KB");
        assert_eq!(fmt_bytes(3 * 1024 * 1024), "3.00 MB");
    }

    #[test]
    fn table_prints_without_panic() {
        print_table(
            &["a", "bb"],
            &[vec!["1".into(), "2".into()], vec!["333".into(), "4".into()]],
        );
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_mismatch_panics() {
        print_table(&["a"], &[vec!["1".into(), "2".into()]]);
    }
}
