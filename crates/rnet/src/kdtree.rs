//! A static 2-d tree over vertex coordinates.
//!
//! Used for the spatial queries of §4.2: range queries materialize the
//! substitution neighborhoods `B(q)` of EDR/ERP, nearest-neighbor queries
//! support map matching, and `nearest_outside` computes the Eq. (7) lower
//! cost `c(q)` for ERP (the cheapest substitution *not* in `B(q)`).

use crate::geo::Point;
use crate::graph::VertexId;

/// Static kd-tree over a fixed point set. Points are referenced by the index
/// they had in the input slice (which for road networks is the vertex id).
#[derive(Debug, Clone)]
pub struct KdTree {
    points: Vec<Point>,
    /// Node-ordered point indices: a balanced tree laid out by recursive
    /// median split; `nodes[mid]` is the split point of each range.
    nodes: Vec<u32>,
}

impl KdTree {
    /// Builds a kd-tree over `points`. O(n log² n) via sort-based median
    /// selection (build time is irrelevant next to index construction).
    pub fn build(points: &[Point]) -> Self {
        let mut nodes: Vec<u32> = (0..points.len() as u32).collect();
        let pts = points.to_vec();
        build_rec(&pts, &mut nodes, 0);
        KdTree { points: pts, nodes }
    }

    pub fn len(&self) -> usize {
        self.points.len()
    }

    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// All point ids within Euclidean distance `r` (inclusive) of `center`.
    pub fn range(&self, center: Point, r: f64) -> Vec<VertexId> {
        assert!(r >= 0.0);
        let mut out = Vec::new();
        if !self.is_empty() {
            self.range_rec(0, self.nodes.len(), 0, center, r * r, &mut out);
        }
        out
    }

    fn range_rec(
        &self,
        lo: usize,
        hi: usize,
        axis: usize,
        c: Point,
        r2: f64,
        out: &mut Vec<VertexId>,
    ) {
        if lo >= hi {
            return;
        }
        let mid = lo + (hi - lo) / 2;
        let idx = self.nodes[mid];
        let p = self.points[idx as usize];
        if p.dist2(&c) <= r2 {
            out.push(idx);
        }
        let delta = if axis == 0 { c.x - p.x } else { c.y - p.y };
        let next = (axis + 1) % 2;
        // Search the side containing the query first, the other side only if
        // the splitting plane is within range.
        let (near, far) = if delta <= 0.0 {
            ((lo, mid), (mid + 1, hi))
        } else {
            ((mid + 1, hi), (lo, mid))
        };
        self.range_rec(near.0, near.1, next, c, r2, out);
        if delta * delta <= r2 {
            self.range_rec(far.0, far.1, next, c, r2, out);
        }
    }

    /// Nearest point to `center`, or `None` on an empty tree.
    pub fn nearest(&self, center: Point) -> Option<(VertexId, f64)> {
        self.nearest_filtered(center, |_| true)
    }

    /// Nearest point strictly farther than `r` from `center`.
    ///
    /// This realizes Eq. (7) for ERP: `c(q) = min_{q' ∉ B(q)} sub(q, q')`
    /// where `B(q)` is the radius-`r` ball.
    pub fn nearest_outside(&self, center: Point, r: f64) -> Option<(VertexId, f64)> {
        let r2 = r * r;
        self.nearest_filtered_with_min(center, move |p: &Point, c: &Point| p.dist2(c) > r2)
    }

    /// Nearest point among those whose id passes `keep`.
    pub fn nearest_filtered(
        &self,
        center: Point,
        keep: impl Fn(VertexId) -> bool,
    ) -> Option<(VertexId, f64)> {
        let mut best: Option<(VertexId, f64)> = None;
        if !self.is_empty() {
            self.nearest_rec(0, self.nodes.len(), 0, center, &mut best, &|id, _p| {
                keep(id)
            });
        }
        best.map(|(id, d2)| (id, d2.sqrt()))
    }

    fn nearest_filtered_with_min(
        &self,
        center: Point,
        pred: impl Fn(&Point, &Point) -> bool,
    ) -> Option<(VertexId, f64)> {
        let mut best: Option<(VertexId, f64)> = None;
        if !self.is_empty() {
            let c = center;
            self.nearest_rec(0, self.nodes.len(), 0, center, &mut best, &move |_id, p| {
                pred(p, &c)
            });
        }
        best.map(|(id, d2)| (id, d2.sqrt()))
    }

    fn nearest_rec(
        &self,
        lo: usize,
        hi: usize,
        axis: usize,
        c: Point,
        best: &mut Option<(VertexId, f64)>,
        keep: &dyn Fn(VertexId, &Point) -> bool,
    ) {
        if lo >= hi {
            return;
        }
        let mid = lo + (hi - lo) / 2;
        let idx = self.nodes[mid];
        let p = self.points[idx as usize];
        let d2 = p.dist2(&c);
        if keep(idx, &p) && best.is_none_or(|(_, b)| d2 < b) {
            *best = Some((idx, d2));
        }
        let delta = if axis == 0 { c.x - p.x } else { c.y - p.y };
        let next = (axis + 1) % 2;
        let (near, far) = if delta <= 0.0 {
            ((lo, mid), (mid + 1, hi))
        } else {
            ((mid + 1, hi), (lo, mid))
        };
        self.nearest_rec(near.0, near.1, next, c, best, keep);
        // The far side can only help if the splitting plane is closer than
        // the current best (or no best exists yet, e.g. all near-side points
        // were filtered out).
        if best.is_none_or(|(_, b)| delta * delta < b) {
            self.nearest_rec(far.0, far.1, next, c, best, keep);
        }
    }
}

fn build_rec(points: &[Point], nodes: &mut [u32], axis: usize) {
    if nodes.len() <= 1 {
        return;
    }
    let mid = nodes.len() / 2;
    nodes.select_nth_unstable_by(mid, |&a, &b| {
        let (pa, pb) = (points[a as usize], points[b as usize]);
        let (ka, kb) = if axis == 0 {
            (pa.x, pb.x)
        } else {
            (pa.y, pb.y)
        };
        ka.total_cmp(&kb)
    });
    let (left, rest) = nodes.split_at_mut(mid);
    let right = &mut rest[1..];
    let next = (axis + 1) % 2;
    build_rec(points, left, next);
    build_rec(points, right, next);
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn random_points(n: usize, seed: u64) -> Vec<Point> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        (0..n)
            .map(|_| Point::new(rng.gen_range(-100.0..100.0), rng.gen_range(-100.0..100.0)))
            .collect()
    }

    fn brute_range(pts: &[Point], c: Point, r: f64) -> Vec<VertexId> {
        let mut v: Vec<VertexId> = pts
            .iter()
            .enumerate()
            .filter(|(_, p)| p.dist(&c) <= r)
            .map(|(i, _)| i as VertexId)
            .collect();
        v.sort();
        v
    }

    #[test]
    fn range_matches_brute_force() {
        let pts = random_points(500, 1);
        let t = KdTree::build(&pts);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        for _ in 0..50 {
            let c = Point::new(rng.gen_range(-110.0..110.0), rng.gen_range(-110.0..110.0));
            let r = rng.gen_range(0.0..60.0);
            let mut got = t.range(c, r);
            got.sort();
            assert_eq!(got, brute_range(&pts, c, r));
        }
    }

    #[test]
    fn nearest_matches_brute_force() {
        let pts = random_points(300, 3);
        let t = KdTree::build(&pts);
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        for _ in 0..50 {
            let c = Point::new(rng.gen_range(-110.0..110.0), rng.gen_range(-110.0..110.0));
            let (got, gd) = t.nearest(c).unwrap();
            let bd = pts.iter().map(|p| p.dist(&c)).fold(f64::INFINITY, f64::min);
            assert!(
                (gd - bd).abs() < 1e-9,
                "nearest dist mismatch: {gd} vs {bd}"
            );
            assert!((pts[got as usize].dist(&c) - bd).abs() < 1e-9);
        }
    }

    #[test]
    fn nearest_outside_matches_brute_force() {
        let pts = random_points(300, 5);
        let t = KdTree::build(&pts);
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        for _ in 0..50 {
            let c = pts[rng.gen_range(0..pts.len())];
            let r = rng.gen_range(0.0..80.0);
            let got = t.nearest_outside(c, r);
            let brute = pts
                .iter()
                .map(|p| p.dist(&c))
                .filter(|&d| d > r)
                .fold(f64::INFINITY, f64::min);
            match got {
                Some((_, d)) => assert!((d - brute).abs() < 1e-9, "{d} vs {brute} (r={r})"),
                None => assert!(brute.is_infinite()),
            }
        }
    }

    #[test]
    fn empty_and_singleton() {
        let t = KdTree::build(&[]);
        assert!(t.is_empty());
        assert_eq!(t.nearest(Point::new(0.0, 0.0)), None);
        assert!(t.range(Point::new(0.0, 0.0), 10.0).is_empty());

        let t1 = KdTree::build(&[Point::new(1.0, 1.0)]);
        assert_eq!(t1.len(), 1);
        assert_eq!(t1.nearest(Point::new(0.0, 1.0)), Some((0, 1.0)));
        assert_eq!(t1.range(Point::new(0.0, 1.0), 0.5), Vec::<VertexId>::new());
        assert_eq!(t1.range(Point::new(0.0, 1.0), 1.0), vec![0]);
    }

    #[test]
    fn range_is_inclusive_nearest_outside_exclusive() {
        let pts = vec![Point::new(0.0, 0.0), Point::new(1.0, 0.0)];
        let t = KdTree::build(&pts);
        let mut r = t.range(Point::new(0.0, 0.0), 1.0);
        r.sort();
        assert_eq!(r, vec![0, 1]); // distance exactly 1.0 is inside

        // Point at exactly r=1.0 is NOT "outside".
        assert_eq!(t.nearest_outside(Point::new(0.0, 0.0), 1.0), None);
        let (id, d) = t.nearest_outside(Point::new(0.0, 0.0), 0.5).unwrap();
        assert_eq!((id, d), (1, 1.0));
    }

    #[test]
    fn nearest_filtered_skips_excluded_ids() {
        let pts = vec![
            Point::new(0.0, 0.0),
            Point::new(2.0, 0.0),
            Point::new(5.0, 0.0),
        ];
        let t = KdTree::build(&pts);
        let (id, d) = t
            .nearest_filtered(Point::new(0.1, 0.0), |v| v != 0)
            .unwrap();
        assert_eq!(id, 1);
        assert!((d - 1.9).abs() < 1e-12);
    }
}
