//! Shortest-path computations on road networks.
//!
//! Three flavors are provided, matching the three uses in the search engine:
//!
//! * [`sssp`] — full single-source distances, used by trip generation and as
//!   a test oracle for hub labels.
//! * [`bounded`] — all vertices within a radius, used to materialize the
//!   substitution neighborhoods `B(q)` of NetEDR/NetERP (Definition 4) and
//!   the smallest cost beyond the radius (Eq. 7).
//! * [`shortest_path`] — point-to-point path extraction with early stop, used
//!   by the trip generator and the alternative-route experiment.
//!
//! All variants accept a [`Mode`]: directed edge weights (`length`), directed
//! travel times, or the undirected symmetrization the paper uses to make
//! network distances symmetric (§2.2.3).

use crate::graph::{RoadNetwork, VertexId};
use crate::TotalF64;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Which weight/direction regime a shortest-path run uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Directed, weight = edge length (meters).
    DirectedLength,
    /// Directed, weight = free-flow travel time (seconds).
    DirectedTime,
    /// Undirected symmetrization of lengths (min of the two directions);
    /// required for symmetric NetEDR/NetERP costs.
    UndirectedLength,
}

fn for_each_neighbor(g: &RoadNetwork, v: VertexId, mode: Mode, mut f: impl FnMut(VertexId, f64)) {
    match mode {
        Mode::DirectedLength => {
            for &(to, eid) in g.out_neighbors(v) {
                f(to, g.edge(eid).length);
            }
        }
        Mode::DirectedTime => {
            for &(to, eid) in g.out_neighbors(v) {
                f(to, g.edge(eid).travel_time);
            }
        }
        Mode::UndirectedLength => g.undirected_neighbors(v, f),
    }
}

/// Full single-source shortest distances from `src`.
///
/// Unreachable vertices get `f64::INFINITY`.
pub fn sssp(g: &RoadNetwork, src: VertexId, mode: Mode) -> Vec<f64> {
    let mut dist = vec![f64::INFINITY; g.num_vertices()];
    let mut heap = BinaryHeap::new();
    dist[src as usize] = 0.0;
    heap.push(Reverse((TotalF64(0.0), src)));
    while let Some(Reverse((TotalF64(d), v))) = heap.pop() {
        if d > dist[v as usize] {
            continue;
        }
        for_each_neighbor(g, v, mode, |to, w| {
            let nd = d + w;
            if nd < dist[to as usize] {
                dist[to as usize] = nd;
                heap.push(Reverse((TotalF64(nd), to)));
            }
        });
    }
    dist
}

/// All vertices within `radius` of `src` (inclusive), in non-decreasing
/// distance order, together with the smallest settled distance strictly
/// greater than `radius` (if any vertex lies beyond it).
///
/// The pair is exactly what substitution-neighborhood construction needs:
/// the in-radius set is `B(q)` and the first distance beyond the radius
/// lower-bounds `c(q)` for distance-substitution cost models.
#[derive(Debug, Clone)]
pub struct BoundedResult {
    /// `(vertex, distance)` for every vertex with `distance <= radius`,
    /// sorted by distance.
    pub within: Vec<(VertexId, f64)>,
    /// Distance of the nearest vertex strictly beyond the radius, if any.
    pub next_beyond: Option<f64>,
}

/// Bounded-radius Dijkstra from `src`.
pub fn bounded(g: &RoadNetwork, src: VertexId, radius: f64, mode: Mode) -> BoundedResult {
    assert!(radius >= 0.0, "radius must be non-negative");
    let mut dist = std::collections::HashMap::new();
    let mut heap = BinaryHeap::new();
    let mut within = Vec::new();
    let mut next_beyond = None;
    dist.insert(src, 0.0);
    heap.push(Reverse((TotalF64(0.0), src)));
    while let Some(Reverse((TotalF64(d), v))) = heap.pop() {
        if d > *dist.get(&v).unwrap_or(&f64::INFINITY) {
            continue;
        }
        if d > radius {
            next_beyond = Some(d);
            break;
        }
        within.push((v, d));
        for_each_neighbor(g, v, mode, |to, w| {
            let nd = d + w;
            if nd < *dist.get(&to).unwrap_or(&f64::INFINITY) {
                dist.insert(to, nd);
                heap.push(Reverse((TotalF64(nd), to)));
            }
        });
    }
    BoundedResult {
        within,
        next_beyond,
    }
}

/// Point-to-point shortest path with early termination; returns the vertex
/// path (including both endpoints) and its cost, or `None` if unreachable.
pub fn shortest_path(
    g: &RoadNetwork,
    src: VertexId,
    dst: VertexId,
    mode: Mode,
) -> Option<(Vec<VertexId>, f64)> {
    if src == dst {
        return Some((vec![src], 0.0));
    }
    let mut dist = vec![f64::INFINITY; g.num_vertices()];
    let mut parent = vec![u32::MAX; g.num_vertices()];
    let mut heap = BinaryHeap::new();
    dist[src as usize] = 0.0;
    heap.push(Reverse((TotalF64(0.0), src)));
    while let Some(Reverse((TotalF64(d), v))) = heap.pop() {
        if d > dist[v as usize] {
            continue;
        }
        if v == dst {
            break;
        }
        for_each_neighbor(g, v, mode, |to, w| {
            let nd = d + w;
            if nd < dist[to as usize] {
                dist[to as usize] = nd;
                parent[to as usize] = v;
                heap.push(Reverse((TotalF64(nd), to)));
            }
        });
    }
    if dist[dst as usize].is_infinite() {
        return None;
    }
    let mut path = vec![dst];
    let mut cur = dst;
    while cur != src {
        cur = parent[cur as usize];
        path.push(cur);
    }
    path.reverse();
    Some((path, dist[dst as usize]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geo::Point;
    use crate::graph::GraphBuilder;

    /// 0 -1- 1 -1- 2
    /// |           |
    /// 10----------+   (edge 0->2 with weight 10)
    fn line_with_shortcut() -> RoadNetwork {
        let mut b = GraphBuilder::new();
        for i in 0..3 {
            b.add_vertex(Point::new(i as f64, 0.0));
        }
        b.add_bidirectional(0, 1, 1.0, 2.0);
        b.add_bidirectional(1, 2, 1.0, 2.0);
        b.add_bidirectional(0, 2, 10.0, 1.0);
        b.build()
    }

    #[test]
    fn sssp_prefers_short_path() {
        let g = line_with_shortcut();
        let d = sssp(&g, 0, Mode::DirectedLength);
        assert_eq!(d, vec![0.0, 1.0, 2.0]);
    }

    #[test]
    fn sssp_travel_time_mode_uses_times() {
        let g = line_with_shortcut();
        let d = sssp(&g, 0, Mode::DirectedTime);
        // Direct edge 0->2 has travel_time 1.0, cheaper than 2.0+2.0.
        assert_eq!(d[2], 1.0);
    }

    #[test]
    fn sssp_unreachable_is_infinite() {
        let mut b = GraphBuilder::new();
        b.add_vertex(Point::new(0.0, 0.0));
        b.add_vertex(Point::new(1.0, 0.0));
        b.add_edge(1, 0, 1.0, 1.0);
        let g = b.build();
        let d = sssp(&g, 0, Mode::DirectedLength);
        assert!(d[1].is_infinite());
    }

    #[test]
    fn bounded_matches_sssp_within_radius() {
        let g = line_with_shortcut();
        let r = bounded(&g, 0, 1.5, Mode::DirectedLength);
        let within: Vec<_> = r.within.iter().map(|&(v, _)| v).collect();
        assert_eq!(within, vec![0, 1]);
        // Nearest beyond 1.5 is vertex 2 at distance 2.0.
        assert_eq!(r.next_beyond, Some(2.0));
    }

    #[test]
    fn bounded_radius_zero_returns_source_only() {
        let g = line_with_shortcut();
        let r = bounded(&g, 1, 0.0, Mode::DirectedLength);
        assert_eq!(r.within, vec![(1, 0.0)]);
        assert_eq!(r.next_beyond, Some(1.0));
    }

    #[test]
    fn bounded_large_radius_has_no_beyond() {
        let g = line_with_shortcut();
        let r = bounded(&g, 0, 100.0, Mode::DirectedLength);
        assert_eq!(r.within.len(), 3);
        assert_eq!(r.next_beyond, None);
    }

    #[test]
    fn shortest_path_reconstructs_vertices() {
        let g = line_with_shortcut();
        let (p, c) = shortest_path(&g, 0, 2, Mode::DirectedLength).unwrap();
        assert_eq!(p, vec![0, 1, 2]);
        assert_eq!(c, 2.0);
    }

    #[test]
    fn shortest_path_trivial_and_unreachable() {
        let g = line_with_shortcut();
        assert_eq!(
            shortest_path(&g, 1, 1, Mode::DirectedLength).unwrap(),
            (vec![1], 0.0)
        );
        let mut b = GraphBuilder::new();
        b.add_vertex(Point::new(0.0, 0.0));
        b.add_vertex(Point::new(1.0, 0.0));
        b.add_edge(1, 0, 1.0, 1.0);
        let g2 = b.build();
        assert!(shortest_path(&g2, 0, 1, Mode::DirectedLength).is_none());
    }

    #[test]
    fn undirected_mode_ignores_orientation() {
        let mut b = GraphBuilder::new();
        for i in 0..3 {
            b.add_vertex(Point::new(i as f64, 0.0));
        }
        b.add_edge(1, 0, 1.0, 1.0);
        b.add_edge(1, 2, 1.0, 1.0);
        let g = b.build();
        let d = sssp(&g, 0, Mode::UndirectedLength);
        assert_eq!(d, vec![0.0, 1.0, 2.0]);
        // Directed mode cannot leave vertex 0.
        let dd = sssp(&g, 0, Mode::DirectedLength);
        assert!(dd[1].is_infinite());
    }
}
