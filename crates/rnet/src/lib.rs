//! Road-network substrate for subtrajectory similarity search.
//!
//! This crate provides every piece of road-network machinery the search engine
//! depends on:
//!
//! * [`graph`] — a directed, weighted road network embedded in the plane,
//!   stored in compressed sparse row (CSR) form for cache-friendly traversal.
//! * [`generator`] — synthetic "city" network generators (jittered grids with
//!   one-way streets, removed blocks and diagonal arterials) standing in for
//!   the OSM networks used by the paper (see `DESIGN.md` §4).
//! * [`dijkstra`] — single-source, bounded-radius and point-to-point shortest
//!   paths, used by the NetEDR/NetERP cost models, substitution-neighborhood
//!   computation and trip generation.
//! * [`hubs`] — a hub-labeling (pruned landmark labeling) index giving
//!   microsecond shortest-path-distance queries, as suggested in §4.2 of the
//!   paper for network-aware cost functions.
//! * [`kdtree`] — a 2-d tree over vertex coordinates supporting range,
//!   nearest-neighbor and nearest-outside-radius queries, used for EDR/ERP
//!   neighborhoods (Definition 4) and the ERP-index baseline.
//! * [`geo`] — plane geometry primitives.

pub mod dijkstra;
pub mod generator;
pub mod geo;
pub mod graph;
pub mod hubs;
pub mod io;
pub mod kdtree;

pub use generator::{CityParams, NetworkKind};
pub use geo::Point;
pub use graph::{Edge, EdgeId, GraphBuilder, RoadNetwork, VertexId};
pub use hubs::HubLabels;
pub use kdtree::KdTree;

/// A totally ordered `f64` wrapper for use in heaps and sorts.
///
/// Costs and distances in this workspace are finite and non-negative; the
/// wrapper uses `f64::total_cmp` so it is safe even if NaN sneaks in (NaN
/// sorts last).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TotalF64(pub f64);

impl Eq for TotalF64 {}

impl PartialOrd for TotalF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for TotalF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_f64_orders_like_f64() {
        let mut v = vec![TotalF64(3.0), TotalF64(-1.0), TotalF64(2.5)];
        v.sort();
        assert_eq!(v, vec![TotalF64(-1.0), TotalF64(2.5), TotalF64(3.0)]);
    }

    #[test]
    fn total_f64_nan_sorts_last() {
        let mut v = [TotalF64(f64::NAN), TotalF64(1.0)];
        v.sort();
        assert_eq!(v[0], TotalF64(1.0));
    }
}
