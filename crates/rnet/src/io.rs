//! Plain-text serialization of road networks.
//!
//! A minimal, line-oriented format so users can bring their own (e.g.
//! OSM-derived) networks without pulling in heavyweight formats:
//!
//! ```text
//! # comments and blank lines are ignored
//! v <x> <y>                    # vertex, ids assigned in file order
//! e <from> <to> <length> <travel_time>
//! ```
//!
//! Lengths are meters, travel times seconds, matching the rest of the crate.

use crate::geo::Point;
use crate::graph::{GraphBuilder, RoadNetwork};
use std::fmt::Write as _;

/// Errors from [`parse_network`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// Line number (1-based) and description.
    Malformed(usize, String),
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::Malformed(line, msg) => write!(f, "line {line}: {msg}"),
        }
    }
}

impl std::error::Error for ParseError {}

/// Serializes a network in the `v`/`e` line format.
pub fn format_network(net: &RoadNetwork) -> String {
    let mut out = String::with_capacity(net.num_vertices() * 24 + net.num_edges() * 32);
    out.push_str("# trajsearch road network\n");
    for v in 0..net.num_vertices() as u32 {
        let p = net.coord(v);
        let _ = writeln!(out, "v {} {}", p.x, p.y);
    }
    for e in net.edges() {
        let _ = writeln!(out, "e {} {} {} {}", e.from, e.to, e.length, e.travel_time);
    }
    out
}

/// Parses the `v`/`e` line format into a [`RoadNetwork`].
pub fn parse_network(text: &str) -> Result<RoadNetwork, ParseError> {
    let mut b = GraphBuilder::new();
    let mut num_vertices = 0usize;
    for (i, raw) in text.lines().enumerate() {
        let lineno = i + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        match parts.next() {
            Some("v") => {
                let x = parse_f64(parts.next(), lineno, "x")?;
                let y = parse_f64(parts.next(), lineno, "y")?;
                b.add_vertex(Point::new(x, y));
                num_vertices += 1;
            }
            Some("e") => {
                let from = parse_u32(parts.next(), lineno, "from")?;
                let to = parse_u32(parts.next(), lineno, "to")?;
                let len = parse_f64(parts.next(), lineno, "length")?;
                let tt = parse_f64(parts.next(), lineno, "travel_time")?;
                if (from as usize) >= num_vertices || (to as usize) >= num_vertices {
                    return Err(ParseError::Malformed(
                        lineno,
                        format!("edge endpoint out of range ({from} or {to} >= {num_vertices})"),
                    ));
                }
                if !(len > 0.0 && len.is_finite() && tt > 0.0 && tt.is_finite()) {
                    return Err(ParseError::Malformed(
                        lineno,
                        "non-positive edge weight".into(),
                    ));
                }
                b.add_edge(from, to, len, tt);
            }
            Some(other) => {
                return Err(ParseError::Malformed(
                    lineno,
                    format!("unknown record type {other:?}"),
                ))
            }
            None => unreachable!("blank lines are skipped"),
        }
        if parts.next().is_some() {
            return Err(ParseError::Malformed(lineno, "trailing fields".into()));
        }
    }
    Ok(b.build())
}

fn parse_f64(tok: Option<&str>, line: usize, what: &str) -> Result<f64, ParseError> {
    tok.ok_or_else(|| ParseError::Malformed(line, format!("missing {what}")))?
        .parse()
        .map_err(|_| ParseError::Malformed(line, format!("bad {what}")))
}

fn parse_u32(tok: Option<&str>, line: usize, what: &str) -> Result<u32, ParseError> {
    tok.ok_or_else(|| ParseError::Malformed(line, format!("missing {what}")))?
        .parse()
        .map_err(|_| ParseError::Malformed(line, format!("bad {what}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{CityParams, NetworkKind};

    #[test]
    fn roundtrip_preserves_network() {
        let net = CityParams::tiny(NetworkKind::City).seed(3).generate();
        let text = format_network(&net);
        let back = parse_network(&text).unwrap();
        assert_eq!(back.num_vertices(), net.num_vertices());
        assert_eq!(back.num_edges(), net.num_edges());
        for v in 0..net.num_vertices() as u32 {
            assert_eq!(back.coord(v), net.coord(v));
        }
        for (a, b) in net.edges().iter().zip(back.edges()) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn parses_hand_written_input() {
        let text = "\n# tiny\nv 0 0\nv 100 0\n\ne 0 1 100 12.5\ne 1 0 100 12.5\n";
        let net = parse_network(text).unwrap();
        assert_eq!(net.num_vertices(), 2);
        assert_eq!(net.num_edges(), 2);
        assert_eq!(net.edge(0).travel_time, 12.5);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(matches!(
            parse_network("x 1 2"),
            Err(ParseError::Malformed(1, _))
        ));
        assert!(parse_network("v 0").is_err()); // missing y
        assert!(parse_network("v 0 0\ne 0 5 1 1").is_err()); // endpoint range
        assert!(parse_network("v 0 0\nv 1 0\ne 0 1 0 1").is_err()); // zero weight
        assert!(parse_network("v 0 0 7").is_err()); // trailing
        let err = parse_network("v a b").unwrap_err();
        assert!(err.to_string().contains("line 1"));
    }
}
