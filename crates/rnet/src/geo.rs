//! Plane geometry primitives.
//!
//! Vertex coordinates are planar (meters); the paper's datasets are city-scale
//! where a local Euclidean projection is standard practice.

/// A point in the plane, in meters.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Point {
    pub x: f64,
    pub y: f64,
}

impl Point {
    pub const fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Euclidean distance to `other`.
    pub fn dist(&self, other: &Point) -> f64 {
        self.dist2(other).sqrt()
    }

    /// Squared Euclidean distance to `other` (avoids the sqrt in comparisons).
    pub fn dist2(&self, other: &Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Component-wise sum, used by the ERP-index baseline which indexes the
    /// sum of all coordinates of a (sub)trajectory.
    pub fn add(&self, other: &Point) -> Point {
        Point::new(self.x + other.x, self.y + other.y)
    }

    pub fn sub(&self, other: &Point) -> Point {
        Point::new(self.x - other.x, self.y - other.y)
    }

    /// Euclidean norm.
    pub fn norm(&self) -> f64 {
        (self.x * self.x + self.y * self.y).sqrt()
    }
}

/// Barycenter of a non-empty set of points; the ERP reference point `g` in
/// Eq. (3) of the paper defaults to the barycenter of all vertices.
pub fn barycenter(points: &[Point]) -> Point {
    assert!(!points.is_empty(), "barycenter of empty point set");
    let (sx, sy) = points
        .iter()
        .fold((0.0, 0.0), |(sx, sy), p| (sx + p.x, sy + p.y));
    let n = points.len() as f64;
    Point::new(sx / n, sy / n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dist_is_euclidean() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert_eq!(a.dist(&b), 5.0);
        assert_eq!(a.dist2(&b), 25.0);
    }

    #[test]
    fn dist_is_symmetric() {
        let a = Point::new(1.5, -2.0);
        let b = Point::new(-3.0, 7.25);
        assert_eq!(a.dist(&b), b.dist(&a));
    }

    #[test]
    fn barycenter_of_square() {
        let pts = [
            Point::new(0.0, 0.0),
            Point::new(2.0, 0.0),
            Point::new(2.0, 2.0),
            Point::new(0.0, 2.0),
        ];
        let g = barycenter(&pts);
        assert_eq!(g, Point::new(1.0, 1.0));
    }

    #[test]
    fn add_sub_norm() {
        let a = Point::new(1.0, 2.0);
        let b = Point::new(3.0, -1.0);
        assert_eq!(a.add(&b), Point::new(4.0, 1.0));
        assert_eq!(a.sub(&b), Point::new(-2.0, 3.0));
        assert_eq!(Point::new(3.0, 4.0).norm(), 5.0);
    }

    #[test]
    #[should_panic(expected = "barycenter of empty")]
    fn barycenter_empty_panics() {
        barycenter(&[]);
    }
}
